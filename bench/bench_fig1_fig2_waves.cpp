// Figures 1 and 2: WordCount (200 map / 256 reduce tasks) task progress
// over time under two resource allocations — 128x128 slots (2 map and 2
// reduce waves) and 64x64 slots (4 waves each). The paper plots running
// map / shuffle / reduce task counts vs time; we print the same series
// from the testbed execution and from the SimMR replay side by side.
#include <cstdio>

#include "bench_common.h"
#include "sched/fifo.h"

namespace simmr {
namespace {

std::vector<core::SimTaskRecord> ToSimRecords(const cluster::HistoryLog& log) {
  std::vector<core::SimTaskRecord> records;
  for (const auto& t : log.tasks()) {
    core::SimTaskRecord r;
    r.job = t.job;
    r.kind = t.kind == cluster::TaskKind::kMap ? core::SimTaskKind::kMap
                                               : core::SimTaskKind::kReduce;
    r.start = t.start;
    r.shuffle_end = t.shuffle_end;
    r.end = t.end;
    records.push_back(r);
  }
  return records;
}

void PrintSeries(const std::vector<core::ProgressPoint>& series) {
  std::printf("%10s %8s %8s %8s\n", "time_s", "maps", "shuffle", "reduce");
  for (const auto& p : series) {
    if (p.maps + p.shuffles + p.reduces == 0 && p.time > 0.0) continue;
    std::printf("%10.1f %8d %8d %8d\n", p.time, p.maps, p.shuffles,
                p.reduces);
  }
}

void RunAllocation(int slots, std::uint64_t seed) {
  bench::PrintSection("WordCount with " + std::to_string(slots) + " map and " +
                      std::to_string(slots) + " reduce slots");

  // Testbed: 64 workers with 2+2 slots (Section II's configuration); the
  // modified FIFO caps the job at the requested slot count.
  cluster::TestbedOptions opts = bench::PaperTestbed(seed);
  opts.config.map_slots_per_node = 2;
  opts.config.reduce_slots_per_node = 2;
  opts.caps = [slots](const cluster::SubmittedJob&) {
    return cluster::SlotCaps{slots, slots};
  };
  const std::vector<cluster::SubmittedJob> jobs{
      {cluster::SectionTwoExample(), 0.0, 0.0}};
  const auto testbed = cluster::RunTestbed(jobs, opts);
  const double makespan = testbed.log.jobs()[0].finish_time;
  const double step = makespan / 24.0;

  std::printf("\n[testbed execution]  completion = %.1f s, map stage = %.1f s\n",
              makespan, testbed.log.jobs()[0].maps_done_time);
  PrintSeries(core::ProgressSeries(ToSimRecords(testbed.log), 0.0,
                                   makespan, step));

  // SimMR replay of the profile extracted from that run.
  const auto profiles = trace::BuildAllProfiles(testbed.log);
  core::SimConfig cfg;
  cfg.map_slots = slots;
  cfg.reduce_slots = slots;
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];
  core::SimulatorEngine engine(cfg, fifo);
  const auto sim = engine.Run(w);

  std::printf("\n[SimMR replay]       completion = %.1f s (error %+.1f%%)\n",
              sim.jobs[0].completion,
              bench::ErrorPercent(sim.jobs[0].completion, makespan));
  PrintSeries(core::ProgressSeries(sim.tasks, 0.0, sim.makespan, step));
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Figures 1 & 2",
      "WordCount (200 maps / 256 reduces) task progress vs time under\n"
      "128x128 and 64x64 slot allocations; waves and the overlapped first\n"
      "shuffle should be visible, and the SimMR replay should mirror the\n"
      "testbed series.");
  RunAllocation(128, seed);  // Figure 1: 2 map waves, 2 reduce waves
  RunAllocation(64, seed);   // Figure 2: 4 waves each
  return 0;
}
