// Interleaved profiler-overhead bench (acceptance gate for the in-process
// profiler of src/prof/, mirroring bench_eventlog_overhead).
//
// Measures what the prof:: hooks cost a replay in each of their two
// runtime states, interleaved A/B per round (medians over
// SIMMR_BENCH_RUNS rounds, so thermal drift hits both arms alike):
//   disarmed - the shipping default: every hook is a relaxed load of a
//              constant-initialized atomic plus a predictable branch.
//              The budget here is zero measurable overhead — this arm IS
//              the baseline engine as far as any caller can tell.
//   armed    - counters, high-water marks and scoped timers collecting
//              (what --profile-out pays). Budget: single-digit percent.
//
// Building with -DSIMMR_PROFILER=OFF removes even the disarmed branch;
// that configuration cannot be measured against this one inside a single
// binary, which is exactly why the disarmed arm doubles as the baseline.
// The per-round samples feed the statistical harness (median/MAD/CI) and
// land in the exit telemetry's "stats" object for perf-diff.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "prof/profiler.h"
#include "sched/fifo.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::bench {
namespace {

trace::WorkloadTrace MakeWorkload(int num_jobs, std::uint64_t seed) {
  Rng rng(seed);
  trace::WorkloadTrace workload;
  for (int i = 0; i < num_jobs; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "bench";
    spec.num_maps = 100;
    spec.num_reduces = 20;
    spec.first_wave_size = 10;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 4.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 8.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 5.0);
    trace::TraceJob job;
    job.profile = trace::SynthesizeProfile(spec, rng);
    job.arrival = 20.0 * i;
    workload.push_back(std::move(job));
  }
  return workload;
}

double ReplayOnceSeconds(const core::SimConfig& cfg,
                         const trace::WorkloadTrace& w,
                         core::SchedulerPolicy& policy) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::Replay(w, policy, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  AddTelemetryEvents(result.events_processed);
  return std::chrono::duration<double>(t1 - t0).count();
}

int Main() {
  PrintHeader("profiler-overhead",
              "Interleaved cost of the in-process profiler hooks: disarmed "
              "(the default; budget is zero) vs armed (--profile-out)");
  const int rounds = static_cast<int>(EnvOrDefault("SIMMR_BENCH_RUNS", 30));
  const std::uint64_t seed = EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const auto workload = MakeWorkload(1000, seed);

  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;

  // One untimed pass per arm warms caches and the branch predictor.
  std::vector<double> t_disarmed, t_armed;
  sched::FifoPolicy warm;
  prof::Disarm();
  ReplayOnceSeconds(cfg, workload, warm);
  prof::Reset();
  prof::Arm();
  ReplayOnceSeconds(cfg, workload, warm);
  prof::Disarm();

  std::uint64_t events_per_replay = 0;
  for (int i = 0; i < rounds; ++i) {
    {
      sched::FifoPolicy fifo;
      prof::Disarm();
      t_disarmed.push_back(ReplayOnceSeconds(cfg, workload, fifo));
    }
    {
      sched::FifoPolicy fifo;
      prof::Reset();
      prof::Arm();
      t_armed.push_back(ReplayOnceSeconds(cfg, workload, fifo));
      prof::Disarm();
      events_per_replay = prof::Value(prof::Counter::kEventsDispatched);
    }
  }

  const SampleStats disarmed = Summarize(t_disarmed);
  const SampleStats armed = Summarize(t_armed);
  RecordStat("disarmed_replay_seconds", disarmed);
  RecordStat("armed_replay_seconds", armed);

  PrintSection("fifo/synthetic 1000 jobs");
  std::printf("  disarmed  %8.2f ms  (MAD %.2f, CI95 [%.2f, %.2f])\n",
              1e3 * disarmed.median, 1e3 * disarmed.mad,
              1e3 * disarmed.ci95_lo, 1e3 * disarmed.ci95_hi);
  std::printf(
      "  armed     %8.2f ms  (MAD %.2f, CI95 [%.2f, %.2f])  +%.1f%% "
      "(%llu events dispatched/replay)\n",
      1e3 * armed.median, 1e3 * armed.mad, 1e3 * armed.ci95_lo,
      1e3 * armed.ci95_hi,
      100.0 * (armed.median - disarmed.median) / disarmed.median,
      static_cast<unsigned long long>(events_per_replay));
  const bool ci_separated =
      armed.ci95_lo > disarmed.ci95_hi || armed.ci95_hi < disarmed.ci95_lo;
  std::printf("  armed-vs-disarmed CIs %s\n",
              ci_separated ? "separated (armed cost is resolvable)"
                           : "overlap (armed cost below measurement noise)");
  return 0;
}

}  // namespace
}  // namespace simmr::bench

int main() { return simmr::bench::Main(); }
