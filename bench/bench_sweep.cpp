// Sweep throughput: parallel-replay scaling of the SimSession layer.
//
// Runs the same batch of Monte-Carlo replay sessions (the simmr_sweep
// workload) at 1, 2, 4 and 8 worker threads and reports sessions/s and
// speedup vs the single-threaded run. Because every session's RNG stream
// is split from the master seed by session index, the per-session results
// must be bit-identical at every thread count — the bench verifies that
// before it reports any throughput number. Expected shape on an idle
// multi-core host: near-linear scaling up to the physical core count
// (sessions share nothing but the read-only profile pool).
//
//   SIMMR_BENCH_SWEEP_SESSIONS - sessions per thread-count (default 64)
#include <chrono>
#include <cstdio>
#include <vector>

#include "backend/session.h"
#include "bench_common.h"
#include "core/simmr.h"
#include "simcore/parallel.h"
#include "simcore/rng.h"

int main() {
  using namespace simmr;
  using Clock = std::chrono::steady_clock;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const std::size_t kSessions = static_cast<std::size_t>(
      bench::EnvOrDefault("SIMMR_BENCH_SWEEP_SESSIONS", 64));

  bench::PrintHeader(
      "Sweep throughput",
      "Parallel Monte-Carlo replay scaling: the same session batch at 1,\n"
      "2, 4 and 8 worker threads. Sessions are independent (split RNG\n"
      "streams, shared read-only pool), so expect near-linear speedup up\n"
      "to the physical core count.");

  // The paper's validation workload as the profile pool, with measured
  // solo completions so the sessions exercise deadline assembly too.
  const auto& validation = bench::RunValidationSuiteOnce(seed);
  auto pool = std::make_shared<std::vector<trace::JobProfile>>(
      validation.profiles);
  auto solos = std::make_shared<std::vector<double>>(
      core::MeasureSoloCompletions(*pool, bench::PaperSimConfig()));
  const backend::SimSession session(pool, solos);

  const Rng master(seed);
  std::vector<std::uint64_t> events(kSessions, 0);
  const auto run_batch = [&](unsigned threads,
                             std::vector<double>& makespans) {
    makespans.assign(kSessions, 0.0);
    ParallelFor(
        kSessions,
        [&](std::size_t i) {
          backend::ReplaySpec spec;
          spec.policy = "minedf";
          spec.map_slots = 64;
          spec.reduce_slots = 64;
          spec.deadline_factor = 1.5;
          spec.seed = master.Split("bench-sweep", i)();
          const backend::RunResult result = session.Replay(spec);
          makespans[i] = result.makespan;
          events[i] = result.events_processed;
        },
        threads);
  };

  bench::PrintSection("sessions/s by worker threads");
  std::printf("%8s %10s %12s %10s %10s\n", "threads", "sessions", "wall_s",
              "sess/s", "speedup");

  const unsigned kThreadCounts[] = {1, 2, 4, 8};
  std::vector<double> baseline_makespans;
  double baseline_wall = 0.0;
  std::vector<double> rows_wall, rows_rate, rows_speedup;
  bool identical = true;
  std::uint64_t total_events = 0;
  for (const unsigned threads : kThreadCounts) {
    std::vector<double> makespans;
    const auto start = Clock::now();
    run_batch(threads, makespans);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (threads == 1) {
      baseline_makespans = makespans;
      baseline_wall = wall;
    } else if (makespans != baseline_makespans) {
      identical = false;
    }
    const double rate =
        wall > 0.0 ? static_cast<double>(kSessions) / wall : 0.0;
    const double speedup = wall > 0.0 ? baseline_wall / wall : 0.0;
    rows_wall.push_back(wall);
    rows_rate.push_back(rate);
    rows_speedup.push_back(speedup);
    std::printf("%8u %10zu %12.3f %10.1f %9.2fx\n", threads, kSessions, wall,
                rate, speedup);
    for (const std::uint64_t e : events) total_events += e;
  }
  bench::AddTelemetryEvents(total_events);

  std::printf("\nper-session results identical across thread counts: %s\n",
              identical ? "yes" : "NO (determinism violated)");
  std::printf("hardware concurrency: %u\n", DefaultParallelism());

  bench::PrintSection("CSV");
  std::printf("threads,sessions,wall_s,sessions_per_s,speedup\n");
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
    std::printf("%u,%zu,%.4f,%.2f,%.3f\n", kThreadCounts[i], kSessions,
                rows_wall[i], rows_rate[i], rows_speedup[i]);
  }
  return identical ? 0 : 1;
}
