// Engine-throughput microbenchmarks (google-benchmark): the paper claims
// "SimMR can process over one million events per second" (Section I /
// IV-E). Measures events/second of the SimMR engine on synthetic
// workloads of increasing size, plus the event-queue primitive itself.
#include <benchmark/benchmark.h>

#include "core/simmr.h"
#include "obs/event_log.h"
#include "sched/fifo.h"
#include "simcore/event_queue.h"
#include "trace/synthetic_tracegen.h"

namespace simmr {
namespace {

trace::WorkloadTrace MakeWorkload(int num_jobs, std::uint64_t seed) {
  Rng rng(seed);
  trace::WorkloadTrace workload;
  workload.reserve(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "bench";
    spec.num_maps = 100;
    spec.num_reduces = 20;
    spec.first_wave_size = 10;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 4.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 8.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 5.0);
    trace::TraceJob job;
    job.profile = trace::SynthesizeProfile(spec, rng);
    job.arrival = 20.0 * i;
    workload.push_back(std::move(job));
  }
  return workload;
}

void BM_EngineReplay(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<int>(state.range(0)), 42);
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  sched::FifoPolicy fifo;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = core::Replay(workload, fifo, cfg);
    events += result.events_processed;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_per_replay"] =
      static_cast<double>(events) / state.iterations();
}
BENCHMARK(BM_EngineReplay)->Arg(10)->Arg(100)->Arg(1000);

// Same replay with the durable event log attached. Compare
// events_per_second against BM_EngineReplay at the same arg for a rough
// read; the authoritative overhead number comes from
// bench_eventlog_overhead, which interleaves the arms and reports medians
// (see docs/OBSERVABILITY.md for current measurements and the budget).
void BM_EngineReplayWithEventLog(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<int>(state.range(0)), 42);
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  sched::FifoPolicy fifo;
  obs::EventLogObserver observer;
  cfg.observer = &observer;
  std::uint64_t events = 0;
  for (auto _ : state) {
    observer.Clear();  // measure steady-state recording, not reallocation
    const auto result = core::Replay(workload, fifo, cfg);
    events += result.events_processed;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["recorded_events"] =
      static_cast<double>(observer.event_count());
}
BENCHMARK(BM_EngineReplayWithEventLog)->Arg(10)->Arg(100)->Arg(1000);

void BM_EventQueuePushPop(benchmark::State& state) {
  Rng rng(7);
  const std::size_t n = 4096;
  for (auto _ : state) {
    EventQueue<int> q;
    for (std::size_t i = 0; i < n; ++i) {
      q.Push(static_cast<double>(rng.NextBounded(1000)),
             static_cast<int>(i));
    }
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().payload);
  }
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_MeasureSolo(benchmark::State& state) {
  const auto workload = MakeWorkload(20, 13);
  std::vector<trace::JobProfile> profiles;
  for (const auto& j : workload) profiles.push_back(j.profile);
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MeasureSoloCompletions(profiles, cfg));
  }
}
BENCHMARK(BM_MeasureSolo);

}  // namespace
}  // namespace simmr

BENCHMARK_MAIN();
