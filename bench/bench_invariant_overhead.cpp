// Invariant-checking overhead bench (release acceptance gate for the
// correctness subsystem of docs/TESTING.md).
//
// Measures the wall-clock cost check::InvariantObserver adds to a replay,
// against two baselines run interleaved with it (A/B/C per round, medians
// over SIMMR_BENCH_RUNS rounds, so thermal drift and frequency steps hit
// all arms alike):
//   bare       - no observer attached (the un-instrumented engine)
//   noop       - an observer whose callbacks do nothing: the price of the
//                hook plumbing alone, paid by any attached sink
//   invariant  - InvariantObserver validating the full callback stream
//                (clock, slot conservation, task lifecycle, shuffle
//                causality, job accounting) plus FinishRun()
//
// Two scenarios bound the answer: a synthetic FIFO replay is the worst
// case (the baseline engine does the least work per event), and a
// MinEDF-with-deadlines replay is the realistic ARIA-style case. The
// checker's hot path is a few hash-map probes per callback, so expect it
// to cost more than the event log's in-place store; the number here is
// the price of running the fuzzer's whole invariant battery live.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "check/invariant_observer.h"
#include "sched/fifo.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::bench {
namespace {

struct NoopObserver final : obs::SimObserver {
  void OnEventDequeue(SimTime, const char*, std::size_t) override {}
  void OnJobArrival(SimTime, std::int32_t, std::string_view,
                    double) override {}
  void OnJobCompletion(SimTime, std::int32_t) override {}
  void OnTaskLaunch(SimTime, std::int32_t, obs::TaskKind,
                    std::int32_t) override {}
  void OnTaskPhaseTransition(SimTime, std::int32_t, obs::TaskKind,
                             std::int32_t, const char*) override {}
  void OnTaskCompletion(SimTime, std::int32_t, obs::TaskKind, std::int32_t,
                        const obs::TaskTiming&, bool) override {}
  void OnSchedulerDecision(SimTime, obs::TaskKind, std::int32_t) override {}
};

trace::WorkloadTrace MakeWorkload(int num_jobs, std::uint64_t seed,
                                  bool deadlines) {
  Rng rng(seed);
  trace::WorkloadTrace workload;
  for (int i = 0; i < num_jobs; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "bench";
    spec.num_maps = 100;
    spec.num_reduces = 20;
    spec.first_wave_size = 10;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 4.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 8.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 5.0);
    trace::TraceJob job;
    job.profile = trace::SynthesizeProfile(spec, rng);
    job.arrival = 20.0 * i;
    if (deadlines) job.deadline = job.arrival + 400.0 + rng.NextBounded(400);
    workload.push_back(std::move(job));
  }
  return workload;
}

double ReplayOnceMs(const core::SimConfig& cfg, const trace::WorkloadTrace& w,
                    core::SchedulerPolicy& policy,
                    check::InvariantObserver* checker) {
  if (checker != nullptr) checker->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::Replay(w, policy, cfg);
  if (checker != nullptr) checker->FinishRun();
  const auto t1 = std::chrono::steady_clock::now();
  AddTelemetryEvents(result.events_processed);
  if (checker != nullptr && !checker->ok()) {
    // The bench doubles as a sanity gate: a violation here is an engine
    // bug, not a measurement artifact.
    std::fprintf(stderr, "invariant violations during bench:\n%s\n",
                 checker->Report().c_str());
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <class MakePolicy>
void Scenario(const char* label, const trace::WorkloadTrace& workload,
              int rounds, MakePolicy make_policy) {
  core::SimConfig bare;
  bare.map_slots = 64;
  bare.reduce_slots = 64;
  NoopObserver noop_sink;
  check::InvariantOptions opts;
  opts.map_slots = bare.map_slots;
  opts.reduce_slots = bare.reduce_slots;
  opts.strictness = check::Strictness::kExact;
  check::InvariantObserver checker(opts);
  core::SimConfig noop = bare;
  noop.observer = &noop_sink;
  core::SimConfig checked = bare;
  checked.observer = &checker;

  std::vector<double> t_bare, t_noop, t_check;
  for (int i = 0; i < rounds; ++i) {
    {
      auto p = make_policy();
      t_bare.push_back(ReplayOnceMs(bare, workload, *p, nullptr));
    }
    {
      auto p = make_policy();
      t_noop.push_back(ReplayOnceMs(noop, workload, *p, nullptr));
    }
    {
      auto p = make_policy();
      t_check.push_back(ReplayOnceMs(checked, workload, *p, &checker));
    }
  }
  const double b = Median(t_bare);
  const double n = Median(t_noop);
  const double c = Median(t_check);
  PrintSection(label);
  std::printf("  bare engine        %8.2f ms\n", b);
  std::printf("  noop observer      %8.2f ms  (+%.1f%% hook plumbing)\n", n,
              100.0 * (n - b) / b);
  std::printf(
      "  invariant checker  %8.2f ms  (+%.1f%% total, +%.1f%% checking "
      "alone, %llu callbacks)\n",
      c, 100.0 * (c - b) / b, 100.0 * (c - n) / b,
      static_cast<unsigned long long>(checker.callbacks_seen()));
}

int Main() {
  PrintHeader("invariant-overhead",
              "Interleaved checking overhead of check::InvariantObserver "
              "(full invariant battery) vs bare and noop-observer replays");
  const int rounds =
      static_cast<int>(EnvOrDefault("SIMMR_BENCH_RUNS", 30));
  const std::uint64_t seed = EnvOrDefault("SIMMR_BENCH_SEED", 42);

  const auto fifo_workload = MakeWorkload(1000, seed, /*deadlines=*/false);
  Scenario("fifo/synthetic 1000 jobs (worst case: lightest baseline)",
           fifo_workload, rounds,
           [] { return std::make_unique<sched::FifoPolicy>(); });

  const auto edf_workload = MakeWorkload(1000, seed, /*deadlines=*/true);
  Scenario("minedf/deadlines 1000 jobs (realistic ARIA-style run)",
           edf_workload, rounds,
           [] { return std::make_unique<sched::MinEdfPolicy>(64, 64); });
  return 0;
}

}  // namespace
}  // namespace simmr::bench

int main() { return simmr::bench::Main(); }
