#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "obs/telemetry.h"

namespace simmr::bench {
namespace {

// Exit-telemetry state, armed by PrintHeader (bench binaries are
// single-threaded, one exhibit per process).
std::string g_exhibit;                              // NOLINT
std::chrono::steady_clock::time_point g_wall_start;  // NOLINT
std::uint64_t g_telemetry_events = 0;                // NOLINT

void EmitTelemetryLine() {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_wall_start)
          .count();
  const obs::RunTelemetry telemetry = obs::MakeRunTelemetry(
      "bench", g_exhibit, wall_seconds, g_telemetry_events, /*jobs=*/0,
      /*makespan_s=*/0.0);
  std::printf("\n%s\n", telemetry.ToJson().c_str());
}

}  // namespace

std::uint64_t EnvOrDefault(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) {
    std::fprintf(stderr, "warning: ignoring bad %s='%s'\n", name, value);
    return fallback;
  }
  return parsed;
}

void PrintHeader(const std::string& exhibit, const std::string& description) {
  g_exhibit = exhibit;
  g_wall_start = std::chrono::steady_clock::now();
  static bool telemetry_registered = false;
  if (!telemetry_registered) {
    telemetry_registered = true;
    std::atexit(EmitTelemetryLine);
  }
  std::printf("================================================================\n");
  std::printf("SimMR reproduction — %s\n", exhibit.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

void AddTelemetryEvents(std::uint64_t events) { g_telemetry_events += events; }

void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

cluster::TestbedOptions PaperTestbed(std::uint64_t seed) {
  cluster::TestbedOptions opts;
  opts.config = cluster::ClusterConfig{};  // defaults model the paper's rig
  opts.seed = seed;
  return opts;
}

const ValidationRun& RunValidationSuiteOnce(std::uint64_t seed) {
  static std::unique_ptr<ValidationRun> cached;
  static std::uint64_t cached_seed = 0;
  if (!cached || cached_seed != seed) {
    auto run = std::make_unique<ValidationRun>();
    std::vector<cluster::SubmittedJob> jobs;
    double t = 0.0;
    for (const auto& spec : cluster::ValidationSuite()) {
      jobs.push_back({spec, t, 0.0});
      t += 10000.0;  // serialize: each job sees an empty cluster
    }
    const auto result = cluster::RunTestbed(jobs, PaperTestbed(seed));
    run->log = result.log;
    run->profiles = trace::BuildAllProfiles(run->log);
    cached = std::move(run);
    cached_seed = seed;
  }
  return *cached;
}

core::SimConfig PaperSimConfig() {
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  return cfg;
}

double ErrorPercent(double simulated, double actual) {
  return 100.0 * (simulated - actual) / actual;
}

}  // namespace simmr::bench
