#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>

#include "obs/json.h"
#include "obs/telemetry.h"

namespace simmr::bench {
namespace {

// Exit-telemetry state, armed by PrintHeader (bench binaries are
// single-threaded, one exhibit per process).
std::string g_exhibit;                              // NOLINT
std::chrono::steady_clock::time_point g_wall_start;  // NOLINT
std::uint64_t g_telemetry_events = 0;                // NOLINT
std::map<std::string, SampleStats>& RecordedStats() {
  // Intentionally leaked: the atexit telemetry handler (registered in
  // PrintHeader, typically before the first RecordStat) reads this map
  // during exit; a function-local static constructed after that
  // registration would already be destroyed by then.
  static auto* stats = new std::map<std::string, SampleStats>();  // NOLINT
  return *stats;
}

std::string StatsJson(const SampleStats& s) {
  return "{\"n\":" + std::to_string(s.n) +
         ",\"median\":" + obs::JsonNumber(s.median) +
         ",\"mad\":" + obs::JsonNumber(s.mad) +
         ",\"ci95_lo\":" + obs::JsonNumber(s.ci95_lo) +
         ",\"ci95_hi\":" + obs::JsonNumber(s.ci95_hi) +
         ",\"min\":" + obs::JsonNumber(s.min) +
         ",\"max\":" + obs::JsonNumber(s.max) + "}";
}

void EmitTelemetryLine() {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_wall_start)
          .count();
  const obs::RunTelemetry telemetry = obs::MakeRunTelemetry(
      "bench", g_exhibit, wall_seconds, g_telemetry_events, /*jobs=*/0,
      /*makespan_s=*/0.0);
  std::string json = telemetry.ToJson();
  if (!RecordedStats().empty()) {
    // Additive extension of the telemetry object: consumers that only
    // know simmr.telemetry.v1 keep parsing, perf-diff reads the CIs.
    json.pop_back();  // drop closing '}'
    json += ",\"stats\":{";
    bool first = true;
    for (const auto& [name, stats] : RecordedStats()) {
      if (!first) json += ",";
      first = false;
      json += "\"" + obs::JsonEscape(name) + "\":" + StatsJson(stats);
    }
    json += "}}";
  }
  std::printf("\n%s\n", json.c_str());
}

double MedianOfSorted(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

std::uint64_t EnvOrDefault(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) {
    std::fprintf(stderr, "warning: ignoring bad %s='%s'\n", name, value);
    return fallback;
  }
  return parsed;
}

SampleStats Summarize(std::vector<double> samples) {
  SampleStats stats;
  stats.n = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.min = samples.front();
  stats.max = samples.back();
  stats.median = MedianOfSorted(samples);

  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double s : samples) deviations.push_back(std::abs(s - stats.median));
  std::sort(deviations.begin(), deviations.end());
  stats.mad = MedianOfSorted(deviations);

  // Seeded bootstrap of the median: resample-with-replacement B times and
  // take the 2.5/97.5 percentiles. Deterministic so two runs of the same
  // samples produce the same interval (the perf gate diffs these).
  constexpr int kResamples = 200;
  std::mt19937_64 rng(0x51A7B007);  // fixed: stats must be reproducible
  std::uniform_int_distribution<std::size_t> pick(0, samples.size() - 1);
  std::vector<double> medians;
  medians.reserve(kResamples);
  std::vector<double> resample(samples.size());
  for (int b = 0; b < kResamples; ++b) {
    for (double& slot : resample) slot = samples[pick(rng)];
    std::sort(resample.begin(), resample.end());
    medians.push_back(MedianOfSorted(resample));
  }
  std::sort(medians.begin(), medians.end());
  stats.ci95_lo = medians[static_cast<std::size_t>(0.025 * kResamples)];
  stats.ci95_hi = medians[static_cast<std::size_t>(0.975 * kResamples) - 1];
  return stats;
}

SampleStats MeasureRepeated(int warmup, int runs,
                            const std::function<void()>& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs > 0 ? runs : 0));
  for (int i = 0; i < runs; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  return Summarize(std::move(samples));
}

void RecordStat(const std::string& name, const SampleStats& stats) {
  RecordedStats()[name] = stats;
}

void PrintHeader(const std::string& exhibit, const std::string& description) {
  g_exhibit = exhibit;
  g_wall_start = std::chrono::steady_clock::now();
  static bool telemetry_registered = false;
  if (!telemetry_registered) {
    telemetry_registered = true;
    std::atexit(EmitTelemetryLine);
  }
  std::printf("================================================================\n");
  std::printf("SimMR reproduction — %s\n", exhibit.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

void AddTelemetryEvents(std::uint64_t events) { g_telemetry_events += events; }

void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

cluster::TestbedOptions PaperTestbed(std::uint64_t seed) {
  cluster::TestbedOptions opts;
  opts.config = cluster::ClusterConfig{};  // defaults model the paper's rig
  opts.seed = seed;
  return opts;
}

const ValidationRun& RunValidationSuiteOnce(std::uint64_t seed) {
  static std::unique_ptr<ValidationRun> cached;
  static std::uint64_t cached_seed = 0;
  if (!cached || cached_seed != seed) {
    auto run = std::make_unique<ValidationRun>();
    std::vector<cluster::SubmittedJob> jobs;
    double t = 0.0;
    for (const auto& spec : cluster::ValidationSuite()) {
      jobs.push_back({spec, t, 0.0});
      t += 10000.0;  // serialize: each job sees an empty cluster
    }
    const auto result = cluster::RunTestbed(jobs, PaperTestbed(seed));
    run->log = result.log;
    run->profiles = trace::BuildAllProfiles(run->log);
    cached = std::move(run);
    cached_seed = seed;
  }
  return *cached;
}

core::SimConfig PaperSimConfig() {
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  return cfg;
}

double ErrorPercent(double simulated, double actual) {
  return 100.0 * (simulated - actual) / actual;
}

}  // namespace simmr::bench
