// Figure 7: MinEDF vs MaxEDF on the real-testbed workload. The relative-
// deadline-exceeded utility is averaged over many randomized workloads
// (the paper uses 400; SIMMR_BENCH_RUNS controls it here) while sweeping
// the mean inter-arrival time over 1..100000 s for deadline factors
// 1, 1.5 and 3. Expected shape: curves coincide at df=1; MinEDF wins for
// df>1 with the gap growing in df; both decay as arrivals spread out;
// a non-preemption "bump" appears at moderate inter-arrival times.
#include <cstdio>

#include "bench_common.h"
#include "simcore/parallel.h"
#include "simcore/stats.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "trace/workload.h"

namespace simmr {
namespace {

struct Point {
  double min_edf = 0.0;
  double max_edf = 0.0;
  double min_ci = 0.0;
  double max_ci = 0.0;
};

Point AverageUtility(const std::vector<trace::JobProfile>& pool,
                     const std::vector<double>& solos, double gap, double df,
                     int runs, std::uint64_t seed) {
  // Each randomized workload replay is independent: fan out across cores.
  const core::SimConfig cfg = bench::PaperSimConfig();
  std::vector<Point> per_run(runs);
  ParallelFor(runs, [&](std::size_t r) {
    Rng rng(seed + 977 * r);
    trace::WorkloadParams params;
    params.num_jobs = static_cast<int>(pool.size());
    params.mean_interarrival_s = gap;
    params.deadline_factor = df;
    const auto workload = trace::MakeWorkload(pool, solos, params, rng);

    sched::MinEdfPolicy minedf(cfg.map_slots, cfg.reduce_slots);
    per_run[r].min_edf = core::RelativeDeadlineExceeded(
        core::Replay(workload, minedf, cfg).jobs);
    sched::MaxEdfPolicy maxedf;
    per_run[r].max_edf = core::RelativeDeadlineExceeded(
        core::Replay(workload, maxedf, cfg).jobs);
  });
  std::vector<double> mins(runs), maxs(runs);
  for (int r = 0; r < runs; ++r) {
    mins[r] = per_run[r].min_edf;
    maxs[r] = per_run[r].max_edf;
  }
  const MeanCi min_ci = MeanConfidenceInterval(mins);
  const MeanCi max_ci = MeanConfidenceInterval(maxs);
  Point p;
  p.min_edf = min_ci.mean;
  p.min_ci = min_ci.half_width;
  p.max_edf = max_ci.mean;
  p.max_ci = max_ci.half_width;
  return p;
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const int runs = static_cast<int>(bench::EnvOrDefault("SIMMR_BENCH_RUNS", 40));

  bench::PrintHeader(
      "Figure 7",
      "MinEDF vs MaxEDF, real-testbed workload (6 apps x 3 datasets = 18\n"
      "jobs), relative deadline exceeded vs mean inter-arrival time.");
  std::printf("averaging %d randomized workloads per point "
              "(SIMMR_BENCH_RUNS; paper used 400)\n", runs);

  // The 18-job pool: profiles of the full suite collected on the testbed.
  std::vector<cluster::SubmittedJob> jobs;
  double t = 0.0;
  for (const auto& spec : cluster::FullWorkloadSuite()) {
    jobs.push_back({spec, t, 0.0});
    t += 20000.0;
  }
  std::printf("collecting 18 job profiles from the testbed emulator...\n");
  const auto testbed = cluster::RunTestbed(jobs, bench::PaperTestbed(seed));
  const auto pool = trace::BuildAllProfiles(testbed.log);
  const auto solos =
      core::MeasureSoloCompletions(pool, bench::PaperSimConfig());

  for (const double df : {1.0, 1.5, 3.0}) {
    bench::PrintSection("deadline factor = " + std::to_string(df));
    std::printf("%16s %14s %9s %14s %9s\n", "interarrival_s", "MaxEDF",
                "+/-95%", "MinEDF", "+/-95%");
    for (const double gap : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
      const Point p = AverageUtility(pool, solos, gap, df, runs, seed);
      std::printf("%16.0f %14.3f %9.3f %14.3f %9.3f\n", gap, p.max_edf,
                  p.max_ci, p.min_edf, p.min_ci);
    }
  }
  std::printf(
      "\npaper reference shape: identical curves at df=1 (with a bump near\n"
      "100 s from non-preemptible tasks); MinEDF below MaxEDF for df>1.\n");
  return 0;
}
