// Ablation: tightness of the ARIA bounds model (DESIGN.md section 6.4).
// For each validation-suite profile, compares the model's lower / average /
// upper completion estimates against the SimMR-replayed makespan across a
// range of slot allocations. The average bound is MinEDF's predictor, so
// its error determines how often MinEDF's "minimal" allocation misses.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "sched/aria_model.h"
#include "sched/fifo.h"

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: ARIA bounds tightness",
      "Model lower/avg/upper completion estimates vs SimMR-replayed\n"
      "makespan per application and allocation. The replay should fall\n"
      "within [lower, upper]; the average bound should track it closely.");

  const auto& validation = bench::RunValidationSuiteOnce(seed);
  sched::FifoPolicy fifo;

  std::printf("%-12s %9s %10s %10s %10s %10s %9s\n", "app", "slots",
              "lower_s", "avg_s", "upper_s", "replay_s", "avg_err%");
  double worst_avg_err = 0.0;
  int out_of_bounds = 0, total = 0;
  for (const auto& profile : validation.profiles) {
    const auto summary = sched::ProfileSummary::FromProfile(profile);
    for (const int slots : {8, 16, 32, 64}) {
      core::SimConfig cfg;
      cfg.map_slots = slots;
      cfg.reduce_slots = slots;
      trace::WorkloadTrace w(1);
      w[0].profile = profile;
      const double replay =
          core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
      const double lo =
          EstimateCompletion(sched::LowerBound(summary), slots, slots);
      const double up =
          EstimateCompletion(sched::UpperBound(summary), slots, slots);
      const double avg =
          EstimateCompletion(sched::AverageBound(summary), slots, slots);
      const double err = bench::ErrorPercent(avg, replay);
      worst_avg_err = std::max(worst_avg_err, std::fabs(err));
      ++total;
      if (replay < lo * 0.99 || replay > up * 1.01) ++out_of_bounds;
      std::printf("%-12s %6dx%-3d %10.1f %10.1f %10.1f %10.1f %+8.1f%%\n",
                  profile.app_name.c_str(), slots, slots, lo, avg, up,
                  replay, err);
    }
  }
  std::printf("\nreplays outside [lower, upper]: %d of %d;  worst avg-bound "
              "error: %.1f%%\n", out_of_bounds, total, worst_avg_err);
  std::printf(
      "expected: zero (or nearly zero) out-of-bounds rows; the average\n"
      "bound tracks the replay within a few %% for long jobs and loosens\n"
      "(to ~30%%) for short jobs at large allocations, where the upper\n"
      "bound's constant max-terms dominate (the paper calls the average\n"
      "'a good approximation of the job completion time').\n");
  return 0;
}
