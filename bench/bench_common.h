// Shared plumbing for the paper-exhibit benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md section 4) and prints its rows/series as aligned text plus a
// CSV block that can be piped into a plotting tool. Common knobs come from
// environment variables so `for b in build/bench/*; do $b; done` works
// unattended:
//   SIMMR_BENCH_RUNS   - Monte-Carlo repetitions for Figures 7/8
//                        (default 40; the paper used 400)
//   SIMMR_BENCH_SEED   - master seed (default 42)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "trace/mr_profiler.h"

namespace simmr::bench {

/// Reads a positive integer environment knob with a default.
std::uint64_t EnvOrDefault(const char* name, std::uint64_t fallback);

/// Robust summary of repeated measurements: median, median absolute
/// deviation, and a seeded-bootstrap 95% confidence interval of the
/// median (deterministic: same samples => same interval).
struct SampleStats {
  std::size_t n = 0;
  double median = 0.0;
  double mad = 0.0;      // median absolute deviation from the median
  double ci95_lo = 0.0;  // bootstrap 95% CI of the median
  double ci95_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes a sample vector (copied: it is sorted internally).
SampleStats Summarize(std::vector<double> samples);

/// Statistical measurement harness: runs fn() `warmup` times untimed
/// (cache/branch-predictor warmup), then `runs` timed repetitions, and
/// returns the per-repetition wall-second stats.
SampleStats MeasureRepeated(int warmup, int runs,
                            const std::function<void()>& fn);

/// Folds a named statistic into the exit telemetry line as
/// "stats":{"<name>":{...}} — run_benches.sh carries it into the
/// simmr.benchsuite.v2 document, where perf-diff reads the CI.
void RecordStat(const std::string& name, const SampleStats& stats);

/// Prints the standard header for a bench binary, starts the wall clock
/// and arranges for one machine-readable RunTelemetry JSON line
/// ("simmr.telemetry.v1", see obs/telemetry.h) on stdout at process exit.
void PrintHeader(const std::string& exhibit, const std::string& description);

/// Adds simulated events to the exit telemetry (feeds events_per_second).
void AddTelemetryEvents(std::uint64_t events);

/// Prints a section separator.
void PrintSection(const std::string& title);

/// The standard validation testbed: the paper's 66-node cluster (64
/// workers, 1+1 slots per node).
cluster::TestbedOptions PaperTestbed(std::uint64_t seed);

/// Runs each ValidationSuite job alone on the paper testbed under FIFO and
/// returns (log, per-job profiles). Cached per process.
struct ValidationRun {
  cluster::HistoryLog log;
  std::vector<trace::JobProfile> profiles;
};
const ValidationRun& RunValidationSuiteOnce(std::uint64_t seed);

/// SimConfig matching the paper testbed (64 + 64 slots).
core::SimConfig PaperSimConfig();

/// Relative error in percent.
double ErrorPercent(double simulated, double actual);

}  // namespace simmr::bench
