// Ablation: task-failure sensitivity of the replay pipeline.
//
// SimMR's profile records successful attempt durations only; re-execution
// overhead on the real cluster is *not* part of the template. This bench
// quantifies the consequence: as the testbed's failure rate grows, the
// actual completion time inflates while the replayed time does not, so
// the replay error grows — an honest boundary of the paper's approach
// (the paper's cluster ran with negligible failure rates).
#include <cstdio>

#include "bench_common.h"
#include "sched/fifo.h"

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: task failures vs replay accuracy",
      "Failed attempts are re-executed on the testbed but invisible to the\n"
      "profile-driven replay; error should grow with the failure rate.");

  const cluster::JobSpec spec = cluster::ValidationSuite()[0];  // WordCount
  sched::FifoPolicy fifo;

  std::printf("%14s %12s %12s %9s %16s\n", "failure_prob", "testbed_s",
              "simmr_s", "err_%", "failed_attempts");
  for (const double p : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    cluster::TestbedOptions opts = bench::PaperTestbed(seed);
    opts.config.task_failure_prob = p;
    const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
    const auto testbed = cluster::RunTestbed(jobs, opts);
    const double actual =
        testbed.log.jobs()[0].finish_time - testbed.log.jobs()[0].submit_time;
    int failed = 0;
    for (const auto& t : testbed.log.tasks()) {
      if (!t.succeeded) ++failed;
    }

    trace::WorkloadTrace w(1);
    w[0].profile = trace::BuildAllProfiles(testbed.log)[0];
    const double simulated =
        core::Replay(w, fifo, bench::PaperSimConfig()).jobs[0]
            .CompletionTime();
    std::printf("%14.2f %12.1f %12.1f %+8.1f%% %16d\n", p, actual, simulated,
                bench::ErrorPercent(simulated, actual), failed);
  }
  std::printf(
      "\nexpected: near-zero error without failures, monotonically more\n"
      "negative error (underestimation) as re-execution overhead grows —\n"
      "the boundary where trace-driven replay needs failure modeling.\n");
  return 0;
}
