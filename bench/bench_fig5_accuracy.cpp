// Figure 5: simulator accuracy across scheduling policies.
//   (a) FIFO:   actual vs SimMR vs Mumak per application
//   (b) MinEDF: actual vs SimMR
//   (c) MaxEDF: actual vs SimMR
// Bars are normalized completion times (actual = 100%); the parenthetical
// numbers are the actual completion times in seconds.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "mumak/mumak_sim.h"
#include "sched/aria_model.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"

namespace simmr {
namespace {

struct Row {
  std::string app;
  double actual = 0.0;
  double simmr = 0.0;
  double mumak = -1.0;  // <0: not measured for this panel
};

void PrintPanel(const char* title, const std::vector<Row>& rows) {
  bench::PrintSection(title);
  const bool with_mumak = rows.front().mumak >= 0.0;
  std::printf("%-12s %10s %12s %9s", "Application", "actual_s", "SimMR_%",
              "err_%");
  if (with_mumak) std::printf(" %12s %9s", "Mumak_%", "err_%");
  std::printf("\n");
  double simmr_abs_sum = 0.0, simmr_abs_max = 0.0;
  double mumak_abs_sum = 0.0, mumak_abs_max = 0.0;
  for (const auto& r : rows) {
    const double se = bench::ErrorPercent(r.simmr, r.actual);
    simmr_abs_sum += std::fabs(se);
    simmr_abs_max = std::max(simmr_abs_max, std::fabs(se));
    std::printf("%-12s %9.0f %12.1f %+8.1f%%", r.app.c_str(), r.actual,
                100.0 * r.simmr / r.actual, se);
    if (with_mumak) {
      const double me = bench::ErrorPercent(r.mumak, r.actual);
      mumak_abs_sum += std::fabs(me);
      mumak_abs_max = std::max(mumak_abs_max, std::fabs(me));
      std::printf(" %12.1f %+8.1f%%", 100.0 * r.mumak / r.actual, me);
    }
    std::printf("\n");
  }
  std::printf("SimMR |error|: avg %.1f%%, max %.1f%%",
              simmr_abs_sum / rows.size(), simmr_abs_max);
  if (with_mumak) {
    std::printf("   Mumak |error|: avg %.1f%%, max %.1f%%",
                mumak_abs_sum / rows.size(), mumak_abs_max);
  }
  std::printf("\n");
}

/// Runs one app alone on the testbed under the given scheduler/caps, then
/// replays its profile in SimMR under the matching policy.
Row RunOne(const cluster::JobSpec& spec, std::uint64_t seed,
           const char* policy_name, double deadline_factor) {
  Row row;
  row.app = spec.app.name;

  // Step 1: a FIFO calibration run yields the profile and solo time used
  // to pick the deadline and (for MinEDF) the ARIA caps — exactly the
  // paper's methodology of profiling before scheduling.
  std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
  const auto calib = cluster::RunTestbed(jobs, bench::PaperTestbed(seed));
  const auto calib_profiles = trace::BuildAllProfiles(calib.log);
  const double solo =
      calib.log.jobs()[0].finish_time - calib.log.jobs()[0].submit_time;
  const double deadline = solo * deadline_factor;

  // Step 2: the measured run under the target policy.
  cluster::TestbedOptions opts = bench::PaperTestbed(seed + 1);
  jobs[0].deadline = deadline;
  // For MinEDF, the allocation decision comes from the *stored* profile
  // (ARIA keeps profiles of prior runs); both the testbed scheduler and
  // the SimMR replay must use the same decision.
  const auto aria_alloc = sched::MinimalSlotsForDeadline(
      sched::ProfileSummary::FromProfile(calib_profiles[0]), deadline, 64,
      64);
  if (std::string(policy_name) == "MinEDF") {
    opts.scheduler = cluster::SchedulerKind::kEdf;
    opts.caps = [aria_alloc](const cluster::SubmittedJob&) {
      return cluster::SlotCaps{aria_alloc.map_slots,
                               aria_alloc.reduce_slots};
    };
  } else if (std::string(policy_name) == "MaxEDF") {
    opts.scheduler = cluster::SchedulerKind::kEdf;
  }
  const auto testbed = cluster::RunTestbed(jobs, opts);
  const auto& job_record = testbed.log.jobs()[0];
  row.actual = job_record.finish_time - job_record.submit_time;

  // Step 3: SimMR replay of the measured run's own trace under the same
  // policy.
  const auto profiles = trace::BuildAllProfiles(testbed.log);
  core::SimConfig cfg = bench::PaperSimConfig();
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];
  w[0].deadline = deadline;
  if (std::string(policy_name) == "MinEDF") {
    sched::MinEdfPolicy policy(64, 64);
    policy.PresetWantedSlots(0, aria_alloc);
    row.simmr = core::Replay(w, policy, cfg).jobs[0].CompletionTime();
  } else if (std::string(policy_name) == "MaxEDF") {
    sched::MaxEdfPolicy policy;
    row.simmr = core::Replay(w, policy, cfg).jobs[0].CompletionTime();
  } else {
    sched::FifoPolicy policy;
    row.simmr = core::Replay(w, policy, cfg).jobs[0].CompletionTime();
    // Mumak comparison only exists for FIFO (the scheduler both share).
    mumak::MumakConfig mcfg;
    const auto rumen = mumak::RumenTrace::FromHistory(testbed.log);
    row.mumak = mumak::RunMumak(rumen, mcfg).jobs[0].CompletionTime();
  }
  return row;
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Figure 5",
      "Simulator accuracy across scheduling policies. Expected shape:\n"
      "SimMR within a few percent everywhere; Mumak (FIFO panel) badly\n"
      "underestimates, worst on shuffle-heavy apps (Sort, TFIDF, Twitter).\n"
      "Paper: SimMR <=2.7%/3.7%/1.1% avg error (FIFO/MaxEDF/MinEDF);\n"
      "Mumak 37% avg, 51.7% max.");

  const auto suite = cluster::ValidationSuite();
  for (const auto& [panel, df] :
       {std::pair<const char*, double>{"FIFO", 0.0},
        {"MinEDF", 1.3},
        {"MaxEDF", 1.3}}) {
    std::vector<Row> rows;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      rows.push_back(RunOne(suite[i], seed + 10 * i, panel,
                            df > 0.0 ? df : 10.0));
    }
    PrintPanel((std::string("panel: ") + panel).c_str(), rows);
  }
  return 0;
}
