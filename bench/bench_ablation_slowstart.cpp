// Ablation: the minMapPercentCompleted parameter (Hadoop's reduce
// slowstart; DESIGN.md section 6.3). Sweeps the gate fraction and reports
// (a) the replayed completion time of a single job and (b) SimMR's replay
// accuracy against a testbed run using the same setting. Early reduce
// scheduling hides the shuffle behind the map stage but hoards reduce
// slots; late scheduling serializes the first shuffle after the maps.
#include <cstdio>

#include "bench_common.h"
#include "sched/fifo.h"

namespace simmr {
namespace {

double ReplayWithSlowstart(const trace::JobProfile& profile, double gate) {
  core::SimConfig cfg = bench::PaperSimConfig();
  cfg.min_map_percent_completed = gate;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profile;
  return core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: reduce slowstart (minMapPercentCompleted)",
      "How the reduce-scheduling gate shifts completion time, and how well\n"
      "SimMR tracks the testbed when both use the same gate.");

  const auto suite = cluster::ValidationSuite();

  bench::PrintSection("single-job completion vs gate (SimMR replay)");
  const auto& validation = bench::RunValidationSuiteOnce(seed);
  std::printf("%-12s", "gate");
  for (const auto& spec : suite) std::printf(" %11s", spec.app.name.c_str());
  std::printf("\n");
  for (const double gate : {0.0, 0.05, 0.25, 0.5, 0.8, 1.0}) {
    std::printf("%-12.2f", gate);
    for (const auto& profile : validation.profiles) {
      std::printf(" %11.1f", ReplayWithSlowstart(profile, gate));
    }
    std::printf("\n");
  }

  bench::PrintSection("testbed-vs-SimMR error when both sweep the gate");
  std::printf("%-12s %12s %12s %9s\n", "gate", "testbed_s", "simmr_s",
              "err_%");
  const cluster::JobSpec spec = suite[3];  // Sort: most shuffle-sensitive
  for (const double gate : {0.05, 0.25, 0.5, 1.0}) {
    cluster::TestbedOptions opts = bench::PaperTestbed(seed);
    opts.config.reduce_slowstart = gate;
    const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
    const auto testbed = cluster::RunTestbed(jobs, opts);
    const double actual =
        testbed.log.jobs()[0].finish_time - testbed.log.jobs()[0].submit_time;

    core::SimConfig cfg = bench::PaperSimConfig();
    cfg.min_map_percent_completed = gate;
    sched::FifoPolicy fifo;
    trace::WorkloadTrace w(1);
    w[0].profile = trace::BuildAllProfiles(testbed.log)[0];
    const double simulated =
        core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
    std::printf("%-12.2f %12.1f %12.1f %+8.1f%%\n", gate, actual, simulated,
                bench::ErrorPercent(simulated, actual));
  }
  std::printf(
      "\nexpected: completion grows as the gate approaches 1.0 (first\n"
      "shuffle serializes after the map stage); SimMR error stays small at\n"
      "every setting because the profile is gate-invariant.\n");
  return 0;
}
