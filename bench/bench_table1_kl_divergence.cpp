// Table I: symmetric Kullback-Leibler divergence between the phase-duration
// distributions of different executions of the same application (small),
// contrasted with the divergence between different applications (large).
// The paper reports min/avg/max over the 10 pairwise comparisons of 5
// executions per application, per phase.
#include <cstdio>

#include "bench_common.h"
#include "simcore/stats.h"

namespace simmr {
namespace {

struct PhaseSamples {
  std::vector<double> map, shuffle, reduce;
};

PhaseSamples FromProfile(const trace::JobProfile& p) {
  PhaseSamples s;
  s.map = p.map_durations;
  s.shuffle = p.typical_shuffle_durations;
  s.shuffle.insert(s.shuffle.end(), p.first_shuffle_durations.begin(),
                   p.first_shuffle_durations.end());
  s.reduce = p.reduce_durations;
  return s;
}

struct MinAvgMax {
  double min = 1e300, avg = 0.0, max = 0.0;
  int n = 0;
  void Add(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    avg += v;
    ++n;
  }
  double Avg() const { return n > 0 ? avg / n : 0.0; }
};

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const int kRuns = 5;
  bench::PrintHeader(
      "Table I",
      "Symmetric KL divergence of map/shuffle/reduce duration distributions\n"
      "across 5 executions of each application (10 pairwise comparisons).\n"
      "Same-application KL must be small; cross-application KL large.");

  // 5 executions of each of the 6 applications (different seeds model the
  // run-to-run variation of the real cluster).
  const auto suite = cluster::ValidationSuite();
  std::vector<std::vector<PhaseSamples>> runs(suite.size());
  for (int r = 0; r < kRuns; ++r) {
    std::vector<cluster::SubmittedJob> jobs;
    double t = 0.0;
    for (const auto& spec : suite) {
      jobs.push_back({spec, t, 0.0});
      t += 10000.0;
    }
    const auto result =
        cluster::RunTestbed(jobs, bench::PaperTestbed(seed + r));
    const auto profiles = trace::BuildAllProfiles(result.log);
    for (std::size_t a = 0; a < suite.size(); ++a) {
      runs[a].push_back(FromProfile(profiles[a]));
    }
  }

  bench::PrintSection("same-application KL (10 pairwise comparisons each)");
  std::printf("%-12s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s\n",
              "Application", "M.min", "M.avg", "M.max", "S.min", "S.avg",
              "S.max", "R.min", "R.avg", "R.max");
  for (std::size_t a = 0; a < suite.size(); ++a) {
    MinAvgMax map, shuffle, reduce;
    for (int i = 0; i < kRuns; ++i) {
      for (int j = i + 1; j < kRuns; ++j) {
        map.Add(SampleSymmetricKl(runs[a][i].map, runs[a][j].map));
        shuffle.Add(SampleSymmetricKl(runs[a][i].shuffle, runs[a][j].shuffle));
        reduce.Add(SampleSymmetricKl(runs[a][i].reduce, runs[a][j].reduce));
      }
    }
    std::printf("%-12s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
                suite[a].app.name.c_str(), map.min, map.Avg(), map.max,
                shuffle.min, shuffle.Avg(), shuffle.max, reduce.min,
                reduce.Avg(), reduce.max);
  }

  bench::PrintSection("cross-application KL (all app pairs, run 0)");
  MinAvgMax map, shuffle, reduce;
  for (std::size_t a = 0; a < suite.size(); ++a) {
    for (std::size_t b = a + 1; b < suite.size(); ++b) {
      map.Add(SampleSymmetricKl(runs[a][0].map, runs[b][0].map));
      shuffle.Add(SampleSymmetricKl(runs[a][0].shuffle, runs[b][0].shuffle));
      reduce.Add(SampleSymmetricKl(runs[a][0].reduce, runs[b][0].reduce));
    }
  }
  std::printf("map     (min, avg, max) = (%.2f, %.2f, %.2f)\n", map.min,
              map.Avg(), map.max);
  std::printf("shuffle (min, avg, max) = (%.2f, %.2f, %.2f)\n", shuffle.min,
              shuffle.Avg(), shuffle.max);
  std::printf("reduce  (min, avg, max) = (%.2f, %.2f, %.2f)\n", reduce.min,
              reduce.Avg(), reduce.max);
  std::printf(
      "\npaper reference: same-app KL mostly < 4.4; cross-app map (7.3, 11.6,\n"
      "13.3), shuffle (11.3, 13.1, 13.5), reduce (9.1, 12.7, 13.3).\n");
  return 0;
}
