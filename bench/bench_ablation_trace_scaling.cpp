// Ablation: validating the trace-scaling extension (the paper's stated
// future work, Section VII) against ground truth.
//
// For each application we collect a trace on the SMALLEST dataset, scale
// it to the larger dataset sizes with ScaleProfile, replay the scaled
// trace, and compare against an *actual* testbed run of the larger
// dataset. If the scaling model (map count grows with data; per-reduce
// phase durations grow with per-reduce volume) is sound, the scaled
// replay should land within several percent of the real large-dataset
// execution.
#include <cstdio>

#include "bench_common.h"
#include "sched/fifo.h"
#include "trace/trace_scaling.h"

namespace simmr {
namespace {

double TestbedCompletion(const cluster::JobSpec& spec, std::uint64_t seed) {
  const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
  const auto result = cluster::RunTestbed(jobs, bench::PaperTestbed(seed));
  return result.log.jobs()[0].finish_time - result.log.jobs()[0].submit_time;
}

trace::JobProfile ProfileOf(const cluster::JobSpec& spec,
                            std::uint64_t seed) {
  const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
  const auto result = cluster::RunTestbed(jobs, bench::PaperTestbed(seed));
  return trace::BuildAllProfiles(result.log)[0];
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: trace scaling vs ground truth",
      "Scale each app's smallest-dataset trace to its larger datasets and\n"
      "compare the scaled replay against an actual testbed run of the\n"
      "larger dataset (the validation the paper's future-work proposal\n"
      "would need).");

  // Group the full suite by application: [0]=small, [1..]=larger.
  const auto suite = cluster::FullWorkloadSuite();
  sched::FifoPolicy fifo;

  std::printf("%-12s %-18s %10s %12s %12s %9s\n", "app", "target_dataset",
              "factor", "actual_s", "scaled_s", "err_%");
  double worst = 0.0;
  for (std::size_t base = 0; base < suite.size(); base += 3) {
    const cluster::JobSpec& small = suite[base];
    const trace::JobProfile small_profile = ProfileOf(small, seed);
    Rng rng(seed + base);
    for (std::size_t k = 1; k < 3; ++k) {
      const cluster::JobSpec& big = suite[base + k];
      const double factor = big.input_mb / small.input_mb;
      trace::ScalingParams params;
      params.data_factor = factor;
      params.reduce_factor =
          static_cast<double>(big.num_reduces) / small.num_reduces;
      trace::WorkloadTrace w(1);
      w[0].profile = trace::ScaleProfile(small_profile, params, rng);
      const double scaled =
          core::Replay(w, fifo, bench::PaperSimConfig()).jobs[0]
              .CompletionTime();
      const double actual = TestbedCompletion(big, seed + 1000 + base + k);
      const double err = bench::ErrorPercent(scaled, actual);
      worst = std::max(worst, std::abs(err));
      std::printf("%-12s %-18s %9.2fx %12.1f %12.1f %+8.1f%%\n",
                  big.app.name.c_str(), big.dataset_label.c_str(), factor,
                  actual, scaled, err);
    }
  }
  std::printf("\nworst |error|: %.1f%%\n", worst);
  std::printf(
      "expected: scaled replays within a few percent of the true large-\n"
      "dataset runs; residual error comes from shuffle-contention effects\n"
      "that do not scale linearly with per-reduce volume.\n");
  return 0;
}
