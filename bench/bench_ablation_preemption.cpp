// Ablation: the non-preemption "bump" (Section V-B) and how much of it
// filler-reduce preemption removes.
//
// The paper observes a bump in Figure 7(a) around moderate inter-arrival
// times: "the scheduler does not pre-empt tasks themselves. So, if a
// decision to allocate resources to a task has been made the slot is not
// available for allocation to the earlier deadline job which just
// arrived." We sweep the inter-arrival axis with plain MaxEDF and with
// the preemptive variant (extension beyond the paper) and report the
// utility of both, plus MinEDF for reference.
#include <cstdio>

#include "bench_common.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "sched/preemptive_maxedf.h"
#include "trace/workload.h"

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const int runs = static_cast<int>(bench::EnvOrDefault("SIMMR_BENCH_RUNS", 40));
  bench::PrintHeader(
      "Ablation: filler-reduce preemption",
      "MaxEDF vs preemptive MaxEDF (and MinEDF for reference) on the\n"
      "testbed workload at deadline factor 1.5. Preemption should shave\n"
      "the non-preemption bump at moderate inter-arrival times.");
  std::printf("averaging %d randomized workloads per point\n", runs);

  const auto& validation = bench::RunValidationSuiteOnce(seed);
  // Reuse the 6 profiled apps; the bump mechanism only needs filler
  // hoarding, which the validation jobs (128+ reduces vs 64 slots) have.
  const auto solos = core::MeasureSoloCompletions(validation.profiles,
                                                  bench::PaperSimConfig());

  std::printf("%16s %14s %14s %14s\n", "interarrival_s", "MaxEDF",
              "MaxEDF-P", "MinEDF");
  for (const double gap : {1.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 10000.0}) {
    double plain_u = 0.0, preempt_u = 0.0, min_u = 0.0;
    for (int r = 0; r < runs; ++r) {
      Rng rng(seed + 4099 * r);
      trace::WorkloadParams params;
      params.num_jobs = 18;
      params.mean_interarrival_s = gap;
      params.deadline_factor = 1.5;
      const auto workload =
          trace::MakeWorkload(validation.profiles, solos, params, rng);

      core::SimConfig plain_cfg = bench::PaperSimConfig();
      sched::MaxEdfPolicy plain;
      plain_u += core::RelativeDeadlineExceeded(
          core::Replay(workload, plain, plain_cfg).jobs);

      core::SimConfig preempt_cfg = bench::PaperSimConfig();
      preempt_cfg.allow_filler_preemption = true;
      sched::PreemptiveMaxEdfPolicy preemptive;
      preempt_u += core::RelativeDeadlineExceeded(
          core::Replay(workload, preemptive, preempt_cfg).jobs);

      sched::MinEdfPolicy minedf(plain_cfg.map_slots, plain_cfg.reduce_slots);
      min_u += core::RelativeDeadlineExceeded(
          core::Replay(workload, minedf, plain_cfg).jobs);
    }
    std::printf("%16.0f %14.3f %14.3f %14.3f\n", gap, plain_u / runs,
                preempt_u / runs, min_u / runs);
  }
  std::printf(
      "\nexpected: MaxEDF-P at or below MaxEDF everywhere, with the largest\n"
      "relief where reduce-slot hoarding binds (moderate inter-arrivals).\n");
  return 0;
}
