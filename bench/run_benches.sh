#!/bin/sh
# Runs every bench binary and aggregates their telemetry into one JSON
# document.
#
# Each bench binary prints its exhibit as text and ends with one
# machine-readable "simmr.telemetry.v1" line (see bench_common.cpp),
# optionally carrying a "stats" object of median/MAD/bootstrap-CI
# summaries. This harness runs them all, keeps the full text output per
# binary, and folds the telemetry lines plus a host fingerprint into
# BENCH_<tag>.json:
#
#   {"schema":"simmr.benchsuite.v2","tag":"...","host":{...},
#    "runs":[<telemetry>, ...]}
#
# simmr_analyze perf-diff compares two such documents (it still accepts
# the v1 layout this script used to emit, minus the fingerprint).
#
# Usage: bench/run_benches.sh [tag]
#   tag             output label (default: local)
# Environment:
#   BUILD_DIR       build tree holding bench/ binaries (default: build)
#   OUT_DIR         where logs and BENCH_<tag>.json land (default:
#                   $BUILD_DIR/bench_results)
#   SIMMR_BENCH_RUNS / SIMMR_BENCH_SEED pass through to the binaries.
set -eu

TAG="${1:-local}"
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench_results}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (configure and build first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
OUT_JSON="$OUT_DIR/BENCH_${TAG}.json"
TELEMETRY_TMP="$OUT_DIR/.telemetry_lines.$$"
: > "$TELEMETRY_TMP"
trap 'rm -f "$TELEMETRY_TMP"' EXIT

# Host fingerprint: where these numbers came from. Values are stripped of
# JSON-hostile characters rather than escaped — they are labels, not data.
json_safe() { printf '%s' "$1" | tr -d '"\\\n' ; }
CPU_MODEL=$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null | head -n 1)
[ -n "$CPU_MODEL" ] || CPU_MODEL=unknown
CORES=$(nproc 2>/dev/null || echo 0)
COMMIT=$(git -C "$(dirname "$0")" rev-parse --short HEAD 2>/dev/null || echo unknown)
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n 1)
[ -n "$BUILD_TYPE" ] || BUILD_TYPE=unknown
CXX_FLAGS=$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n 1)

ran=0
failed=0
for bin in "$BENCH_DIR"/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  log="$OUT_DIR/$name.txt"
  printf '== %s\n' "$name"
  # google-benchmark binaries do not emit telemetry; give them their
  # tabular format but keep going on either kind.
  if "$bin" > "$log" 2>&1; then
    ran=$((ran + 1))
  else
    status=$?
    failed=$((failed + 1))
    printf '   FAILED (exit %s), log kept at %s\n' "$status" "$log" >&2
    continue
  fi
  # The telemetry line is the last simmr.telemetry.v1 object on stdout.
  line=$(grep '"schema":"simmr.telemetry.v1"' "$log" | tail -n 1 || true)
  if [ -n "$line" ]; then
    printf '%s\n' "$line" >> "$TELEMETRY_TMP"
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries ran from $BENCH_DIR" >&2
  exit 1
fi

{
  printf '{"schema":"simmr.benchsuite.v2","tag":"%s"' "$(json_safe "$TAG")"
  printf ',"host":{"cpu_model":"%s","cores":%s,"commit":"%s","build_type":"%s","cxx_flags":"%s"}' \
    "$(json_safe "$CPU_MODEL")" "$CORES" "$(json_safe "$COMMIT")" \
    "$(json_safe "$BUILD_TYPE")" "$(json_safe "$CXX_FLAGS")"
  printf ',"binaries_run":%d,"binaries_failed":%d,"runs":[' "$ran" "$failed"
  first=1
  while IFS= read -r line; do
    [ "$first" -eq 1 ] || printf ','
    first=0
    printf '\n%s' "$line"
  done < "$TELEMETRY_TMP"
  printf '\n]}\n'
} > "$OUT_JSON"

echo "wrote $OUT_JSON ($(grep -c simmr.telemetry.v1 "$OUT_JSON" || true) telemetry records, $failed failures)"
[ "$failed" -eq 0 ]
