#!/bin/sh
# Runs every bench binary and aggregates their telemetry into one JSON
# document.
#
# Each bench binary prints its exhibit as text and ends with one
# machine-readable "simmr.telemetry.v1" line (see bench_common.cpp). This
# harness runs them all, keeps the full text output per binary, and folds
# the telemetry lines into BENCH_<tag>.json:
#
#   {"schema":"simmr.benchsuite.v1","tag":"...","runs":[<telemetry>, ...]}
#
# Usage: bench/run_benches.sh [tag]
#   tag             output label (default: local)
# Environment:
#   BUILD_DIR       build tree holding bench/ binaries (default: build)
#   OUT_DIR         where logs and BENCH_<tag>.json land (default:
#                   $BUILD_DIR/bench_results)
#   SIMMR_BENCH_RUNS / SIMMR_BENCH_SEED pass through to the binaries.
set -eu

TAG="${1:-local}"
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench_results}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (configure and build first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
OUT_JSON="$OUT_DIR/BENCH_${TAG}.json"
TELEMETRY_TMP="$OUT_DIR/.telemetry_lines.$$"
: > "$TELEMETRY_TMP"
trap 'rm -f "$TELEMETRY_TMP"' EXIT

ran=0
failed=0
for bin in "$BENCH_DIR"/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  log="$OUT_DIR/$name.txt"
  printf '== %s\n' "$name"
  # google-benchmark binaries do not emit telemetry; give them their
  # tabular format but keep going on either kind.
  if "$bin" > "$log" 2>&1; then
    ran=$((ran + 1))
  else
    failed=$((failed + 1))
    printf '   FAILED (exit %s), log kept at %s\n' "$?" "$log" >&2
    continue
  fi
  # The telemetry line is the last simmr.telemetry.v1 object on stdout.
  line=$(grep '"schema":"simmr.telemetry.v1"' "$log" | tail -n 1 || true)
  if [ -n "$line" ]; then
    printf '%s\n' "$line" >> "$TELEMETRY_TMP"
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries ran from $BENCH_DIR" >&2
  exit 1
fi

{
  printf '{"schema":"simmr.benchsuite.v1","tag":"%s","binaries_run":%d,"binaries_failed":%d,"runs":[' \
    "$TAG" "$ran" "$failed"
  first=1
  while IFS= read -r line; do
    [ "$first" -eq 1 ] || printf ','
    first=0
    printf '\n%s' "$line"
  done < "$TELEMETRY_TMP"
  printf '\n]}\n'
} > "$OUT_JSON"

echo "wrote $OUT_JSON ($(grep -c simmr.telemetry.v1 "$OUT_JSON" || true) telemetry records, $failed failures)"
[ "$failed" -eq 0 ]
