// Interleaved time-series-sampler overhead bench (acceptance gate for
// src/obs/timeseries.h, mirroring bench_eventlog_overhead).
//
// Measures the wall-clock cost `--timeseries-out` adds to a replay,
// against two baselines run interleaved with it (A/B/C per round,
// medians over SIMMR_BENCH_RUNS rounds, so thermal drift and frequency
// steps hit all arms alike):
//   bare     - no observer attached: the devirtualized engine fast path
//              every tool runs when live observability is off.
//   noop     - an observer whose callbacks do nothing: the hook
//              plumbing any attached sink pays.
//   sampling - a bare TimeSeriesSampler at the default window (60
//              simulated seconds) wired as the SimConfig observer, the
//              way ObservabilitySinks attaches it.
//
// Two scenarios bound the answer, as in the event-log bench: a
// synthetic FIFO replay is the worst case (the baseline engine does
// the least work per event), and a MinEDF-with-deadlines replay is the
// realistic ARIA-style case the sampling budget is set against:
// < 5% over bare at the default window. The sampler is sim-time-only
// (no wall clock, no I/O during the run) and window closes push a
// plain record — JSONL serialization happens in WriteFile(), after the
// timed region in real tools and excluded here too.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "obs/timeseries.h"
#include "sched/fifo.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::bench {
namespace {

struct NoopObserver final : obs::SimObserver {
  void OnEventDequeue(SimTime, const char*, std::size_t) override {}
  void OnJobArrival(SimTime, std::int32_t, std::string_view,
                    double) override {}
  void OnJobCompletion(SimTime, std::int32_t) override {}
  void OnTaskLaunch(SimTime, std::int32_t, obs::TaskKind,
                    std::int32_t) override {}
  void OnTaskPhaseTransition(SimTime, std::int32_t, obs::TaskKind,
                             std::int32_t, const char*) override {}
  void OnTaskCompletion(SimTime, std::int32_t, obs::TaskKind, std::int32_t,
                        const obs::TaskTiming&, bool) override {}
  void OnSchedulerDecision(SimTime, obs::TaskKind, std::int32_t) override {}
};

trace::WorkloadTrace MakeWorkload(int num_jobs, std::uint64_t seed,
                                  bool deadlines) {
  Rng rng(seed);
  trace::WorkloadTrace workload;
  for (int i = 0; i < num_jobs; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "bench";
    spec.num_maps = 100;
    spec.num_reduces = 20;
    spec.first_wave_size = 10;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 4.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 8.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 5.0);
    trace::TraceJob job;
    job.profile = trace::SynthesizeProfile(spec, rng);
    job.arrival = 20.0 * i;
    if (deadlines) job.deadline = job.arrival + 400.0 + rng.NextBounded(400);
    workload.push_back(std::move(job));
  }
  return workload;
}

double ReplayOnceSeconds(const core::SimConfig& cfg,
                         const trace::WorkloadTrace& w,
                         core::SchedulerPolicy& policy) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::Replay(w, policy, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  AddTelemetryEvents(result.events_processed);
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ScenarioResult {
  double overhead = 0.0;  // sampling vs bare, fractional
};

/// Median of per-round paired ratios (sampling_i - bare_i) / bare_i.
/// Each round runs the arms back to back, so pairing cancels the
/// between-round drift (frequency steps, page-cache state) that makes a
/// ratio of independent medians flap run to run.
double PairedOverhead(const std::vector<double>& bare,
                      const std::vector<double>& sampling) {
  std::vector<double> ratios;
  for (std::size_t i = 0; i < bare.size() && i < sampling.size(); ++i)
    ratios.push_back((sampling[i] - bare[i]) / bare[i]);
  return Summarize(ratios).median;
}

template <class MakePolicy>
ScenarioResult Scenario(const char* label, const char* stat_prefix,
                        const trace::WorkloadTrace& workload, int rounds,
                        MakePolicy make_policy) {
  core::SimConfig bare;
  bare.map_slots = 64;
  bare.reduce_slots = 64;

  obs::TimeSeriesSampler::Options opt;
  opt.map_slots = 64;
  opt.reduce_slots = 64;

  // One untimed pass per arm warms caches and the branch predictor.
  {
    auto p = make_policy();
    ReplayOnceSeconds(bare, workload, *p);
    obs::TimeSeriesSampler sampler(opt);
    core::SimConfig cfg = bare;
    cfg.observer = &sampler;
    auto p2 = make_policy();
    ReplayOnceSeconds(cfg, workload, *p2);
  }

  std::vector<double> t_bare, t_noop, t_sampling;
  std::size_t windows_per_replay = 0;
  std::uint64_t events_per_replay = 0;
  for (int i = 0; i < rounds; ++i) {
    {
      auto p = make_policy();
      t_bare.push_back(ReplayOnceSeconds(bare, workload, *p));
    }
    {
      NoopObserver noop;
      core::SimConfig cfg = bare;
      cfg.observer = &noop;
      auto p = make_policy();
      t_noop.push_back(ReplayOnceSeconds(cfg, workload, *p));
    }
    {
      // Fresh sampler per round, like every tool run gets.
      obs::TimeSeriesSampler sampler(opt);
      core::SimConfig cfg = bare;
      cfg.observer = &sampler;
      auto p = make_policy();
      t_sampling.push_back(ReplayOnceSeconds(cfg, workload, *p));
      sampler.Finish();
      windows_per_replay = sampler.window_count();
      events_per_replay = sampler.events_seen();
    }
  }

  const SampleStats b = Summarize(t_bare);
  const SampleStats n = Summarize(t_noop);
  const SampleStats s = Summarize(t_sampling);
  RecordStat(std::string(stat_prefix) + "_bare_replay_seconds", b);
  RecordStat(std::string(stat_prefix) + "_sampling_replay_seconds", s);

  PrintSection(label);
  std::printf("  bare engine  %8.2f ms  (MAD %.2f, CI95 [%.2f, %.2f])\n",
              1e3 * b.median, 1e3 * b.mad, 1e3 * b.ci95_lo, 1e3 * b.ci95_hi);
  std::printf("  noop observer%8.2f ms  (+%.1f%% hook plumbing)\n",
              1e3 * n.median, 100.0 * (n.median - b.median) / b.median);
  std::printf(
      "  sampling     %8.2f ms  (MAD %.2f, CI95 [%.2f, %.2f])  +%.1f%% "
      "(%zu windows, %llu events observed/replay)\n",
      1e3 * s.median, 1e3 * s.mad, 1e3 * s.ci95_lo, 1e3 * s.ci95_hi,
      100.0 * (s.median - b.median) / b.median, windows_per_replay,
      static_cast<unsigned long long>(events_per_replay));
  const bool ci_separated =
      s.ci95_lo > b.ci95_hi || s.ci95_hi < b.ci95_lo;
  std::printf("  sampling-vs-bare CIs %s\n",
              ci_separated ? "separated (sampling cost is resolvable)"
                           : "overlap (sampling cost below measurement noise)");
  const double paired = PairedOverhead(t_bare, t_sampling);
  const double marginal = PairedOverhead(t_noop, t_sampling);
  std::printf(
      "  paired per-round overhead (median)  +%.1f%% vs bare, +%.1f%% vs "
      "noop (sampling work beyond hook plumbing)\n",
      100.0 * paired, 100.0 * marginal);
  return ScenarioResult{paired};
}

int Main() {
  PrintHeader("timeseries-overhead",
              "Interleaved cost of the sim-time TimeSeriesSampler vs bare "
              "and noop-observer replays, default 60 s window");
  const int rounds = static_cast<int>(EnvOrDefault("SIMMR_BENCH_RUNS", 30));
  const std::uint64_t seed = EnvOrDefault("SIMMR_BENCH_SEED", 42);

  const auto fifo_workload = MakeWorkload(1000, seed, /*deadlines=*/false);
  Scenario("fifo/synthetic 1000 jobs (worst case: lightest baseline)",
           "worstcase", fifo_workload, rounds,
           [] { return std::make_unique<sched::FifoPolicy>(); });

  const auto edf_workload = MakeWorkload(1000, seed, /*deadlines=*/true);
  const ScenarioResult realistic = Scenario(
      "minedf/deadlines 1000 jobs (realistic ARIA-style run)", "realistic",
      edf_workload, rounds,
      [] { return std::make_unique<sched::MinEdfPolicy>(64, 64); });

  std::printf(
      "\n  design target (realistic scenario): < 5%% vs bare at the default "
      "window — measured +%.1f%%%s\n",
      100.0 * realistic.overhead,
      realistic.overhead < 0.05 ? " (within target)" : "");
  return 0;
}

}  // namespace
}  // namespace simmr::bench

int main() { return simmr::bench::Main(); }
