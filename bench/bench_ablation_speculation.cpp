// Ablation: speculative execution — examining the paper's configuration
// choice. Section IV-B: "We disabled speculation as it did not lead to
// any significant improvements."
//
// We run the validation suite with speculation off and on under two
// regimes: the paper-like homogeneous cluster (mild duration noise, where
// the quote should hold) and a straggler-prone cluster (heterogeneous
// nodes + heavy-tailed task noise, where speculation is known to help).
#include <cstdio>

#include "bench_common.h"

namespace simmr {
namespace {

double RunSuite(bool speculation, double node_sigma, double extra_map_sigma,
                std::uint64_t seed, double* backup_fraction) {
  std::vector<cluster::SubmittedJob> jobs;
  double t = 0.0;
  int total_maps = 0;
  for (auto spec : cluster::ValidationSuite()) {
    spec.app.map_sigma += extra_map_sigma;
    jobs.push_back({spec, t, 0.0});
    t += 10000.0;
    total_maps += spec.NumMaps(64.0);
  }
  cluster::TestbedOptions opts = bench::PaperTestbed(seed);
  opts.config.speculative_execution = speculation;
  opts.config.node_speed_sigma = node_sigma;
  const auto result = cluster::RunTestbed(jobs, opts);
  double sum = 0.0;
  int attempts = 0;
  for (const auto& j : result.log.jobs())
    sum += j.finish_time - j.submit_time;
  for (const auto& task : result.log.tasks()) {
    if (task.kind == cluster::TaskKind::kMap) ++attempts;
  }
  if (backup_fraction != nullptr) {
    *backup_fraction =
        static_cast<double>(attempts - total_maps) / total_maps;
  }
  return sum;  // total completion seconds across the suite
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: speculative execution",
      "Section IV-B disabled speculation 'as it did not lead to any\n"
      "significant improvements'. On the paper-like homogeneous cluster\n"
      "that should reproduce; on a straggler-prone cluster speculation\n"
      "should win noticeably.");

  std::printf("%-36s %14s %14s %9s %14s\n", "regime", "spec_off_s",
              "spec_on_s", "gain_%", "backup_frac");
  struct Regime {
    const char* name;
    double node_sigma;
    double extra_map_sigma;
  };
  for (const Regime& regime :
       {Regime{"paper-like (homogeneous, mild noise)", 0.03, 0.0},
        Regime{"straggler-prone (hetero + heavy tail)", 0.20, 0.5}}) {
    const double off = RunSuite(false, regime.node_sigma,
                                regime.extra_map_sigma, seed, nullptr);
    double backup_fraction = 0.0;
    const double on = RunSuite(true, regime.node_sigma,
                               regime.extra_map_sigma, seed,
                               &backup_fraction);
    std::printf("%-36s %14.1f %14.1f %+8.1f%% %13.1f%%\n", regime.name, off,
                on, 100.0 * (off - on) / off, 100.0 * backup_fraction);
  }
  std::printf(
      "\nexpected: negligible gain in the paper-like regime (the paper's\n"
      "rationale for disabling it) and a clear gain with stragglers.\n");
  return 0;
}
