// Figure 6: simulation wall-clock time vs number of simulated jobs, SimMR
// vs Mumak, on a 1148-job trace (the paper's 6 months of cluster history,
// ~152 serial hours of work). Expected shape: both grow roughly linearly;
// SimMR is >= 2 orders of magnitude faster at full scale (paper: 1.5 s vs
// 680 s, >450x) because Mumak simulates every TaskTracker heartbeat.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "mumak/mumak_sim.h"
#include "sched/fifo.h"
#include "trace/synthetic_tracegen.h"

namespace simmr {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  using Clock = std::chrono::steady_clock;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const int kTotalJobs =
      static_cast<int>(bench::EnvOrDefault("SIMMR_BENCH_FIG6_JOBS", 1148));

  bench::PrintHeader(
      "Figure 6",
      "Wall-clock simulation time vs number of jobs (SimMR vs Mumak) on a\n"
      "1148-job trace replayed back-to-back. Expect >= 2 orders of\n"
      "magnitude between the simulators at full scale.");

  // The paper's 6-month cluster history: 1148 jobs totalling ~152 serial
  // hours (~8 task-minutes per job on average), compacted back-to-back
  // "without inactivity periods". We synthesize a matching mix: mostly
  // small jobs with a moderate tail, each arriving as the previous job's
  // work drains.
  Rng rng(seed);
  std::vector<trace::JobProfile> profiles;
  profiles.reserve(kTotalJobs);
  {
    const LogNormalDist map_dur(std::log(14.0), 0.5);     // ~15 s maps
    const LogNormalDist shuffle_dur(std::log(5.0), 0.4);  // ~5 s shuffles
    const LogNormalDist reduce_dur(std::log(8.0), 0.5);   // ~9 s reduces
    for (int i = 0; i < kTotalJobs; ++i) {
      trace::SyntheticJobSpec spec;
      spec.app_name = "history";
      // Job-size mix: 60% small (<=20 maps), 30% medium, 10% large.
      const double pick = rng.NextDouble();
      if (pick < 0.6) {
        spec.num_maps = 1 + static_cast<int>(rng.NextBounded(12));
        spec.num_reduces = 1 + static_cast<int>(rng.NextBounded(2));
      } else if (pick < 0.9) {
        spec.num_maps = 20 + static_cast<int>(rng.NextBounded(40));
        spec.num_reduces = 4 + static_cast<int>(rng.NextBounded(12));
      } else {
        spec.num_maps = 100 + static_cast<int>(rng.NextBounded(100));
        spec.num_reduces = 16 + static_cast<int>(rng.NextBounded(48));
      }
      spec.first_wave_size = std::min(spec.num_reduces, 64);
      spec.map_duration = std::make_shared<LogNormalDist>(map_dur);
      spec.first_shuffle_duration = std::make_shared<LogNormalDist>(shuffle_dur);
      spec.typical_shuffle_duration =
          std::make_shared<LogNormalDist>(shuffle_dur);
      spec.reduce_duration = std::make_shared<LogNormalDist>(reduce_dur);
      profiles.push_back(trace::SynthesizeProfile(spec, rng));
    }
  }

  // Back-to-back arrivals: the next job arrives when the previous one's
  // estimated full-cluster completion elapses (no inactivity, bounded
  // queue) — matching how the paper compacted its history.
  std::vector<SimTime> arrivals(profiles.size());
  trace::WorkloadTrace workload(profiles.size());
  double serial_hours = 0.0;
  SimTime clock = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    arrivals[i] = clock;
    workload[i].profile = profiles[i];
    workload[i].arrival = clock;
    double map_work = 0.0, reduce_work = 0.0, shuffle_typ = 0.0;
    for (const double d : profiles[i].map_durations) map_work += d;
    for (const double d : profiles[i].reduce_durations) reduce_work += d;
    for (const double d : profiles[i].typical_shuffle_durations)
      shuffle_typ += d;
    serial_hours += (map_work + reduce_work + shuffle_typ) / 3600.0;
    const double est_completion =
        map_work / 64.0 + reduce_work / 64.0 + shuffle_typ / 64.0 + 20.0;
    clock += est_completion;
  }
  std::printf("trace: %zu jobs, %.0f serial hours of task work\n\n",
              profiles.size(), serial_hours);

  std::printf("%8s %14s %14s %12s %16s %16s\n", "jobs", "simmr_wall_s",
              "mumak_wall_s", "speedup", "simmr_events", "mumak_events");

  for (int n = kTotalJobs / 16; n <= kTotalJobs; n *= 2) {
    const int jobs = std::min(n, kTotalJobs);

    trace::WorkloadTrace prefix(workload.begin(), workload.begin() + jobs);
    sched::FifoPolicy fifo;
    const auto t0 = Clock::now();
    const auto sim = core::Replay(prefix, fifo, bench::PaperSimConfig());
    const double simmr_wall = Seconds(Clock::now() - t0);

    const auto rumen = mumak::RumenTrace::FromProfiles(
        {profiles.begin(), profiles.begin() + jobs},
        {arrivals.begin(), arrivals.begin() + jobs});
    mumak::MumakConfig mcfg;
    const auto t1 = Clock::now();
    const auto mres = mumak::RunMumak(rumen, mcfg);
    const double mumak_wall = Seconds(Clock::now() - t1);

    std::printf("%8d %14.4f %14.4f %11.0fx %16llu %16llu\n", jobs,
                simmr_wall, mumak_wall,
                simmr_wall > 0.0 ? mumak_wall / simmr_wall : 0.0,
                static_cast<unsigned long long>(sim.events_processed),
                static_cast<unsigned long long>(mres.events_processed));
    bench::AddTelemetryEvents(sim.events_processed + mres.events_processed);
    if (jobs == kTotalJobs) break;
  }
  // Statistical rigor for the headline number: repeated full-scale SimMR
  // replays through the bench harness (warmup + reps, median/MAD/bootstrap
  // CI) land in the exit telemetry's "stats" object, where the perf gate
  // (simmr_analyze perf-diff) reads noise-aware intervals instead of one
  // wall-clock sample.
  const int stat_runs = static_cast<int>(
      bench::EnvOrDefault("SIMMR_BENCH_FIG6_STAT_RUNS", 10));
  const bench::SampleStats full_replay =
      bench::MeasureRepeated(/*warmup=*/1, stat_runs, [&] {
        sched::FifoPolicy fifo;
        const auto sim =
            core::Replay(workload, fifo, bench::PaperSimConfig());
        bench::AddTelemetryEvents(sim.events_processed);
      });
  bench::RecordStat("simmr_full_replay_seconds", full_replay);
  std::printf(
      "\nsimmr full replay: median %.4f s (MAD %.4f, CI95 [%.4f, %.4f], "
      "n=%zu)\n",
      full_replay.median, full_replay.mad, full_replay.ci95_lo,
      full_replay.ci95_hi, full_replay.n);
  std::printf(
      "\npaper reference: SimMR 1.5 s vs Mumak 680 s at 1148 jobs (>450x).\n");
  return 0;
}
