// Figure 3: CDFs of map, shuffle and reduce task durations for WordCount
// under two different allocations (64x64 vs 32x32). The paper's point:
// the distributions are nearly identical, which is what makes a profile
// replayable under other allocations. We print both CDFs per phase plus
// the two-sample KS distance between them.
#include <cstdio>

#include "bench_common.h"
#include "simcore/stats.h"

namespace simmr {
namespace {

struct PhaseSamples {
  std::vector<double> map, shuffle, reduce;
};

PhaseSamples CollectPhases(const cluster::HistoryLog& log) {
  PhaseSamples s;
  const double maps_done = log.jobs()[0].maps_done_time;
  for (const auto& t : log.tasks()) {
    if (t.kind == cluster::TaskKind::kMap) {
      s.map.push_back(t.end - t.start);
    } else {
      // Typical-wave shuffles only, as in the paper's "duration of shuffle
      // phase" panel (first-wave shuffles overlap the map stage).
      if (t.start >= maps_done) s.shuffle.push_back(t.shuffle_end - t.start);
      s.reduce.push_back(t.end - t.shuffle_end);
    }
  }
  return s;
}

PhaseSamples RunWith(int slots, std::uint64_t seed) {
  cluster::TestbedOptions opts = bench::PaperTestbed(seed);
  opts.config.map_slots_per_node = 2;
  opts.config.reduce_slots_per_node = 2;
  opts.caps = [slots](const cluster::SubmittedJob&) {
    return cluster::SlotCaps{slots, slots};
  };
  const std::vector<cluster::SubmittedJob> jobs{
      {cluster::SectionTwoExample(), 0.0, 0.0}};
  return CollectPhases(cluster::RunTestbed(jobs, opts).log);
}

void PrintCdfPair(const char* phase, const std::vector<double>& a,
                  const std::vector<double>& b) {
  bench::PrintSection(std::string(phase) + " task duration CDF");
  if (a.empty() || b.empty()) {
    std::printf("(no samples)\n");
    return;
  }
  const Ecdf fa(a), fb(b);
  const double lo = std::min(fa.sorted().front(), fb.sorted().front());
  const double hi = std::max(fa.sorted().back(), fb.sorted().back());
  std::printf("%14s %12s %12s\n", "duration_s", "cdf_64x64", "cdf_32x32");
  for (int i = 0; i <= 20; ++i) {
    const double x = lo + (hi - lo) * i / 20.0;
    std::printf("%14.2f %12.3f %12.3f\n", x, fa(x), fb(x));
  }
  std::printf("two-sample KS distance: %.4f (small => same distribution)\n",
              KsTwoSample(a, b));
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Figure 3",
      "CDFs of WordCount map / shuffle / reduce task durations under 64x64\n"
      "vs 32x32 slots. The curves should nearly coincide: task durations\n"
      "are invariant to the resource allocation.");

  const auto a = RunWith(64, seed);
  const auto b = RunWith(32, seed);
  PrintCdfPair("map", a.map, b.map);
  PrintCdfPair("shuffle (typical waves)", a.shuffle, b.shuffle);
  PrintCdfPair("reduce", a.reduce, b.reduce);
  return 0;
}
