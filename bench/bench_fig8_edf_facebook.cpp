// Figure 8: MinEDF vs MaxEDF on the synthetic Facebook workload. The
// trace generator draws task durations from the paper's fitted LogNormal
// models — map ~ LN(9.9511, 1.6764) ms, reduce ~ LN(12.375, 1.6262) ms —
// and job sizes from the Zaharia et al. bucket mix. Deadline factors are
// 1.1, 1.5 and 2 (panels a-c). Expected shape: MinEDF significantly
// outperforms MaxEDF, consistent with the testbed-trace results.
//
// The Section V-C preamble (StatAssist-style model selection showing that
// LogNormal is the best KS fit among the candidate families) is also
// reproduced here.
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "simcore/parallel.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "simcore/dist_fit.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace simmr {
namespace {

void FitPreamble(std::uint64_t seed) {
  bench::PrintSection(
      "distribution fitting (Section V-C, StatAssist workflow)");
  Rng rng(seed);
  // "Facebook data": samples from the distribution the paper's CDF
  // digitization was fitted to; the selection must recover LogNormal.
  const LogNormalDist map_truth(9.9511, 1.6764);
  const auto sample = map_truth.SampleMany(rng, 20000);
  std::printf("%-14s %12s\n", "family", "KS distance");
  for (const auto& fit : FitBest(sample)) {
    std::printf("%-14s %12.4f   %s\n", fit.family.c_str(), fit.ks_statistic,
                fit.dist->Describe().c_str());
  }
  std::printf("paper reference: LN fits map CDF with KS 0.1056 and reduce\n"
              "CDF with KS 0.0451; LogNormal must rank first above.\n");
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  const int runs = static_cast<int>(bench::EnvOrDefault("SIMMR_BENCH_RUNS", 40));
  const int kJobs =
      static_cast<int>(bench::EnvOrDefault("SIMMR_BENCH_FIG8_JOBS", 50));

  bench::PrintHeader(
      "Figure 8",
      "MinEDF vs MaxEDF on the synthetic Facebook workload (LogNormal\n"
      "durations, Zaharia et al. job-size mix), relative deadline exceeded\n"
      "vs mean inter-arrival time, df in {1.1, 1.5, 2}.");
  std::printf("averaging %d randomized workloads per point "
              "(SIMMR_BENCH_RUNS; paper used 400)\n", runs);

  FitPreamble(seed);

  const core::SimConfig cfg = bench::PaperSimConfig();
  for (const double df : {1.1, 1.5, 2.0}) {
    bench::PrintSection("deadline factor = " + std::to_string(df));
    std::printf("%16s %18s %18s\n", "interarrival_s", "MaxEDF_utility",
                "MinEDF_utility");
    for (const double gap : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
      std::vector<double> min_us(runs, 0.0), max_us(runs, 0.0);
      ParallelFor(runs, [&](std::size_t r) {
        Rng rng(seed + 31 * r + static_cast<std::uint64_t>(df * 1000));
        trace::FacebookWorkloadModel model;
        const auto pool =
            trace::SynthesizeFacebookWorkload(model, kJobs, rng);
        const auto solos = core::MeasureSoloCompletions(pool, cfg);
        trace::WorkloadParams params;
        params.num_jobs = kJobs;
        params.mean_interarrival_s = gap;
        params.deadline_factor = df;
        params.permute = false;  // the pool itself is freshly random
        const auto workload = trace::MakeWorkload(pool, solos, params, rng);

        sched::MinEdfPolicy minedf(cfg.map_slots, cfg.reduce_slots);
        min_us[r] = core::RelativeDeadlineExceeded(
            core::Replay(workload, minedf, cfg).jobs);
        sched::MaxEdfPolicy maxedf;
        max_us[r] = core::RelativeDeadlineExceeded(
            core::Replay(workload, maxedf, cfg).jobs);
      });
      const double min_u = std::accumulate(min_us.begin(), min_us.end(), 0.0);
      const double max_u = std::accumulate(max_us.begin(), max_us.end(), 0.0);
      std::printf("%16.0f %18.3f %18.3f\n", gap, max_u / runs, min_u / runs);
    }
  }
  std::printf(
      "\npaper reference shape: MinEDF significantly outperforms MaxEDF,\n"
      "consistent with the testbed-trace simulations (Figure 7).\n");
  return 0;
}
