// Ablation: data locality and the profile abstraction.
//
// SimMR deliberately does not model data placement (Section VI contrasts
// it with MRPerf): locality effects are absorbed into profiled task
// durations. This bench turns locality ON in the testbed emulator and
// checks two things per application:
//   1. the cost of locality-blind vs locality-aware assignment (what the
//      real JobTracker's preference is worth), and
//   2. that SimMR's replay stays accurate either way — the durations in
//      the trace already contain whatever penalty was paid.
#include <cstdio>

#include "bench_common.h"
#include "sched/fifo.h"

namespace simmr {
namespace {

struct Row {
  double actual = 0.0;
  double replayed = 0.0;
};

Row RunOne(const cluster::JobSpec& spec, bool aware, std::uint64_t seed) {
  cluster::TestbedOptions opts = bench::PaperTestbed(seed);
  opts.config.model_locality = true;
  opts.config.locality_aware_scheduling = aware;
  opts.config.remote_read_mbps = 20.0;
  const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
  const auto testbed = cluster::RunTestbed(jobs, opts);
  Row row;
  row.actual =
      testbed.log.jobs()[0].finish_time - testbed.log.jobs()[0].submit_time;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = trace::BuildAllProfiles(testbed.log)[0];
  row.replayed =
      core::Replay(w, fifo, bench::PaperSimConfig()).jobs[0].CompletionTime();
  return row;
}

}  // namespace
}  // namespace simmr

int main() {
  using namespace simmr;
  const std::uint64_t seed = bench::EnvOrDefault("SIMMR_BENCH_SEED", 42);
  bench::PrintHeader(
      "Ablation: data locality",
      "Testbed runs with HDFS-style replica placement and remote-read\n"
      "penalties. Locality-aware assignment should be cheaper than blind\n"
      "assignment, and SimMR's replay should track both (the profile\n"
      "absorbs locality effects).");

  std::printf("%-12s %12s %9s %12s %9s %11s\n", "app", "aware_s",
              "err_%", "blind_s", "err_%", "blind_cost");
  for (const auto& spec : cluster::ValidationSuite()) {
    const Row aware = RunOne(spec, true, seed);
    const Row blind = RunOne(spec, false, seed);
    std::printf("%-12s %12.1f %+8.1f%% %12.1f %+8.1f%% %+10.1f%%\n",
                spec.app.name.c_str(), aware.actual,
                bench::ErrorPercent(aware.replayed, aware.actual),
                blind.actual,
                bench::ErrorPercent(blind.replayed, blind.actual),
                100.0 * (blind.actual - aware.actual) / aware.actual);
  }
  std::printf(
      "\nexpected: blind_cost positive for read-bound apps (misses pay\n"
      "network reads; compute-bound maps like WikiTrends barely notice) and\n"
      "replay errors of a few percent in both columns — locality never\nneeds to enter the simulator.\n");
  return 0;
}
