// In-process performance profiler for the simulator hot paths.
//
// The kernel work that open item 1 (the sharded 10M+ events/s engine)
// wants to speed up has to be observable before it is optimizable: this
// header gives the hot loops monotonic counters (events dispatched, heap
// pushes/pops, allocations via the counting hook in alloc_hook.cpp),
// high-water marks (event-queue depth, scheduler ready set), RAII scoped
// timers per component, and ParallelFor per-thread busy time — all
// aggregated process-wide and rendered as one "simmr.profile.v1" JSON
// document (docs/FORMATS.md).
//
// Cost model. The profiler is disarmed by default; every hot hook is an
// inline relaxed load of a constant-initialized atomic plus a predictable
// branch — the same budget as the simulators' null-observer checks. Tools
// arm it only when --profile-out is set (tool_common.cpp). Building with
// -DSIMMR_PROFILER=OFF defines SIMMR_PROF_COMPILED=0 and compiles every
// hook to literally nothing for the true-zero-cost path.
//
// prof sits below simcore in the layering: it depends only on the
// standard library, so EventQueue/SimKernel/ParallelFor may include it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#ifndef SIMMR_PROF_COMPILED
#define SIMMR_PROF_COMPILED 1
#endif

namespace simmr::prof {

/// Monotonic counter slots. Fixed at compile time so the hot path is one
/// array-indexed atomic add, no lookup.
enum class Counter : int {
  kEventsDispatched = 0,  // SimKernel::DrainUntil pops
  kHeapPushes,            // EventQueue::Push
  kHeapPops,              // EventQueue::Pop
  kAllocations,           // global operator new (alloc_hook.cpp)
  kExploreExecutions,     // model checker: schedules executed (mc/explorer)
  kExploreChoicePoints,   // model checker: tie points encountered
  kExplorePruned,         // model checker: transitions skipped by sleep sets
  kCount_,
};

/// High-water-mark slots (atomic max).
enum class HighWater : int {
  kQueueDepth = 0,   // pending events after a push
  kReadySet,         // engine job queue length
  kExploreFrontier,  // model checker: deepest DFS stack (mc/explorer)
  kCount_,
};

/// Stable JSON key for a counter slot.
const char* CounterName(Counter counter);
/// Stable JSON key for a high-water slot.
const char* HighWaterName(HighWater mark);

namespace internal {

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount_);
inline constexpr int kNumHighWater = static_cast<int>(HighWater::kCount_);

// Constant-initialized globals: the disarmed hot path needs no
// function-local-static guard, only a relaxed load and a branch.
inline std::atomic<bool> g_armed{false};
inline std::atomic<std::uint64_t> g_counters[kNumCounters]{};
inline std::atomic<std::uint64_t> g_high_water[kNumHighWater]{};

// Cold-path aggregation (mutex-protected, profiler.cpp).
void AddScopeSample(const char* name, double seconds);
void AddThreadBusy(const char* pool, double seconds);

}  // namespace internal

/// True while a run is being profiled.
inline bool Armed() {
#if SIMMR_PROF_COMPILED
  return internal::g_armed.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Adds to a counter slot. No-op while disarmed.
inline void Count(Counter counter, std::uint64_t delta = 1) {
#if SIMMR_PROF_COMPILED
  if (Armed())
    internal::g_counters[static_cast<int>(counter)].fetch_add(
        delta, std::memory_order_relaxed);
#else
  (void)counter;
  (void)delta;
#endif
}

/// Raises a high-water mark to at least `value`. No-op while disarmed.
inline void RaiseHighWater(HighWater mark, std::uint64_t value) {
#if SIMMR_PROF_COMPILED
  if (!Armed()) return;
  auto& slot = internal::g_high_water[static_cast<int>(mark)];
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value && !slot.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
#else
  (void)mark;
  (void)value;
#endif
}

/// Records one worker's busy wall time in a named pool (ParallelFor calls
/// this once per worker). No-op while disarmed.
inline void RecordThreadBusy(const char* pool, double busy_seconds) {
#if SIMMR_PROF_COMPILED
  if (Armed()) internal::AddThreadBusy(pool, busy_seconds);
#else
  (void)pool;
  (void)busy_seconds;
#endif
}

/// Starts collecting. Counters continue from their current values; call
/// Reset() first for a fresh profile.
void Arm();
/// Stops collecting (hooks return to the single-branch disarmed path).
void Disarm();
/// Zeroes every counter, high-water mark, scope and thread record.
void Reset();

/// Current value of a counter / high-water slot (readable while armed).
std::uint64_t Value(Counter counter);
std::uint64_t HighWaterValue(HighWater mark);

/// RAII wall-clock timer aggregated under `name` (calls, total/min/max
/// seconds). `name` must outlive the profile (string literals only).
/// Arm state is sampled at construction so a scope spanning Disarm still
/// records consistently.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) : name_(name), active_(Armed()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
#if SIMMR_PROF_COMPILED
    if (active_)
      internal::AddScopeSample(
          name_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

/// Renders the collected profile as a "simmr.profile.v1" JSON document.
std::string ToJson(const std::string& tool, const std::string& scenario);

/// Writes ToJson() to `path`. Throws std::runtime_error on I/O failure.
void WriteFile(const std::string& path, const std::string& tool,
               const std::string& scenario);

}  // namespace simmr::prof
