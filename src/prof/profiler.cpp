#include "prof/profiler.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace simmr::prof {
namespace {

struct ScopeAgg {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

// Cold-path state: scoped-timer aggregates and per-pool thread busy
// records. Guarded by one mutex — scopes close at most a handful of times
// per run (per backend pass / ParallelFor worker), never per event.
struct ColdState {
  std::mutex mu;
  std::map<std::string, ScopeAgg> scopes;
  std::map<std::string, std::vector<double>> thread_busy;
};

ColdState& Cold() {
  static ColdState state;
  return state;
}

// prof sits below obs and cannot use obs/json.h; these are the two
// primitives the profile document needs.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kEventsDispatched:
      return "events_dispatched";
    case Counter::kHeapPushes:
      return "heap_pushes";
    case Counter::kHeapPops:
      return "heap_pops";
    case Counter::kAllocations:
      return "allocations";
    case Counter::kExploreExecutions:
      return "explore_executions";
    case Counter::kExploreChoicePoints:
      return "explore_choice_points";
    case Counter::kExplorePruned:
      return "explore_pruned";
    case Counter::kCount_:
      break;
  }
  return "unknown";
}

const char* HighWaterName(HighWater mark) {
  switch (mark) {
    case HighWater::kQueueDepth:
      return "queue_depth";
    case HighWater::kReadySet:
      return "ready_set";
    case HighWater::kExploreFrontier:
      return "explore_frontier";
    case HighWater::kCount_:
      break;
  }
  return "unknown";
}

namespace internal {

void AddScopeSample(const char* name, double seconds) {
  ColdState& cold = Cold();
  const std::lock_guard<std::mutex> lock(cold.mu);
  ScopeAgg& agg = cold.scopes[name];
  if (agg.calls == 0 || seconds < agg.min_seconds) agg.min_seconds = seconds;
  if (agg.calls == 0 || seconds > agg.max_seconds) agg.max_seconds = seconds;
  agg.calls += 1;
  agg.total_seconds += seconds;
}

void AddThreadBusy(const char* pool, double seconds) {
  ColdState& cold = Cold();
  const std::lock_guard<std::mutex> lock(cold.mu);
  cold.thread_busy[pool].push_back(seconds);
}

}  // namespace internal

void Arm() { internal::g_armed.store(true, std::memory_order_relaxed); }

void Disarm() { internal::g_armed.store(false, std::memory_order_relaxed); }

void Reset() {
  for (auto& counter : internal::g_counters)
    counter.store(0, std::memory_order_relaxed);
  for (auto& mark : internal::g_high_water)
    mark.store(0, std::memory_order_relaxed);
  ColdState& cold = Cold();
  const std::lock_guard<std::mutex> lock(cold.mu);
  cold.scopes.clear();
  cold.thread_busy.clear();
}

std::uint64_t Value(Counter counter) {
  return internal::g_counters[static_cast<int>(counter)].load(
      std::memory_order_relaxed);
}

std::uint64_t HighWaterValue(HighWater mark) {
  return internal::g_high_water[static_cast<int>(mark)].load(
      std::memory_order_relaxed);
}

std::string ToJson(const std::string& tool, const std::string& scenario) {
  std::string out = "{\"schema\":\"simmr.profile.v1\"";
  out += ",\"tool\":\"" + JsonEscape(tool) + "\"";
  out += ",\"scenario\":\"" + JsonEscape(scenario) + "\"";
  out += ",\"compiled\":" + std::string(SIMMR_PROF_COMPILED ? "true"
                                                            : "false");

  out += ",\"counters\":{";
  for (int i = 0; i < internal::kNumCounters; ++i) {
    if (i > 0) out += ",";
    out += "\"" + std::string(CounterName(static_cast<Counter>(i))) +
           "\":" + std::to_string(Value(static_cast<Counter>(i)));
  }
  out += "}";

  out += ",\"high_water\":{";
  for (int i = 0; i < internal::kNumHighWater; ++i) {
    if (i > 0) out += ",";
    out += "\"" + std::string(HighWaterName(static_cast<HighWater>(i))) +
           "\":" + std::to_string(HighWaterValue(static_cast<HighWater>(i)));
  }
  out += "}";

  ColdState& cold = Cold();
  const std::lock_guard<std::mutex> lock(cold.mu);
  out += ",\"scopes\":[";
  bool first = true;
  for (const auto& [name, agg] : cold.scopes) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) +
           "\",\"calls\":" + std::to_string(agg.calls) +
           ",\"total_seconds\":" + JsonDouble(agg.total_seconds) +
           ",\"min_seconds\":" + JsonDouble(agg.min_seconds) +
           ",\"max_seconds\":" + JsonDouble(agg.max_seconds) + "}";
  }
  out += "]";

  out += ",\"thread_pools\":[";
  first = true;
  for (const auto& [pool, samples] : cold.thread_busy) {
    if (!first) out += ",";
    first = false;
    double total = 0.0;
    for (const double s : samples) total += s;
    out += "{\"name\":\"" + JsonEscape(pool) +
           "\",\"workers\":" + std::to_string(samples.size()) +
           ",\"busy_seconds_total\":" + JsonDouble(total) +
           ",\"busy_seconds\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonDouble(samples[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void WriteFile(const std::string& path, const std::string& tool,
               const std::string& scenario) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("profiler: cannot write " + path);
  out << ToJson(tool, scenario) << "\n";
  if (!out) throw std::runtime_error("profiler: write failed for " + path);
}

}  // namespace simmr::prof
