// Global operator new/delete overrides that count heap allocations into
// the profiler's kAllocations slot while it is armed.
//
// Built as an OBJECT library (prof_alloc_hook) and linked only into the
// tools/ and bench/ binaries: a strong operator new in a static archive
// would never be extracted (the symbol already resolves inside
// libstdc++), so object-level linkage is the only reliable way in. Tests
// deliberately do not link it — gtest's allocation churn is not a
// simulator metric.
//
// Disabled under the sanitizers (they interpose the allocator themselves)
// and under -DSIMMR_PROFILER=OFF.
#include "prof/profiler.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SIMMR_PROF_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SIMMR_PROF_ALLOC_HOOK 0
#endif
#endif
#ifndef SIMMR_PROF_ALLOC_HOOK
#define SIMMR_PROF_ALLOC_HOOK SIMMR_PROF_COMPILED
#endif

#if SIMMR_PROF_ALLOC_HOOK

#include <cstdlib>
#include <new>

namespace {

void* CountedAlloc(std::size_t size) {
  simmr::prof::Count(simmr::prof::Counter::kAllocations);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::align_val_t alignment) {
  simmr::prof::Count(simmr::prof::Counter::kAllocations);
  const std::size_t align = static_cast<std::size_t>(alignment);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align))
    return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAlignedAlloc(size, alignment);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // SIMMR_PROF_ALLOC_HOOK
