#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cluster/testbed_scheduler.h"
#include "simcore/distributions.h"
#include "simcore/event_names.h"
#include "simcore/log.h"
#include "simcore/sim_kernel.h"

namespace simmr::cluster {
namespace {

// The testbed's event vocabulary is drawn straight from the canonical
// simmr::SimEventKind table, so its dequeue names match the other
// simulators' durable logs by construction. Operand use per kind:
//   kJobArrival    a = job index in the submission list
//   kHeartbeat     a = node id (regular, self-rearming)
//   kOobHeartbeat  a = node id (out-of-band, fired on task completion)
//   kMapDataReady  a = job id, b = map task index (exact map end time)
//   kReduceDone    a = job id, b = reduce task index (exact reduce end)
//   kFetchCheck    b = generation stamp of the shuffle schedule
using EventKind = SimEventKind;

struct Event {
  EventKind kind;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// One attempt occupying a slot on a node. Map attempts carry their own
/// timestamps and failure flag because speculation allows two concurrent
/// attempts of the same map task; reduce attempts have at most one in
/// flight, so their state stays on the ReduceTaskRt.
struct NodeTask {
  JobId job = kInvalidJob;
  TaskKind kind = TaskKind::kMap;
  TaskIndex index = kInvalidTask;
  bool speculative = false;  // maps only
  bool failing = false;      // maps only
  SimTime start = 0.0;       // maps only
  SimTime end = 0.0;         // maps only
};

struct NodeState {
  double speed = 1.0;
  int rack = 0;
  SlotPool slots;
  // Attempts currently occupying slots on this node, reported on heartbeat.
  std::vector<NodeTask> running;
};

class TestbedSim {
 public:
  TestbedSim(const std::vector<SubmittedJob>& submissions,
             const TestbedOptions& options)
      : submissions_(submissions),
        options_(options),
        master_rng_(options.seed),
        obs_(options.observer),
        shuffle_(MakeAggregateBw(options.config),
                 MakePerFlowCap(options.config)) {
    for (std::size_t i = 1; i < submissions_.size(); ++i) {
      if (submissions_[i].submit_time < submissions_[i - 1].submit_time)
        throw std::invalid_argument(
            "RunTestbed: submissions must be sorted by submit_time");
    }
    for (const auto& s : submissions_) {
      if (s.spec.input_mb <= 0.0)
        throw std::invalid_argument("RunTestbed: job with nonpositive input");
    }
    failure_rng_ = master_rng_.Split("failures");
    speculation_rng_ = master_rng_.Split("speculation");
    switch (options_.scheduler) {
      case SchedulerKind::kFifo:
        scheduler_ = std::make_unique<FifoTestbedScheduler>();
        break;
      case SchedulerKind::kEdf:
        scheduler_ = std::make_unique<EdfTestbedScheduler>();
        break;
    }
    InitNodes();
  }

  TestbedResult Run() {
    for (std::size_t i = 0; i < submissions_.size(); ++i) {
      kernel_.Schedule(submissions_[i].submit_time,
                  Event{EventKind::kJobArrival, static_cast<std::int32_t>(i)});
    }
    const ClusterConfig& cfg = options_.config;
    for (int n = 0; n < cfg.num_nodes; ++n) {
      // Staggered (the default): phases spread across the interval, like
      // daemons that started at different moments. Synchronized: every
      // tracker beats at the same instants, first beat one full interval
      // in — so each round is a genuine arrival-order race for the model
      // checker, without a degenerate all-idle round at t=0.
      const SimTime first_beat =
          cfg.heartbeat_stagger ? cfg.heartbeat_interval *
                                      static_cast<double>(n) /
                                      static_cast<double>(cfg.num_nodes)
                                : cfg.heartbeat_interval;
      kernel_.Schedule(first_beat, Event{EventKind::kHeartbeat, n});
    }

    kernel_.DrainUntilOracle(
        [this] { return finished_jobs_ >= submissions_.size(); }, obs_,
        [](const Event& ev) { return SimEventKindName(ev.kind); },
        [](const Event& ev) {
          return ChoiceOption{SimEventKindName(ev.kind), ev.a, ev.b};
        },
        [this](const Event& ev) { Dispatch(ev); }, options_.oracle);
    if (finished_jobs_ < submissions_.size())
      throw std::logic_error("TestbedSim: event queue drained early");

    TestbedResult result;
    result.log = std::move(log_);
    result.events_processed = kernel_.Dequeued();
    result.makespan = makespan_;
    return result;
  }

  SimTime now() const { return kernel_.now(); }

 private:
  static double MakeAggregateBw(const ClusterConfig& cfg) {
    // Source-side egress is the shared resource: every worker serves map
    // output at its effective shuffle bandwidth. With one flow per reduce
    // slot this exceeds the sum of per-flow caps, so contention only kicks
    // in when reduce slots are oversubscribed (e.g. 2+ slots per node).
    return cfg.num_nodes * cfg.node_bandwidth_mbps;
  }

  static double MakePerFlowCap(const ClusterConfig& cfg) {
    // A single reduce's ingress, discounted by the expected cross-rack mix.
    const double cross_mix = 0.5 * (1.0 + cfg.cross_rack_factor);
    return cfg.node_bandwidth_mbps * cross_mix;
  }

  void InitNodes() {
    const ClusterConfig& cfg = options_.config;
    Rng node_rng = master_rng_.Split("node-speed");
    NormalDist speed_dist(1.0, std::max(cfg.node_speed_sigma, 1e-12), 0.7);
    nodes_.resize(cfg.num_nodes);
    for (int n = 0; n < cfg.num_nodes; ++n) {
      NodeState& node = nodes_[n];
      node.speed = cfg.node_speed_sigma > 0.0 ? speed_dist.Sample(node_rng)
                                              : 1.0;
      node.rack = n % std::max(1, cfg.num_racks);
      node.slots.free_maps = cfg.map_slots_per_node;
      node.slots.free_reduces = cfg.reduce_slots_per_node;
    }
  }

  void Dispatch(const Event& ev) {
    switch (ev.kind) {
      case EventKind::kJobArrival:
        OnJobArrival(ev.a);
        break;
      case EventKind::kHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/true);
        break;
      case EventKind::kOobHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/false);
        break;
      case EventKind::kMapDataReady:
        OnMapDataReady(ev.a, ev.b);
        break;
      case EventKind::kReduceDone:
        // Exact completion instant: with out-of-band heartbeats enabled the
        // node reports immediately instead of waiting for its next beat.
        if (options_.config.out_of_band_heartbeat) {
          JobRuntime& job = *jobs_[ev.a];
          kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat,
                                  job.reduces()[ev.b].node});
        }
        break;
      case EventKind::kFetchCheck:
        OnFetchCheck(ev.b);
        break;
    }
  }

  void OnJobArrival(std::int32_t submission_index) {
    const SubmittedJob& submission = submissions_[submission_index];
    const JobId id = static_cast<JobId>(jobs_.size());
    jobs_.push_back(std::make_unique<JobRuntime>(
        id, submission, options_.config, master_rng_.Split("job", id)));
    if (options_.caps) jobs_.back()->caps() = options_.caps(submission);
    job_queue_.push_back(jobs_.back().get());
    if (obs_ != nullptr)
      obs_->OnJobArrival(now(), id, submission.spec.FullName(),
                         submission.deadline);
    SIMMR_DEBUG << "t=" << now() << " job " << id << " ("
                << submission.spec.FullName() << ") arrived";
  }

  void OnHeartbeat(NodeId node_id, bool rearm) {
    shuffle_.Advance(now());
    ProcessFetchCompletions();

    ReportFinishedTasks(node_id);
    AssignTasks(node_id);

    // Hadoop TaskTrackers heartbeat for as long as the daemon runs; we stop
    // re-arming once nothing can ever need this node again.
    if (rearm && finished_jobs_ < submissions_.size()) {
      kernel_.Schedule(now() + options_.config.heartbeat_interval,
                  Event{EventKind::kHeartbeat, node_id});
    }
  }

  void ReportFinishedTasks(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    for (std::size_t i = 0; i < node.running.size();) {
      const NodeTask entry = node.running[i];  // copy: the vector mutates
      const JobId job_id = entry.job;
      const TaskKind kind = entry.kind;
      const TaskIndex index = entry.index;
      JobRuntime& job = *jobs_[job_id];
      bool done = false;
      if (kind == TaskKind::kMap) {
        MapTaskRt& m = job.maps()[index];
        if (entry.end <= now() + kTimeEpsilon) {
          // Attempt outcome: a failed attempt never succeeds; a healthy
          // attempt succeeds only if it is the first to report (with
          // speculation, the later twin is a killed duplicate).
          const bool winner = !entry.failing && !m.reported;
          TaskAttemptRecord rec;
          rec.job = job_id;
          rec.kind = TaskKind::kMap;
          rec.index = index;
          rec.node = node_id;
          rec.start = entry.start;
          rec.shuffle_end = entry.start;
          rec.end = entry.end;
          rec.input_mb = m.input_mb;
          rec.succeeded = winner;
          log_.AddTask(rec);
          if (obs_ != nullptr)
            obs_->OnTaskCompletion(
                now(), job_id, obs::TaskKind::kMap, index,
                obs::TaskTiming{entry.start, entry.start, entry.end},
                winner);
          ++node.slots.free_maps;
          --job.running_maps;
          --m.active_attempts;
          if (winner) {
            m.state = TaskState::kDone;
            m.reported = true;
            ++job.maps_reported;
            job.completed_map_duration_sum += entry.end - entry.start;
            ++job.completed_map_count;
            KillOtherMapAttempts(job_id, index, node_id);
          } else if (!m.reported && m.active_attempts == 0) {
            // Every attempt failed: the task goes back to pending.
            m.state = TaskState::kPending;
            job.RequeueMap(index);
          }
          done = true;
        }
      } else {
        ReduceTaskRt& r = job.reduces()[index];
        if (r.phase == ReducePhase::kMergeAndReduce &&
            r.end <= now() + kTimeEpsilon) {
          TaskAttemptRecord rec;
          rec.job = job_id;
          rec.kind = TaskKind::kReduce;
          rec.index = index;
          rec.node = node_id;
          rec.start = r.start;
          rec.shuffle_end = r.shuffle_end;
          rec.end = r.end;
          rec.input_mb = r.bytes_mb;
          rec.succeeded = !r.attempt_failing;
          log_.AddTask(rec);
          if (obs_ != nullptr)
            obs_->OnTaskCompletion(
                now(), job_id, obs::TaskKind::kReduce, index,
                obs::TaskTiming{r.start, r.shuffle_end, r.end},
                !r.attempt_failing);
          ++node.slots.free_reduces;
          --job.running_reduces;
          if (r.attempt_failing) {
            r.attempt_failing = false;
            r.state = TaskState::kPending;
            r.phase = ReducePhase::kFetch;
            r.flow = -1;
            r.end = kTimeInfinity;
            job.RequeueReduce(index);
          } else {
            r.state = TaskState::kDone;
            r.reported = true;
            ++job.reduces_reported;
          }
          done = true;
        }
      }
      if (done) {
        node.running[i] = node.running.back();
        node.running.pop_back();
        MaybeFinishJob(job);
      } else {
        ++i;
      }
    }
  }

  void MaybeFinishJob(JobRuntime& job) {
    if (job.Finished()) return;
    if (job.maps_reported < job.num_maps() ||
        job.reduces_reported < job.num_reduces())
      return;
    job.finish_time = now();
    makespan_ = std::max(makespan_, now());
    ++finished_jobs_;
    if (obs_ != nullptr) obs_->OnJobCompletion(now(), job.id());
    job_queue_.erase(
        std::find(job_queue_.begin(), job_queue_.end(), &job));

    JobRecord rec;
    rec.job = job.id();
    rec.app_name = job.spec().app.name;
    rec.dataset = job.spec().dataset_label;
    rec.num_maps = job.num_maps();
    rec.num_reduces = job.num_reduces();
    rec.input_mb = job.spec().input_mb;
    rec.submit_time = job.submit_time();
    rec.launch_time = job.launch_time;
    rec.finish_time = job.finish_time;
    rec.maps_done_time = job.maps_done_time;
    rec.deadline = job.deadline();
    log_.AddJob(std::move(rec));
    SIMMR_DEBUG << "t=" << now() << " job " << job.id() << " finished";
  }

  /// The winning attempt kills the still-running duplicate (if any): its
  /// entry end is pulled to `now` so its node reaps it immediately.
  void KillOtherMapAttempts(JobId job_id, TaskIndex index,
                            NodeId winner_node) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      for (NodeTask& other : nodes_[n].running) {
        if (other.job != job_id || other.kind != TaskKind::kMap ||
            other.index != index || other.end <= now() + kTimeEpsilon)
          continue;
        other.end = now();
        other.failing = true;  // it will be logged as not-succeeded
        if (static_cast<NodeId>(n) != winner_node &&
            options_.config.out_of_band_heartbeat) {
          kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat,
                                  static_cast<NodeId>(n)});
        }
      }
    }
  }

  void AssignTasks(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    const ClusterConfig& cfg = options_.config;

    // Hadoop 0.20 assigns at most one map and one reduce per heartbeat.
    if (node.slots.free_maps > 0) {
      const JobId job_id = scheduler_->PickMapJob(job_queue_);
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kMap, job_id);
      if (job_id != kInvalidJob) {
        LaunchMap(*jobs_[job_id], node_id);
      } else if (cfg.speculative_execution) {
        TrySpeculateMap(node_id);
      }
    }
    if (node.slots.free_reduces > 0) {
      const JobId job_id =
          scheduler_->PickReduceJob(job_queue_, cfg.reduce_slowstart);
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kReduce, job_id);
      if (job_id != kInvalidJob) LaunchReduce(*jobs_[job_id], node_id);
    }
  }

  void LaunchMap(JobRuntime& job, NodeId node_id) {
    const TaskIndex index =
        options_.config.model_locality &&
                options_.config.locality_aware_scheduling
            ? job.PopPendingMapPreferLocal(node_id,
                                           options_.config.num_racks)
            : job.PopPendingMap();
    MapTaskRt& m = job.maps()[index];
    m.state = TaskState::kRunning;
    m.node = node_id;
    LaunchMapAttempt(job, index, node_id, /*speculative=*/false, m.noise);
    m.start = now();
    m.end = node_last_attempt_end_;
  }

  /// Launches one map attempt (primary or speculative backup) on the node
  /// and records it as a NodeTask entry. Sets node_last_attempt_end_.
  void LaunchMapAttempt(JobRuntime& job, TaskIndex index, NodeId node_id,
                        bool speculative, double noise) {
    NodeState& node = nodes_[node_id];
    MapTaskRt& m = job.maps()[index];
    const AppModel& app = job.spec().app;
    double duration =
        (app.map_startup_s + m.input_mb * app.map_cost_s_per_mb * noise) /
        node.speed +
        MapReadPenalty(options_.config, m, node_id);
    const bool failing = DrawFailure();
    if (failing) {
      // The attempt dies partway through; the slot is wasted until then.
      duration *= failure_rng_.NextDouble(0.05, 0.95);
    }
    ++m.attempts;
    ++m.active_attempts;
    ++job.running_maps;
    --node.slots.free_maps;
    NodeTask entry;
    entry.job = job.id();
    entry.kind = TaskKind::kMap;
    entry.index = index;
    entry.speculative = speculative;
    entry.failing = failing;
    entry.start = now();
    entry.end = now() + duration;
    node.running.push_back(entry);
    node_last_attempt_end_ = entry.end;
    if (obs_ != nullptr)
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kMap, index);
    if (job.launch_time < 0.0) job.launch_time = now();
    if (failing) {
      if (options_.config.out_of_band_heartbeat) {
        kernel_.Schedule(entry.end, Event{EventKind::kOobHeartbeat, node_id});
      }
    } else {
      kernel_.Schedule(entry.end,
                  Event{EventKind::kMapDataReady, job.id(), index});
    }
  }

  /// Hadoop-style speculation: with a free slot and no pending maps, run a
  /// backup attempt of the straggliest running map (planned duration above
  /// the slowness threshold relative to the job's completed-map average).
  void TrySpeculateMap(NodeId node_id) {
    const ClusterConfig& cfg = options_.config;
    JobRuntime* best_job = nullptr;
    TaskIndex best_index = kInvalidTask;
    double best_excess = 0.0;
    for (const JobRuntime* job_view : job_queue_) {
      JobRuntime& job = *jobs_[job_view->id()];
      if (job.completed_map_count == 0) continue;  // no baseline yet
      if (job.RunningMaps() >= job.caps().map_cap) continue;
      const double avg = job.completed_map_duration_sum /
                         job.completed_map_count;
      const double threshold = cfg.speculation_slowness_threshold * avg;
      for (TaskIndex i = 0; i < job.num_maps(); ++i) {
        MapTaskRt& m = job.maps()[i];
        if (m.state != TaskState::kRunning || m.reported || m.speculated ||
            m.active_attempts != 1)
          continue;
        const double planned = m.end - m.start;
        if (planned <= threshold) continue;
        if (best_job == nullptr || planned - threshold > best_excess) {
          best_job = &job;
          best_index = i;
          best_excess = planned - threshold;
        }
      }
    }
    if (best_job == nullptr) return;
    MapTaskRt& m = best_job->maps()[best_index];
    m.speculated = true;
    // The backup attempt draws fresh duration noise (a straggler's noise
    // was the problem) and runs at this node's speed.
    const double noise = std::exp(
        best_job->spec().app.map_sigma * speculation_rng_.NextGaussian() -
        0.5 * best_job->spec().app.map_sigma *
            best_job->spec().app.map_sigma);
    LaunchMapAttempt(*best_job, best_index, node_id, /*speculative=*/true,
                     noise);
  }

  void LaunchReduce(JobRuntime& job, NodeId node_id) {
    NodeState& node = nodes_[node_id];
    const TaskIndex index = job.PopPendingReduce();
    ReduceTaskRt& r = job.reduces()[index];
    r.state = TaskState::kRunning;
    r.node = node_id;
    r.start = now();
    ++r.attempts;
    ++job.running_reduces;
    --node.slots.free_reduces;
    NodeTask entry;
    entry.job = job.id();
    entry.kind = TaskKind::kReduce;
    entry.index = index;
    node.running.push_back(entry);
    if (obs_ != nullptr)
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kReduce, index);
    if (job.launch_time < 0.0) job.launch_time = now();

    r.attempt_failing = DrawFailure();
    if (r.attempt_failing) {
      // The attempt dies during its run; approximate the point of death as
      // a uniform fraction of the attempt's nominal span. It holds the
      // slot but fetches nothing (its partial fetch is discarded anyway).
      const AppModel& app = job.spec().app;
      const double nominal = r.bytes_mb / MakePerFlowCap(options_.config) +
                             r.bytes_mb * app.merge_cost_s_per_mb +
                             app.reduce_startup_s +
                             r.bytes_mb * app.reduce_cost_s_per_mb;
      r.phase = ReducePhase::kMergeAndReduce;  // no flow to manage
      r.end = now() + std::max(0.1, nominal) *
                         failure_rng_.NextDouble(0.05, 0.95);
      r.shuffle_end = r.end;
      if (options_.config.out_of_band_heartbeat) {
        kernel_.Schedule(r.end, Event{EventKind::kOobHeartbeat, node_id});
      }
      return;
    }

    r.phase = ReducePhase::kFetch;
    r.end = kTimeInfinity;
    const double available = job.produced_mb * r.frac;
    r.flow = shuffle_.AddFlow(r.bytes_mb, available);
    fetching_.push_back({job.id(), index});
    ProcessFetchCompletions();  // zero-byte flows complete immediately
    ScheduleFetchCheck();
  }

  bool DrawFailure() {
    const double p = options_.config.task_failure_prob;
    return p > 0.0 && failure_rng_.NextDouble() < p;
  }

  void OnMapDataReady(JobId job_id, TaskIndex map_index) {
    JobRuntime& job = *jobs_[job_id];
    MapTaskRt& m = job.maps()[map_index];
    if (m.data_ready) return;  // a faster (speculative) twin already landed
    m.data_ready = true;
    ++job.maps_data_ready;
    const double out_mb = m.input_mb * job.spec().app.map_selectivity;
    job.produced_mb += out_mb;
    if (job.AllMapsDataReady()) job.maps_done_time = now();

    shuffle_.Advance(now());
    for (const auto& [fj, fr] : fetching_) {
      if (fj != job_id) continue;
      const ReduceTaskRt& r = job.reduces()[fr];
      shuffle_.AddAvailability(r.flow, out_mb * r.frac);
    }
    ProcessFetchCompletions();
    ScheduleFetchCheck();
    if (options_.config.out_of_band_heartbeat) {
      kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat, m.node});
    }
  }

  void OnFetchCheck(std::int32_t generation) {
    if (generation != fetch_generation_) return;  // superseded schedule
    shuffle_.Advance(now());
    ProcessFetchCompletions();
    ScheduleFetchCheck();
  }

  /// Moves every completed fetch into the merge+reduce phase. Safe to call
  /// after any shuffle_ mutation at the current time.
  void ProcessFetchCompletions() {
    for (std::size_t i = 0; i < fetching_.size();) {
      const auto [job_id, index] = fetching_[i];
      JobRuntime& job = *jobs_[job_id];
      ReduceTaskRt& r = job.reduces()[index];
      if (!shuffle_.IsComplete(r.flow)) {
        ++i;
        continue;
      }
      shuffle_.Retire(r.flow);
      const AppModel& app = job.spec().app;
      const double speed = nodes_[r.node].speed;
      const double merge_dur =
          r.bytes_mb * app.merge_cost_s_per_mb * r.merge_noise / speed;
      const double reduce_dur =
          (app.reduce_startup_s +
           r.bytes_mb * app.reduce_cost_s_per_mb * r.reduce_noise) /
          speed;
      r.phase = ReducePhase::kMergeAndReduce;
      r.shuffle_end = now() + merge_dur;
      r.end = r.shuffle_end + reduce_dur;
      // The reduce's shuffle fetch finished; it enters merge+reduce now.
      if (obs_ != nullptr)
        obs_->OnTaskPhaseTransition(now(), job_id, obs::TaskKind::kReduce,
                                    index, "merge+reduce");
      kernel_.Schedule(r.end, Event{EventKind::kReduceDone, job_id, index});
      fetching_[i] = fetching_.back();
      fetching_.pop_back();
    }
  }

  void ScheduleFetchCheck() {
    ++fetch_generation_;
    const SimTime next = shuffle_.NextEventTime();
    if (next < kTimeInfinity) {
      kernel_.Schedule(std::max(next, now()),
                  Event{EventKind::kFetchCheck, 0, fetch_generation_});
    }
  }

  const std::vector<SubmittedJob>& submissions_;
  const TestbedOptions& options_;
  Rng master_rng_;
  obs::SimObserver* obs_;
  Rng failure_rng_{0};
  Rng speculation_rng_{0};
  SimTime node_last_attempt_end_ = 0.0;
  ShuffleModel shuffle_;
  std::unique_ptr<TestbedScheduler> scheduler_;
  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<JobRuntime>> jobs_;
  std::vector<const JobRuntime*> job_queue_;
  std::vector<std::pair<JobId, TaskIndex>> fetching_;
  SimKernel<Event> kernel_;
  HistoryLog log_;
  SimTime makespan_ = 0.0;
  std::size_t finished_jobs_ = 0;
  std::int32_t fetch_generation_ = 0;
};

}  // namespace

double MapReadPenalty(const ClusterConfig& config, const MapTaskRt& map,
                      NodeId node) {
  if (!config.model_locality || config.remote_read_mbps <= 0.0) return 0.0;
  if (std::find(map.replicas.begin(), map.replicas.end(), node) !=
      map.replicas.end())
    return 0.0;  // node-local
  const int racks = std::max(1, config.num_racks);
  for (const NodeId replica : map.replicas) {
    if (replica % racks == node % racks)
      return map.input_mb / (2.0 * config.remote_read_mbps);  // rack-local
  }
  return map.input_mb / config.remote_read_mbps;  // cross-rack
}

TestbedResult RunTestbed(const std::vector<SubmittedJob>& jobs,
                         const TestbedOptions& options) {
  return TestbedSim(jobs, options).Run();
}

}  // namespace simmr::cluster
