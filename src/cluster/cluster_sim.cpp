#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "cluster/testbed_scheduler.h"
#include "simcore/distributions.h"
#include "simcore/event_names.h"
#include "simcore/log.h"
#include "simcore/sim_kernel.h"

namespace simmr::cluster {
namespace {

// The testbed's event vocabulary is drawn straight from the canonical
// simmr::SimEventKind table, so its dequeue names match the other
// simulators' durable logs by construction. Operand use per kind:
//   kJobArrival    a = job index in the submission list
//   kHeartbeat     a = node id, b = node heartbeat epoch (self-rearming;
//                  the epoch orphans chains that predate a crash/restore)
//   kOobHeartbeat  a = node id (out-of-band, fired on task completion)
//   kMapDataReady  a = job id, b = map task index (exact map end time)
//   kReduceDone    a = job id, b = reduce task index (exact reduce end)
//   kFetchCheck    b = generation stamp of the shuffle schedule
//   kFaultAction   a = index into the run's fault-action list
//   kTrackerExpiry a = node id (JobTracker-side lost-tracker check)
using EventKind = SimEventKind;

struct Event {
  EventKind kind;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// One attempt occupying a slot on a node. Map attempts carry their own
/// timestamps and failure flag because speculation allows two concurrent
/// attempts of the same map task; reduce attempts have at most one in
/// flight, so their state stays on the ReduceTaskRt.
struct NodeTask {
  JobId job = kInvalidJob;
  TaskKind kind = TaskKind::kMap;
  TaskIndex index = kInvalidTask;
  bool speculative = false;    // maps only
  bool failing = false;        // maps only
  bool drawn_failure = false;  // maps only: a genuine drawn failure, as
                               // opposed to a killed speculative duplicate
                               // (only the former counts toward node
                               // blacklisting)
  SimTime start = 0.0;         // maps only
  SimTime end = 0.0;           // maps only
};

struct NodeState {
  double speed = 1.0;
  int rack = 0;
  SlotPool slots;
  // Attempts currently occupying slots on this node, reported on heartbeat.
  std::vector<NodeTask> running;

  // --- fault-injection state (inert without a fault plan) ---
  bool down = false;         // daemon not running (crash, or declared lost)
  bool lost = false;         // the JobTracker declared this tracker lost
  bool blacklisted = false;  // no new assignments (heartbeats still report)
  int failed_attempts = 0;   // genuine failures observed by the JobTracker
  double fault_slowdown = 1.0;        // speed multiplier from kNodeSlowdown
  SimTime hb_suppressed_until = 0.0;  // heartbeat-loss window end
  SimTime last_heartbeat = 0.0;       // JobTracker-side last-seen time
  std::int32_t hb_epoch = 0;  // bumps on crash/restore to orphan the
                              // in-flight self-rearming heartbeat chain
};

/// A map-output landing annulled by a node death before it fired. Matched
/// by exact scheduled time, which is safe because the event was scheduled
/// with that same double.
struct CancelledMapData {
  JobId job = kInvalidJob;
  TaskIndex index = kInvalidTask;
  SimTime at = 0.0;
};

class TestbedSim {
 public:
  TestbedSim(const std::vector<SubmittedJob>& submissions,
             const TestbedOptions& options)
      : submissions_(submissions),
        options_(options),
        master_rng_(options.seed),
        obs_(options.observer),
        shuffle_(MakeAggregateBw(options.config),
                 MakePerFlowCap(options.config)) {
    for (std::size_t i = 1; i < submissions_.size(); ++i) {
      if (submissions_[i].submit_time < submissions_[i - 1].submit_time)
        throw std::invalid_argument(
            "RunTestbed: submissions must be sorted by submit_time");
    }
    for (const auto& s : submissions_) {
      if (s.spec.input_mb <= 0.0)
        throw std::invalid_argument("RunTestbed: job with nonpositive input");
    }
    if (options.fault_plan != nullptr) {
      const fault::FaultPlan& plan = *options.fault_plan;
      std::string err = fault::ValidateFaultPlan(plan);
      if (err.empty() && plan.num_nodes != 0 &&
          plan.num_nodes != options.config.num_nodes)
        err = "plan authored for " + std::to_string(plan.num_nodes) +
              " nodes, cluster has " +
              std::to_string(options.config.num_nodes);
      if (err.empty() && plan.num_nodes == 0) {
        for (const auto& a : plan.actions) {
          if (a.node >= options.config.num_nodes) {
            err = "geometry-free plan targets node " + std::to_string(a.node) +
                  " beyond the cluster";
            break;
          }
        }
      }
      if (!err.empty())
        throw std::invalid_argument("RunTestbed: invalid fault plan: " + err);
      fault_actions_ = fault::SortedActions(plan);
    }
    failure_rng_ = master_rng_.Split("failures");
    speculation_rng_ = master_rng_.Split("speculation");
    switch (options_.scheduler) {
      case SchedulerKind::kFifo:
        scheduler_ = std::make_unique<FifoTestbedScheduler>();
        break;
      case SchedulerKind::kEdf:
        scheduler_ = std::make_unique<EdfTestbedScheduler>();
        break;
    }
    InitNodes();
  }

  TestbedResult Run() {
    for (std::size_t i = 0; i < submissions_.size(); ++i) {
      kernel_.Schedule(submissions_[i].submit_time,
                  Event{EventKind::kJobArrival, static_cast<std::int32_t>(i)});
    }
    const ClusterConfig& cfg = options_.config;
    for (int n = 0; n < cfg.num_nodes; ++n) {
      // Staggered (the default): phases spread across the interval, like
      // daemons that started at different moments. Synchronized: every
      // tracker beats at the same instants, first beat one full interval
      // in — so each round is a genuine arrival-order race for the model
      // checker, without a degenerate all-idle round at t=0.
      const SimTime first_beat =
          cfg.heartbeat_stagger ? cfg.heartbeat_interval *
                                      static_cast<double>(n) /
                                      static_cast<double>(cfg.num_nodes)
                                : cfg.heartbeat_interval;
      kernel_.Schedule(first_beat, Event{EventKind::kHeartbeat, n});
    }
    for (std::size_t i = 0; i < fault_actions_.size(); ++i) {
      kernel_.Schedule(fault_actions_[i].time,
                  Event{EventKind::kFaultAction, static_cast<std::int32_t>(i)});
    }

    kernel_.DrainUntilOracle(
        [this] { return finished_jobs_ >= submissions_.size(); }, obs_,
        [](const Event& ev) { return SimEventKindName(ev.kind); },
        [](const Event& ev) {
          return ChoiceOption{SimEventKindName(ev.kind), ev.a, ev.b};
        },
        [this](const Event& ev) { Dispatch(ev); }, options_.oracle);
    if (finished_jobs_ < submissions_.size())
      throw std::logic_error("TestbedSim: event queue drained early");

    TestbedResult result;
    result.log = std::move(log_);
    result.events_processed = kernel_.Dequeued();
    result.makespan = makespan_;
    return result;
  }

  SimTime now() const { return kernel_.now(); }

 private:
  static double MakeAggregateBw(const ClusterConfig& cfg) {
    // Source-side egress is the shared resource: every worker serves map
    // output at its effective shuffle bandwidth. With one flow per reduce
    // slot this exceeds the sum of per-flow caps, so contention only kicks
    // in when reduce slots are oversubscribed (e.g. 2+ slots per node).
    return cfg.num_nodes * cfg.node_bandwidth_mbps;
  }

  static double MakePerFlowCap(const ClusterConfig& cfg) {
    // A single reduce's ingress, discounted by the expected cross-rack mix.
    const double cross_mix = 0.5 * (1.0 + cfg.cross_rack_factor);
    return cfg.node_bandwidth_mbps * cross_mix;
  }

  void InitNodes() {
    const ClusterConfig& cfg = options_.config;
    Rng node_rng = master_rng_.Split("node-speed");
    NormalDist speed_dist(1.0, std::max(cfg.node_speed_sigma, 1e-12), 0.7);
    nodes_.resize(cfg.num_nodes);
    for (int n = 0; n < cfg.num_nodes; ++n) {
      NodeState& node = nodes_[n];
      node.speed = cfg.node_speed_sigma > 0.0 ? speed_dist.Sample(node_rng)
                                              : 1.0;
      node.rack = n % std::max(1, cfg.num_racks);
      node.slots.free_maps = cfg.map_slots_per_node;
      node.slots.free_reduces = cfg.reduce_slots_per_node;
    }
  }

  void Dispatch(const Event& ev) {
    switch (ev.kind) {
      case EventKind::kJobArrival:
        OnJobArrival(ev.a);
        break;
      case EventKind::kHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/true, ev.b);
        break;
      case EventKind::kOobHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/false, 0);
        break;
      case EventKind::kMapDataReady:
        OnMapDataReady(ev.a, ev.b);
        break;
      case EventKind::kReduceDone: {
        // Exact completion instant: with out-of-band heartbeats enabled the
        // node reports immediately instead of waiting for its next beat.
        // The staleness gate drops events whose attempt was killed by a
        // fault (the reset pushed r.end away from this instant).
        JobRuntime& job = *jobs_[ev.a];
        const ReduceTaskRt& r = job.reduces()[ev.b];
        if (options_.config.out_of_band_heartbeat &&
            r.state == TaskState::kRunning &&
            r.phase == ReducePhase::kMergeAndReduce &&
            r.end <= now() + kTimeEpsilon) {
          kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat, r.node});
        }
        break;
      }
      case EventKind::kFetchCheck:
        OnFetchCheck(ev.b);
        break;
      case EventKind::kFaultAction:
        OnFaultAction(ev.a);
        break;
      case EventKind::kTrackerExpiry:
        OnTrackerExpiry(ev.a);
        break;
      default:
        throw std::logic_error("TestbedSim: unexpected event kind");
    }
  }

  void OnJobArrival(std::int32_t submission_index) {
    const SubmittedJob& submission = submissions_[submission_index];
    const JobId id = static_cast<JobId>(jobs_.size());
    jobs_.push_back(std::make_unique<JobRuntime>(
        id, submission, options_.config, master_rng_.Split("job", id)));
    if (options_.caps) jobs_.back()->caps() = options_.caps(submission);
    job_queue_.push_back(jobs_.back().get());
    if (obs_ != nullptr)
      obs_->OnJobArrival(now(), id, submission.spec.FullName(),
                         submission.deadline);
    SIMMR_DEBUG << "t=" << now() << " job " << id << " ("
                << submission.spec.FullName() << ") arrived";
  }

  void OnHeartbeat(NodeId node_id, bool rearm, std::int32_t epoch) {
    NodeState& node = nodes_[node_id];
    if (rearm && epoch != node.hb_epoch) return;  // chain from before a fault
    if (node.down) return;  // daemon dead: no beat, and the chain ends here
    // During a heartbeat-loss window the daemon keeps its cadence but the
    // JobTracker never sees the beat: nothing is reported or assigned, yet
    // the chain re-arms (the node itself is healthy).
    const bool suppressed = now() < node.hb_suppressed_until;
    if (!suppressed) {
      node.last_heartbeat = now();
      shuffle_.Advance(now());
      ProcessFetchCompletions();
      ReportFinishedTasks(node_id);
      // Blacklisted trackers keep reporting but receive no new work.
      if (!node.blacklisted) AssignTasks(node_id);
    }

    // Hadoop TaskTrackers heartbeat for as long as the daemon runs; we stop
    // re-arming once nothing can ever need this node again.
    if (rearm && finished_jobs_ < submissions_.size()) {
      kernel_.Schedule(now() + options_.config.heartbeat_interval,
                  Event{EventKind::kHeartbeat, node_id, node.hb_epoch});
    }
  }

  void ReportFinishedTasks(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    for (std::size_t i = 0; i < node.running.size();) {
      const NodeTask entry = node.running[i];  // copy: the vector mutates
      const JobId job_id = entry.job;
      const TaskKind kind = entry.kind;
      const TaskIndex index = entry.index;
      JobRuntime& job = *jobs_[job_id];
      bool done = false;
      if (kind == TaskKind::kMap) {
        MapTaskRt& m = job.maps()[index];
        if (entry.end <= now() + kTimeEpsilon) {
          // Attempt outcome: a failed attempt never succeeds; a healthy
          // attempt succeeds only if it is the first to report (with
          // speculation, the later twin is a killed duplicate).
          const bool winner = !entry.failing && !m.reported;
          TaskAttemptRecord rec;
          rec.job = job_id;
          rec.kind = TaskKind::kMap;
          rec.index = index;
          rec.node = node_id;
          rec.start = entry.start;
          rec.shuffle_end = entry.start;
          rec.end = entry.end;
          rec.input_mb = m.input_mb;
          rec.succeeded = winner;
          log_.AddTask(rec);
          if (obs_ != nullptr)
            obs_->OnTaskCompletion(
                now(), job_id, obs::TaskKind::kMap, index,
                obs::TaskTiming{entry.start, entry.start, entry.end},
                winner);
          ++node.slots.free_maps;
          --job.running_maps;
          --m.active_attempts;
          if (entry.drawn_failure) CountNodeFailure(node_id);
          if (winner) {
            m.state = TaskState::kDone;
            m.reported = true;
            // Attribute the completion to the winning attempt's node: this
            // is where the output lives, which is what lost-node map
            // re-execution keys on.
            m.node = node_id;
            ++job.maps_reported;
            job.completed_map_duration_sum += entry.end - entry.start;
            ++job.completed_map_count;
            KillOtherMapAttempts(job_id, index, node_id);
          } else if (!m.reported && m.active_attempts == 0) {
            // Every attempt failed: the task goes back to pending.
            m.state = TaskState::kPending;
            m.speculated = false;
            RequeueMapChecked(job, index);
          }
          done = true;
        }
      } else {
        ReduceTaskRt& r = job.reduces()[index];
        if (r.phase == ReducePhase::kMergeAndReduce &&
            r.end <= now() + kTimeEpsilon) {
          TaskAttemptRecord rec;
          rec.job = job_id;
          rec.kind = TaskKind::kReduce;
          rec.index = index;
          rec.node = node_id;
          rec.start = r.start;
          rec.shuffle_end = r.shuffle_end;
          rec.end = r.end;
          rec.input_mb = r.bytes_mb;
          rec.succeeded = !r.attempt_failing;
          log_.AddTask(rec);
          if (obs_ != nullptr)
            obs_->OnTaskCompletion(
                now(), job_id, obs::TaskKind::kReduce, index,
                obs::TaskTiming{r.start, r.shuffle_end, r.end},
                !r.attempt_failing);
          ++node.slots.free_reduces;
          --job.running_reduces;
          if (r.attempt_failing) {
            CountNodeFailure(node_id);
            r.attempt_failing = false;
            r.state = TaskState::kPending;
            r.phase = ReducePhase::kFetch;
            r.flow = -1;
            r.end = kTimeInfinity;
            RequeueReduceChecked(job, index);
          } else {
            r.state = TaskState::kDone;
            r.reported = true;
            ++job.reduces_reported;
          }
          done = true;
        }
      }
      if (done) {
        node.running[i] = node.running.back();
        node.running.pop_back();
        MaybeFinishJob(job);
      } else {
        ++i;
      }
    }
  }

  void MaybeFinishJob(JobRuntime& job) {
    if (job.Finished()) return;
    if (job.maps_reported < job.num_maps() ||
        job.reduces_reported < job.num_reduces())
      return;
    job.finish_time = now();
    makespan_ = std::max(makespan_, now());
    ++finished_jobs_;
    if (obs_ != nullptr) obs_->OnJobCompletion(now(), job.id());
    job_queue_.erase(
        std::find(job_queue_.begin(), job_queue_.end(), &job));
    EmitJobRecord(job);
    SIMMR_DEBUG << "t=" << now() << " job " << job.id() << " finished";
  }

  /// JobTracker-side abort: a task exhausted ClusterConfig::max_attempts.
  /// The job leaves the scheduling queue and counts as finished (failed).
  /// In-flight attempts are left to drain naturally — they are logged when
  /// they report and their slots return then; Hadoop actively kills them,
  /// but the difference is bounded by one attempt length and keeps the
  /// reaping logic non-reentrant.
  void FailJob(JobRuntime& job) {
    if (job.Finished()) return;
    job.failed = true;
    job.finish_time = now();
    makespan_ = std::max(makespan_, now());
    ++finished_jobs_;
    if (obs_ != nullptr) obs_->OnJobCompletion(now(), job.id());
    job_queue_.erase(
        std::find(job_queue_.begin(), job_queue_.end(), &job));
    EmitJobRecord(job);
    SIMMR_DEBUG << "t=" << now() << " job " << job.id()
                << " FAILED (max_attempts exhausted)";
  }

  void EmitJobRecord(const JobRuntime& job) {
    JobRecord rec;
    rec.job = job.id();
    rec.app_name = job.spec().app.name;
    rec.dataset = job.spec().dataset_label;
    rec.num_maps = job.num_maps();
    rec.num_reduces = job.num_reduces();
    rec.input_mb = job.spec().input_mb;
    rec.submit_time = job.submit_time();
    rec.launch_time = job.launch_time;
    rec.finish_time = job.finish_time;
    rec.maps_done_time = job.maps_done_time;
    rec.deadline = job.deadline();
    rec.failed = job.failed;
    log_.AddJob(std::move(rec));
  }

  /// Requeues a task for re-execution, or fails the job when the attempt
  /// budget is exhausted.
  void RequeueMapChecked(JobRuntime& job, TaskIndex index) {
    if (job.Finished()) return;
    const int max = options_.config.max_attempts;
    if (max > 0 && job.maps()[index].attempts >= max) {
      FailJob(job);
      return;
    }
    job.RequeueMap(index);
  }

  void RequeueReduceChecked(JobRuntime& job, TaskIndex index) {
    if (job.Finished()) return;
    const int max = options_.config.max_attempts;
    if (max > 0 && job.reduces()[index].attempts >= max) {
      FailJob(job);
      return;
    }
    job.RequeueReduce(index);
  }

  /// Counts a genuine attempt failure against the node and blacklists it
  /// once ClusterConfig::node_blacklist_failures is reached.
  void CountNodeFailure(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    ++node.failed_attempts;
    const int limit = options_.config.node_blacklist_failures;
    if (limit > 0 && !node.blacklisted && node.failed_attempts >= limit) {
      node.blacklisted = true;
      SIMMR_DEBUG << "t=" << now() << " node " << node_id
                  << " blacklisted after " << node.failed_attempts
                  << " failed attempts";
    }
  }

  /// The winning attempt kills the still-running duplicate (if any): its
  /// entry end is pulled to `now` so its node reaps it immediately.
  void KillOtherMapAttempts(JobId job_id, TaskIndex index,
                            NodeId winner_node) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      for (NodeTask& other : nodes_[n].running) {
        if (other.job != job_id || other.kind != TaskKind::kMap ||
            other.index != index || other.end <= now() + kTimeEpsilon)
          continue;
        // The twin's pending output landing must not fire.
        if (!other.failing)
          cancelled_map_data_.push_back({job_id, index, other.end});
        other.end = now();
        other.failing = true;  // it will be logged as not-succeeded
        if (static_cast<NodeId>(n) != winner_node &&
            !nodes_[n].down && options_.config.out_of_band_heartbeat) {
          kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat,
                                  static_cast<NodeId>(n)});
        }
      }
    }
  }

  void AssignTasks(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    const ClusterConfig& cfg = options_.config;

    // Hadoop 0.20 assigns at most one map and one reduce per heartbeat.
    if (node.slots.free_maps > 0) {
      const JobId job_id = scheduler_->PickMapJob(job_queue_);
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kMap, job_id);
      if (job_id != kInvalidJob) {
        LaunchMap(*jobs_[job_id], node_id);
      } else if (cfg.speculative_execution) {
        TrySpeculateMap(node_id);
      }
    }
    if (node.slots.free_reduces > 0) {
      const JobId job_id =
          scheduler_->PickReduceJob(job_queue_, cfg.reduce_slowstart);
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kReduce, job_id);
      if (job_id != kInvalidJob) LaunchReduce(*jobs_[job_id], node_id);
    }
  }

  /// Per-attempt RNG stream keyed by (job, kind, index, attempt ordinal).
  /// Every attempt's stochastic draws — failure decision, death fraction,
  /// retry duration noise — are independent of scheduling order: a retry
  /// re-runs with a fresh sample no matter when or where it launches, and
  /// the fuzzer's re-run differential stays bit-exact.
  Rng AttemptRng(JobId job, TaskKind kind, TaskIndex index,
                 int attempt) const {
    std::uint64_t key = static_cast<std::uint64_t>(job);
    key = key * 0x100000001B3ULL ^ (kind == TaskKind::kMap ? 1u : 2u);
    key = key * 0x100000001B3ULL ^ static_cast<std::uint64_t>(index);
    key = key * 0x100000001B3ULL ^ static_cast<std::uint64_t>(attempt);
    return failure_rng_.Split("attempt", key);
  }

  static double MeanOneLogNormal(Rng& rng, double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::exp(sigma * rng.NextGaussian() - 0.5 * sigma * sigma);
  }

  void LaunchMap(JobRuntime& job, NodeId node_id) {
    const TaskIndex index =
        options_.config.model_locality &&
                options_.config.locality_aware_scheduling
            ? job.PopPendingMapPreferLocal(node_id,
                                           options_.config.num_racks)
            : job.PopPendingMap();
    MapTaskRt& m = job.maps()[index];
    m.state = TaskState::kRunning;
    m.node = node_id;
    // A retry is a new run, not a replay of the doomed sample: it draws
    // fresh duration noise from its attempt-keyed stream.
    double noise = m.noise;
    if (m.attempts > 0) {
      Rng rng = AttemptRng(job.id(), TaskKind::kMap, index, m.attempts)
                    .Split("noise");
      noise = MeanOneLogNormal(rng, job.spec().app.map_sigma);
    }
    LaunchMapAttempt(job, index, node_id, /*speculative=*/false, noise);
    m.start = now();
    m.end = node_last_attempt_end_;
  }

  /// Launches one map attempt (primary or speculative backup) on the node
  /// and records it as a NodeTask entry. Sets node_last_attempt_end_.
  void LaunchMapAttempt(JobRuntime& job, TaskIndex index, NodeId node_id,
                        bool speculative, double noise) {
    NodeState& node = nodes_[node_id];
    MapTaskRt& m = job.maps()[index];
    const AppModel& app = job.spec().app;
    double duration =
        (app.map_startup_s + m.input_mb * app.map_cost_s_per_mb * noise) /
        (node.speed * node.fault_slowdown) +
        MapReadPenalty(options_.config, m, node_id);
    Rng attempt_rng =
        AttemptRng(job.id(), TaskKind::kMap, index, m.attempts);
    const bool failing = DrawFailure(attempt_rng);
    if (failing) {
      // The attempt dies partway through; the slot is wasted until then.
      duration *= attempt_rng.NextDouble(0.05, 0.95);
    }
    ++m.attempts;
    ++m.active_attempts;
    ++job.running_maps;
    --node.slots.free_maps;
    NodeTask entry;
    entry.job = job.id();
    entry.kind = TaskKind::kMap;
    entry.index = index;
    entry.speculative = speculative;
    entry.failing = failing;
    entry.drawn_failure = failing;
    entry.start = now();
    entry.end = now() + duration;
    node.running.push_back(entry);
    node_last_attempt_end_ = entry.end;
    if (obs_ != nullptr)
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kMap, index);
    if (job.launch_time < 0.0) job.launch_time = now();
    if (failing) {
      if (options_.config.out_of_band_heartbeat) {
        kernel_.Schedule(entry.end, Event{EventKind::kOobHeartbeat, node_id});
      }
    } else {
      kernel_.Schedule(entry.end,
                  Event{EventKind::kMapDataReady, job.id(), index});
    }
  }

  /// Hadoop-style speculation: with a free slot and no pending maps, run a
  /// backup attempt of the straggliest running map (planned duration above
  /// the slowness threshold relative to the job's completed-map average).
  void TrySpeculateMap(NodeId node_id) {
    const ClusterConfig& cfg = options_.config;
    JobRuntime* best_job = nullptr;
    TaskIndex best_index = kInvalidTask;
    double best_excess = 0.0;
    for (const JobRuntime* job_view : job_queue_) {
      JobRuntime& job = *jobs_[job_view->id()];
      if (job.completed_map_count == 0) continue;  // no baseline yet
      if (job.RunningMaps() >= job.caps().map_cap) continue;
      const double avg = job.completed_map_duration_sum /
                         job.completed_map_count;
      const double threshold = cfg.speculation_slowness_threshold * avg;
      for (TaskIndex i = 0; i < job.num_maps(); ++i) {
        MapTaskRt& m = job.maps()[i];
        if (m.state != TaskState::kRunning || m.reported || m.speculated ||
            m.active_attempts != 1)
          continue;
        const double planned = m.end - m.start;
        if (planned <= threshold) continue;
        if (best_job == nullptr || planned - threshold > best_excess) {
          best_job = &job;
          best_index = i;
          best_excess = planned - threshold;
        }
      }
    }
    if (best_job == nullptr) return;
    MapTaskRt& m = best_job->maps()[best_index];
    m.speculated = true;
    // The backup attempt draws fresh duration noise (a straggler's noise
    // was the problem) and runs at this node's speed.
    const double noise = std::exp(
        best_job->spec().app.map_sigma * speculation_rng_.NextGaussian() -
        0.5 * best_job->spec().app.map_sigma *
            best_job->spec().app.map_sigma);
    LaunchMapAttempt(*best_job, best_index, node_id, /*speculative=*/true,
                     noise);
  }

  void LaunchReduce(JobRuntime& job, NodeId node_id) {
    NodeState& node = nodes_[node_id];
    const TaskIndex index = job.PopPendingReduce();
    ReduceTaskRt& r = job.reduces()[index];
    const int attempt = r.attempts;
    r.state = TaskState::kRunning;
    r.node = node_id;
    r.start = now();
    ++r.attempts;
    ++job.running_reduces;
    --node.slots.free_reduces;
    NodeTask entry;
    entry.job = job.id();
    entry.kind = TaskKind::kReduce;
    entry.index = index;
    node.running.push_back(entry);
    if (obs_ != nullptr)
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kReduce, index);
    if (job.launch_time < 0.0) job.launch_time = now();

    const AppModel& app = job.spec().app;
    if (attempt > 0) {
      // Retries draw fresh phase noise (same sigmas JobRuntime used for the
      // first attempt) from the attempt-keyed stream.
      Rng rng = AttemptRng(job.id(), TaskKind::kReduce, index, attempt)
                    .Split("noise");
      r.merge_noise = MeanOneLogNormal(rng, 0.08);
      r.reduce_noise = MeanOneLogNormal(rng, app.reduce_sigma);
    }
    Rng attempt_rng =
        AttemptRng(job.id(), TaskKind::kReduce, index, attempt);
    r.attempt_failing = DrawFailure(attempt_rng);
    if (r.attempt_failing) {
      // The attempt dies during its run; approximate the point of death as
      // a uniform fraction of the attempt's nominal span. It holds the
      // slot but fetches nothing (its partial fetch is discarded anyway).
      const double nominal = r.bytes_mb / MakePerFlowCap(options_.config) +
                             r.bytes_mb * app.merge_cost_s_per_mb +
                             app.reduce_startup_s +
                             r.bytes_mb * app.reduce_cost_s_per_mb;
      r.phase = ReducePhase::kMergeAndReduce;  // no flow to manage
      r.end = now() + std::max(0.1, nominal) *
                         attempt_rng.NextDouble(0.05, 0.95);
      r.shuffle_end = r.end;
      if (options_.config.out_of_band_heartbeat) {
        kernel_.Schedule(r.end, Event{EventKind::kOobHeartbeat, node_id});
      }
      return;
    }

    r.phase = ReducePhase::kFetch;
    r.end = kTimeInfinity;
    const double available = job.produced_mb * r.frac;
    r.flow = shuffle_.AddFlow(r.bytes_mb, available);
    fetching_.push_back({job.id(), index});
    ProcessFetchCompletions();  // zero-byte flows complete immediately
    ScheduleFetchCheck();
  }

  bool DrawFailure(Rng& attempt_rng) {
    const double p = options_.config.task_failure_prob;
    return p > 0.0 && attempt_rng.NextDouble() < p;
  }

  void OnMapDataReady(JobId job_id, TaskIndex map_index) {
    // Annulled by a node death: the attempt's output never landed.
    for (std::size_t i = 0; i < cancelled_map_data_.size(); ++i) {
      const CancelledMapData& c = cancelled_map_data_[i];
      if (c.job == job_id && c.index == map_index && c.at == now()) {
        cancelled_map_data_[i] = cancelled_map_data_.back();
        cancelled_map_data_.pop_back();
        return;
      }
    }
    JobRuntime& job = *jobs_[job_id];
    MapTaskRt& m = job.maps()[map_index];
    if (m.data_ready) return;  // a faster (speculative) twin already landed
    m.data_ready = true;
    ++job.maps_data_ready;
    if (job.AllMapsDataReady()) job.maps_done_time = now();
    if (m.rerun) {
      // Re-execution after output loss: the bytes were already counted when
      // the original attempt landed, and whatever the reduces fetched
      // survives — recovery costs recompute time, not re-shuffle volume.
      if (options_.config.out_of_band_heartbeat) {
        kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat, m.node});
      }
      return;
    }
    const double out_mb = m.input_mb * job.spec().app.map_selectivity;
    job.produced_mb += out_mb;

    shuffle_.Advance(now());
    for (const auto& [fj, fr] : fetching_) {
      if (fj != job_id) continue;
      const ReduceTaskRt& r = job.reduces()[fr];
      shuffle_.AddAvailability(r.flow, out_mb * r.frac);
    }
    ProcessFetchCompletions();
    ScheduleFetchCheck();
    if (options_.config.out_of_band_heartbeat) {
      kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat, m.node});
    }
  }

  void OnFetchCheck(std::int32_t generation) {
    if (generation != fetch_generation_) return;  // superseded schedule
    shuffle_.Advance(now());
    ProcessFetchCompletions();
    ScheduleFetchCheck();
  }

  /// Moves every completed fetch into the merge+reduce phase. Safe to call
  /// after any shuffle_ mutation at the current time.
  void ProcessFetchCompletions() {
    for (std::size_t i = 0; i < fetching_.size();) {
      const auto [job_id, index] = fetching_[i];
      JobRuntime& job = *jobs_[job_id];
      ReduceTaskRt& r = job.reduces()[index];
      if (!shuffle_.IsComplete(r.flow)) {
        ++i;
        continue;
      }
      shuffle_.Retire(r.flow);
      r.flow = -1;
      const AppModel& app = job.spec().app;
      const NodeState& rnode = nodes_[r.node];
      const double speed = rnode.speed * rnode.fault_slowdown;
      const double merge_dur =
          r.bytes_mb * app.merge_cost_s_per_mb * r.merge_noise / speed;
      const double reduce_dur =
          (app.reduce_startup_s +
           r.bytes_mb * app.reduce_cost_s_per_mb * r.reduce_noise) /
          speed;
      r.phase = ReducePhase::kMergeAndReduce;
      r.shuffle_end = now() + merge_dur;
      r.end = r.shuffle_end + reduce_dur;
      // The reduce's shuffle fetch finished; it enters merge+reduce now.
      if (obs_ != nullptr)
        obs_->OnTaskPhaseTransition(now(), job_id, obs::TaskKind::kReduce,
                                    index, "merge+reduce");
      kernel_.Schedule(r.end, Event{EventKind::kReduceDone, job_id, index});
      fetching_[i] = fetching_.back();
      fetching_.pop_back();
    }
  }

  void ScheduleFetchCheck() {
    ++fetch_generation_;
    const SimTime next = shuffle_.NextEventTime();
    if (next < kTimeInfinity) {
      kernel_.Schedule(std::max(next, now()),
                  Event{EventKind::kFetchCheck, 0, fetch_generation_});
    }
  }

  // --- fault injection -------------------------------------------------

  void OnFaultAction(std::int32_t action_index) {
    const fault::FaultAction a = fault_actions_[action_index];
    switch (a.kind) {
      case fault::FaultActionKind::kNodeCrash:
        CrashNode(a.node);
        break;
      case fault::FaultActionKind::kNodeRestore:
        RestoreNode(a.node);
        break;
      case fault::FaultActionKind::kHeartbeatLoss: {
        NodeState& node = nodes_[a.node];
        if (node.down) break;  // a dead daemon has no heartbeats to lose
        node.hb_suppressed_until =
            std::max(node.hb_suppressed_until, a.end_time);
        // If the silence outlasts the expiry interval the JobTracker will
        // declare the tracker lost while the node is still alive.
        kernel_.Schedule(
            std::max(now(), node.last_heartbeat +
                                options_.config.tasktracker_expiry_interval),
            Event{EventKind::kTrackerExpiry, a.node});
        break;
      }
      case fault::FaultActionKind::kNodeSlowdown:
        nodes_[a.node].fault_slowdown *= a.factor;
        break;
      case fault::FaultActionKind::kKillAttempt:
        KillTargetedAttempt(a);
        break;
    }
  }

  /// Node-side death: heartbeats stop, in-flight map outputs never land,
  /// running fetches stop pulling bandwidth. The JobTracker only notices
  /// at expiry time (or when a restore brings the tracker back first).
  void CrashNode(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    if (node.down) return;
    node.down = true;
    ++node.hb_epoch;  // orphan the in-flight heartbeat chain
    shuffle_.Advance(now());
    bool retired = false;
    for (const NodeTask& entry : node.running) CancelAttemptIo(entry, &retired);
    if (retired) {
      ProcessFetchCompletions();
      ScheduleFetchCheck();
    }
    kernel_.Schedule(
        std::max(now(), node.last_heartbeat +
                            options_.config.tasktracker_expiry_interval),
        Event{EventKind::kTrackerExpiry, node_id});
    SIMMR_DEBUG << "t=" << now() << " node " << node_id << " crashed ("
                << node.running.size() << " attempts stranded)";
  }

  /// JobTracker-side lost-tracker check, armed whenever a node goes silent.
  void OnTrackerExpiry(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    if (node.lost) return;
    // Stale check: the tracker has been heard from since this was armed.
    if (now() + kTimeEpsilon <
        node.last_heartbeat + options_.config.tasktracker_expiry_interval)
      return;
    const bool silent = node.down || now() < node.hb_suppressed_until;
    if (!silent) return;
    DeclareNodeLost(node_id);
  }

  void DeclareNodeLost(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    node.lost = true;
    if (!node.down) {
      // The daemon is alive but unreachable (heartbeat loss): from the
      // JobTracker's point of view it is gone. Model the declaration as a
      // node death with an automatic rejoin when the window closes.
      node.down = true;
      ++node.hb_epoch;
      shuffle_.Advance(now());
      bool retired = false;
      for (const NodeTask& entry : node.running)
        CancelAttemptIo(entry, &retired);
      if (retired) {
        ProcessFetchCompletions();
        ScheduleFetchCheck();
      }
      if (node.hb_suppressed_until > now()) {
        fault::FaultAction rejoin;
        rejoin.kind = fault::FaultActionKind::kNodeRestore;
        rejoin.time = node.hb_suppressed_until;
        rejoin.node = node_id;
        const auto idx = static_cast<std::int32_t>(fault_actions_.size());
        fault_actions_.push_back(rejoin);
        kernel_.Schedule(rejoin.time, Event{EventKind::kFaultAction, idx});
      }
    }
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeLost, node_id, -1,
                         obs::TaskKind::kMap, -1);
    SIMMR_DEBUG << "t=" << now() << " node " << node_id << " declared lost";
    ReapNodeAttempts(node_id);
    ReexecuteLostMapOutputs(node_id);
  }

  /// A crashed node rejoins with empty slots; its local disk is treated as
  /// wiped, so if the JobTracker had not yet declared it lost the stranded
  /// attempts are reaped and its completed map outputs re-executed now.
  void RestoreNode(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    if (!node.down) return;
    if (!node.lost) {
      ReapNodeAttempts(node_id);
      ReexecuteLostMapOutputs(node_id);
    }
    node.running.clear();
    node.down = false;
    node.lost = false;
    node.hb_suppressed_until = 0.0;
    node.slots.free_maps = options_.config.map_slots_per_node;
    node.slots.free_reduces = options_.config.reduce_slots_per_node;
    node.last_heartbeat = now();
    ++node.hb_epoch;
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeRestored, node_id,
                         -1, obs::TaskKind::kMap, -1);
    SIMMR_DEBUG << "t=" << now() << " node " << node_id << " restored";
    if (finished_jobs_ < submissions_.size()) {
      kernel_.Schedule(now(),
                  Event{EventKind::kHeartbeat, node_id, node.hb_epoch});
    }
  }

  /// Kills every attempt stranded on a dead node and resets its slots.
  /// Node-side IO was already cancelled at the down transition.
  void ReapNodeAttempts(NodeId node_id) {
    NodeState& node = nodes_[node_id];
    const std::vector<NodeTask> stranded = std::move(node.running);
    node.running.clear();
    for (const NodeTask& entry : stranded)
      KillAttemptEntry(node_id, entry, /*free_slot=*/false,
                       /*cancel_io=*/false);
    node.slots.free_maps = options_.config.map_slots_per_node;
    node.slots.free_reduces = options_.config.reduce_slots_per_node;
  }

  /// A lost node's local disk is gone: every completed map whose output
  /// lived there must re-execute for jobs whose reduces still need it.
  /// Data the reduces already fetched survives (MapTaskRt::rerun).
  void ReexecuteLostMapOutputs(NodeId node_id) {
    for (const auto& job_ptr : jobs_) {
      JobRuntime& job = *job_ptr;
      if (job.Finished() || job.num_reduces() == 0) continue;
      for (TaskIndex i = 0; i < job.num_maps(); ++i) {
        MapTaskRt& m = job.maps()[i];
        if (!m.reported || m.node != node_id) continue;
        m.reported = false;
        --job.maps_reported;
        if (m.data_ready) {
          m.data_ready = false;
          --job.maps_data_ready;
        }
        m.rerun = true;
        m.state = TaskState::kPending;
        m.speculated = false;
        job.RequeueMap(i);
        if (obs_ != nullptr)
          obs_->OnFaultEvent(now(), obs::FaultEventKind::kTaskReexecuted,
                             node_id, job.id(), obs::TaskKind::kMap, i);
        SIMMR_DEBUG << "t=" << now() << " job " << job.id() << " map " << i
                    << " re-executed (output lost with node " << node_id
                    << ")";
      }
    }
  }

  /// Targeted fault-plan kill: every running attempt of the named task is
  /// killed immediately and the task requeued. No-op when the task is not
  /// running (the plan's timing missed).
  void KillTargetedAttempt(const fault::FaultAction& a) {
    if (a.job < 0 || a.job >= static_cast<JobId>(jobs_.size())) return;
    JobRuntime& job = *jobs_[a.job];
    if (job.Finished()) return;
    const TaskKind kind = a.task_kind == obs::TaskKind::kMap
                              ? TaskKind::kMap
                              : TaskKind::kReduce;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      NodeState& node = nodes_[n];
      if (node.down) continue;  // stranded entries are handled at expiry
      for (std::size_t i = 0; i < node.running.size();) {
        if (node.running[i].job != a.job || node.running[i].kind != kind ||
            node.running[i].index != a.index) {
          ++i;
          continue;
        }
        const NodeTask entry = node.running[i];
        node.running[i] = node.running.back();
        node.running.pop_back();
        KillAttemptEntry(static_cast<NodeId>(n), entry, /*free_slot=*/true,
                         /*cancel_io=*/true);
        if (options_.config.out_of_band_heartbeat) {
          kernel_.Schedule(now(), Event{EventKind::kOobHeartbeat,
                                  static_cast<NodeId>(n)});
        }
      }
    }
  }

  /// Node-side cancellation of an attempt's pending IO: the map-output
  /// landing event is annulled and a running fetch stops consuming
  /// bandwidth. The caller must have Advance()d the shuffle model; sets
  /// *retired when a flow was removed so the caller can re-run the fetch
  /// bookkeeping once.
  void CancelAttemptIo(const NodeTask& entry, bool* retired) {
    if (entry.kind == TaskKind::kMap) {
      if (!entry.failing && entry.end > now() + kTimeEpsilon)
        cancelled_map_data_.push_back({entry.job, entry.index, entry.end});
    } else {
      ReduceTaskRt& r = jobs_[entry.job]->reduces()[entry.index];
      if (r.phase == ReducePhase::kFetch && r.flow >= 0) {
        for (std::size_t i = 0; i < fetching_.size(); ++i) {
          if (fetching_[i].first == entry.job &&
              fetching_[i].second == entry.index) {
            fetching_[i] = fetching_.back();
            fetching_.pop_back();
            break;
          }
        }
        shuffle_.Retire(r.flow);
        r.flow = -1;
        *retired = true;
      }
    }
  }

  /// Reaps one running attempt: logs it as not-succeeded, notifies
  /// observers, releases JobTracker-side accounting and requeues the task
  /// (or fails the job when the attempt budget is exhausted). The caller
  /// removes the entry from its node's running list.
  void KillAttemptEntry(NodeId node_id, const NodeTask& entry, bool free_slot,
                        bool cancel_io) {
    JobRuntime& job = *jobs_[entry.job];
    if (cancel_io) {
      shuffle_.Advance(now());
      bool retired = false;
      CancelAttemptIo(entry, &retired);
      if (retired) {
        ProcessFetchCompletions();
        ScheduleFetchCheck();
      }
    }
    if (entry.kind == TaskKind::kMap) {
      MapTaskRt& m = job.maps()[entry.index];
      TaskAttemptRecord rec;
      rec.job = entry.job;
      rec.kind = TaskKind::kMap;
      rec.index = entry.index;
      rec.node = node_id;
      rec.start = entry.start;
      rec.shuffle_end = entry.start;
      rec.end = now();
      rec.input_mb = m.input_mb;
      rec.succeeded = false;
      log_.AddTask(rec);
      if (obs_ != nullptr) {
        obs_->OnTaskCompletion(now(), entry.job, obs::TaskKind::kMap,
                               entry.index,
                               obs::TaskTiming{entry.start, entry.start,
                                               now()},
                               false);
        obs_->OnFaultEvent(now(), obs::FaultEventKind::kAttemptKilled,
                           node_id, entry.job, obs::TaskKind::kMap,
                           entry.index);
      }
      --job.running_maps;
      --m.active_attempts;
      if (free_slot) ++nodes_[node_id].slots.free_maps;
      if (m.data_ready && !m.reported) {
        // The output landed on this node's disk but was never reported;
        // it dies with the node.
        m.data_ready = false;
        --job.maps_data_ready;
        m.rerun = true;
      }
      if (!m.reported && m.active_attempts == 0) {
        m.state = TaskState::kPending;
        m.speculated = false;
        RequeueMapChecked(job, entry.index);
      }
    } else {
      ReduceTaskRt& r = job.reduces()[entry.index];
      TaskAttemptRecord rec;
      rec.job = entry.job;
      rec.kind = TaskKind::kReduce;
      rec.index = entry.index;
      rec.node = node_id;
      rec.start = r.start;
      rec.shuffle_end = now();
      rec.end = now();
      rec.input_mb = r.bytes_mb;
      rec.succeeded = false;
      log_.AddTask(rec);
      if (obs_ != nullptr) {
        obs_->OnTaskCompletion(now(), entry.job, obs::TaskKind::kReduce,
                               entry.index,
                               obs::TaskTiming{r.start, now(), now()}, false);
        obs_->OnFaultEvent(now(), obs::FaultEventKind::kAttemptKilled,
                           node_id, entry.job, obs::TaskKind::kReduce,
                           entry.index);
      }
      --job.running_reduces;
      if (free_slot) ++nodes_[node_id].slots.free_reduces;
      r.attempt_failing = false;
      r.state = TaskState::kPending;
      r.phase = ReducePhase::kFetch;
      r.flow = -1;
      r.shuffle_end = 0.0;
      r.end = kTimeInfinity;
      RequeueReduceChecked(job, entry.index);
    }
  }

  const std::vector<SubmittedJob>& submissions_;
  const TestbedOptions& options_;
  Rng master_rng_;
  obs::SimObserver* obs_;
  Rng failure_rng_{0};
  Rng speculation_rng_{0};
  SimTime node_last_attempt_end_ = 0.0;
  ShuffleModel shuffle_;
  std::unique_ptr<TestbedScheduler> scheduler_;
  std::vector<NodeState> nodes_;
  std::vector<std::unique_ptr<JobRuntime>> jobs_;
  std::vector<const JobRuntime*> job_queue_;
  std::vector<std::pair<JobId, TaskIndex>> fetching_;
  // Sorted plan actions; grows when a lost-but-alive tracker's automatic
  // rejoin is scheduled as a synthetic restore.
  std::vector<fault::FaultAction> fault_actions_;
  std::vector<CancelledMapData> cancelled_map_data_;
  SimKernel<Event> kernel_;
  HistoryLog log_;
  SimTime makespan_ = 0.0;
  std::size_t finished_jobs_ = 0;
  std::int32_t fetch_generation_ = 0;
};

}  // namespace

double MapReadPenalty(const ClusterConfig& config, const MapTaskRt& map,
                      NodeId node) {
  if (!config.model_locality || config.remote_read_mbps <= 0.0) return 0.0;
  if (std::find(map.replicas.begin(), map.replicas.end(), node) !=
      map.replicas.end())
    return 0.0;  // node-local
  const int racks = std::max(1, config.num_racks);
  for (const NodeId replica : map.replicas) {
    if (replica % racks == node % racks)
      return map.input_mb / (2.0 * config.remote_read_mbps);  // rack-local
  }
  return map.input_mb / config.remote_read_mbps;  // cross-rack
}

TestbedResult RunTestbed(const std::vector<SubmittedJob>& jobs,
                         const TestbedOptions& options) {
  return TestbedSim(jobs, options).Run();
}

}  // namespace simmr::cluster
