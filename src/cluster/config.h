// Cluster hardware/configuration model for the testbed emulator.
//
// Defaults describe the paper's testbed (Section IV-B): 66 HP DL145 G3
// machines — 2 masters + 64 workers — in two racks on gigabit Ethernet,
// Hadoop 0.20.2, one map slot and one reduce slot per worker, 64 MB blocks,
// replication 3, speculation disabled.
#pragma once

#include <cstdint>

#include "simcore/time.h"

namespace simmr::cluster {

struct ClusterConfig {
  /// Worker (TaskTracker) node count. Masters are not modeled as workers.
  int num_nodes = 64;

  /// Racks; nodes are assigned round-robin. Only used by the shuffle model's
  /// cross-rack bandwidth discount.
  int num_racks = 2;

  int map_slots_per_node = 1;
  int reduce_slots_per_node = 1;

  /// TaskTracker heartbeat period (Hadoop 0.20 default: 3 s). Task
  /// completions are observed by the JobTracker only on the next heartbeat
  /// of the reporting node — one of the real-world effects SimMR's
  /// task-level replay abstracts away.
  SimDuration heartbeat_interval = 3.0;

  /// Spread the nodes' heartbeat phases evenly across the interval (the
  /// default, matching a cluster whose daemons started at different
  /// moments). When false every tracker beats at the same instants, so
  /// each round's arrival order at the JobTracker is a genuine race — the
  /// nondeterminism the model checker (src/mc) enumerates through
  /// TestbedOptions::oracle.
  bool heartbeat_stagger = true;

  /// HDFS block size; determines the number of map tasks per job.
  double block_size_mb = 64.0;

  /// Per-node effective shuffle service bandwidth, MB/s. Far below the GigE
  /// line rate: shuffle fetches contend with HDFS traffic and pay for disk
  /// seeks on both the serving and fetching side. Chosen so that with one
  /// reduce slot per node the per-flow cap (not the aggregate) binds —
  /// which is what makes typical shuffle durations invariant to the slot
  /// allocation (Figure 3).
  double node_bandwidth_mbps = 10.0;

  /// Multiplier applied to flows whose endpoints are in different racks
  /// (top-of-rack uplink oversubscription).
  double cross_rack_factor = 0.7;

  /// Fraction of a job's map tasks that must complete before its reduce
  /// tasks become schedulable (Hadoop's
  /// mapred.reduce.slowstart.completed.maps; 0.20 default 0.05).
  double reduce_slowstart = 0.05;

  /// When true, a TaskTracker sends an immediate extra heartbeat the moment
  /// a task finishes (Hadoop's mapreduce.tasktracker.outofband.heartbeat),
  /// removing the up-to-3 s completion-report latency per task wave.
  bool out_of_band_heartbeat = true;

  /// Probability that a launched task attempt fails partway through and is
  /// re-executed (Hadoop retries failed attempts). 0 disables failure
  /// injection. Failed attempts occupy their slot for a uniform fraction
  /// of the attempt's nominal duration and are logged with succeeded=false.
  double task_failure_prob = 0.0;

  /// How long a TaskTracker's heartbeat may go unseen before the
  /// JobTracker declares the node lost (Hadoop's
  /// mapred.tasktracker.expiry.interval, default 600 s). A lost node's
  /// running attempts are killed and rescheduled, and its completed map
  /// outputs — which lived on its local disk — are re-executed for jobs
  /// whose reduces still need them. Only exercised when a fault plan
  /// silences a node (TestbedOptions::fault_plan).
  SimDuration tasktracker_expiry_interval = 600.0;

  /// Per-task attempt budget (Hadoop's mapred.map/reduce.max.attempts,
  /// default 4). When a task accumulates this many failed or killed
  /// attempts the whole job is failed. 0 = unlimited (the pre-fault
  /// behaviour, kept as the default so pure failure-injection runs never
  /// abort jobs).
  int max_attempts = 0;

  /// JobTracker-side blacklisting: a node that accumulates this many
  /// failed attempts stops receiving new work (its heartbeats still
  /// report). 0 disables (the default).
  int node_blacklist_failures = 0;

  /// Speculative execution of straggler map tasks (the paper's testbed ran
  /// with speculation *disabled*, hence the default). When a node has a
  /// free map slot and no pending map exists, a backup attempt is launched
  /// for a running map whose planned duration exceeds
  /// speculation_slowness_threshold x the job's average completed map
  /// duration; the first finishing attempt wins and the other is killed.
  bool speculative_execution = false;
  double speculation_slowness_threshold = 1.5;

  /// Data-locality modeling. Each map's input block lives on `replication`
  /// nodes; a map scheduled off its replicas pays a read-over-network
  /// penalty of input_mb / remote_read_mbps seconds (halved when a replica
  /// sits in the same rack). The JobTracker prefers node-local, then
  /// rack-local pending maps, like Hadoop's FIFO scheduler. The paper's
  /// SimMR deliberately ignores locality (its effects are absorbed into
  /// the profiled task durations); modeling it on the testbed side lets
  /// that abstraction be validated. Off by default.
  bool model_locality = false;
  int replication = 3;
  double remote_read_mbps = 40.0;
  /// When locality is modeled, prefer node-local then rack-local pending
  /// maps at assignment (Hadoop's behaviour). Disable to measure what
  /// locality-blind assignment costs.
  bool locality_aware_scheduling = true;

  /// Relative node-speed heterogeneity: each node gets a speed factor drawn
  /// from Normal(1, node_speed_sigma), truncated at 0.7. Zero disables.
  double node_speed_sigma = 0.03;

  int TotalMapSlots() const { return num_nodes * map_slots_per_node; }
  int TotalReduceSlots() const { return num_nodes * reduce_slots_per_node; }
};

}  // namespace simmr::cluster
