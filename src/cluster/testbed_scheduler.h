// Job-selection policies for the testbed emulator's JobTracker.
//
// The testbed side mirrors the policies SimMR evaluates so Figure 5(b,c)
// can compare testbed executions against SimMR replays under the same
// policy. Resource *amounts* are expressed uniformly through per-job
// SlotCaps (see job.h): FIFO/MaxEDF leave caps unlimited; MinEDF installs
// the ARIA minimal allocation via the SlotCapFn hook at submission time
// (wired by the caller, keeping this module independent of the scheduler
// library).
#pragma once

#include <vector>

#include "cluster/job.h"

namespace simmr::cluster {

/// Chooses which job's task to launch next. Implementations must respect
/// each job's SlotCaps and the reduce slowstart gate.
class TestbedScheduler {
 public:
  virtual ~TestbedScheduler() = default;

  /// Picks the job whose next map task should run, or kInvalidJob.
  /// `job_queue` holds arrived, unfinished jobs in arrival order.
  virtual JobId PickMapJob(const std::vector<const JobRuntime*>& job_queue) = 0;

  /// Picks the job whose next reduce task should run, or kInvalidJob.
  virtual JobId PickReduceJob(
      const std::vector<const JobRuntime*>& job_queue,
      double slowstart_fraction) = 0;
};

/// Earliest-arrival-first (Hadoop's default FIFO).
class FifoTestbedScheduler final : public TestbedScheduler {
 public:
  JobId PickMapJob(const std::vector<const JobRuntime*>& job_queue) override;
  JobId PickReduceJob(const std::vector<const JobRuntime*>& job_queue,
                      double slowstart_fraction) override;
};

/// Earliest-deadline-first ordering (jobs without a deadline sort last, by
/// arrival). With unlimited caps this is the paper's MaxEDF; with ARIA caps
/// it is MinEDF.
class EdfTestbedScheduler final : public TestbedScheduler {
 public:
  JobId PickMapJob(const std::vector<const JobRuntime*>& job_queue) override;
  JobId PickReduceJob(const std::vector<const JobRuntime*>& job_queue,
                      double slowstart_fraction) override;
};

}  // namespace simmr::cluster
