// Node-level Hadoop testbed emulator.
//
// This is the repository's stand-in for the paper's 66-node physical
// cluster (see DESIGN.md section 2). It is a discrete-event simulation at
// TaskTracker granularity: nodes send heartbeats every 3 s, the emulated
// JobTracker assigns at most one map and one reduce task per heartbeat
// (Hadoop 0.20 behaviour), task completions become visible to the
// JobTracker only on the next heartbeat of the executing node, and shuffle
// transfers move through a contended fluid-flow bandwidth model fed
// progressively by finishing map tasks.
//
// Its output is a HistoryLog — the ground truth that MRProfiler turns into
// SimMR traces and against which SimMR/Mumak accuracy is measured.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/config.h"
#include "cluster/history_log.h"
#include "cluster/job.h"
#include "fault/fault_plan.h"
#include "obs/observer.h"
#include "simcore/choice.h"

namespace simmr::cluster {

enum class SchedulerKind { kFifo, kEdf };

/// Computes per-job slot caps at submission time. Used to run the paper's
/// "requested number of slots" FIFO variant (Section II) and MinEDF's
/// minimal allocations (Section V) on the testbed.
using SlotCapFn = std::function<SlotCaps(const SubmittedJob&)>;

struct TestbedOptions {
  ClusterConfig config{};
  std::uint64_t seed = 42;
  SchedulerKind scheduler = SchedulerKind::kFifo;
  /// Optional per-job cap hook; unlimited caps when empty.
  SlotCapFn caps;
  /// Optional live-instrumentation sink (borrowed; must outlive the run).
  /// Null by default — one branch per hook site, nothing else.
  obs::SimObserver* observer = nullptr;
  /// Optional schedule oracle (borrowed; must outlive the run). When set,
  /// every tie among same-time pending events — heartbeat arrival order,
  /// same-instant task completions — is resolved by the oracle instead of
  /// insertion order. Null keeps the classic deterministic drain. The
  /// stateless model checker (src/mc) injects this to enumerate every
  /// legal interleaving of a run.
  ScheduleOracle* oracle = nullptr;
  /// Optional deterministic fault plan (borrowed; must outlive the run).
  /// Actions are injected as ordinary queue events, so a faulted run is
  /// exactly as deterministic as a healthy one. The plan must pass
  /// fault::ValidateFaultPlan against this config's geometry; RunTestbed
  /// throws std::invalid_argument otherwise.
  const fault::FaultPlan* fault_plan = nullptr;
};

struct TestbedResult {
  HistoryLog log;
  std::uint64_t events_processed = 0;
  SimTime makespan = 0.0;  // finish time of the last job
};

/// Runs the submitted jobs to completion and returns the execution log.
/// Jobs must be supplied in nondecreasing submit_time order.
/// Throws std::invalid_argument on unordered submissions or empty specs.
TestbedResult RunTestbed(const std::vector<SubmittedJob>& jobs,
                         const TestbedOptions& options);

/// Extra read time a map attempt pays when scheduled on `node`:
/// 0 when locality modeling is off or a replica is node-local;
/// input_mb / (2 * remote_read_mbps) for a rack-local replica;
/// input_mb / remote_read_mbps otherwise. Exposed for tests.
double MapReadPenalty(const ClusterConfig& config, const MapTaskRt& map,
                      NodeId node);

}  // namespace simmr::cluster
