#include "cluster/testbed_scheduler.h"

#include <algorithm>

namespace simmr::cluster {
namespace {

bool MapEligible(const JobRuntime& job) {
  return job.HasPendingMap() && job.RunningMaps() < job.caps().map_cap;
}

bool ReduceEligible(const JobRuntime& job, double slowstart) {
  return job.HasPendingReduce() && job.ReduceReady(slowstart) &&
         job.RunningReduces() < job.caps().reduce_cap;
}

/// Deadline key: jobs without a deadline sort after all deadlined jobs;
/// ties broken by arrival then id for determinism.
bool EdfBefore(const JobRuntime* a, const JobRuntime* b) {
  const bool a_has = a->deadline() > 0.0;
  const bool b_has = b->deadline() > 0.0;
  if (a_has != b_has) return a_has;
  if (a_has && a->deadline() != b->deadline())
    return a->deadline() < b->deadline();
  if (a->submit_time() != b->submit_time())
    return a->submit_time() < b->submit_time();
  return a->id() < b->id();
}

template <typename Eligible>
JobId PickFirst(const std::vector<const JobRuntime*>& queue,
                Eligible&& eligible) {
  for (const JobRuntime* job : queue) {
    if (eligible(*job)) return job->id();
  }
  return kInvalidJob;
}

template <typename Eligible>
JobId PickEdf(const std::vector<const JobRuntime*>& queue,
              Eligible&& eligible) {
  const JobRuntime* best = nullptr;
  for (const JobRuntime* job : queue) {
    if (!eligible(*job)) continue;
    if (best == nullptr || EdfBefore(job, best)) best = job;
  }
  return best != nullptr ? best->id() : kInvalidJob;
}

}  // namespace

JobId FifoTestbedScheduler::PickMapJob(
    const std::vector<const JobRuntime*>& job_queue) {
  return PickFirst(job_queue, MapEligible);
}

JobId FifoTestbedScheduler::PickReduceJob(
    const std::vector<const JobRuntime*>& job_queue,
    double slowstart_fraction) {
  return PickFirst(job_queue, [slowstart_fraction](const JobRuntime& j) {
    return ReduceEligible(j, slowstart_fraction);
  });
}

JobId EdfTestbedScheduler::PickMapJob(
    const std::vector<const JobRuntime*>& job_queue) {
  return PickEdf(job_queue, MapEligible);
}

JobId EdfTestbedScheduler::PickReduceJob(
    const std::vector<const JobRuntime*>& job_queue,
    double slowstart_fraction) {
  return PickEdf(job_queue, [slowstart_fraction](const JobRuntime& j) {
    return ReduceEligible(j, slowstart_fraction);
  });
}

}  // namespace simmr::cluster
