// Fluid-flow shuffle transfer model for the testbed emulator.
//
// Each reduce task in its fetch phase is one "flow" pulling intermediate
// data that becomes available progressively as map tasks finish. A flow's
// instantaneous rate is min(per-flow cap, aggregate bandwidth / #active
// flows); a flow is active while it has fetched less than what is available.
// This produces exactly the asymmetry the paper's profile format captures:
// the first reduce wave's shuffle is stretched across the tail of the map
// stage (availability-limited), while later waves fetch everything at full
// rate (bandwidth-limited only).
//
// The model is advanced lazily: Advance(now) integrates all flows up to
// `now`, and NextEventTime() tells the simulator when the earliest flow
// state change (starvation or completion) will occur if nothing else
// happens first.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/time.h"

namespace simmr::cluster {

/// Opaque handle to a flow inside the ShuffleModel.
using FlowId = std::int32_t;

class ShuffleModel {
 public:
  /// aggregate_bw and per_flow_cap are in MB per simulated second.
  ShuffleModel(double aggregate_bw, double per_flow_cap);

  /// Registers a new flow needing total_mb in all, of which available_mb can
  /// be fetched immediately. Call Advance(now) first.
  FlowId AddFlow(double total_mb, double available_mb);

  /// Increases a flow's currently fetchable bytes (a map task finished).
  /// Call Advance(now) first. Availability is clamped to the flow total.
  void AddAvailability(FlowId flow, double mb);

  /// Integrates all flow progress from the last update time to `now` and
  /// recomputes rates. `now` must be nondecreasing across calls.
  void Advance(SimTime now);

  /// True once the flow has fetched all of its total_mb.
  bool IsComplete(FlowId flow) const;

  /// Bytes fetched so far (as of the last Advance).
  double FetchedMb(FlowId flow) const;

  /// Earliest future time at which some flow completes or starves, or
  /// kTimeInfinity when no flow is active. Valid after Advance.
  SimTime NextEventTime() const;

  /// Removes a completed flow from bookkeeping (its id stays valid for
  /// IsComplete queries but it no longer consumes bandwidth).
  void Retire(FlowId flow);

  int ActiveFlowCount() const { return active_count_; }

 private:
  struct Flow {
    double total_mb = 0.0;
    double available_mb = 0.0;
    double fetched_mb = 0.0;
    double rate = 0.0;  // MB/s as of the last recompute
    bool retired = false;
  };

  void RecomputeRates();
  bool FlowActive(const Flow& f) const;

  double aggregate_bw_;
  double per_flow_cap_;
  std::vector<Flow> flows_;
  SimTime last_update_ = 0.0;
  int active_count_ = 0;
};

}  // namespace simmr::cluster
