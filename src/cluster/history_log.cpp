#include "cluster/history_log.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace simmr::cluster {
namespace {

constexpr const char* kMagic = "SIMMR-HISTORY-V1";

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (true) {
    const std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
  return fields;
}

double ParseDouble(const std::string& s, const char* what) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("HistoryLog: bad ") + what + ": '" +
                             s + "'");
  }
}

int ParseInt(const std::string& s, const char* what) {
  try {
    std::size_t consumed = 0;
    const int v = std::stoi(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("HistoryLog: bad ") + what + ": '" +
                             s + "'");
  }
}

}  // namespace

void HistoryLog::AddJob(JobRecord record) { jobs_.push_back(std::move(record)); }

void HistoryLog::AddTask(TaskAttemptRecord record) {
  tasks_.push_back(record);
}

std::vector<TaskAttemptRecord> HistoryLog::TasksOf(JobId job) const {
  std::vector<TaskAttemptRecord> out;
  for (const auto& t : tasks_) {
    if (t.job == job) out.push_back(t);
  }
  return out;
}

const JobRecord& HistoryLog::JobOf(JobId job) const {
  for (const auto& j : jobs_) {
    if (j.job == job) return j;
  }
  throw std::out_of_range("HistoryLog::JobOf: unknown job id " +
                          std::to_string(job));
}

void HistoryLog::Write(std::ostream& out) const {
  out << kMagic << '\n';
  out.precision(9);
  for (const auto& j : jobs_) {
    out << "JOB\t" << j.job << '\t' << j.app_name << '\t' << j.dataset << '\t'
        << j.num_maps << '\t' << j.num_reduces << '\t' << j.input_mb << '\t'
        << j.submit_time << '\t' << j.launch_time << '\t' << j.finish_time
        << '\t' << j.maps_done_time << '\t' << j.deadline;
    // The failed column is appended only when set, so fault-free logs stay
    // byte-identical to what pre-fault versions wrote.
    if (j.failed) out << "\t1";
    out << '\n';
  }
  for (const auto& t : tasks_) {
    out << "TASK\t" << t.job << '\t' << TaskKindName(t.kind) << '\t' << t.index
        << '\t' << t.node << '\t' << t.start << '\t' << t.shuffle_end << '\t'
        << t.end << '\t' << t.input_mb << '\t' << (t.succeeded ? 1 : 0)
        << '\n';
  }
}

void HistoryLog::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("HistoryLog: cannot open " + path);
  Write(out);
  if (!out) throw std::runtime_error("HistoryLog: write failed for " + path);
}

HistoryLog HistoryLog::Read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("HistoryLog: bad or missing magic header");
  HistoryLog log;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = SplitTabs(line);
    if (f[0] == "JOB") {
      if (f.size() != 12 && f.size() != 13)
        throw std::runtime_error("HistoryLog: JOB line needs 12 fields");
      JobRecord j;
      j.job = ParseInt(f[1], "job id");
      j.app_name = f[2];
      j.dataset = f[3];
      j.num_maps = ParseInt(f[4], "num_maps");
      j.num_reduces = ParseInt(f[5], "num_reduces");
      j.input_mb = ParseDouble(f[6], "input_mb");
      j.submit_time = ParseDouble(f[7], "submit_time");
      j.launch_time = ParseDouble(f[8], "launch_time");
      j.finish_time = ParseDouble(f[9], "finish_time");
      j.maps_done_time = ParseDouble(f[10], "maps_done_time");
      j.deadline = ParseDouble(f[11], "deadline");
      j.failed = f.size() == 13 && ParseInt(f[12], "failed") != 0;
      log.AddJob(std::move(j));
    } else if (f[0] == "TASK") {
      if (f.size() != 10)
        throw std::runtime_error("HistoryLog: TASK line needs 10 fields");
      TaskAttemptRecord t;
      t.job = ParseInt(f[1], "job id");
      if (f[2] == "MAP") {
        t.kind = TaskKind::kMap;
      } else if (f[2] == "REDUCE") {
        t.kind = TaskKind::kReduce;
      } else {
        throw std::runtime_error("HistoryLog: bad task kind '" + f[2] + "'");
      }
      t.index = ParseInt(f[3], "task index");
      t.node = ParseInt(f[4], "node");
      t.start = ParseDouble(f[5], "start");
      t.shuffle_end = ParseDouble(f[6], "shuffle_end");
      t.end = ParseDouble(f[7], "end");
      t.input_mb = ParseDouble(f[8], "input_mb");
      t.succeeded = ParseInt(f[9], "succeeded") != 0;
      log.AddTask(t);
    } else {
      throw std::runtime_error("HistoryLog: unknown record type '" + f[0] +
                               "'");
    }
  }
  return log;
}

HistoryLog HistoryLog::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("HistoryLog: cannot open " + path);
  return Read(in);
}

}  // namespace simmr::cluster
