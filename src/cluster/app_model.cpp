#include "cluster/app_model.h"

#include <cmath>

namespace simmr::cluster {

int JobSpec::NumMaps(double block_size_mb) const {
  return static_cast<int>(std::ceil(input_mb / block_size_mb));
}

namespace apps {

AppModel WordCount() {
  AppModel m;
  m.name = "WordCount";
  m.map_cost_s_per_mb = 0.29;   // tokenization dominates
  m.map_startup_s = 1.2;
  m.map_sigma = 0.12;
  m.map_selectivity = 0.60;     // combiner collapses word counts
  m.merge_cost_s_per_mb = 0.02;
  m.reduce_cost_s_per_mb = 0.03;
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.12;
  return m;
}

AppModel WikiTrends() {
  AppModel m;
  m.name = "WikiTrends";
  m.map_cost_s_per_mb = 1.25;   // per-hour log decompression + parsing
  m.map_startup_s = 1.5;
  m.map_sigma = 0.18;           // compressed chunk sizes vary a lot
  m.map_selectivity = 0.70;
  m.merge_cost_s_per_mb = 0.04;
  m.reduce_cost_s_per_mb = 0.05;
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.16;
  return m;
}

AppModel Twitter() {
  AppModel m;
  m.name = "Twitter";
  m.map_cost_s_per_mb = 0.42;   // edge parsing + pair emission
  m.map_startup_s = 1.2;
  m.map_sigma = 0.10;
  m.map_selectivity = 1.0;
  m.merge_cost_s_per_mb = 0.05;
  m.reduce_cost_s_per_mb = 0.03;
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.12;
  return m;
}

AppModel Sort() {
  AppModel m;
  m.name = "Sort";
  m.map_cost_s_per_mb = 0.045;  // identity map, I/O bound
  m.map_startup_s = 1.0;
  m.map_sigma = 0.10;
  m.map_selectivity = 1.0;      // every byte is shuffled
  m.merge_cost_s_per_mb = 0.07; // external merge of full data
  m.reduce_cost_s_per_mb = 0.05;
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.15;
  return m;
}

AppModel Tfidf() {
  AppModel m;
  m.name = "TFIDF";
  m.map_cost_s_per_mb = 0.20;   // term-vector statistics
  m.map_startup_s = 1.0;
  m.map_sigma = 0.14;
  m.map_selectivity = 1.5;      // emits a score per term-document pair
  m.merge_cost_s_per_mb = 0.08;
  m.reduce_cost_s_per_mb = 0.02;
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.18;
  return m;
}

AppModel Bayes() {
  AppModel m;
  m.name = "Bayes";
  m.map_cost_s_per_mb = 0.58;   // feature extraction
  m.map_startup_s = 1.2;
  m.map_sigma = 0.13;
  m.map_selectivity = 0.50;
  m.merge_cost_s_per_mb = 0.03;
  m.reduce_cost_s_per_mb = 0.05; // simple count addition (with combiner)
  m.reduce_startup_s = 1.0;
  m.reduce_sigma = 0.10;
  return m;
}

}  // namespace apps

namespace {

JobSpec Spec(AppModel app, std::string label, double input_gb, int reduces) {
  JobSpec spec;
  spec.app = std::move(app);
  spec.dataset_label = std::move(label);
  spec.input_mb = input_gb * 1024.0;
  spec.num_reduces = reduces;
  return spec;
}

}  // namespace

std::vector<JobSpec> ValidationSuite() {
  // One dataset per application, sized so the default 64-worker cluster
  // produces completion times near Figure 5(a)'s parenthetical values.
  return {
      Spec(apps::WordCount(), "wiki-40GB", 40.0, 128),
      Spec(apps::WikiTrends(), "tt-55GB", 55.0, 128),
      Spec(apps::Twitter(), "edges-25GB", 25.0, 256),
      Spec(apps::Sort(), "rand-16GB", 16.0, 192),
      Spec(apps::Tfidf(), "vectors-8GB", 8.0, 128),
      Spec(apps::Bayes(), "wiki-pages-40GB", 40.0, 128),
  };
}

std::vector<JobSpec> FullWorkloadSuite() {
  // Section IV-C: each application over its three dataset variants.
  return {
      Spec(apps::WordCount(), "wiki-32GB", 32.0, 128),
      Spec(apps::WordCount(), "wiki-40GB", 40.0, 128),
      Spec(apps::WordCount(), "wiki-43GB", 43.0, 128),
      Spec(apps::WikiTrends(), "tt-45GB", 45.0, 128),
      Spec(apps::WikiTrends(), "tt-55GB", 55.0, 128),
      Spec(apps::WikiTrends(), "tt-60GB", 60.0, 128),
      Spec(apps::Twitter(), "edges-12GB", 12.0, 256),
      Spec(apps::Twitter(), "edges-18GB", 18.0, 256),
      Spec(apps::Twitter(), "edges-25GB", 25.0, 256),
      Spec(apps::Sort(), "rand-16GB", 16.0, 192),
      Spec(apps::Sort(), "rand-32GB", 32.0, 192),
      Spec(apps::Sort(), "rand-64GB", 64.0, 192),
      Spec(apps::Tfidf(), "vectors-6GB", 6.0, 128),
      Spec(apps::Tfidf(), "vectors-8GB", 8.0, 128),
      Spec(apps::Tfidf(), "vectors-10GB", 10.0, 128),
      Spec(apps::Bayes(), "wiki-pages-32GB", 32.0, 128),
      Spec(apps::Bayes(), "wiki-pages-40GB", 40.0, 128),
      Spec(apps::Bayes(), "wiki-pages-43GB", 43.0, 128),
  };
}

JobSpec SectionTwoExample() {
  // 200 map tasks (200 blocks = 12.5 GB) and 256 reduce tasks, as in the
  // Section II WordCount walk-through.
  return Spec(apps::WordCount(), "wiki-12.5GB", 12.5, 256);
}

}  // namespace simmr::cluster
