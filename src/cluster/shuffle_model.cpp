#include "cluster/shuffle_model.h"

#include <algorithm>
#include <stdexcept>

namespace simmr::cluster {

ShuffleModel::ShuffleModel(double aggregate_bw, double per_flow_cap)
    : aggregate_bw_(aggregate_bw), per_flow_cap_(per_flow_cap) {
  if (aggregate_bw <= 0 || per_flow_cap <= 0)
    throw std::invalid_argument("ShuffleModel: nonpositive bandwidth");
}

bool ShuffleModel::FlowActive(const Flow& f) const {
  if (f.retired) return false;
  const double fetchable = std::min(f.available_mb, f.total_mb);
  return f.fetched_mb + 1e-9 < fetchable;
}

FlowId ShuffleModel::AddFlow(double total_mb, double available_mb) {
  Flow f;
  f.total_mb = std::max(total_mb, 0.0);
  f.available_mb = std::min(std::max(available_mb, 0.0), f.total_mb);
  flows_.push_back(f);
  RecomputeRates();
  return static_cast<FlowId>(flows_.size() - 1);
}

void ShuffleModel::AddAvailability(FlowId flow, double mb) {
  Flow& f = flows_.at(flow);
  f.available_mb = std::min(f.available_mb + mb, f.total_mb);
  RecomputeRates();
}

void ShuffleModel::Advance(SimTime now) {
  if (now < last_update_ - kTimeEpsilon)
    throw std::logic_error("ShuffleModel::Advance: time moved backwards");
  const double dt = std::max(0.0, now - last_update_);
  if (dt > 0.0) {
    for (Flow& f : flows_) {
      if (!FlowActive(f)) continue;
      const double fetchable = std::min(f.available_mb, f.total_mb);
      f.fetched_mb = std::min(f.fetched_mb + f.rate * dt, fetchable);
    }
  }
  last_update_ = now;
  RecomputeRates();
}

void ShuffleModel::RecomputeRates() {
  active_count_ = 0;
  for (const Flow& f : flows_) {
    if (FlowActive(f)) ++active_count_;
  }
  const double shared =
      active_count_ > 0 ? aggregate_bw_ / active_count_ : 0.0;
  const double rate = std::min(per_flow_cap_, shared);
  for (Flow& f : flows_) {
    f.rate = FlowActive(f) ? rate : 0.0;
  }
}

bool ShuffleModel::IsComplete(FlowId flow) const {
  const Flow& f = flows_.at(flow);
  return f.fetched_mb + 1e-9 >= f.total_mb;
}

double ShuffleModel::FetchedMb(FlowId flow) const {
  return flows_.at(flow).fetched_mb;
}

SimTime ShuffleModel::NextEventTime() const {
  SimTime next = kTimeInfinity;
  for (const Flow& f : flows_) {
    if (!FlowActive(f) || f.rate <= 0.0) continue;
    const double fetchable = std::min(f.available_mb, f.total_mb);
    const double remaining = fetchable - f.fetched_mb;
    next = std::min(next, last_update_ + remaining / f.rate);
  }
  return next;
}

void ShuffleModel::Retire(FlowId flow) {
  flows_.at(flow).retired = true;
  RecomputeRates();
}

}  // namespace simmr::cluster
