// JobHistory-style structured execution log.
//
// The testbed emulator records one JobRecord per job and one
// TaskAttemptRecord per executed task, mirroring the information Hadoop's
// JobTracker history files carry (submit/launch/finish times per job;
// start / SORT_FINISHED / finish timestamps per task attempt). MRProfiler
// (src/trace) and the Rumen re-implementation (src/mumak) both parse this
// log, exactly as the paper's tools parse Hadoop logs.
//
// The text serialization is a line-oriented, versioned, tab-separated format
// so logs survive a file round-trip and can be inspected with standard
// tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "simcore/time.h"

namespace simmr::cluster {

/// Per-job summary record.
struct JobRecord {
  JobId job = kInvalidJob;
  std::string app_name;
  std::string dataset;
  int num_maps = 0;
  int num_reduces = 0;
  double input_mb = 0.0;
  SimTime submit_time = 0.0;
  SimTime launch_time = 0.0;   // first task assignment
  SimTime finish_time = 0.0;   // JobTracker-observed completion
  SimTime maps_done_time = 0.0;  // end of the map stage (last map finish)
  double deadline = 0.0;       // absolute; 0 when none was set
  /// True when the JobTracker aborted the job (a task exhausted
  /// ClusterConfig::max_attempts); finish_time is then the abort time.
  /// Serialized as a trailing column that older logs simply lack.
  bool failed = false;
};

/// Per-task-attempt record. For maps, shuffle_end == start (no shuffle
/// phase). For reduces, [start, shuffle_end] covers the combined
/// shuffle+sort phase and [shuffle_end, end] the reduce phase, matching the
/// paper's phase split.
struct TaskAttemptRecord {
  JobId job = kInvalidJob;
  TaskKind kind = TaskKind::kMap;
  TaskIndex index = kInvalidTask;
  NodeId node = -1;
  SimTime start = 0.0;
  SimTime shuffle_end = 0.0;
  SimTime end = 0.0;
  double input_mb = 0.0;  // map: split size; reduce: shuffled bytes
  /// False for attempts that failed and were re-executed. Consumers that
  /// model task durations (MRProfiler, Rumen) use successful attempts.
  bool succeeded = true;
};

/// Complete execution log of one testbed run.
class HistoryLog {
 public:
  void AddJob(JobRecord record);
  void AddTask(TaskAttemptRecord record);

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const std::vector<TaskAttemptRecord>& tasks() const { return tasks_; }

  /// All task records of one job, in recorded order.
  std::vector<TaskAttemptRecord> TasksOf(JobId job) const;

  /// Job record lookup; throws std::out_of_range for unknown ids.
  const JobRecord& JobOf(JobId job) const;

  /// Serializes to the versioned tab-separated text format.
  void Write(std::ostream& out) const;
  void WriteFile(const std::string& path) const;

  /// Parses a log produced by Write. Throws std::runtime_error on malformed
  /// input (bad magic, wrong column counts, non-numeric fields).
  static HistoryLog Read(std::istream& in);
  static HistoryLog ReadFile(const std::string& path);

 private:
  std::vector<JobRecord> jobs_;
  std::vector<TaskAttemptRecord> tasks_;
};

}  // namespace simmr::cluster
