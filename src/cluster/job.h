// Per-job runtime state inside the testbed emulator.
//
// A JobRuntime is built once per submitted job. All stochastic per-task
// quantities (duration noise, partition skew) are precomputed at
// construction from a job-scoped RNG stream, so a job's intrinsic behaviour
// is a pure function of (spec, seed) and does not depend on scheduling
// order — the property that makes cross-scheduler comparisons meaningful.
#pragma once

#include <deque>
#include <limits>
#include <vector>

#include "cluster/app_model.h"
#include "cluster/config.h"
#include "cluster/shuffle_model.h"
#include "cluster/types.h"
#include "simcore/rng.h"
#include "simcore/time.h"

namespace simmr::cluster {

/// A job submission: what to run, when it arrives, and (optionally) its
/// completion deadline (absolute simulated time; 0 means none).
struct SubmittedJob {
  JobSpec spec;
  SimTime submit_time = 0.0;
  double deadline = 0.0;
};

/// Per-job concurrent-slot caps enforced by the testbed scheduler. The
/// paper's modified FIFO ("allocate a requested number of map/reduce slots")
/// and the MinEDF minimal allocation are both expressed through these.
struct SlotCaps {
  int map_cap = std::numeric_limits<int>::max();
  int reduce_cap = std::numeric_limits<int>::max();
};

enum class TaskState : std::uint8_t { kPending, kRunning, kDone };

enum class ReducePhase : std::uint8_t { kFetch, kMergeAndReduce };

// Per-attempt map state (failure flag, timestamps) lives on the node's
// running-task entries inside the simulator, because with speculative
// execution a map task can have two attempts in flight at once.
struct MapTaskRt {
  TaskState state = TaskState::kPending;
  NodeId node = -1;         // node of the primary attempt
  SimTime start = 0.0;      // primary attempt start
  SimTime end = 0.0;        // primary attempt planned end
  double input_mb = 0.0;
  double noise = 1.0;       // precomputed multiplicative duration noise
  bool data_ready = false;  // output written (exact end time passed)
  bool reported = false;    // completion seen by the JobTracker (heartbeat)
  bool speculated = false;  // a backup attempt has been launched
  /// The task is being re-executed after its output was lost with a dead
  /// node. A re-run's output is recomputed but not re-shuffled: data the
  /// reduces already fetched survives, so the re-run must not add to
  /// produced_mb or flow availability a second time.
  bool rerun = false;
  int attempts = 0;         // attempts launched so far (retries + backups)
  int active_attempts = 0;  // attempts currently holding a slot
  /// HDFS replica placement of the input block (distinct nodes; fewer when
  /// the cluster is smaller than the replication factor).
  std::vector<NodeId> replicas;
};

struct ReduceTaskRt {
  TaskState state = TaskState::kPending;
  ReducePhase phase = ReducePhase::kFetch;
  NodeId node = -1;
  FlowId flow = -1;
  SimTime start = 0.0;
  SimTime shuffle_end = 0.0;  // fetch complete + merge pass done
  SimTime end = 0.0;
  double bytes_mb = 0.0;      // shuffle input for this reduce
  double frac = 0.0;          // bytes_mb / job total intermediate
  double merge_noise = 1.0;
  double reduce_noise = 1.0;
  bool reported = false;
  bool attempt_failing = false;  // current attempt is fated to fail
  int attempts = 0;
};

class JobRuntime {
 public:
  /// Precomputes splits and noise terms. `rng` must be a job-scoped stream.
  JobRuntime(JobId id, const SubmittedJob& submission,
             const ClusterConfig& config, Rng rng);

  JobId id() const { return id_; }
  const JobSpec& spec() const { return submission_.spec; }
  SimTime submit_time() const { return submission_.submit_time; }
  double deadline() const { return submission_.deadline; }

  int num_maps() const { return static_cast<int>(maps_.size()); }
  int num_reduces() const { return static_cast<int>(reduces_.size()); }

  std::vector<MapTaskRt>& maps() { return maps_; }
  std::vector<ReduceTaskRt>& reduces() { return reduces_; }
  const std::vector<MapTaskRt>& maps() const { return maps_; }
  const std::vector<ReduceTaskRt>& reduces() const { return reduces_; }

  SlotCaps& caps() { return caps_; }
  const SlotCaps& caps() const { return caps_; }

  // --- counters maintained by the simulator ---
  int running_maps = 0;       // attempts currently holding a map slot
  int running_reduces = 0;    // attempts currently holding a reduce slot
  int maps_reported = 0;      // successful completions seen by the JT
  int maps_data_ready = 0;    // outputs actually on disk
  int reduces_reported = 0;
  double produced_mb = 0.0;   // intermediate data written so far

  /// Completed-map duration statistics, used by speculative execution to
  /// spot stragglers.
  double completed_map_duration_sum = 0.0;
  int completed_map_count = 0;

  SimTime launch_time = -1.0;
  SimTime maps_done_time = -1.0;  // exact end of the last map task
  SimTime finish_time = -1.0;
  /// Set when a task exhausted ClusterConfig::max_attempts and the
  /// JobTracker aborted the job (finish_time is the abort time).
  bool failed = false;

  bool Finished() const { return finish_time >= 0.0; }
  bool AllMapsDataReady() const { return maps_data_ready == num_maps(); }

  /// Concurrent attempts currently holding a slot of each type.
  int RunningMaps() const { return running_maps; }
  int RunningReduces() const { return running_reduces; }

  bool HasPendingMap() const { return !pending_maps_.empty(); }
  bool HasPendingReduce() const { return !pending_reduces_.empty(); }

  /// Slowstart gate: reduces become schedulable once the configured fraction
  /// of map completions has been *reported* to the JobTracker.
  bool ReduceReady(double slowstart_fraction) const;

  /// Takes the next pending map/reduce task for launching (FIFO among the
  /// original order; failed attempts requeue at the back, like Hadoop's
  /// retry behaviour). Requires one pending.
  TaskIndex PopPendingMap();
  TaskIndex PopPendingReduce();

  /// Locality-aware variant: prefers a pending map with a replica on
  /// `node`, then one with a replica in `rack` (node % num_racks), then
  /// the queue front — Hadoop's node-local / rack-local / any order.
  /// Requires one pending.
  TaskIndex PopPendingMapPreferLocal(NodeId node, int num_racks);

  /// Returns a failed task to the pending queue for re-execution.
  void RequeueMap(TaskIndex index);
  void RequeueReduce(TaskIndex index);

 private:
  JobId id_;
  SubmittedJob submission_;
  SlotCaps caps_;
  std::vector<MapTaskRt> maps_;
  std::vector<ReduceTaskRt> reduces_;
  std::deque<TaskIndex> pending_maps_;
  std::deque<TaskIndex> pending_reduces_;
};

}  // namespace simmr::cluster
