// Application cost models for the testbed emulator.
//
// The paper runs six real applications (Section IV-C). We cannot run Hadoop
// jobs on Wikipedia/Twitter datasets here, so each application is modeled by
// the quantities that determine its execution shape on a MapReduce cluster:
// per-MB map cost, map output selectivity (intermediate bytes per input
// byte), per-MB merge and reduce costs, and per-task duration dispersion.
// The constants are calibrated so the absolute completion times on the
// default 64-worker configuration land near the values reported in
// Figure 5(a) (WordCount 251 s, WikiTrends 1271 s, Twitter 276 s, Sort 88 s,
// TF-IDF 66 s, Bayes 476 s) and so the phase *ratios* (map-heavy vs
// shuffle-heavy) match each application's character. DESIGN.md section 2
// records this substitution.
#pragma once

#include <string>
#include <vector>

#include "simcore/time.h"

namespace simmr::cluster {

/// Cost/shape model of one MapReduce application binary.
struct AppModel {
  std::string name;

  /// Seconds of map computation per MB of input (includes I/O).
  double map_cost_s_per_mb = 0.3;

  /// Fixed per-map-task overhead (JVM start, split open), seconds.
  double map_startup_s = 1.0;

  /// Lognormal sigma of multiplicative per-map-task noise.
  double map_sigma = 0.12;

  /// Intermediate bytes produced per input byte (after combiner).
  double map_selectivity = 0.15;

  /// Seconds of merge/sort work per MB of a reduce task's shuffle input
  /// (the CPU/disk part of the combined shuffle phase).
  double merge_cost_s_per_mb = 0.01;

  /// Seconds of reduce-function computation per MB of reduce input.
  double reduce_cost_s_per_mb = 0.2;

  /// Fixed per-reduce-task overhead, seconds.
  double reduce_startup_s = 1.0;

  /// Lognormal sigma of multiplicative per-reduce-task noise.
  double reduce_sigma = 0.15;
};

/// One concrete job: an application bound to a dataset and a reduce count.
struct JobSpec {
  AppModel app;
  std::string dataset_label;  // e.g. "wiki-40GB"
  double input_mb = 0.0;
  int num_reduces = 64;

  /// Map count implied by the input size and a block size.
  int NumMaps(double block_size_mb) const;

  /// Total intermediate data shuffled to reduces, MB.
  double IntermediateMb() const { return input_mb * app.map_selectivity; }

  std::string FullName() const { return app.name + "/" + dataset_label; }
};

/// Catalog of the paper's six applications (Section IV-C).
namespace apps {

/// Word frequency over Wikipedia article history (32/40/43 GB).
AppModel WordCount();

/// Article-visit counting over Trending Topics logs; decompression-heavy
/// maps make this the longest job in the suite.
AppModel WikiTrends();

/// Asymmetric-link counting over the Kwak et al. edge list (12/18/25 GB).
AppModel Twitter();

/// GridMix2-style sort of random data (16/32/64 GB); identity map with
/// selectivity 1 makes it the most shuffle-dominated job.
AppModel Sort();

/// Mahout TF-IDF step over derived term vectors; short but shuffle-heavy.
AppModel Tfidf();

/// Mahout Bayes classification trainer step over Wikipedia pages.
AppModel Bayes();

}  // namespace apps

/// One JobSpec per application, sized to match the Figure 5 executions
/// (the middle dataset of each application's three).
std::vector<JobSpec> ValidationSuite();

/// The full 6 apps x 3 datasets = 18 jobs used for the Section V real-trace
/// workload experiments.
std::vector<JobSpec> FullWorkloadSuite();

/// The Section II motivating example: WordCount with 200 map tasks and 256
/// reduce tasks (Figures 1-3).
JobSpec SectionTwoExample();

}  // namespace simmr::cluster
