#include "cluster/job.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/sim_kernel.h"

namespace simmr::cluster {
namespace {

/// Lognormal multiplicative noise with mean 1: exp(sigma*z - sigma^2/2).
double MeanOneLogNormal(Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;
  return std::exp(sigma * rng.NextGaussian() - 0.5 * sigma * sigma);
}

}  // namespace

JobRuntime::JobRuntime(JobId id, const SubmittedJob& submission,
                       const ClusterConfig& config, Rng rng)
    : id_(id), submission_(submission) {
  const JobSpec& spec = submission_.spec;
  const int num_maps = std::max(1, spec.NumMaps(config.block_size_mb));
  const int num_reduces = std::max(1, spec.num_reduces);

  maps_.resize(num_maps);
  double remaining_mb = spec.input_mb;
  for (MapTaskRt& m : maps_) {
    m.input_mb = std::min(config.block_size_mb, remaining_mb);
    remaining_mb -= m.input_mb;
    m.noise = MeanOneLogNormal(rng, spec.app.map_sigma);
  }

  // Partition-skew noise for reduce inputs, renormalized so the per-reduce
  // bytes sum exactly to the job's intermediate data volume.
  reduces_.resize(num_reduces);
  const double total_intermediate = spec.IntermediateMb();
  double weight_sum = 0.0;
  for (ReduceTaskRt& r : reduces_) {
    r.frac = MeanOneLogNormal(rng, 0.05);
    weight_sum += r.frac;
  }
  for (ReduceTaskRt& r : reduces_) {
    r.frac /= weight_sum;
    r.bytes_mb = total_intermediate * r.frac;
    r.merge_noise = MeanOneLogNormal(rng, 0.08);
    r.reduce_noise = MeanOneLogNormal(rng, spec.app.reduce_sigma);
  }

  // HDFS-style replica placement: `replication` distinct nodes per block
  // (or every node when the cluster is smaller than that).
  const int replicas =
      std::min(std::max(1, config.replication), config.num_nodes);
  for (MapTaskRt& m : maps_) {
    m.replicas.reserve(replicas);
    while (static_cast<int>(m.replicas.size()) < replicas) {
      const NodeId candidate =
          static_cast<NodeId>(rng.NextBounded(config.num_nodes));
      if (std::find(m.replicas.begin(), m.replicas.end(), candidate) ==
          m.replicas.end()) {
        m.replicas.push_back(candidate);
      }
    }
  }

  for (TaskIndex i = 0; i < num_maps; ++i) pending_maps_.push_back(i);
  for (TaskIndex i = 0; i < num_reduces; ++i) pending_reduces_.push_back(i);
}

TaskIndex JobRuntime::PopPendingMapPreferLocal(NodeId node, int num_racks) {
  if (pending_maps_.empty())
    throw std::logic_error("PopPendingMapPreferLocal: none pending");
  const int rack = num_racks > 0 ? node % num_racks : 0;
  const auto take = [this](std::deque<TaskIndex>::iterator it) {
    const TaskIndex index = *it;
    pending_maps_.erase(it);
    return index;
  };
  // Pass 1: node-local.
  for (auto it = pending_maps_.begin(); it != pending_maps_.end(); ++it) {
    const auto& replicas = maps_[*it].replicas;
    if (std::find(replicas.begin(), replicas.end(), node) != replicas.end())
      return take(it);
  }
  // Pass 2: rack-local.
  if (num_racks > 0) {
    for (auto it = pending_maps_.begin(); it != pending_maps_.end(); ++it) {
      for (const NodeId replica : maps_[*it].replicas) {
        if (replica % num_racks == rack) return take(it);
      }
    }
  }
  // Pass 3: anything.
  return PopPendingMap();
}

TaskIndex JobRuntime::PopPendingMap() {
  if (pending_maps_.empty())
    throw std::logic_error("JobRuntime::PopPendingMap: none pending");
  const TaskIndex index = pending_maps_.front();
  pending_maps_.pop_front();
  return index;
}

TaskIndex JobRuntime::PopPendingReduce() {
  if (pending_reduces_.empty())
    throw std::logic_error("JobRuntime::PopPendingReduce: none pending");
  const TaskIndex index = pending_reduces_.front();
  pending_reduces_.pop_front();
  return index;
}

void JobRuntime::RequeueMap(TaskIndex index) {
  pending_maps_.push_back(index);
}

void JobRuntime::RequeueReduce(TaskIndex index) {
  pending_reduces_.push_back(index);
}

bool JobRuntime::ReduceReady(double slowstart_fraction) const {
  return maps_reported >= ReduceGateThreshold(num_maps(), slowstart_fraction);
}

}  // namespace simmr::cluster
