// Shared identifier and enum types for the testbed emulator.
#pragma once

#include <cstdint>

namespace simmr::cluster {

using JobId = std::int32_t;
using TaskIndex = std::int32_t;  // index within a job's map or reduce tasks
using NodeId = std::int32_t;

inline constexpr JobId kInvalidJob = -1;
inline constexpr TaskIndex kInvalidTask = -1;

enum class TaskKind : std::uint8_t { kMap, kReduce };

inline const char* TaskKindName(TaskKind kind) {
  return kind == TaskKind::kMap ? "MAP" : "REDUCE";
}

}  // namespace simmr::cluster
