#include "obs/trace_export.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "obs/json.h"

namespace simmr::obs {
namespace {

// Thread-id layout inside the single trace process: a jobs track, a lane
// block per task kind, and a counter track (counters are per-process, the
// tid is ignored by viewers but kept distinct for tidiness).
constexpr std::int64_t kJobsTid = 1;
constexpr std::int64_t kMapLaneBase = 1000;
constexpr std::int64_t kReduceLaneBase = 100000;
constexpr int kPid = 1;

std::int64_t LaneBase(TaskKind kind) {
  return kind == TaskKind::kMap ? kMapLaneBase : kReduceLaneBase;
}

double ToUs(SimTime t) { return t * 1e6; }

std::string TaskLabel(std::int32_t job, TaskKind kind, std::int32_t index) {
  return std::string(TaskKindName(kind)) + " " + std::to_string(job) + "." +
         std::to_string(index);
}

}  // namespace

TraceExporter::TraceExporter() : TraceExporter(Options{}) {}

TraceExporter::TraceExporter(Options options)
    : options_(std::move(options)) {
  if (options_.queue_depth_window_s > 0.0)
    window_clock_.emplace(options_.queue_depth_window_s);
}

std::int64_t TraceExporter::AcquireLane(TaskKind kind) {
  std::vector<bool>& busy = lane_busy_[kind == TaskKind::kMap ? 0 : 1];
  for (std::size_t i = 0; i < busy.size(); ++i) {
    if (!busy[i]) {
      busy[i] = true;
      return LaneBase(kind) + static_cast<std::int64_t>(i);
    }
  }
  busy.push_back(true);
  return LaneBase(kind) + static_cast<std::int64_t>(busy.size()) - 1;
}

void TraceExporter::ReleaseLane(TaskKind kind, std::int64_t tid) {
  std::vector<bool>& busy = lane_busy_[kind == TaskKind::kMap ? 0 : 1];
  const std::size_t lane = static_cast<std::size_t>(tid - LaneBase(kind));
  if (lane < busy.size()) busy[lane] = false;
}

void TraceExporter::OnEventDequeue(SimTime now, const char*,
                                   std::size_t queue_depth) {
  const auto emit = [this](double ts_s, std::size_t depth) {
    TraceEvent ev;
    ev.name = "event_queue_depth";
    ev.category = "queue";
    ev.phase = 'C';
    ev.ts_us = ToUs(ts_s);
    ev.tid = 0;
    ev.args_json = "{\"depth\":" + std::to_string(depth) + "}";
    events_.push_back(std::move(ev));
  };
  if (window_clock_.has_value()) {
    // Windowed mode: one sample per closed window, stamped at the window
    // boundary with the depth after the window's last dequeue — exactly
    // the queue_depth TimeSeriesSampler reports for that window.
    while (window_clock_->CrossesBoundary(now)) {
      emit(window_clock_->WindowEnd(), last_queue_depth_);
      window_clock_->AdvanceOne();
    }
    last_queue_depth_ = queue_depth;
    return;
  }
  if (options_.queue_depth_sample_period == 0) return;
  if (++dequeues_since_sample_ < options_.queue_depth_sample_period) return;
  dequeues_since_sample_ = 0;
  emit(now, queue_depth);
}

void TraceExporter::OnJobArrival(SimTime now, std::int32_t job,
                                 std::string_view name, double deadline) {
  job_name_by_id_[job] = std::string(name);
  TraceEvent ev;
  ev.name = "job " + std::to_string(job) + " arrival";
  ev.category = "job";
  ev.phase = 'i';
  ev.ts_us = ToUs(now);
  ev.tid = kJobsTid;
  ev.args_json = "{\"job\":" + std::to_string(job) + ",\"name\":\"" +
                 JsonEscape(name) + "\"}";
  events_.push_back(std::move(ev));
  if (deadline > 0.0) {
    TraceEvent dl;
    dl.name = "job " + std::to_string(job) + " deadline";
    dl.category = "deadline";
    dl.phase = 'i';
    dl.ts_us = ToUs(deadline);
    dl.tid = kJobsTid;
    dl.args_json = "{\"job\":" + std::to_string(job) + "}";
    events_.push_back(std::move(dl));
  }
}

void TraceExporter::OnJobCompletion(SimTime now, std::int32_t job) {
  TraceEvent ev;
  ev.name = "job " + std::to_string(job) + " completion";
  ev.category = "job";
  ev.phase = 'i';
  ev.ts_us = ToUs(now);
  ev.tid = kJobsTid;
  const auto it = job_name_by_id_.find(job);
  ev.args_json = "{\"job\":" + std::to_string(job) + ",\"name\":\"" +
                 JsonEscape(it == job_name_by_id_.end() ? "" : it->second) +
                 "\"}";
  events_.push_back(std::move(ev));
}

void TraceExporter::OnFaultEvent(SimTime now, FaultEventKind kind,
                                 std::int32_t node, std::int32_t job,
                                 TaskKind task_kind, std::int32_t index) {
  TraceEvent ev;
  ev.name = FaultEventKindName(kind);
  ev.category = "fault";
  ev.phase = 'i';
  ev.ts_us = ToUs(now);
  ev.tid = kJobsTid;
  std::string args = "{\"node\":" + std::to_string(node);
  if (job >= 0) {
    args += ",\"job\":" + std::to_string(job);
    args += ",\"kind\":\"";
    args += TaskKindName(task_kind);
    args += "\",\"index\":" + std::to_string(index);
  }
  args += "}";
  ev.args_json = std::move(args);
  events_.push_back(std::move(ev));
}

void TraceExporter::EmitRunningCounter(SimTime now, TaskKind kind) {
  TraceEvent ev;
  ev.name = kind == TaskKind::kMap ? "running_maps" : "running_reduces";
  ev.category = "tasks";
  ev.phase = 'C';
  ev.ts_us = ToUs(now);
  ev.tid = 0;
  ev.args_json =
      "{\"running\":" +
      std::to_string(running_tasks_[kind == TaskKind::kMap ? 0 : 1]) + "}";
  events_.push_back(std::move(ev));
}

void TraceExporter::OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                                 std::int32_t index) {
  const std::int64_t tid = AcquireLane(kind);
  inflight_[{job, static_cast<int>(kind), index}].push_back(tid);
  ++running_tasks_[kind == TaskKind::kMap ? 0 : 1];
  EmitRunningCounter(now, kind);
}

void TraceExporter::OnTaskCompletion(SimTime now, std::int32_t job,
                                     TaskKind kind, std::int32_t index,
                                     const TaskTiming& timing,
                                     bool succeeded) {
  std::size_t& running = running_tasks_[kind == TaskKind::kMap ? 0 : 1];
  if (running > 0) --running;  // guard: observer may be installed mid-run
  EmitRunningCounter(now, kind);
  const auto key = std::make_tuple(job, static_cast<int>(kind), index);
  std::int64_t tid;
  const auto it = inflight_.find(key);
  if (it != inflight_.end() && !it->second.empty()) {
    // FIFO among concurrent attempts of the same task: the earliest launch
    // completes first in every simulator here.
    tid = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty()) inflight_.erase(it);
  } else {
    // Completion without a matching launch (observer installed mid-run):
    // still render the slice on a fresh lane.
    tid = AcquireLane(kind);
  }
  EmitTask(tid, job, kind, index, timing, succeeded);
  ReleaseLane(kind, tid);
}

void TraceExporter::EmitTask(std::int64_t tid, std::int32_t job,
                             TaskKind kind, std::int32_t index,
                             const TaskTiming& timing, bool succeeded) {
  const std::string args = "{\"job\":" + std::to_string(job) +
                           ",\"index\":" + std::to_string(index) +
                           ",\"succeeded\":" +
                           (succeeded ? "true" : "false") + "}";
  TraceEvent ev;
  ev.name = TaskLabel(job, kind, index);
  ev.category = succeeded ? TaskKindName(kind) : "failed";
  ev.phase = 'X';
  ev.ts_us = ToUs(timing.start);
  ev.dur_us = ToUs(std::max(0.0, timing.end - timing.start));
  ev.tid = tid;
  ev.args_json = args;
  events_.push_back(std::move(ev));

  // Nested shuffle/reduce slices when the phase boundary falls strictly
  // inside the task (reduces only; maps have shuffle_end == start).
  if (kind == TaskKind::kReduce && timing.shuffle_end > timing.start &&
      timing.shuffle_end < timing.end) {
    TraceEvent shuffle;
    shuffle.name = "shuffle";
    shuffle.category = "phase";
    shuffle.phase = 'X';
    shuffle.ts_us = ToUs(timing.start);
    shuffle.dur_us = ToUs(timing.shuffle_end - timing.start);
    shuffle.tid = tid;
    events_.push_back(std::move(shuffle));
    TraceEvent reduce;
    reduce.name = "reduce";
    reduce.category = "phase";
    reduce.phase = 'X';
    reduce.ts_us = ToUs(timing.shuffle_end);
    reduce.dur_us = ToUs(timing.end - timing.shuffle_end);
    reduce.tid = tid;
    events_.push_back(std::move(reduce));
  }
}

std::string TraceExporter::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append = [&out, &first](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += obj;
  };

  // Metadata: process name, then one thread_name per track actually used,
  // sorted so the viewer shows jobs, then map slots, then reduce slots.
  append("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
         JsonEscape(options_.process_name) + "\"}}");
  const auto thread_meta = [&](std::int64_t tid, const std::string& name,
                               std::int64_t sort_index) {
    append("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(name) + "\"}}");
    append("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
           std::to_string(sort_index) + "}}");
  };
  thread_meta(kJobsTid, "jobs", 0);
  for (std::size_t i = 0; i < lane_busy_[0].size(); ++i) {
    thread_meta(kMapLaneBase + static_cast<std::int64_t>(i),
                "map slot " + std::to_string(i),
                10 + static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i < lane_busy_[1].size(); ++i) {
    thread_meta(kReduceLaneBase + static_cast<std::int64_t>(i),
                "reduce slot " + std::to_string(i),
                100000 + static_cast<std::int64_t>(i));
  }

  for (const TraceEvent& ev : events_) {
    std::string obj = "{\"name\":\"" + JsonEscape(ev.name) +
                      "\",\"cat\":\"" + ev.category + "\",\"ph\":\"" +
                      ev.phase + "\",\"ts\":" + JsonNumber(ev.ts_us) +
                      ",\"pid\":" + std::to_string(kPid) +
                      ",\"tid\":" + std::to_string(ev.tid);
    if (ev.phase == 'X') obj += ",\"dur\":" + JsonNumber(ev.dur_us);
    if (ev.phase == 'i') obj += ",\"s\":\"t\"";
    if (!ev.args_json.empty()) obj += ",\"args\":" + ev.args_json;
    obj += "}";
    append(obj);
  }
  out += "]}";
  return out;
}

void TraceExporter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceExporter: cannot write " + path);
  out << ToJson() << "\n";
  if (!out)
    throw std::runtime_error("TraceExporter: write failed for " + path);
}

}  // namespace simmr::obs
