// The standard simulator metric set, fed from SimObserver callbacks.
//
// Install one of these (usually via MulticastObserver) to get live
// counters, gauges and histograms for a run:
//
//   simmr_events_dequeued_total{type=...}   events popped, per event kind
//   simmr_event_queue_depth                 pending events after last pop
//   simmr_event_queue_depth_peak            high-water mark of the above
//   simmr_jobs_arrived_total / simmr_jobs_completed_total
//   simmr_tasks_launched_total{kind=...} / simmr_tasks_completed_total{...}
//   simmr_task_failures_total{kind=...}     failed/killed attempts
//   simmr_slots_busy{kind=...}              currently occupied slots
//   simmr_slots_busy_peak{kind=...}         high-water mark of the above
//   simmr_scheduler_decisions_total{kind=...,outcome=chosen|idle}
//   simmr_fault_events_total{fault=...}     fault-lifecycle transitions
//   simmr_task_duration_seconds{kind=...}   completed-task duration histogram
//   simmr_wall_seconds, simmr_wall_events_per_second  (via SetWallStats)
//
// Metric names and semantics are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/observer.h"

namespace simmr::obs {

class MetricsObserver final : public SimObserver {
 public:
  /// Registers the standard metric set into `registry`, which must outlive
  /// this observer. One observer per registry: registering twice would
  /// collide on metric names.
  explicit MetricsObserver(MetricsRegistry& registry);

  /// Records host-side run statistics after the simulation finishes:
  /// simmr_wall_seconds and simmr_wall_events_per_second (derived from the
  /// dequeued-event total).
  void SetWallStats(double wall_seconds);

  /// High-water mark of the event-queue depth seen so far.
  std::uint64_t peak_queue_depth() const { return peak_queue_depth_; }
  /// Total events dequeued so far.
  std::uint64_t events_dequeued() const { return events_dequeued_; }

  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override;
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override;
  void OnJobCompletion(SimTime now, std::int32_t job) override;
  void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                    std::int32_t index) override;
  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override;
  void OnSchedulerDecision(SimTime now, TaskKind kind,
                           std::int32_t chosen_job) override;
  void OnFaultEvent(SimTime now, FaultEventKind kind, std::int32_t node,
                    std::int32_t job, TaskKind task_kind,
                    std::int32_t index) override;

 private:
  MetricsRegistry* registry_;

  Counter* jobs_arrived_;
  Counter* jobs_completed_;
  Counter* tasks_launched_[2];
  Counter* tasks_completed_[2];
  Counter* task_failures_[2];
  Gauge* slots_busy_[2];
  Gauge* slots_busy_peak_[2];
  double slots_busy_now_[2] = {0.0, 0.0};
  double slots_busy_high_[2] = {0.0, 0.0};
  Counter* decisions_chosen_[2];
  Counter* decisions_idle_[2];
  /// Indexed by FaultEventKind's underlying value.
  Counter* fault_events_[4];
  Histogram* task_duration_[2];
  Gauge* queue_depth_;
  Gauge* queue_depth_peak_;
  Gauge* wall_seconds_;
  Gauge* wall_events_per_second_;

  std::uint64_t events_dequeued_ = 0;
  std::uint64_t peak_queue_depth_ = 0;

  /// Per-event-type counters, created lazily (event vocabularies differ
  /// between the simulators). Keyed by the static string's address — hook
  /// sites pass string literals, so identity is stable within a run.
  std::unordered_map<const void*, Counter*> per_event_type_;
};

}  // namespace simmr::obs
