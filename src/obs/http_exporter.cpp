#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/json.h"

namespace simmr::obs {
namespace {

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to clean up
    sent += static_cast<std::size_t>(n);
  }
}

std::string ProgressJson(const LiveProgress& p) {
  std::string out = "{\"schema\":\"simmr.progress.v1\""
                    ",\"sessions_completed\":" +
                    std::to_string(p.sessions_completed) +
                    ",\"sessions_total\":" +
                    std::to_string(p.sessions_total) +
                    ",\"events_processed\":" +
                    std::to_string(p.events_processed) +
                    ",\"wall_seconds\":" + JsonNumber(p.wall_seconds);
  out += ",\"eta_seconds\":";
  out += p.eta_seconds >= 0.0 ? JsonNumber(p.eta_seconds) : "null";
  out += "}";
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(TextFn metrics, ProgressFn progress)
    : MetricsHttpServer(std::move(metrics), std::move(progress), Options()) {}

MetricsHttpServer::MetricsHttpServer(TextFn metrics, ProgressFn progress,
                                     Options options)
    : metrics_(std::move(metrics)),
      progress_(std::move(progress)),
      options_(std::move(options)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

int MetricsHttpServer::Start() {
  if (listen_fd_ >= 0)
    throw std::runtime_error("MetricsHttpServer: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("MetricsHttpServer: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: bind/listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("MetricsHttpServer: pipe: ") +
                             std::strerror(errno));
  }
  stopping_.store(false);
  thread_ = std::thread([this] { Serve(); });
  return port_;
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // Wake the poll loop; the byte's value is irrelevant.
  const char b = 0;
  (void)!::write(wake_fds_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
}

void MetricsHttpServer::Serve() {
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fds_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, /*timeout_ms=*/1000);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // woken by Stop()
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound how long a slow or stuck client can hold the serving thread.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options_.io_timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (options_.io_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 = no bound
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head; the endpoints take no body.
  constexpr std::size_t kMaxHeadBytes = 16 * 1024;
  std::string request;
  char buf[2048];
  while (request.size() < kMaxHeadBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // disconnect or SO_RCVTIMEO expiry
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.size() >= kMaxHeadBytes &&
      request.find("\r\n\r\n") == std::string::npos) {
    SendAll(fd, HttpResponse(431, "Request Header Fields Too Large",
                             "text/plain", "request head too large\n"));
    return;
  }
  // Parse strictly the first line as `METHOD SP target SP HTTP/x.y`; a
  // space found in a later header line must not rescue a malformed one.
  const std::size_t eol = request.find("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == 0 || sp2 == std::string::npos || sp2 == sp1 + 1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    SendAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                             "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (method != "GET" && method != "HEAD") {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n"));
    return;
  }
  std::string response;
  if (path == "/metrics") {
    response = HttpResponse(200, "OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            metrics_());
  } else if (path == "/healthz") {
    response = HttpResponse(200, "OK", "text/plain", "ok\n");
  } else if (path == "/progress") {
    response = HttpResponse(200, "OK", "application/json",
                            ProgressJson(progress_()) + "\n");
  } else {
    response = HttpResponse(
        404, "Not Found", "text/plain",
        "not found; endpoints: /metrics /healthz /progress\n");
  }
  SendAll(fd, response);
}

}  // namespace simmr::obs
