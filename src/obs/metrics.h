// Run-time metrics registry: typed counters, gauges and fixed-bucket
// histograms with Prometheus-text and JSON exposition.
//
// The registry owns its instruments; handles returned by the Add* methods
// stay valid for the registry's lifetime (instruments are held by unique
// pointer, so the registry may grow freely). Instruments are identified by
// (name, label set); registering the same identity twice throws. Everything
// here is single-threaded, like the simulators it instruments.
//
// The standard simulator metric set is wired up by MetricsObserver
// (metrics_observer.h); nothing in this file is simulator-specific.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace simmr::obs {

/// Label set attached to an instrument, e.g. {{"kind", "map"}}. Rendered
/// in the order given; keep it short — exposition is O(labels) per line.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t Value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Arbitrary settable value.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double Value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket cumulative histogram (Prometheus semantics): bucket i
/// counts observations <= bounds[i]; an implicit +Inf bucket catches the
/// rest. Bounds are set at registration and never change.
///
/// Windowed-quantile mode: Checkpoint() marks the start of a new window;
/// the Window*() accessors then cover only observations since that mark,
/// so time-resolved percentiles (TimeSeriesSampler) come from the same
/// instrument as the run aggregate. Exposition is unaffected — it always
/// reports the full run.
class Histogram {
 public:
  /// `bounds` must be strictly increasing (checked by the registry).
  explicit Histogram(std::vector<double> bounds);

  /// Inline: this is the one instrument on a simulator hot path (one
  /// call per task completion via TimeSeriesSampler/MetricsObserver).
  /// Branchless linear scan rather than binary search — with a dozen
  /// bounds and unpredictable values, the search's data-dependent
  /// branches mispredict; counting compares vectorizes and doesn't.
  void Observe(double value) {
    std::size_t idx = 0;
    for (const double bound : bounds_)
      idx += static_cast<std::size_t>(bound < value);
    if (idx == bounds_.size()) {
      ++overflow_;
    } else {
      ++counts_[idx];
    }
    ++total_count_;
    sum_ += value;
  }

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Count of observations <= bounds[i]; size == bounds size. Cumulative
  /// counts (Prometheus `le` semantics) are the partial sums plus
  /// TotalCount() for +Inf.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t TotalCount() const { return total_count_; }
  double Sum() const { return sum_; }

  /// Estimated q-quantile (q in [0,1]) of all observations, by linear
  /// interpolation within the containing bucket (histogram_quantile
  /// semantics). Observations above the last bound clamp to the last
  /// bound; an empty histogram reports 0.
  double Quantile(double q) const;

  /// Starts a new window: subsequent Window*() calls cover only
  /// observations made after this point.
  void Checkpoint();
  std::uint64_t WindowCount() const { return total_count_ - mark_total_; }
  double WindowSum() const { return sum_ - mark_sum_; }
  /// Quantile() restricted to observations since the last Checkpoint().
  double WindowQuantile(double q) const;

 private:
  double QuantileFromDeltas(double q, const std::vector<std::uint64_t>& base,
                            std::uint64_t base_total) const;

  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // per-bucket (non-cumulative)
  std::uint64_t overflow_ = 0;         // observations above the last bound
  std::uint64_t total_count_ = 0;
  double sum_ = 0.0;

  // State captured at the last Checkpoint(); window views are deltas
  // against these.
  std::vector<std::uint64_t> mark_counts_;
  std::uint64_t mark_total_ = 0;
  double mark_sum_ = 0.0;

  friend class MetricsRegistry;
};

/// Registry of named instruments with deterministic (registration-order)
/// exposition.
class MetricsRegistry {
 public:
  /// `help` is the family description emitted once per metric name.
  /// Throws std::invalid_argument on an empty name, a duplicate
  /// (name, labels) identity, or a name reused with a different type.
  Counter& AddCounter(const std::string& name, const std::string& help,
                      LabelSet labels = {});
  Gauge& AddGauge(const std::string& name, const std::string& help,
                  LabelSet labels = {});
  /// Also throws when `bounds` is empty or not strictly increasing.
  Histogram& AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, LabelSet labels = {});

  std::size_t size() const { return entries_.size(); }

  /// One counter/gauge sample: Prometheus-style identity (name{labels})
  /// and current value.
  struct ScalarSample {
    std::string key;
    double value = 0.0;
  };

  /// Current counter and gauge values in registration order (histograms
  /// are skipped — their windowed views are sampled directly). Used by
  /// TimeSeriesSampler to embed a registry snapshot per window.
  std::vector<ScalarSample> ScalarSnapshot() const;

  /// Prometheus text exposition format (one # HELP / # TYPE block per
  /// metric family, then one sample line per label set; histograms expand
  /// to _bucket/_sum/_count). Help text and label values are escaped per
  /// the exposition-format spec (backslash, newline, and for label values
  /// double-quote).
  std::string PrometheusText() const;

  /// JSON snapshot: {"schema":"simmr.metrics.v1","metrics":[...]} with one
  /// object per instrument. See docs/OBSERVABILITY.md for the schema.
  std::string Json() const;

  /// Writes PrometheusText() or Json() (by `as_json`) to a file.
  /// Throws std::runtime_error when the file cannot be written.
  void WriteFile(const std::string& path, bool as_json) const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    LabelSet labels;
    Type type = Type::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& Register(const std::string& name, const std::string& help,
                  LabelSet labels, Type type);

  std::vector<Entry> entries_;
};

}  // namespace simmr::obs
