#include "obs/metrics_observer.h"

namespace simmr::obs {
namespace {

/// Completed-task duration buckets, seconds of simulated time. Spans the
/// paper's workloads: sub-second synthetic tasks up to hour-long reduces.
const std::vector<double> kTaskDurationBounds = {
    0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600};

std::size_t KindIndex(TaskKind kind) {
  return kind == TaskKind::kMap ? 0 : 1;
}

}  // namespace

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : registry_(&registry) {
  jobs_arrived_ = &registry.AddCounter("simmr_jobs_arrived_total",
                                       "Jobs that entered the simulator");
  jobs_completed_ = &registry.AddCounter("simmr_jobs_completed_total",
                                         "Jobs that ran to completion");
  for (const TaskKind kind : {TaskKind::kMap, TaskKind::kReduce}) {
    const std::size_t k = KindIndex(kind);
    const LabelSet labels = {{"kind", TaskKindName(kind)}};
    tasks_launched_[k] = &registry.AddCounter(
        "simmr_tasks_launched_total", "Task attempts launched", labels);
    tasks_completed_[k] = &registry.AddCounter(
        "simmr_tasks_completed_total", "Task attempts finished", labels);
    task_failures_[k] = &registry.AddCounter(
        "simmr_task_failures_total", "Failed or killed task attempts",
        labels);
    slots_busy_[k] = &registry.AddGauge(
        "simmr_slots_busy", "Slots currently occupied by a task attempt",
        labels);
    slots_busy_peak_[k] = &registry.AddGauge(
        "simmr_slots_busy_peak", "High-water mark of simmr_slots_busy",
        labels);
    decisions_chosen_[k] = &registry.AddCounter(
        "simmr_scheduler_decisions_total",
        "Scheduling-policy consultations by outcome",
        {{"kind", TaskKindName(kind)}, {"outcome", "chosen"}});
    decisions_idle_[k] = &registry.AddCounter(
        "simmr_scheduler_decisions_total",
        "Scheduling-policy consultations by outcome",
        {{"kind", TaskKindName(kind)}, {"outcome", "idle"}});
    task_duration_[k] = &registry.AddHistogram(
        "simmr_task_duration_seconds",
        "Completed task duration, simulated seconds", kTaskDurationBounds,
        labels);
  }
  for (const FaultEventKind kind :
       {FaultEventKind::kNodeLost, FaultEventKind::kNodeRestored,
        FaultEventKind::kAttemptKilled, FaultEventKind::kTaskReexecuted}) {
    fault_events_[static_cast<std::size_t>(kind)] = &registry.AddCounter(
        "simmr_fault_events_total", "Fault-lifecycle transitions by kind",
        {{"fault", FaultEventKindName(kind)}});
  }
  queue_depth_ = &registry.AddGauge(
      "simmr_event_queue_depth", "Pending events after the last dequeue");
  queue_depth_peak_ = &registry.AddGauge(
      "simmr_event_queue_depth_peak",
      "High-water mark of simmr_event_queue_depth");
  wall_seconds_ = &registry.AddGauge(
      "simmr_wall_seconds", "Host wall-clock time of the run (SetWallStats)");
  wall_events_per_second_ = &registry.AddGauge(
      "simmr_wall_events_per_second",
      "Dequeued events per host wall-clock second (SetWallStats)");
}

void MetricsObserver::SetWallStats(double wall_seconds) {
  wall_seconds_->Set(wall_seconds);
  wall_events_per_second_->Set(
      wall_seconds > 0.0 ? static_cast<double>(events_dequeued_) / wall_seconds
                         : 0.0);
}

void MetricsObserver::OnEventDequeue(SimTime, const char* event_type,
                                     std::size_t queue_depth) {
  ++events_dequeued_;
  Counter*& counter = per_event_type_[event_type];
  if (counter == nullptr) {
    counter = &registry_->AddCounter("simmr_events_dequeued_total",
                                     "Events popped off the simulator queue",
                                     {{"type", event_type}});
  }
  counter->Increment();
  queue_depth_->Set(static_cast<double>(queue_depth));
  if (queue_depth > peak_queue_depth_) {
    peak_queue_depth_ = queue_depth;
    queue_depth_peak_->Set(static_cast<double>(queue_depth));
  }
}

void MetricsObserver::OnJobArrival(SimTime, std::int32_t, std::string_view,
                                   double) {
  jobs_arrived_->Increment();
}

void MetricsObserver::OnJobCompletion(SimTime, std::int32_t) {
  jobs_completed_->Increment();
}

void MetricsObserver::OnTaskLaunch(SimTime, std::int32_t, TaskKind kind,
                                   std::int32_t) {
  const std::size_t k = KindIndex(kind);
  tasks_launched_[k]->Increment();
  slots_busy_now_[k] += 1.0;
  slots_busy_[k]->Set(slots_busy_now_[k]);
  if (slots_busy_now_[k] > slots_busy_high_[k]) {
    slots_busy_high_[k] = slots_busy_now_[k];
    slots_busy_peak_[k]->Set(slots_busy_high_[k]);
  }
}

void MetricsObserver::OnTaskCompletion(SimTime, std::int32_t, TaskKind kind,
                                       std::int32_t,
                                       const TaskTiming& timing,
                                       bool succeeded) {
  const std::size_t k = KindIndex(kind);
  tasks_completed_[k]->Increment();
  if (!succeeded) task_failures_[k]->Increment();
  slots_busy_now_[k] -= 1.0;
  slots_busy_[k]->Set(slots_busy_now_[k]);
  task_duration_[k]->Observe(timing.end - timing.start);
}

void MetricsObserver::OnSchedulerDecision(SimTime, TaskKind kind,
                                          std::int32_t chosen_job) {
  const std::size_t k = KindIndex(kind);
  (chosen_job >= 0 ? decisions_chosen_[k] : decisions_idle_[k])->Increment();
}

void MetricsObserver::OnFaultEvent(SimTime, FaultEventKind kind, std::int32_t,
                                   std::int32_t, TaskKind, std::int32_t) {
  fault_events_[static_cast<std::size_t>(kind)]->Increment();
}

}  // namespace simmr::obs
