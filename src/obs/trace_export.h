// Chrome/Perfetto trace_event JSON exporter.
//
// A SimObserver that renders a simulation run in the Trace Event Format
// consumed by Perfetto (https://ui.perfetto.dev) and chrome://tracing:
//
//   - map and reduce slots appear as tracks ("map slot N" / "reduce slot
//     N"): each task attempt is a duration slice on the lowest free lane
//     of its kind, so the lane count equals peak slot occupancy;
//   - reduce slices nest a shuffle slice and a reduce slice when the phase
//     boundary is known (TaskTiming.shuffle_end strictly inside the task);
//   - job arrivals, completions and deadlines are instant events on a
//     "jobs" track;
//   - event-queue depth is sampled as a counter track;
//   - running map/reduce task counts are counter tracks ("running_maps" /
//     "running_reduces"), updated on every launch and completion, so slot
//     occupancy is visible as a graph without counting slices.
//
// Timestamps are simulated microseconds (Trace Event ts unit); one
// simulated second = 1e6 ts. Write the result with WriteFile() and open it
// directly in the Perfetto UI. Schema details: docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/observer.h"
#include "obs/timeseries.h"

namespace simmr::obs {

class TraceExporter final : public SimObserver {
 public:
  struct Options {
    /// Process name shown in the trace viewer.
    std::string process_name = "simmr";
    /// Emit an event_queue_depth counter sample every N dequeues
    /// (0 disables the counter track).
    std::size_t queue_depth_sample_period = 256;
    /// When positive, queue-depth samples are instead emitted at sim-time
    /// window boundaries (the same WindowClock boundaries and values as
    /// TimeSeriesSampler, so Perfetto and the time series agree);
    /// queue_depth_sample_period is ignored.
    double queue_depth_window_s = 0.0;
  };

  TraceExporter();
  explicit TraceExporter(Options options);

  /// Number of trace events accumulated so far (excluding metadata).
  std::size_t event_count() const { return events_.size(); }

  /// Serializes the accumulated run as a Trace Event Format JSON object.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Throws std::runtime_error on I/O failure.
  void WriteFile(const std::string& path) const;

  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override;
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override;
  void OnJobCompletion(SimTime now, std::int32_t job) override;
  void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                    std::int32_t index) override;
  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override;
  void OnFaultEvent(SimTime now, FaultEventKind kind, std::int32_t node,
                    std::int32_t job, TaskKind task_kind,
                    std::int32_t index) override;

 private:
  struct TraceEvent {
    std::string name;
    const char* category = "sim";
    char phase = 'X';     // X = complete, i = instant, C = counter
    double ts_us = 0.0;
    double dur_us = 0.0;  // complete events only
    std::int64_t tid = 0;
    std::string args_json;  // "" = no args
  };

  std::int64_t AcquireLane(TaskKind kind);
  void ReleaseLane(TaskKind kind, std::int64_t tid);
  void EmitTask(std::int64_t tid, std::int32_t job, TaskKind kind,
                std::int32_t index, const TaskTiming& timing, bool succeeded);
  void EmitRunningCounter(SimTime now, TaskKind kind);

  Options options_;
  std::vector<TraceEvent> events_;

  // Lane (thread-id) allocation per kind. Lanes are tids offset by a
  // per-kind base; the lowest free lane is always reused so tracks map
  // 1:1 onto slots.
  std::vector<bool> lane_busy_[2];
  // In-flight task attempt -> lane. Keyed by (job, kind, index); a vector
  // value absorbs concurrent attempts of the same task (speculation).
  std::map<std::tuple<std::int32_t, int, std::int32_t>,
           std::vector<std::int64_t>>
      inflight_;

  std::size_t dequeues_since_sample_ = 0;
  std::optional<WindowClock> window_clock_;  // windowed queue-depth mode
  std::size_t last_queue_depth_ = 0;
  std::size_t running_tasks_[2] = {0, 0};  // [map, reduce] in flight
  std::map<std::int32_t, std::string> job_name_by_id_;
};

}  // namespace simmr::obs
