#include "obs/telemetry.h"

#include <fstream>
#include <stdexcept>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace simmr::obs {

std::string RunTelemetry::ToJson() const {
  std::string out = "{\"schema\":\"simmr.telemetry.v1\"";
  out += ",\"tool\":\"" + JsonEscape(tool) + "\"";
  out += ",\"scenario\":\"" + JsonEscape(scenario) + "\"";
  out += ",\"wall_seconds\":" + JsonNumber(wall_seconds);
  out += ",\"wall_ms\":" + JsonNumber(wall_seconds * 1e3);
  out += ",\"events_processed\":" + std::to_string(events_processed);
  out += ",\"events_per_second\":" + JsonNumber(events_per_second);
  out += ",\"peak_queue_depth\":" + std::to_string(peak_queue_depth);
  out += ",\"jobs\":" + std::to_string(jobs);
  out += ",\"makespan_s\":" + JsonNumber(makespan_s);
  out += ",\"max_rss_kb\":" + std::to_string(max_rss_kb);
  out += "}";
  return out;
}

RunTelemetry MakeRunTelemetry(const std::string& tool,
                              const std::string& scenario,
                              double wall_seconds, std::uint64_t events,
                              std::uint64_t jobs, double makespan_s,
                              std::uint64_t peak_queue_depth) {
  RunTelemetry t;
  t.tool = tool;
  t.scenario = scenario;
  t.wall_seconds = wall_seconds;
  t.events_processed = events;
  t.events_per_second =
      wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  t.peak_queue_depth = peak_queue_depth;
  t.jobs = jobs;
  t.makespan_s = makespan_s;
  t.max_rss_kb = QueryMaxRssKb();
  return t;
}

long QueryMaxRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
  return usage.ru_maxrss;  // Linux reports KiB
#endif
#else
  return -1;
#endif
}

void WriteTelemetryFile(const std::string& path,
                        const RunTelemetry& telemetry) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("telemetry: cannot write " + path);
  out << telemetry.ToJson() << "\n";
  if (!out) throw std::runtime_error("telemetry: write failed for " + path);
}

}  // namespace simmr::obs
