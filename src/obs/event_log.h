// Durable run records: the "simmr.eventlog.v1" format.
//
// EventLogObserver persists the full SimObserver callback stream — job
// arrivals/completions, task launches/phase transitions/completions with
// their TaskTiming, scheduler decisions and queue depths — so a run can be
// analyzed, replayed and diffed long after the process exits. The format is
// versioned JSONL: one header object followed by one object per callback,
// with doubles printed exactly (shortest representation that parses back to
// the identical bits), so ReadEventLogFile round-trips a run losslessly.
// Schema reference: docs/OBSERVABILITY.md; offline consumers live in
// src/analysis/ and tools/simmr_analyze.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/observer.h"

namespace simmr::obs {

/// One recorded callback. `detail` carries the dequeued event-type name or
/// the phase name being entered, and `name` the job name; both point either
/// at a static string (hook sites pass literals), into the recording
/// observer's name set, or into the owning EventLog's string arena (after
/// parsing) — so events must not outlive their producer. Keeping them as
/// raw pointers makes LogEvent trivially copyable, which is what lets the
/// recording hot path and vector growth stay at memcpy speed.
///
/// The kind-specific payloads overlap in a union: a 1000-job replay records
/// half a million events, so the struct is kept at 48 bytes — memory
/// bandwidth is what the ≤10% recording-overhead budget is spent on. Only
/// the variant named for `kind` is valid; every reader (serializer, parser,
/// analysis, operator==) dispatches on `kind` before touching it.
struct LogEvent {
  enum class Kind : std::uint8_t {
    kDequeue,
    kJobArrival,
    kJobCompletion,
    kTaskLaunch,
    kPhaseTransition,
    kTaskCompletion,
    kSchedulerDecision,
    kFault,
  };

  Kind kind = Kind::kDequeue;
  TaskKind task_kind = TaskKind::kMap;
  bool succeeded = true;  // kTaskCompletion only
  /// Job id; for kSchedulerDecision the chosen job (negative = idle).
  std::int32_t job = -1;
  SimTime t = 0.0;
  std::int32_t index = 0;
  union {
    struct {
      const char* detail;  // kDequeue: event type; kPhaseTransition: phase
      std::uint64_t queue_depth;  // kDequeue only
    };
    struct {
      const char* name;  // kJobArrival only (interned; see above)
      double deadline;   // kJobArrival only (absolute; 0 = none)
    };
    TaskTiming timing;  // kTaskCompletion only
    struct {
      const char* fault_name;  // kFault only: FaultEventKindName (static)
      std::int32_t node;       // kFault only: affected node (-1 = none)
    };
  };

  LogEvent() : detail(""), queue_depth(0) {}

  bool operator==(const LogEvent& other) const;
};

/// Wire name of a LogEvent::Kind ("dequeue", "job_arrival", ...).
const char* LogEventKindName(LogEvent::Kind kind);

/// Inverse of LogEventKindName (the parser's single source of truth for
/// record kinds); nullopt for unknown names.
std::optional<LogEvent::Kind> ParseLogEventKind(std::string_view name);

/// Run-level metadata carried in the header line.
struct EventLogHeader {
  std::string tool;       // producing binary, e.g. "simmr_replay"
  std::string scenario;   // free-form run label, e.g. "policy=fifo jobs=6"
  std::string simulator;  // "simmr" | "testbed" | "mumak" | ""
};

/// A parsed (or assembled) run record: header plus time-ordered events.
/// Copyable; copies share the string arena backing parsed `detail`s.
struct EventLog {
  EventLogHeader header;
  std::vector<LogEvent> events;

  /// Interns `s` into the arena and returns a pointer stable for the
  /// lifetime of this log and all its copies.
  const char* Intern(std::string_view s);

 private:
  std::shared_ptr<std::vector<std::unique_ptr<std::string>>> arena_;
};

/// Records every callback in memory, for WriteFile at end of run.
///
/// The hot path is allocation-free except for vector growth and first-seen
/// job names: `detail` strings are kept as the static pointers the hook
/// sites pass, job names are interned once into an owned set, and LogEvent
/// itself is trivially copyable, so appending is a bounds check plus a
/// fixed-size copy.
class EventLogObserver final : public SimObserver {
 public:
  struct Options {
    /// Record kDequeue events (the bulk of a log). Disabling keeps job- and
    /// task-level history only; the record is then no longer a lossless
    /// callback stream but remains sufficient for src/analysis.
    bool record_dequeues = true;
  };

  EventLogObserver() = default;
  explicit EventLogObserver(Options options) : options_(options) {}

  /// Added to every recorded job id. Lets one observer span several
  /// back-to-back single-job replays (simmr_compare) without id collisions.
  void set_job_id_offset(std::int32_t offset) { job_id_offset_ = offset; }

  const std::vector<LogEvent>& events() const { return events_; }
  std::size_t event_count() const { return events_.size(); }

  /// Successful task attempts recorded so far, per kind.
  std::uint64_t completed(TaskKind kind) const {
    return completed_[kind == TaskKind::kMap ? 0 : 1];
  }
  /// Failed or killed attempts recorded so far, per kind — counted
  /// distinctly from successful ones.
  std::uint64_t killed(TaskKind kind) const {
    return killed_[kind == TaskKind::kMap ? 0 : 1];
  }

  /// Drops all recorded events and counters (the job-id offset stays).
  void Clear();

  /// The record as a "simmr.eventlog.v1" JSONL document.
  std::string ToJsonl(const EventLogHeader& header) const;

  /// Writes ToJsonl() to `path`. Throws std::runtime_error on I/O failure.
  void WriteFile(const std::string& path, const EventLogHeader& header) const;

  // The recording callbacks are defined inline: the engine devirtualizes
  // them when it runs against a concrete EventLogObserver (see
  // core/engine.cpp), and with the bodies visible each hook becomes a
  // branch plus a 48-byte in-place store.
  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override {
    if (!options_.record_dequeues) return;
    LogEvent& ev = Append(LogEvent::Kind::kDequeue, now);
    ev.detail = event_type;
    ev.queue_depth = queue_depth;
  }

  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override {
    LogEvent& ev = Append(LogEvent::Kind::kJobArrival, now);
    ev.job = job + job_id_offset_;
    ev.name = InternName(name);
    ev.deadline = deadline;
  }

  void OnJobCompletion(SimTime now, std::int32_t job) override {
    Append(LogEvent::Kind::kJobCompletion, now).job = job + job_id_offset_;
  }

  void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                    std::int32_t index) override {
    LogEvent& ev = Append(LogEvent::Kind::kTaskLaunch, now);
    ev.job = job + job_id_offset_;
    ev.task_kind = kind;
    ev.index = index;
  }

  void OnTaskPhaseTransition(SimTime now, std::int32_t job, TaskKind kind,
                             std::int32_t index, const char* phase) override {
    LogEvent& ev = Append(LogEvent::Kind::kPhaseTransition, now);
    ev.job = job + job_id_offset_;
    ev.task_kind = kind;
    ev.index = index;
    ev.detail = phase;
  }

  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override {
    LogEvent& ev = Append(LogEvent::Kind::kTaskCompletion, now);
    ev.job = job + job_id_offset_;
    ev.task_kind = kind;
    ev.index = index;
    ev.timing = timing;
    ev.succeeded = succeeded;
    ++(succeeded ? completed_ : killed_)[kind == TaskKind::kMap ? 0 : 1];
  }

  void OnSchedulerDecision(SimTime now, TaskKind kind,
                           std::int32_t chosen_job) override {
    LogEvent& ev = Append(LogEvent::Kind::kSchedulerDecision, now);
    ev.task_kind = kind;
    ev.job = chosen_job >= 0 ? chosen_job + job_id_offset_ : chosen_job;
  }

  void OnFaultEvent(SimTime now, FaultEventKind kind, std::int32_t node,
                    std::int32_t job, TaskKind task_kind,
                    std::int32_t index) override {
    LogEvent& ev = Append(LogEvent::Kind::kFault, now);
    ev.job = job >= 0 ? job + job_id_offset_ : job;
    ev.task_kind = task_kind;
    ev.index = index;
    ev.fault_name = FaultEventKindName(kind);
    ev.node = node;
  }

 private:
  /// Appends a default event and returns it for field fill-in — the
  /// callers above write straight into the vector slot.
  LogEvent& Append(LogEvent::Kind kind, SimTime now) {
    LogEvent& ev = events_.emplace_back();
    ev.kind = kind;
    ev.t = now;
    return ev;
  }

  /// Copies `s` into the owned name set (deduplicated) and returns a
  /// pointer stable for this observer's lifetime.
  const char* InternName(std::string_view s);

  Options options_;
  std::int32_t job_id_offset_ = 0;
  std::vector<LogEvent> events_;
  /// Owns recorded job names; unordered_set never moves its elements, so
  /// the c_str() pointers stored in events_ stay valid across inserts.
  std::unordered_set<std::string> names_;
  std::uint64_t completed_[2] = {0, 0};
  std::uint64_t killed_[2] = {0, 0};
};

/// Serializes a parsed/assembled log back to JSONL — the inverse of
/// ParseEventLog, used by round-trip tests.
std::string SerializeEventLog(const EventLog& log);

/// Parses a "simmr.eventlog.v1" document. Throws std::runtime_error on a
/// wrong schema, malformed line or unknown event kind.
EventLog ParseEventLog(std::istream& in);

/// Reads and parses an event-log file. Throws std::runtime_error on I/O or
/// parse failure.
EventLog ReadEventLogFile(const std::string& path);

/// Formats a double so that parsing the text returns the identical bits:
/// the shortest of %.15g/%.16g/%.17g that round-trips. Non-finite values
/// render as quoted "NaN"/"+Inf"/"-Inf" (JSON has no literal for them).
std::string ExactJsonNumber(double value);

}  // namespace simmr::obs
