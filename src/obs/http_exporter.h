// Embedded live-metrics HTTP endpoint (--serve-metrics).
//
// MetricsHttpServer is a dependency-free HTTP/1.1 server on one background
// thread, bound to loopback, serving three read-only endpoints while a
// simulation runs:
//
//   /metrics   Prometheus text exposition of the live registry. The body
//              is produced by a caller-supplied closure, which is expected
//              to snapshot the registry under the same lock the simulation
//              thread holds while mutating it (see LockingObserver).
//   /healthz   "ok" once the server accepts connections.
//   /progress  JSON (simmr.progress.v1): sessions completed/total, events
//              processed, wall-clock seconds and an ETA extrapolated from
//              session throughput.
//
// Port 0 asks the kernel for a free port; Start() returns the bound port
// so tests and scripts can discover it. Stop() (also run by the
// destructor) wakes the poll loop via a self-pipe and joins the thread, so
// shutdown is clean and deterministic — no detached threads at exit.
//
// The server never touches simulation state directly and the simulators
// never block on it, so serving cannot perturb a run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/observer.h"

namespace simmr::obs {

/// Snapshot served at /progress. `eta_seconds < 0` means unknown (no
/// session finished yet).
struct LiveProgress {
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;
  double eta_seconds = -1.0;
};

class MetricsHttpServer {
 public:
  struct Options {
    /// TCP port; 0 = let the kernel pick a free one.
    int port = 0;
    /// Loopback only by default: this is a debugging endpoint, not a
    /// hardened service.
    std::string bind_address = "127.0.0.1";
    /// Per-connection SO_RCVTIMEO/SO_SNDTIMEO: bounds how long a slow or
    /// stuck client can hold the single serving thread. Requests whose
    /// head has not fully arrived when it expires are answered 400.
    double io_timeout_seconds = 2.0;
  };

  using TextFn = std::function<std::string()>;       // /metrics body
  using ProgressFn = std::function<LiveProgress()>;  // /progress source

  MetricsHttpServer(TextFn metrics, ProgressFn progress);
  MetricsHttpServer(TextFn metrics, ProgressFn progress, Options options);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens and starts the serving thread. Returns the bound
  /// port. Throws std::runtime_error when the socket cannot be set up.
  int Start();

  /// Bound port after Start(), -1 before.
  int port() const { return port_; }

  /// Wakes the serving thread and joins it. Idempotent.
  void Stop();

  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  void Serve();
  void HandleConnection(int fd);

  TextFn metrics_;
  ProgressFn progress_;
  Options options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

/// Serializes every observer callback under a mutex and counts dequeues
/// into an atomic — the bridge that makes a live registry safe to snapshot
/// from the HTTP thread: the simulation thread mutates instruments only
/// while holding `mu`, and the /metrics closure takes the same mutex.
class LockingObserver final : public SimObserver {
 public:
  LockingObserver(SimObserver* inner, std::mutex* mu,
                  std::atomic<std::uint64_t>* events_processed)
      : inner_(inner), mu_(mu), events_(events_processed) {}

  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (events_ != nullptr) events_->fetch_add(1, std::memory_order_relaxed);
    inner_->OnEventDequeue(now, event_type, queue_depth);
  }
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnJobArrival(now, job, name, deadline);
  }
  void OnJobCompletion(SimTime now, std::int32_t job) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnJobCompletion(now, job);
  }
  void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                    std::int32_t index) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnTaskLaunch(now, job, kind, index);
  }
  void OnTaskPhaseTransition(SimTime now, std::int32_t job, TaskKind kind,
                             std::int32_t index, const char* phase) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnTaskPhaseTransition(now, job, kind, index, phase);
  }
  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnTaskCompletion(now, job, kind, index, timing, succeeded);
  }
  void OnSchedulerDecision(SimTime now, TaskKind kind,
                           std::int32_t chosen_job) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnSchedulerDecision(now, kind, chosen_job);
  }
  void OnFaultEvent(SimTime now, FaultEventKind kind, std::int32_t node,
                    std::int32_t job, TaskKind task_kind,
                    std::int32_t index) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->OnFaultEvent(now, kind, node, job, task_kind, index);
  }

 private:
  SimObserver* inner_;
  std::mutex* mu_;
  std::atomic<std::uint64_t>* events_;
};

}  // namespace simmr::obs
