#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace simmr::obs {
namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes HELP text per the exposition format: backslash and newline
/// (quotes are legal in help text).
std::string PrometheusEscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders a label set as {k1="v1",k2="v2"} (empty string when no labels).
/// `extra` appends one more label, used for histogram `le` buckets.
std::string PrometheusLabels(const LabelSet& labels,
                             const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + PrometheusEscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

/// Prometheus prints bucket bounds without trailing zeros.
std::string BoundText(double bound) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

std::string U64Text(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0) {}

void Histogram::Checkpoint() {
  mark_counts_ = counts_;
  mark_total_ = total_count_;
  mark_sum_ = sum_;
}

double Histogram::QuantileFromDeltas(double q,
                                     const std::vector<std::uint64_t>& base,
                                     std::uint64_t base_total) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t total = total_count_ - base_total;
  if (total == 0) return 0.0;
  // Rank of the target observation, 1-based; walk the per-bucket deltas
  // until the cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        counts_[i] - (base.empty() ? 0 : base[i]);
    if (in_bucket == 0) continue;
    const double next = cumulative + static_cast<double>(in_bucket);
    if (next >= rank) {
      const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (rank - cumulative) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  // Target falls in the +Inf bucket: clamp to the last finite bound.
  return bounds_.back();
}

double Histogram::Quantile(double q) const {
  return QuantileFromDeltas(q, {}, 0);
}

double Histogram::WindowQuantile(double q) const {
  return QuantileFromDeltas(q, mark_counts_, mark_total_);
}

MetricsRegistry::Entry& MetricsRegistry::Register(const std::string& name,
                                                  const std::string& help,
                                                  LabelSet labels,
                                                  Type type) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  for (const Entry& entry : entries_) {
    if (entry.name != name) continue;
    if (entry.type != type)
      throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                  "' re-registered with a different type");
    if (entry.labels == labels)
      throw std::invalid_argument("MetricsRegistry: duplicate metric '" +
                                  name + "' with identical labels");
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.labels = std::move(labels);
  entry.type = type;
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter& MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     LabelSet labels) {
  Entry& entry = Register(name, help, std::move(labels), Type::kCounter);
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help, LabelSet labels) {
  Entry& entry = Register(name, help, std::move(labels), Type::kGauge);
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         LabelSet labels) {
  if (bounds.empty())
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1])
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' bounds must be strictly increasing");
  }
  Entry& entry = Register(name, help, std::move(labels), Type::kHistogram);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *entry.histogram;
}

std::vector<MetricsRegistry::ScalarSample> MetricsRegistry::ScalarSnapshot()
    const {
  std::vector<ScalarSample> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    if (entry.type == Type::kHistogram) continue;
    ScalarSample sample;
    sample.key = entry.name + PrometheusLabels(entry.labels);
    sample.value = entry.type == Type::kCounter
                       ? static_cast<double>(entry.counter->Value())
                       : entry.gauge->Value();
    out.push_back(std::move(sample));
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  const std::string* last_family = nullptr;
  for (const Entry& entry : entries_) {
    // One HELP/TYPE block per family. Same-named entries are registered
    // contiguously in practice; re-emitting the block for a non-contiguous
    // repeat would be invalid Prometheus, so suppress any repeat.
    const bool family_seen = [&] {
      for (const Entry& prior : entries_) {
        if (&prior == &entry) return false;
        if (prior.name == entry.name) return true;
      }
      return false;
    }();
    if (!family_seen && (last_family == nullptr ||
                         *last_family != entry.name)) {
      const char* type_name = entry.type == Type::kCounter ? "counter"
                              : entry.type == Type::kGauge ? "gauge"
                                                           : "histogram";
      out += "# HELP " + entry.name + " " + PrometheusEscapeHelp(entry.help) +
             "\n";
      out += "# TYPE " + entry.name + " " + std::string(type_name) + "\n";
    }
    last_family = &entry.name;

    const std::string labels = PrometheusLabels(entry.labels);
    switch (entry.type) {
      case Type::kCounter:
        out += entry.name + labels + " " + U64Text(entry.counter->Value()) +
               "\n";
        break;
      case Type::kGauge: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.12g", entry.gauge->Value());
        out += entry.name + labels + " " + buf + "\n";
        break;
      }
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          out += entry.name + "_bucket" +
                 PrometheusLabels(entry.labels,
                                  "le=\"" + BoundText(h.bucket_bounds()[i]) +
                                      "\"") +
                 " " + U64Text(cumulative) + "\n";
        }
        out += entry.name + "_bucket" +
               PrometheusLabels(entry.labels, "le=\"+Inf\"") + " " +
               U64Text(h.TotalCount()) + "\n";
        out += entry.name + "_sum" + labels + " " + JsonNumber(h.Sum()) +
               "\n";
        out += entry.name + "_count" + labels + " " +
               U64Text(h.TotalCount()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::string out = "{\"schema\":\"simmr.metrics.v1\",\"metrics\":[";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(entry.name) + "\",\"labels\":" +
           JsonLabels(entry.labels);
    switch (entry.type) {
      case Type::kCounter:
        out += ",\"type\":\"counter\",\"value\":" +
               U64Text(entry.counter->Value());
        break;
      case Type::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" +
               JsonNumber(entry.gauge->Value());
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += ",\"type\":\"histogram\",\"buckets\":[";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          if (i > 0) out += ",";
          out += "{\"le\":" + JsonNumber(h.bucket_bounds()[i]) +
                 ",\"count\":" + U64Text(cumulative) + "}";
        }
        if (!h.bucket_bounds().empty()) out += ",";
        out += "{\"le\":\"+Inf\",\"count\":" + U64Text(h.TotalCount()) +
               "}]";
        out += ",\"sum\":" + JsonNumber(h.Sum()) +
               ",\"count\":" + U64Text(h.TotalCount());
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::WriteFile(const std::string& path, bool as_json) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  out << (as_json ? Json() : PrometheusText());
  if (as_json) out << "\n";
  if (!out)
    throw std::runtime_error("MetricsRegistry: write failed for " + path);
}

}  // namespace simmr::obs
