#include "obs/timeseries.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace simmr::obs {
namespace {

std::string U64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

TimeSeriesSampler::TimeSeriesSampler() : TimeSeriesSampler(Options{}) {}

TimeSeriesSampler::TimeSeriesSampler(Options options)
    : options_(options), clock_(options.window_s) {
  if (!(options_.window_s > 0.0))
    throw std::invalid_argument(
        "TimeSeriesSampler: window_s must be positive");
  window_end_ = clock_.WindowEnd();
}

void TimeSeriesSampler::CloseWindowsThrough(SimTime now) {
  while (!finished_ && clock_.CrossesBoundary(now)) {
    CloseWindow(clock_.WindowEnd(), /*partial=*/false);
    clock_.AdvanceOne();
  }
  window_end_ = clock_.WindowEnd();
  window_start_ = clock_.WindowStart();
}

void TimeSeriesSampler::CloseWindow(double t1, bool partial) {
  WindowRecord r;
  r.index = clock_.index();
  r.t0 = clock_.WindowStart();
  r.t1 = t1;
  r.partial = partial;
  r.events = events_in_window_;
  r.queue_depth = queue_depth_last_;
  r.queue_depth_max = queue_depth_max_;
  r.jobs_arrived = jobs_arrived_w_;
  r.jobs_completed = jobs_completed_w_;
  r.jobs_active = jobs_arrived_total_ - jobs_completed_total_;
  r.failures = failures_w_;
  r.slots[0] = options_.map_slots;
  r.slots[1] = options_.reduce_slots;
  const double span = t1 - clock_.WindowStart();
  for (std::size_t k = 0; k < 2; ++k) {
    r.running[k] = running_[k];
    r.running_max[k] = running_max_[k];
    r.completed[k] = durations_[k].WindowCount();
    // Settle the ledger: still-running tasks are credited through t1.
    // The max() guards against a -0.0 / -epsilon from rounding the
    // per-task +/- pairs; the exact value is always >= 0.
    r.busy_seconds[k] = std::max(
        0.0, busy_ledger_[k] + static_cast<double>(running_[k]) * span);
    if (r.completed[k] > 0) {
      // Quantiles must be read here: Checkpoint() below resets the
      // window deltas they are computed from.
      r.quantiles[k][0] = durations_[k].WindowQuantile(0.50);
      r.quantiles[k][1] = durations_[k].WindowQuantile(0.95);
      r.quantiles[k][2] = durations_[k].WindowQuantile(0.99);
    }
  }
  if (options_.registry != nullptr) {
    r.has_metrics = true;
    r.metrics = options_.registry->ScalarSnapshot();
  }
  records_.push_back(std::move(r));

  events_in_window_ = 0;
  queue_depth_max_ = queue_depth_last_;
  running_max_[0] = running_[0];
  running_max_[1] = running_[1];
  busy_ledger_[0] = busy_ledger_[1] = 0.0;
  jobs_arrived_w_ = jobs_completed_w_ = 0;
  failures_w_ = 0;
  durations_[0].Checkpoint();
  durations_[1].Checkpoint();
}

std::string TimeSeriesSampler::RenderWindow(const WindowRecord& r) const {
  const double span = r.t1 - r.t0;
  std::string line = "{\"window\":" + std::to_string(r.index) +
                     ",\"t0\":" + JsonNumber(r.t0) +
                     ",\"t1\":" + JsonNumber(r.t1);
  if (r.partial) line += ",\"partial\":true";
  line += ",\"events\":" + U64(r.events);
  line += ",\"events_per_sim_s\":" +
          JsonNumber(span > 0.0 ? static_cast<double>(r.events) / span : 0.0);
  line += ",\"queue_depth\":" + U64(r.queue_depth);
  line += ",\"queue_depth_max\":" + U64(r.queue_depth_max);
  line += ",\"jobs_arrived\":" + U64(r.jobs_arrived);
  line += ",\"jobs_completed\":" + U64(r.jobs_completed);
  line += ",\"jobs_active\":" + U64(r.jobs_active);
  line += ",\"running_maps\":" + U64(r.running[0]);
  line += ",\"running_maps_max\":" + U64(r.running_max[0]);
  line += ",\"running_reduces\":" + U64(r.running[1]);
  line += ",\"running_reduces_max\":" + U64(r.running_max[1]);
  line += ",\"maps_completed\":" + U64(r.completed[0]);
  line += ",\"reduces_completed\":" + U64(r.completed[1]);
  line += ",\"task_failures\":" + U64(r.failures);
  line += ",\"map_slot_seconds\":" + JsonNumber(r.busy_seconds[0]);
  line += ",\"reduce_slot_seconds\":" + JsonNumber(r.busy_seconds[1]);
  if (r.slots[0] > 0 && span > 0.0) {
    line += ",\"map_utilization\":" +
            JsonNumber(r.busy_seconds[0] /
                       (static_cast<double>(r.slots[0]) * span));
  }
  if (r.slots[1] > 0 && span > 0.0) {
    line += ",\"reduce_utilization\":" +
            JsonNumber(r.busy_seconds[1] /
                       (static_cast<double>(r.slots[1]) * span));
  }
  for (std::size_t k = 0; k < 2; ++k) {
    if (r.completed[k] == 0) continue;
    const char* prefix = k == 0 ? "map" : "reduce";
    line += std::string(",\"") + prefix + "_duration_p50\":" +
            JsonNumber(r.quantiles[k][0]);
    line += std::string(",\"") + prefix + "_duration_p95\":" +
            JsonNumber(r.quantiles[k][1]);
    line += std::string(",\"") + prefix + "_duration_p99\":" +
            JsonNumber(r.quantiles[k][2]);
  }
  if (r.has_metrics) {
    line += ",\"metrics\":{";
    bool first = true;
    for (const auto& sample : r.metrics) {
      if (!first) line += ",";
      first = false;
      line += "\"" + JsonEscape(sample.key) + "\":" + JsonNumber(sample.value);
    }
    line += "}";
  }
  line += "}";
  return line;
}

void TimeSeriesSampler::OnTaskCompletion(SimTime now, std::int32_t,
                                         TaskKind kind, std::int32_t,
                                         const TaskTiming& timing,
                                         bool succeeded) {
  AdvanceTo(now);
  const std::size_t k = KindIndex(kind);
  if (running_[k] > 0) {  // guard: observer installed mid-run
    busy_ledger_[k] += now - window_start_;
    --running_[k];
  }
  if (succeeded) {
    durations_[k].Observe(std::max(0.0, timing.end - timing.start));
  } else {
    ++failures_w_;
  }
}

void TimeSeriesSampler::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!observed_) return;
  // The final (usually partial) window, closed at the last observed time;
  // CloseWindow settles the ledger for tasks still running at t1.
  CloseWindow(last_now_, /*partial=*/last_now_ < clock_.WindowEnd());
}

std::string TimeSeriesSampler::ToJsonl(const TimeSeriesHeader& header) const {
  std::string out = "{\"schema\":\"simmr.timeseries.v1\",\"tool\":\"" +
                    JsonEscape(header.tool) + "\",\"scenario\":\"" +
                    JsonEscape(header.scenario) + "\",\"simulator\":\"" +
                    JsonEscape(header.simulator) + "\",\"window_s\":" +
                    JsonNumber(options_.window_s) + "}\n";
  for (const WindowRecord& r : records_) {
    out += RenderWindow(r);
    out += "\n";
  }
  return out;
}

void TimeSeriesSampler::WriteFile(const std::string& path,
                                  const TimeSeriesHeader& header) {
  Finish();
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("TimeSeriesSampler: cannot write " + path);
  out << ToJsonl(header);
  if (!out)
    throw std::runtime_error("TimeSeriesSampler: write failed for " + path);
}

}  // namespace simmr::obs
