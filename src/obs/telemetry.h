// Run telemetry: the stable machine-readable performance summary emitted
// by the tools (via --telemetry-out) and the bench binaries, and the
// schema bench/ uses to populate BENCH_*.json.
//
// One run = one JSON object ("simmr.telemetry.v1"):
//   {"schema":"simmr.telemetry.v1","tool":...,"scenario":...,
//    "wall_seconds":...,"wall_ms":...,"events_processed":...,
//    "events_per_second":...,"peak_queue_depth":...,"jobs":...,
//    "makespan_s":...,"max_rss_kb":...}
// Fields that were not measured are 0 (peak_queue_depth, jobs, makespan_s)
// or -1 (max_rss_kb when the platform cannot report it).
#pragma once

#include <cstdint>
#include <string>

namespace simmr::obs {

struct RunTelemetry {
  std::string tool;      // producing binary, e.g. "simmr_replay"
  std::string scenario;  // free-form run label, e.g. "policy=fifo jobs=20"
  double wall_seconds = 0.0;
  std::uint64_t events_processed = 0;
  double events_per_second = 0.0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t jobs = 0;
  double makespan_s = 0.0;   // simulated seconds
  long max_rss_kb = -1;      // process high-water RSS; -1 when unknown

  /// One-line JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Assembles a RunTelemetry, deriving events_per_second from
/// (events, wall_seconds) and filling max_rss_kb from the OS.
RunTelemetry MakeRunTelemetry(const std::string& tool,
                              const std::string& scenario,
                              double wall_seconds, std::uint64_t events,
                              std::uint64_t jobs, double makespan_s,
                              std::uint64_t peak_queue_depth = 0);

/// Process peak resident set size in KiB, or -1 when unavailable.
long QueryMaxRssKb();

/// Writes `telemetry.ToJson()` plus a newline to `path`.
/// Throws std::runtime_error on I/O failure.
void WriteTelemetryFile(const std::string& path,
                        const RunTelemetry& telemetry);

}  // namespace simmr::obs
