// Live instrumentation hooks for the simulators.
//
// Every simulator in this repository (the SimMR engine, the node-level
// testbed emulator and the Mumak baseline) accepts an optional SimObserver
// through its config. The default is null: the hot loops pay exactly one
// predictable branch per hook site and no virtual dispatch. When an
// observer is installed it sees the run as a time-ordered callback stream —
// the substrate for the metrics registry (metrics_observer.h), the
// Perfetto trace exporter (trace_export.h) and any user-defined sink.
//
// Ordering contract: within one run, the `now` argument of successive
// callbacks is nondecreasing (callbacks fire as the simulator processes its
// event queue). tests/obs/observer_order_test.cpp asserts this for all
// three simulators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "simcore/time.h"

namespace simmr::obs {

/// Task family, shared vocabulary across the simulators.
enum class TaskKind : std::uint8_t { kMap, kReduce };

inline const char* TaskKindName(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

/// Fault-lifecycle transitions reported through SimObserver::OnFaultEvent.
/// These mirror the SimEventKind vocabulary (NODE_LOST, NODE_RESTORED,
/// ATTEMPT_KILLED, TASK_REEXECUTED) but carry resolved arguments: which
/// node, and — for attempt-level events — which task attempt.
enum class FaultEventKind : std::uint8_t {
  kNodeLost,
  kNodeRestored,
  kAttemptKilled,
  kTaskReexecuted,
};

inline const char* FaultEventKindName(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kNodeLost: return "NODE_LOST";
    case FaultEventKind::kNodeRestored: return "NODE_RESTORED";
    case FaultEventKind::kAttemptKilled: return "ATTEMPT_KILLED";
    case FaultEventKind::kTaskReexecuted: return "TASK_REEXECUTED";
  }
  return "?";
}

/// Resolved timing of one finished task attempt. For maps
/// `shuffle_end == start`; for reduces `[start, shuffle_end]` is the
/// shuffle (fetch+merge) phase and `[shuffle_end, end]` the reduce phase —
/// the same convention as SimTaskRecord and the history-log format.
struct TaskTiming {
  SimTime start = 0.0;
  SimTime shuffle_end = 0.0;
  SimTime end = 0.0;
};

/// Observer interface. Every callback has an empty inline default so
/// subclasses override only what they need. `job` ids are per-run dense
/// indices (the same ids the simulators report in their results); a
/// negative job id in OnSchedulerDecision means the policy declined.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// One event popped off the simulator's queue. `event_type` is a static
  /// string naming the simulator-specific event kind; `queue_depth` is the
  /// number of events still pending after the pop.
  virtual void OnEventDequeue(SimTime now, const char* event_type,
                              std::size_t queue_depth) {
    (void)now, (void)event_type, (void)queue_depth;
  }

  /// A job entered the simulator. `deadline` is absolute (0 = none).
  virtual void OnJobArrival(SimTime now, std::int32_t job,
                            std::string_view name, double deadline) {
    (void)now, (void)job, (void)name, (void)deadline;
  }

  virtual void OnJobCompletion(SimTime now, std::int32_t job) {
    (void)now, (void)job;
  }

  /// A task attempt started occupying a slot.
  virtual void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                            std::int32_t index) {
    (void)now, (void)job, (void)kind, (void)index;
  }

  /// A running task crossed a phase boundary (e.g. a reduce finished its
  /// shuffle fetch and entered merge+reduce). `phase` is the static name
  /// of the phase being entered. The SimMR engine resolves phase
  /// boundaries analytically and carries them in OnTaskCompletion's
  /// TaskTiming instead; the node-level simulators fire this live.
  virtual void OnTaskPhaseTransition(SimTime now, std::int32_t job,
                                     TaskKind kind, std::int32_t index,
                                     const char* phase) {
    (void)now, (void)job, (void)kind, (void)index, (void)phase;
  }

  /// A task attempt finished (its completion became visible to the job
  /// master). `succeeded` is false for failed or killed attempts.
  virtual void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                                std::int32_t index, const TaskTiming& timing,
                                bool succeeded) {
    (void)now, (void)job, (void)kind, (void)index, (void)timing,
        (void)succeeded;
  }

  /// The scheduling policy was consulted for a slot of the given kind.
  /// `chosen_job` is the selected job, or negative when the policy left
  /// the slot idle.
  virtual void OnSchedulerDecision(SimTime now, TaskKind kind,
                                   std::int32_t chosen_job) {
    (void)now, (void)kind, (void)chosen_job;
  }

  /// A fault-lifecycle transition (src/fault/ plans and the JobTracker
  /// recovery they exercise). `node` is the affected node, or -1 for the
  /// slot-level engine which has no node identity. For kNodeLost /
  /// kNodeRestored the task arguments are `job = -1, index = -1`; for
  /// kAttemptKilled / kTaskReexecuted they name the affected attempt.
  virtual void OnFaultEvent(SimTime now, FaultEventKind kind,
                            std::int32_t node, std::int32_t job,
                            TaskKind task_kind, std::int32_t index) {
    (void)now, (void)kind, (void)node, (void)job, (void)task_kind,
        (void)index;
  }
};

/// Fans every callback out to several sinks, in registration order.
/// Sinks are borrowed; they must outlive the simulation run.
class MulticastObserver final : public SimObserver {
 public:
  MulticastObserver() = default;

  /// Registers a sink. Null pointers are ignored so callers can pass
  /// optionally-constructed observers without branching.
  void Add(SimObserver* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  bool Empty() const { return sinks_.empty(); }

  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override {
    for (SimObserver* s : sinks_) s->OnEventDequeue(now, event_type,
                                                    queue_depth);
  }
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override {
    for (SimObserver* s : sinks_) s->OnJobArrival(now, job, name, deadline);
  }
  void OnJobCompletion(SimTime now, std::int32_t job) override {
    for (SimObserver* s : sinks_) s->OnJobCompletion(now, job);
  }
  void OnTaskLaunch(SimTime now, std::int32_t job, TaskKind kind,
                    std::int32_t index) override {
    for (SimObserver* s : sinks_) s->OnTaskLaunch(now, job, kind, index);
  }
  void OnTaskPhaseTransition(SimTime now, std::int32_t job, TaskKind kind,
                             std::int32_t index, const char* phase) override {
    for (SimObserver* s : sinks_)
      s->OnTaskPhaseTransition(now, job, kind, index, phase);
  }
  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override {
    for (SimObserver* s : sinks_)
      s->OnTaskCompletion(now, job, kind, index, timing, succeeded);
  }
  void OnSchedulerDecision(SimTime now, TaskKind kind,
                           std::int32_t chosen_job) override {
    for (SimObserver* s : sinks_) s->OnSchedulerDecision(now, kind,
                                                         chosen_job);
  }
  void OnFaultEvent(SimTime now, FaultEventKind kind, std::int32_t node,
                    std::int32_t job, TaskKind task_kind,
                    std::int32_t index) override {
    for (SimObserver* s : sinks_)
      s->OnFaultEvent(now, kind, node, job, task_kind, index);
  }

 private:
  std::vector<SimObserver*> sinks_;
};

}  // namespace simmr::obs
