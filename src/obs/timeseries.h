// Sim-time time-series sampler: the live-observability substrate.
//
// TimeSeriesSampler is a SimObserver that folds the callback stream into
// fixed sim-time windows ([k*w, (k+1)*w)) and emits one JSONL line per
// window: event throughput, queue depth, running map/reduce counts,
// integrated slot-seconds (utilization when the slot counts are known),
// job arrivals/completions, and windowed task-duration percentiles from
// the Histogram windowed-quantile mode. An optional MetricsRegistry
// snapshot embeds every counter/gauge value per window.
//
// Determinism: windows close only when a simulation callback carries a
// `now` at or past the boundary — no wall clock, no timers — so enabling
// sampling cannot perturb a run, and two identical runs produce identical
// time series. The output format is simmr.timeseries.v1 (docs/FORMATS.md),
// consumed by `simmr_analyze timeline`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/observer.h"

namespace simmr::obs {

/// Sim-time window arithmetic, shared by TimeSeriesSampler and
/// TraceExporter's windowed queue-depth counter so both emit samples at
/// identical boundaries. Windows are [k*w, (k+1)*w); an event at exactly
/// (k+1)*w belongs to window k+1 and closes window k.
class WindowClock {
 public:
  explicit WindowClock(double window_s) : window_s_(window_s) {}

  double window_s() const { return window_s_; }
  std::int64_t index() const { return index_; }
  double WindowStart() const {
    return static_cast<double>(index_) * window_s_;
  }
  double WindowEnd() const {
    return static_cast<double>(index_ + 1) * window_s_;
  }
  /// True when `now` lies at or past the current window's end, i.e. the
  /// window must close. Call AdvanceOne() once per closed window.
  bool CrossesBoundary(SimTime now) const { return now >= WindowEnd(); }
  void AdvanceOne() { ++index_; }

 private:
  double window_s_;
  std::int64_t index_ = 0;
};

/// Fixed-bound task-duration histogram for the sampler hot path: the
/// same bucket layout as the MetricsObserver task-duration histogram
/// (so windowed percentiles line up with the run-aggregate exposition)
/// and the same interpolation semantics as Histogram::WindowQuantile,
/// but with compile-time bounds — the Observe compare loop unrolls and
/// vectorizes instead of walking a heap vector.
class DurationHistogram {
 public:
  static constexpr std::size_t kBuckets = 12;
  static constexpr double kBounds[kBuckets] = {0.5, 1,   2,   5,    10,  30,
                                               60,  120, 300, 600, 1800, 3600};

  void Observe(double value) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < kBuckets; ++i)
      idx += static_cast<std::size_t>(kBounds[i] < value);
    if (idx == kBuckets) {
      ++overflow_;
    } else {
      ++counts_[idx];
    }
    ++total_;
  }

  /// Starts a new window: WindowCount()/WindowQuantile() then cover only
  /// observations made after this point.
  void Checkpoint() {
    for (std::size_t i = 0; i < kBuckets; ++i) mark_counts_[i] = counts_[i];
    mark_total_ = total_;
  }

  std::uint64_t WindowCount() const { return total_ - mark_total_; }

  /// Histogram::WindowQuantile semantics: linear interpolation within
  /// the containing bucket, overflow clamps to the last finite bound, an
  /// empty window reports 0.
  double WindowQuantile(double q) const {
    q = std::min(1.0, std::max(0.0, q));
    const std::uint64_t total = WindowCount();
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t in_bucket = counts_[i] - mark_counts_[i];
      if (in_bucket == 0) continue;
      const double next = cumulative + static_cast<double>(in_bucket);
      if (next >= rank) {
        const double lower = i == 0 ? std::min(0.0, kBounds[0]) : kBounds[i - 1];
        const double upper = kBounds[i];
        const double frac =
            (rank - cumulative) / static_cast<double>(in_bucket);
        return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
      }
      cumulative = next;
    }
    return kBounds[kBuckets - 1];
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t mark_counts_[kBuckets] = {};
  std::uint64_t mark_total_ = 0;
};

/// Provenance stamped into the simmr.timeseries.v1 header line.
struct TimeSeriesHeader {
  std::string tool;
  std::string scenario;
  std::string simulator;
};

class TimeSeriesSampler final : public SimObserver {
 public:
  struct Options {
    /// Sampling window, simulated seconds. Must be positive.
    double window_s = 60.0;
    /// Configured slot counts; when positive, per-window utilization
    /// (busy slot-seconds / slots / window span) is emitted.
    int map_slots = 0;
    int reduce_slots = 0;
    /// When set, each window line embeds a "metrics" object with every
    /// counter/gauge value of this registry at window close. Borrowed;
    /// must outlive the sampler's run.
    const MetricsRegistry* registry = nullptr;
  };

  TimeSeriesSampler();
  /// Throws std::invalid_argument when options.window_s is not positive.
  explicit TimeSeriesSampler(Options options);

  /// Configures slot counts after construction (tools learn them from
  /// their own flags after the sinks are built). Affects windows closed
  /// from now on.
  void set_slots(int map_slots, int reduce_slots) {
    options_.map_slots = map_slots;
    options_.reduce_slots = reduce_slots;
  }

  /// Closed windows so far (after Finish(): including the final partial).
  std::size_t window_count() const { return records_.size(); }
  std::uint64_t events_seen() const { return events_total_; }
  double window_s() const { return options_.window_s; }

  /// Closes the trailing partial window at the last observed sim time.
  /// Idempotent; called automatically by WriteFile().
  void Finish();

  /// Serializes the header line plus one line per closed window.
  std::string ToJsonl(const TimeSeriesHeader& header) const;

  /// Finish() + ToJsonl() to `path`. Throws std::runtime_error on I/O
  /// failure.
  void WriteFile(const std::string& path, const TimeSeriesHeader& header);

  // The hooks are defined inline so the devirtualized engine path
  // (EngineImpl<TimeSeriesSampler>, see src/core/engine.cpp) compiles
  // them straight into the hook sites: the common case is a cached
  // boundary compare plus a couple of increments, which is what holds
  // default-window sampling near the bench_timeseries_overhead target
  // (most of what remains is plumbing any attached observer pays).
  void OnEventDequeue(SimTime now, const char* /*event_type*/,
                      std::size_t queue_depth) override {
    AdvanceTo(now);
    ++events_in_window_;
    ++events_total_;
    queue_depth_last_ = queue_depth;
    queue_depth_max_ = std::max(queue_depth_max_, queue_depth);
  }
  void OnJobArrival(SimTime now, std::int32_t /*job*/,
                    std::string_view /*name*/, double /*deadline*/) override {
    AdvanceTo(now);
    ++jobs_arrived_w_;
    ++jobs_arrived_total_;
  }
  void OnJobCompletion(SimTime now, std::int32_t /*job*/) override {
    AdvanceTo(now);
    ++jobs_completed_w_;
    ++jobs_completed_total_;
  }
  void OnTaskLaunch(SimTime now, std::int32_t /*job*/, TaskKind kind,
                    std::int32_t /*index*/) override {
    AdvanceTo(now);  // first: may close windows and move window_start_
    const std::size_t k = KindIndex(kind);
    busy_ledger_[k] -= now - window_start_;
    ++running_[k];
    running_max_[k] = std::max(running_max_[k], running_[k]);
  }
  // Phase transitions and scheduler decisions carry nothing the sampler
  // aggregates, and in the engine every dispatch is preceded by an
  // OnEventDequeue at the same `now` — so these skip even the window
  // advance. Deliberate no-ops, not omissions.
  void OnTaskPhaseTransition(SimTime /*now*/, std::int32_t /*job*/,
                             TaskKind /*kind*/, std::int32_t /*index*/,
                             const char* /*phase*/) override {}
  void OnTaskCompletion(SimTime now, std::int32_t job, TaskKind kind,
                        std::int32_t index, const TaskTiming& timing,
                        bool succeeded) override;
  void OnSchedulerDecision(SimTime /*now*/, TaskKind /*kind*/,
                           std::int32_t /*chosen_job*/) override {}

 private:
  static constexpr std::size_t KindIndex(TaskKind kind) {
    return kind == TaskKind::kMap ? 0 : 1;
  }

  /// Hot path of every hook: note the time, close windows only when the
  /// cached boundary is actually crossed.
  void AdvanceTo(SimTime now) {
    observed_ = true;
    if (now >= window_end_) CloseWindowsThrough(now);  // no-op once finished
    // Unconditional store: the observer contract guarantees `now` is
    // nondecreasing, so no comparison is needed.
    last_now_ = now;
  }
  /// Cold path: closes every window whose end lies at or before `now`
  /// and refreshes the cached boundaries.
  void CloseWindowsThrough(SimTime now);
  void CloseWindow(double t1, bool partial);

  /// One closed window, captured as plain data at close time. JSON
  /// serialization happens in ToJsonl() — after the run in every tool —
  /// so window closes cost a struct push, not a string build.
  struct WindowRecord {
    std::int64_t index = 0;
    double t0 = 0.0;
    double t1 = 0.0;
    bool partial = false;
    std::uint64_t events = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_depth_max = 0;
    std::uint64_t jobs_arrived = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_active = 0;
    std::size_t running[2] = {0, 0};
    std::size_t running_max[2] = {0, 0};
    std::uint64_t completed[2] = {0, 0};
    std::uint64_t failures = 0;
    double busy_seconds[2] = {0.0, 0.0};
    /// Slot config at close time (set_slots applies to later windows).
    int slots[2] = {0, 0};
    /// p50/p95/p99 per kind; meaningful only when completed[k] > 0.
    double quantiles[2][3] = {{0, 0, 0}, {0, 0, 0}};
    /// Registry scalar snapshot at close; taken only when a registry is
    /// attached (has_metrics distinguishes "no registry" from "empty").
    bool has_metrics = false;
    std::vector<MetricsRegistry::ScalarSample> metrics;
  };
  std::string RenderWindow(const WindowRecord& r) const;

  Options options_;
  WindowClock clock_;
  /// Cached clock_.WindowEnd()/WindowStart(), so the per-callback
  /// boundary test is one compare instead of an index multiply.
  double window_end_ = 0.0;
  double window_start_ = 0.0;
  double last_now_ = 0.0;
  bool finished_ = false;
  /// Any callback seen at all — an untouched sampler writes header only.
  bool observed_ = false;

  // Per-window accumulators, reset at every window close.
  std::uint64_t events_in_window_ = 0;
  std::size_t queue_depth_last_ = 0;
  std::size_t queue_depth_max_ = 0;
  std::size_t running_[2] = {0, 0};  // [map, reduce] in flight
  std::size_t running_max_[2] = {0, 0};
  /// Busy slot-seconds, interval-ledger form: each task contributes
  /// (end - t0) - (start - t0) clipped to the window, so a launch
  /// subtracts (now - window_start_), a completion adds it back, and the
  /// window total is busy_ledger_ + running × (t1 - t0) at close — one
  /// FP add per running-count change instead of a dt integration chain.
  double busy_ledger_[2] = {0.0, 0.0};
  std::uint64_t jobs_arrived_w_ = 0;
  std::uint64_t jobs_completed_w_ = 0;
  std::uint64_t failures_w_ = 0;

  // Run cumulatives.
  std::uint64_t events_total_ = 0;
  std::uint64_t jobs_arrived_total_ = 0;
  std::uint64_t jobs_completed_total_ = 0;

  // Windowed task-duration percentiles; Checkpoint()ed at window close.
  DurationHistogram durations_[2];

  std::vector<WindowRecord> records_;  // closed windows, serialized lazily
};

}  // namespace simmr::obs
