#include "obs/event_log.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/json.h"

namespace simmr::obs {
namespace {

const char* const kSchema = "simmr.eventlog.v1";

}  // namespace

bool LogEvent::operator==(const LogEvent& other) const {
  if (kind != other.kind || t != other.t || job != other.job ||
      task_kind != other.task_kind || index != other.index)
    return false;
  // Only the union variant selected by `kind` holds defined data.
  switch (kind) {
    case Kind::kDequeue:
      return std::strcmp(detail, other.detail) == 0 &&
             queue_depth == other.queue_depth;
    case Kind::kJobArrival:
      return std::strcmp(name, other.name) == 0 &&
             deadline == other.deadline;
    case Kind::kPhaseTransition:
      return std::strcmp(detail, other.detail) == 0;
    case Kind::kTaskCompletion:
      return timing.start == other.timing.start &&
             timing.shuffle_end == other.timing.shuffle_end &&
             timing.end == other.timing.end && succeeded == other.succeeded;
    case Kind::kFault:
      return std::strcmp(fault_name, other.fault_name) == 0 &&
             node == other.node;
    case Kind::kJobCompletion:
    case Kind::kTaskLaunch:
    case Kind::kSchedulerDecision:
      return true;
  }
  return true;
}

namespace {

/// The record-kind wire vocabulary, indexed by LogEvent::Kind. Both the
/// writer (LogEventKindName) and the parser (ParseLogEventKind) read this
/// one table, so the names cannot drift apart.
constexpr const char* kLogEventKindNames[] = {
    "dequeue", "job_arrival", "job_done",  "launch",
    "phase",   "task_done",   "decision",  "fault",
};
constexpr int kNumLogEventKinds =
    static_cast<int>(LogEvent::Kind::kFault) + 1;
static_assert(std::size(kLogEventKindNames) == kNumLogEventKinds);

}  // namespace

const char* LogEventKindName(LogEvent::Kind kind) {
  const auto index = static_cast<std::uint8_t>(kind);
  if (index >= kNumLogEventKinds) return "?";
  return kLogEventKindNames[index];
}

std::optional<LogEvent::Kind> ParseLogEventKind(std::string_view name) {
  for (int i = 0; i < kNumLogEventKinds; ++i) {
    if (name == kLogEventKindNames[i]) return static_cast<LogEvent::Kind>(i);
  }
  return std::nullopt;
}

const char* EventLog::Intern(std::string_view s) {
  if (arena_ == nullptr)
    arena_ = std::make_shared<std::vector<std::unique_ptr<std::string>>>();
  for (const auto& owned : *arena_) {
    if (*owned == s) return owned->c_str();
  }
  arena_->push_back(std::make_unique<std::string>(s));
  return arena_->back()->c_str();
}

std::string ExactJsonNumber(double value) {
  if (std::isnan(value)) return "\"NaN\"";
  if (value == std::numeric_limits<double>::infinity()) return "\"+Inf\"";
  if (value == -std::numeric_limits<double>::infinity()) return "\"-Inf\"";
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void EventLogObserver::Clear() {
  events_.clear();
  names_.clear();
  completed_[0] = completed_[1] = 0;
  killed_[0] = killed_[1] = 0;
}

const char* EventLogObserver::InternName(std::string_view s) {
  return names_.emplace(s).first->c_str();
}

namespace {

void AppendHeaderLine(std::string& out, const EventLogHeader& header) {
  out += "{\"schema\":\"";
  out += kSchema;
  out += "\",\"tool\":\"";
  out += JsonEscape(header.tool);
  out += "\",\"scenario\":\"";
  out += JsonEscape(header.scenario);
  out += "\",\"simulator\":\"";
  out += JsonEscape(header.simulator);
  out += "\"}\n";
}

void AppendEventLine(std::string& out, const LogEvent& ev) {
  out += "{\"k\":\"";
  out += LogEventKindName(ev.kind);
  out += "\",\"t\":";
  out += ExactJsonNumber(ev.t);
  switch (ev.kind) {
    case LogEvent::Kind::kDequeue:
      out += ",\"type\":\"";
      out += JsonEscape(ev.detail);
      out += "\",\"depth\":";
      out += std::to_string(ev.queue_depth);
      break;
    case LogEvent::Kind::kJobArrival:
      out += ",\"job\":";
      out += std::to_string(ev.job);
      out += ",\"name\":\"";
      out += JsonEscape(ev.name);
      out += "\",\"deadline\":";
      out += ExactJsonNumber(ev.deadline);
      break;
    case LogEvent::Kind::kJobCompletion:
      out += ",\"job\":";
      out += std::to_string(ev.job);
      break;
    case LogEvent::Kind::kTaskLaunch:
      out += ",\"job\":";
      out += std::to_string(ev.job);
      out += ",\"kind\":\"";
      out += TaskKindName(ev.task_kind);
      out += "\",\"index\":";
      out += std::to_string(ev.index);
      break;
    case LogEvent::Kind::kPhaseTransition:
      out += ",\"job\":";
      out += std::to_string(ev.job);
      out += ",\"kind\":\"";
      out += TaskKindName(ev.task_kind);
      out += "\",\"index\":";
      out += std::to_string(ev.index);
      out += ",\"phase\":\"";
      out += JsonEscape(ev.detail);
      out += "\"";
      break;
    case LogEvent::Kind::kTaskCompletion:
      out += ",\"job\":";
      out += std::to_string(ev.job);
      out += ",\"kind\":\"";
      out += TaskKindName(ev.task_kind);
      out += "\",\"index\":";
      out += std::to_string(ev.index);
      out += ",\"start\":";
      out += ExactJsonNumber(ev.timing.start);
      out += ",\"shuffle_end\":";
      out += ExactJsonNumber(ev.timing.shuffle_end);
      out += ",\"end\":";
      out += ExactJsonNumber(ev.timing.end);
      out += ",\"ok\":";
      out += ev.succeeded ? "true" : "false";
      break;
    case LogEvent::Kind::kSchedulerDecision:
      out += ",\"kind\":\"";
      out += TaskKindName(ev.task_kind);
      out += "\",\"job\":";
      out += std::to_string(ev.job);
      break;
    case LogEvent::Kind::kFault:
      out += ",\"fault\":\"";
      out += JsonEscape(ev.fault_name);
      out += "\",\"node\":";
      out += std::to_string(ev.node);
      out += ",\"job\":";
      out += std::to_string(ev.job);
      out += ",\"kind\":\"";
      out += TaskKindName(ev.task_kind);
      out += "\",\"index\":";
      out += std::to_string(ev.index);
      break;
  }
  out += "}\n";
}

}  // namespace

std::string EventLogObserver::ToJsonl(const EventLogHeader& header) const {
  std::string out;
  out.reserve(64 + events_.size() * 72);
  AppendHeaderLine(out, header);
  for (const LogEvent& ev : events_) AppendEventLine(out, ev);
  return out;
}

void EventLogObserver::WriteFile(const std::string& path,
                                 const EventLogHeader& header) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  const std::string body = ToJsonl(header);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("failed writing " + path);
}

std::string SerializeEventLog(const EventLog& log) {
  std::string out;
  out.reserve(64 + log.events.size() * 72);
  AppendHeaderLine(out, log.header);
  for (const LogEvent& ev : log.events) AppendEventLine(out, ev);
  return out;
}

namespace {

/// Minimal parser for the flat one-line JSON objects this format emits:
/// string, number, true/false values only. Strict about structure so
/// corrupt logs fail loudly, tolerant about key order.
class FlatJsonLine {
 public:
  FlatJsonLine(const std::string& line, std::size_t line_no) {
    const char* p = line.c_str();
    SkipWs(p);
    Expect(p, '{', line_no);
    SkipWs(p);
    if (*p == '}') return;
    for (;;) {
      const std::string key = ParseString(p, line_no);
      SkipWs(p);
      Expect(p, ':', line_no);
      SkipWs(p);
      Value v;
      if (*p == '"') {
        v.is_string = true;
        v.text = ParseString(p, line_no);
      } else if (std::strncmp(p, "true", 4) == 0) {
        v.number = 1.0;
        p += 4;
      } else if (std::strncmp(p, "false", 5) == 0) {
        v.number = 0.0;
        p += 5;
      } else {
        char* end = nullptr;
        v.number = std::strtod(p, &end);
        if (end == p) Fail(line_no, "expected a value");
        p = end;
      }
      values_.emplace(std::move(key), std::move(v));
      SkipWs(p);
      if (*p == ',') {
        ++p;
        SkipWs(p);
        continue;
      }
      Expect(p, '}', line_no);
      break;
    }
    line_no_ = line_no;
  }

  std::string GetString(const char* key) const {
    const Value& v = Find(key);
    if (!v.is_string) Fail(line_no_, std::string(key) + " is not a string");
    return v.text;
  }

  double GetNumber(const char* key) const {
    const Value& v = Find(key);
    if (!v.is_string) return v.number;
    // Non-finite doubles are serialized as quoted strings.
    if (v.text == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (v.text == "+Inf") return std::numeric_limits<double>::infinity();
    if (v.text == "-Inf") return -std::numeric_limits<double>::infinity();
    Fail(line_no_, std::string(key) + " is not a number");
    return 0.0;
  }

  bool GetBool(const char* key) const { return GetNumber(key) != 0.0; }

  bool Has(const char* key) const { return values_.count(key) != 0; }

 private:
  struct Value {
    bool is_string = false;
    std::string text;
    double number = 0.0;
  };

  [[noreturn]] static void Fail(std::size_t line_no, const std::string& what) {
    throw std::runtime_error("event log line " + std::to_string(line_no) +
                             ": " + what);
  }

  static void SkipWs(const char*& p) {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  }

  static void Expect(const char*& p, char c, std::size_t line_no) {
    if (*p != c) Fail(line_no, std::string("expected '") + c + "'");
    ++p;
  }

  static std::string ParseString(const char*& p, std::size_t line_no) {
    Expect(p, '"', line_no);
    std::string out;
    while (*p != '"') {
      if (*p == '\0') Fail(line_no, "unterminated string");
      if (*p == '\\') {
        ++p;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p;
              const char c = *p;
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
              else
                Fail(line_no, "bad \\u escape");
            }
            // The writer only escapes control characters this way.
            out += static_cast<char>(code);
            break;
          }
          default: Fail(line_no, "bad escape");
        }
        ++p;
      } else {
        out += *p;
        ++p;
      }
    }
    ++p;
    return out;
  }

  const Value& Find(const char* key) const {
    const auto it = values_.find(key);
    if (it == values_.end())
      Fail(line_no_, std::string("missing key '") + key + "'");
    return it->second;
  }

  std::unordered_map<std::string, Value> values_;
  std::size_t line_no_ = 0;
};

TaskKind ParseTaskKind(const std::string& name, std::size_t line_no) {
  if (name == "map") return TaskKind::kMap;
  if (name == "reduce") return TaskKind::kReduce;
  throw std::runtime_error("event log line " + std::to_string(line_no) +
                           ": unknown task kind '" + name + "'");
}

}  // namespace

EventLog ParseEventLog(std::istream& in) {
  EventLog log;
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line))
    throw std::runtime_error("event log: empty input");
  ++line_no;
  {
    const FlatJsonLine header(line, line_no);
    const std::string schema = header.GetString("schema");
    if (schema != kSchema)
      throw std::runtime_error("event log: unsupported schema '" + schema +
                               "' (want " + kSchema + ")");
    log.header.tool = header.GetString("tool");
    log.header.scenario = header.GetString("scenario");
    log.header.simulator = header.GetString("simulator");
  }

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const FlatJsonLine obj(line, line_no);
    const std::string k = obj.GetString("k");
    const std::optional<LogEvent::Kind> kind = ParseLogEventKind(k);
    if (!kind) {
      throw std::runtime_error("event log line " + std::to_string(line_no) +
                               ": unknown event kind '" + k + "'");
    }
    LogEvent ev;
    ev.kind = *kind;
    ev.t = obj.GetNumber("t");
    switch (*kind) {
      case LogEvent::Kind::kDequeue:
        ev.detail = log.Intern(obj.GetString("type"));
        ev.queue_depth = static_cast<std::uint64_t>(obj.GetNumber("depth"));
        break;
      case LogEvent::Kind::kJobArrival:
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        ev.name = log.Intern(obj.GetString("name"));
        ev.deadline = obj.GetNumber("deadline");
        break;
      case LogEvent::Kind::kJobCompletion:
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        break;
      case LogEvent::Kind::kTaskLaunch:
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        ev.task_kind = ParseTaskKind(obj.GetString("kind"), line_no);
        ev.index = static_cast<std::int32_t>(obj.GetNumber("index"));
        break;
      case LogEvent::Kind::kPhaseTransition:
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        ev.task_kind = ParseTaskKind(obj.GetString("kind"), line_no);
        ev.index = static_cast<std::int32_t>(obj.GetNumber("index"));
        ev.detail = log.Intern(obj.GetString("phase"));
        break;
      case LogEvent::Kind::kTaskCompletion:
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        ev.task_kind = ParseTaskKind(obj.GetString("kind"), line_no);
        ev.index = static_cast<std::int32_t>(obj.GetNumber("index"));
        ev.timing.start = obj.GetNumber("start");
        ev.timing.shuffle_end = obj.GetNumber("shuffle_end");
        ev.timing.end = obj.GetNumber("end");
        ev.succeeded = obj.GetBool("ok");
        break;
      case LogEvent::Kind::kSchedulerDecision:
        ev.task_kind = ParseTaskKind(obj.GetString("kind"), line_no);
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        break;
      case LogEvent::Kind::kFault:
        ev.fault_name = log.Intern(obj.GetString("fault"));
        ev.node = static_cast<std::int32_t>(obj.GetNumber("node"));
        ev.job = static_cast<std::int32_t>(obj.GetNumber("job"));
        ev.task_kind = ParseTaskKind(obj.GetString("kind"), line_no);
        ev.index = static_cast<std::int32_t>(obj.GetNumber("index"));
        break;
    }
    log.events.push_back(std::move(ev));
  }
  return log;
}

EventLog ReadEventLogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ParseEventLog(in);
}

}  // namespace simmr::obs
