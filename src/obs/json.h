// Tiny JSON emission helpers shared by the observability writers.
//
// The exporters in this directory emit JSON (Chrome trace events, metric
// snapshots, run telemetry) without a serialization dependency; these
// helpers keep escaping and numeric formatting consistent across them.
#pragma once

#include <cstdio>
#include <limits>
#include <string>
#include <string_view>

namespace simmr::obs {

/// Escapes a string for inclusion inside a JSON double-quoted literal
/// (quotes, backslashes and control characters).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number: finite values with enough digits to
/// round-trip, non-finite values (not representable in JSON) as strings.
inline std::string JsonNumber(double value) {
  if (value != value) return "\"NaN\"";
  if (value == std::numeric_limits<double>::infinity()) return "\"+Inf\"";
  if (value == -std::numeric_limits<double>::infinity()) return "\"-Inf\"";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace simmr::obs
