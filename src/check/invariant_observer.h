// Invariant-checking observer: a standing correctness subsystem.
//
// SimMR's headline claim is accuracy, so every perf/scale refactor must be
// provably behavior-preserving. The golden files catch end-result drift;
// InvariantObserver catches *internal* inconsistency as it happens, by
// validating the live SimObserver callback stream of any simulator against
// the invariants every legal run must satisfy:
//
//  * monotonic clock — callback `now` values never go backwards;
//  * slot-accounting conservation — 0 <= busy map/reduce slots <= the
//    configured totals at every instant, and every occupied slot is
//    released by the end of the run;
//  * task lifecycle legality — tasks belong to an arrived job, launch
//    before they complete, never complete twice, and only relaunch after a
//    failed/killed attempt;
//  * fault lifecycle legality — nodes alternate NODE_LOST/NODE_RESTORED,
//    attempt kills name arrived jobs, and a task re-executes only after a
//    prior successful completion (its output voided by a lost node), which
//    legally reopens its lifecycle;
//  * shuffle-model causality — a first-wave (filler) reduce's shuffle can
//    only end at or after its job's map stage completes (the paper's
//    non-overlapping first-shuffle model), later waves shuffle after their
//    own launch, and every successful reduce carries finite, ordered phase
//    boundaries (the filler was patched exactly once at MAP_STAGE_DONE);
//  * job completion accounting — a job completes exactly once, after all
//    of its launched tasks, at exactly the departure time of its last task
//    (exact mode), and every arrived job has completed by end of run.
//
// The observer is pluggable anywhere a SimObserver goes: engine runs,
// testbed/Mumak runs (use Strictness::kCausal — their job master learns of
// completions on heartbeats, so job completion lags the last task), replay
// sessions and the simmr_fuzz differential driver. It never throws from a
// callback; violations are collected and queried after the run so a fuzzer
// can shrink the offending trace.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/observer.h"

namespace simmr::check {

/// How strictly timing invariants are enforced.
enum class Strictness : std::uint8_t {
  /// The SimMR engine's contract: completion callbacks fire at the task's
  /// departure time, job completion equals the max task departure, and the
  /// filler-reduce shuffle causality of the paper's model must hold.
  kExact,
  /// Node-level simulators (testbed, Mumak): completions become visible on
  /// heartbeats, so `now` may trail TaskTiming::end and job completion may
  /// trail the last task; speculative execution may run concurrent
  /// attempts of one task index. Clock, slot and lifecycle conservation
  /// still apply.
  kCausal,
};

struct InvariantOptions {
  /// Cluster-wide slot totals; 0 disables the corresponding ceiling check
  /// (occupancy conservation is always checked).
  int map_slots = 0;
  int reduce_slots = 0;
  Strictness strictness = Strictness::kExact;
  /// Absolute slack for all time comparisons.
  double time_tolerance = 1e-9;
  /// Recording stops after this many violations (the stream stays
  /// consistent; this only bounds report size on badly broken runs).
  std::size_t max_violations = 64;
  /// Accept JobTracker-style job aborts (ClusterConfig::max_attempts): a
  /// job may complete while attempts are still in flight, and those
  /// attempts may legally report afterwards as they drain. Off by default —
  /// fault-free runs must balance exactly.
  bool allow_job_abort = false;
};

/// One detected inconsistency.
struct Violation {
  std::string invariant;  // stable id, e.g. "slot-conservation"
  std::string detail;     // human-readable specifics
  SimTime at = 0.0;       // callback time of detection
  std::int32_t job = -1;  // offending job, or -1
};

/// Formats violations one per line ("[invariant] t=... job=...: detail").
std::string FormatViolations(const std::vector<Violation>& violations);

class InvariantObserver final : public obs::SimObserver {
 public:
  explicit InvariantObserver(InvariantOptions options = {});

  // SimObserver hooks.
  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override;
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override;
  void OnJobCompletion(SimTime now, std::int32_t job) override;
  void OnTaskLaunch(SimTime now, std::int32_t job, obs::TaskKind kind,
                    std::int32_t index) override;
  void OnTaskPhaseTransition(SimTime now, std::int32_t job,
                             obs::TaskKind kind, std::int32_t index,
                             const char* phase) override;
  void OnTaskCompletion(SimTime now, std::int32_t job, obs::TaskKind kind,
                        std::int32_t index, const obs::TaskTiming& timing,
                        bool succeeded) override;
  void OnSchedulerDecision(SimTime now, obs::TaskKind kind,
                           std::int32_t chosen_job) override;
  void OnFaultEvent(SimTime now, obs::FaultEventKind kind, std::int32_t node,
                    std::int32_t job, obs::TaskKind task_kind,
                    std::int32_t index) override;

  /// End-of-run invariants: all occupied slots released, every arrived job
  /// completed. Call once after the simulator returns; idempotent per run.
  void FinishRun();

  /// Resets all state (violations included) for a fresh run.
  void Reset();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string Report() const { return FormatViolations(violations_); }

  /// Total callbacks seen (all kinds), for coverage assertions.
  std::uint64_t callbacks_seen() const { return callbacks_seen_; }

 private:
  struct TaskState {
    int running = 0;       // concurrent attempts (kCausal may exceed 1)
    bool completed = false;
    // Successful completion record, for end-of-job causality checks.
    obs::TaskTiming timing{};
  };

  struct JobState {
    bool arrived = false;
    bool completed = false;
    /// Completed while attempts were still in flight (allow_job_abort):
    /// later task events for this job are the legal drain, not a bug.
    bool aborted = false;
    SimTime arrival = 0.0;
    SimTime completion = 0.0;
    SimTime max_departure = -1.0;  // max successful TaskTiming::end
    int running_tasks = 0;
    std::unordered_map<std::int32_t, TaskState> maps;
    std::unordered_map<std::int32_t, TaskState> reduces;
  };

  void Violate(std::string invariant, SimTime at, std::int32_t job,
               std::string detail);
  void CheckClock(SimTime now, const char* where);
  /// Looks the job up, flagging task/job events against unknown or
  /// already-completed jobs. Returns nullptr when the job cannot be
  /// tracked (the violation is already recorded).
  JobState* RequireOpenJob(SimTime now, std::int32_t job, const char* what);
  void CheckJobCausality(SimTime now, std::int32_t job, JobState& state);

  InvariantOptions options_;
  std::vector<Violation> violations_;
  std::unordered_map<std::int32_t, JobState> jobs_;
  /// Nodes currently reported lost (fault-lifecycle alternation check).
  std::unordered_set<std::int32_t> lost_nodes_;
  double last_now_ = 0.0;
  bool saw_callback_ = false;
  bool finished_ = false;
  std::uint64_t callbacks_seen_ = 0;
  int busy_maps_ = 0;
  int busy_reduces_ = 0;
};

}  // namespace simmr::check
