// Cross-policy correctness properties of the replay engine.
//
// The invariant observer (invariant_observer.h) checks one run against
// itself; this suite checks runs against each other. Each property is a
// semantic claim about the scheduler family that must hold for *every*
// workload — which is exactly what makes them good oracles for the
// schedule explorer (src/mc): any legal interleaving of the testbed yields
// a fresh workload, and the properties must survive all of them.
//
//   fifo_capacity_equivalence   A Capacity scheduler with a single queue at
//                               full capacity degenerates to FIFO: same
//                               jobs, same completion times, bit-identical.
//   edf_preemption_dominance    Filler preemption only helps: every
//                               deadline the non-preemptive MaxEDF meets,
//                               the preemptive variant meets too.
//   replay_accuracy             Profiles extracted from a testbed log and
//                               replayed under the same FIFO discipline
//                               land within a relative tolerance of the
//                               testbed ground truth (Figure 5's claim as
//                               a pass/fail check).
//
// Violations reuse check::Violation so FormatViolations and the fuzz/mc
// artifact plumbing handle them uniformly; `invariant` carries the
// property name above.
#pragma once

#include <string>
#include <vector>

#include "check/invariant_observer.h"
#include "cluster/history_log.h"
#include "core/engine.h"
#include "trace/workload.h"

namespace simmr::check {

struct PropertyOptions {
  /// Engine configuration for every replay (observer is ignored).
  core::SimConfig config{};
  /// Per-job relative completion-time error bound for replay_accuracy.
  double replay_tolerance = 0.35;
  /// Deadlines for edf_preemption_dominance are set to
  /// arrival + deadline_factor * T_J (T_J = solo completion time).
  double deadline_factor = 1.5;
  /// Detector self-test fault injection: "" (none, the default),
  /// "capacity" (splits the capacity run into two starved queues),
  /// "edf" (shrinks the preemptive run's deadlines tenfold), or
  /// "replay" (forces replay_tolerance to zero). Each fault makes the
  /// corresponding property report violations on healthy inputs, which is
  /// how simmr_explore --self-test proves the detectors are alive.
  std::string fault;
};

/// Names accepted by RunPolicyProperties (and simmr_explore --property).
std::vector<std::string> PolicyPropertyNames();

/// FIFO vs single-queue-full-capacity Capacity: exact differential.
std::vector<Violation> CheckFifoCapacityEquivalence(
    const trace::WorkloadTrace& workload, const PropertyOptions& options);

/// Preemptive MaxEDF must meet every deadline non-preemptive MaxEDF meets.
/// Jobs without deadlines are skipped.
std::vector<Violation> CheckEdfPreemptionDominance(
    const trace::WorkloadTrace& workload, const PropertyOptions& options);

/// Replays `workload` under FIFO and bounds each job's relative
/// completion-time error against the testbed log the workload was
/// profiled from.
std::vector<Violation> CheckReplayAccuracy(const cluster::HistoryLog& log,
                                           const trace::WorkloadTrace& workload,
                                           const PropertyOptions& options);

/// Builds the property workload from a testbed log: one TraceJob per job
/// record, arrival = submit time, deadline = arrival + deadline_factor *
/// solo completion (deterministic — no RNG involved).
trace::WorkloadTrace PropertyWorkloadFromLog(const cluster::HistoryLog& log,
                                             const PropertyOptions& options);

/// Runs the named properties (every known property when `which` is empty)
/// against a testbed log. Throws std::invalid_argument on an unknown
/// property name.
std::vector<Violation> RunPolicyProperties(const cluster::HistoryLog& log,
                                           const std::vector<std::string>& which,
                                           const PropertyOptions& options);

}  // namespace simmr::check
