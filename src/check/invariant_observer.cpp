#include "check/invariant_observer.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace simmr::check {
namespace {

const char* KindName(obs::TaskKind kind) { return obs::TaskKindName(kind); }

std::string TimeStr(double t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

}  // namespace

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += "[" + v.invariant + "] t=" + TimeStr(v.at);
    if (v.job >= 0) out += " job=" + std::to_string(v.job);
    out += ": " + v.detail + "\n";
  }
  return out;
}

InvariantObserver::InvariantObserver(InvariantOptions options)
    : options_(options) {}

void InvariantObserver::Reset() {
  violations_.clear();
  jobs_.clear();
  lost_nodes_.clear();
  last_now_ = 0.0;
  saw_callback_ = false;
  finished_ = false;
  callbacks_seen_ = 0;
  busy_maps_ = 0;
  busy_reduces_ = 0;
}

void InvariantObserver::Violate(std::string invariant, SimTime at,
                                std::int32_t job, std::string detail) {
  if (violations_.size() >= options_.max_violations) return;
  violations_.push_back(
      Violation{std::move(invariant), std::move(detail), at, job});
}

void InvariantObserver::CheckClock(SimTime now, const char* where) {
  ++callbacks_seen_;
  if (std::isnan(now)) {
    Violate("monotonic-clock", now, -1,
            std::string(where) + " reported NaN time");
    return;
  }
  if (now + options_.time_tolerance < 0.0) {
    // Simulations start at t=0; a negative timestamp can only come from a
    // broken clock (or a skew before any reference callback exists).
    Violate("monotonic-clock", now, -1,
            std::string(where) + " reported negative time");
  }
  if (saw_callback_ && now + options_.time_tolerance < last_now_) {
    Violate("monotonic-clock", now, -1,
            std::string(where) + " went backwards from t=" +
                TimeStr(last_now_));
  }
  saw_callback_ = true;
  if (now > last_now_) last_now_ = now;
}

InvariantObserver::JobState* InvariantObserver::RequireOpenJob(
    SimTime now, std::int32_t job, const char* what) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    Violate("task-lifecycle", now, job,
            std::string(what) + " for a job that never arrived");
    return nullptr;
  }
  if (it->second.completed) {
    // An aborted job's in-flight attempts drain after the completion
    // callback; their reports are the contract, not a bug.
    if (it->second.aborted) return &it->second;
    Violate("task-lifecycle", now, job,
            std::string(what) + " after the job completed");
    return nullptr;
  }
  return &it->second;
}

void InvariantObserver::OnEventDequeue(SimTime now, const char* event_type,
                                       std::size_t queue_depth) {
  (void)event_type, (void)queue_depth;
  CheckClock(now, "event dequeue");
}

void InvariantObserver::OnJobArrival(SimTime now, std::int32_t job,
                                     std::string_view name, double deadline) {
  (void)name, (void)deadline;
  CheckClock(now, "job arrival");
  if (job < 0) {
    Violate("task-lifecycle", now, job, "arrival with a negative job id");
    return;
  }
  JobState& state = jobs_[job];
  if (state.arrived) {
    Violate("task-lifecycle", now, job, "job arrived twice");
    return;
  }
  state.arrived = true;
  state.arrival = now;
}

void InvariantObserver::OnTaskLaunch(SimTime now, std::int32_t job,
                                     obs::TaskKind kind, std::int32_t index) {
  CheckClock(now, "task launch");
  JobState* state = RequireOpenJob(now, job, "task launch");
  if (state == nullptr) return;

  TaskState& task = kind == obs::TaskKind::kMap ? state->maps[index]
                                                : state->reduces[index];
  if (options_.strictness == Strictness::kExact) {
    if (task.completed)
      Violate("task-lifecycle", now, job,
              std::string(KindName(kind)) + " task " + std::to_string(index) +
                  " relaunched after successful completion");
    if (task.running > 0)
      Violate("task-lifecycle", now, job,
              std::string(KindName(kind)) + " task " + std::to_string(index) +
                  " launched while already running");
  }
  ++task.running;
  ++state->running_tasks;

  int& busy = kind == obs::TaskKind::kMap ? busy_maps_ : busy_reduces_;
  const int total =
      kind == obs::TaskKind::kMap ? options_.map_slots : options_.reduce_slots;
  ++busy;
  if (total > 0 && busy > total) {
    Violate("slot-conservation", now, job,
            std::string(KindName(kind)) + " slots oversubscribed: " +
                std::to_string(busy) + " busy of " + std::to_string(total) +
                " configured");
  }
}

void InvariantObserver::OnTaskPhaseTransition(SimTime now, std::int32_t job,
                                              obs::TaskKind kind,
                                              std::int32_t index,
                                              const char* phase) {
  (void)kind, (void)index, (void)phase;
  CheckClock(now, "phase transition");
  RequireOpenJob(now, job, "phase transition");
}

void InvariantObserver::OnTaskCompletion(SimTime now, std::int32_t job,
                                         obs::TaskKind kind,
                                         std::int32_t index,
                                         const obs::TaskTiming& timing,
                                         bool succeeded) {
  CheckClock(now, "task completion");
  JobState* state = RequireOpenJob(now, job, "task completion");

  int& busy = kind == obs::TaskKind::kMap ? busy_maps_ : busy_reduces_;
  --busy;
  if (busy < 0) {
    Violate("slot-conservation", now, job,
            std::string(KindName(kind)) +
                " slot released that was never occupied");
    busy = 0;
  }
  if (state == nullptr) return;

  TaskState& task = kind == obs::TaskKind::kMap ? state->maps[index]
                                                : state->reduces[index];
  const std::string label =
      std::string(KindName(kind)) + " task " + std::to_string(index);
  if (task.running <= 0) {
    Violate("task-lifecycle", now, job,
            label + " completed without a matching launch");
  } else {
    --task.running;
    --state->running_tasks;
  }

  if (!succeeded) return;  // killed/failed attempts free their slot only

  if (task.completed) {
    Violate("task-lifecycle", now, job, label + " completed twice");
    return;
  }
  task.completed = true;
  task.timing = timing;

  const double tol = options_.time_tolerance;
  if (!std::isfinite(timing.start) || !std::isfinite(timing.shuffle_end) ||
      !std::isfinite(timing.end)) {
    // For reduces under the engine this means the filler's infinite
    // placeholder duration was never patched at MAP_STAGE_DONE.
    Violate("shuffle-causality", now, job,
            label + " completed with non-finite phase timing (unpatched "
                    "filler?)");
    return;
  }
  if (timing.start > timing.shuffle_end + tol ||
      timing.shuffle_end > timing.end + tol) {
    Violate("shuffle-causality", now, job,
            label + " has unordered phase boundaries start=" +
                TimeStr(timing.start) + " shuffle_end=" +
                TimeStr(timing.shuffle_end) + " end=" + TimeStr(timing.end));
  }
  if (options_.strictness == Strictness::kExact) {
    if (std::abs(timing.end - now) > tol)
      Violate("task-lifecycle", now, job,
              label + " departure reported at t=" + TimeStr(now) +
                  " but its timing ends at " + TimeStr(timing.end));
  } else if (timing.end > now + tol) {
    Violate("task-lifecycle", now, job,
            label + " became visible before it ended (end=" +
                TimeStr(timing.end) + ")");
  }
  if (timing.end > state->max_departure) state->max_departure = timing.end;
}

void InvariantObserver::OnJobCompletion(SimTime now, std::int32_t job) {
  CheckClock(now, "job completion");
  JobState* state = RequireOpenJob(now, job, "job completion");
  if (state == nullptr) return;
  if (state->completed) {
    // RequireOpenJob lets aborted jobs through for the drain; a second
    // completion callback is still illegal.
    Violate("job-accounting", now, job, "job completed twice");
    return;
  }
  state->completed = true;
  state->completion = now;

  if (state->running_tasks > 0) {
    if (options_.allow_job_abort) {
      // JobTracker abort (max_attempts exhausted): in-flight attempts are
      // left to drain and report after this callback.
      state->aborted = true;
    } else {
      Violate("job-accounting", now, job,
              "job completed with " + std::to_string(state->running_tasks) +
                  " task(s) still running");
    }
  }
  const bool had_tasks = state->max_departure >= 0.0;
  const double tol = options_.time_tolerance;
  if (had_tasks) {
    if (options_.strictness == Strictness::kExact) {
      if (std::abs(now - state->max_departure) > tol)
        Violate("job-accounting", now, job,
                "completion at t=" + TimeStr(now) +
                    " != max task departure " +
                    TimeStr(state->max_departure));
    } else if (now + tol < state->max_departure) {
      Violate("job-accounting", now, job,
              "completion at t=" + TimeStr(now) +
                  " precedes its last task departure " +
                  TimeStr(state->max_departure));
    }
  }
  if (now + tol < state->arrival) {
    Violate("job-accounting", now, job,
            "completion precedes arrival t=" + TimeStr(state->arrival));
  }
  CheckJobCausality(now, job, *state);
}

void InvariantObserver::CheckJobCausality(SimTime now, std::int32_t job,
                                          JobState& state) {
  if (options_.strictness != Strictness::kExact) return;
  if (state.reduces.empty()) return;

  // The map stage ends when the last map departs; the paper's shuffle
  // model makes this the causal anchor for every first-wave reduce.
  double map_stage_end = -1.0;
  for (const auto& [index, task] : state.maps) {
    if (task.completed && task.timing.end > map_stage_end)
      map_stage_end = task.timing.end;
  }
  if (map_stage_end < 0.0) return;  // no completed maps to anchor on

  const double tol = options_.time_tolerance;
  for (const auto& [index, task] : state.reduces) {
    if (!task.completed || !std::isfinite(task.timing.end)) continue;
    const obs::TaskTiming& t = task.timing;
    if (t.start + tol < map_stage_end) {
      // First-wave (filler) reduce: its recorded shuffle portion is the
      // part that does NOT overlap the map stage, so it cannot end before
      // the map stage does.
      if (t.shuffle_end + tol < map_stage_end) {
        Violate("shuffle-causality", now, job,
                "first-wave reduce " + std::to_string(index) +
                    " finished its shuffle at t=" + TimeStr(t.shuffle_end) +
                    " before the map stage ended at " +
                    TimeStr(map_stage_end));
      }
    } else if (t.shuffle_end + tol < t.start) {
      // Later waves shuffle strictly after their own launch (typical
      // shuffle); ordering was already checked at completion, restated
      // here for the wave-classified case.
      Violate("shuffle-causality", now, job,
              "later-wave reduce " + std::to_string(index) +
                  " shuffled before it launched");
    }
  }
}

void InvariantObserver::OnSchedulerDecision(SimTime now, obs::TaskKind kind,
                                            std::int32_t chosen_job) {
  (void)kind;
  CheckClock(now, "scheduler decision");
  if (chosen_job < 0) return;  // the policy left the slot idle
  const auto it = jobs_.find(chosen_job);
  if (it == jobs_.end() || !it->second.arrived) {
    Violate("task-lifecycle", now, chosen_job,
            "scheduler chose a job that never arrived");
  } else if (it->second.completed) {
    Violate("task-lifecycle", now, chosen_job,
            "scheduler chose a job that already completed");
  }
}

void InvariantObserver::OnFaultEvent(SimTime now, obs::FaultEventKind kind,
                                     std::int32_t node, std::int32_t job,
                                     obs::TaskKind task_kind,
                                     std::int32_t index) {
  CheckClock(now, "fault event");
  switch (kind) {
    case obs::FaultEventKind::kNodeLost:
      if (node < 0) {
        Violate("fault-lifecycle", now, -1, "NODE_LOST without a node id");
      } else if (!lost_nodes_.insert(node).second) {
        Violate("fault-lifecycle", now, -1,
                "node " + std::to_string(node) +
                    " lost twice without a restore");
      }
      break;
    case obs::FaultEventKind::kNodeRestored:
      if (node < 0 || lost_nodes_.erase(node) == 0) {
        Violate("fault-lifecycle", now, -1,
                "node " + std::to_string(node) +
                    " restored without being lost");
      }
      break;
    case obs::FaultEventKind::kAttemptKilled:
      // The kill's slot release arrives as a failed OnTaskCompletion
      // (checked there); here the event need only name an arrived job.
      if (job < 0 || jobs_.find(job) == jobs_.end()) {
        Violate("fault-lifecycle", now, job,
                "ATTEMPT_KILLED for a job that never arrived");
      }
      break;
    case obs::FaultEventKind::kTaskReexecuted: {
      JobState* state = RequireOpenJob(now, job, "task re-execution");
      if (state == nullptr) return;
      TaskState& task = task_kind == obs::TaskKind::kMap
                            ? state->maps[index]
                            : state->reduces[index];
      if (!task.completed) {
        Violate("fault-lifecycle", now, job,
                std::string(KindName(task_kind)) + " task " +
                    std::to_string(index) +
                    " re-executed without a prior successful completion");
        return;
      }
      // The completed output is void (its node is gone): the lifecycle
      // legally reopens so a fresh attempt may launch and complete again.
      task.completed = false;
      task.timing = obs::TaskTiming{};
      break;
    }
  }
}

void InvariantObserver::FinishRun() {
  if (finished_) return;
  finished_ = true;
  if (busy_maps_ != 0)
    Violate("slot-conservation", last_now_, -1,
            std::to_string(busy_maps_) +
                " map slot(s) still occupied at end of run");
  if (busy_reduces_ != 0)
    Violate("slot-conservation", last_now_, -1,
            std::to_string(busy_reduces_) +
                " reduce slot(s) still occupied at end of run");
  for (const auto& [job, state] : jobs_) {
    if (state.arrived && !state.completed)
      Violate("job-accounting", last_now_, job,
              "job arrived but never completed");
    if (state.running_tasks > 0)
      Violate("task-lifecycle", last_now_, job,
              std::to_string(state.running_tasks) +
                  " task(s) never departed");
  }
}

}  // namespace simmr::check
