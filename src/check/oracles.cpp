#include "check/oracles.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/simmr.h"
#include "sched/aria_model.h"
#include "sched/fifo.h"

namespace simmr::check {

SoloBoundsResult CheckSoloAriaBounds(const trace::JobProfile& profile,
                                     const SoloBoundsOptions& options) {
  const std::string error = profile.Validate();
  if (!error.empty())
    throw std::invalid_argument("CheckSoloAriaBounds: invalid profile: " +
                                error);

  core::SimConfig config;
  config.map_slots = options.map_slots;
  config.reduce_slots = options.reduce_slots;
  config.min_map_percent_completed = options.slowstart;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace solo(1);
  solo[0].profile = profile;
  const core::SimResult run = core::Replay(solo, fifo, config);

  const auto summary = sched::ProfileSummary::FromProfile(profile);
  // The replay's wave structure need not match the trace's: with a single
  // map (or simultaneous map completions) the slowstart gate only opens
  // once the map stage is already done, so no reduce ever pays the
  // recorded first-wave shuffle — the lower bound's correction term
  // (Sh1_avg - Sh_typ_avg) would then overcharge. Clamp it to the
  // direction that is a valid lower bound for every wave structure; the
  // upper bound keeps its Sh1_max term (always a valid ceiling).
  sched::BoundCoefficients lower = sched::LowerBound(summary);
  lower.c = std::min(lower.c, 0.0);
  SoloBoundsResult result;
  result.lower = sched::EstimateCompletion(lower, options.map_slots,
                                           options.reduce_slots);
  result.upper = sched::EstimateCompletion(sched::UpperBound(summary),
                                           options.map_slots,
                                           options.reduce_slots);
  result.simulated = run.jobs.at(0).CompletionTime();
  const double lo =
      result.lower * (1.0 - options.rel_tolerance) - options.abs_tolerance;
  const double hi =
      result.upper * (1.0 + options.rel_tolerance) + options.abs_tolerance;
  result.within = result.simulated >= lo && result.simulated <= hi;
  return result;
}

std::vector<Violation> VerifySoloAriaBounds(
    const std::vector<trace::JobProfile>& pool,
    const SoloBoundsOptions& options) {
  std::vector<Violation> violations;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const SoloBoundsResult r = CheckSoloAriaBounds(pool[i], options);
    if (r.within) continue;
    char detail[256];
    std::snprintf(detail, sizeof(detail),
                  "solo completion %.9g outside ARIA bounds [%.9g, %.9g] "
                  "at %dx%d slots (profile '%s')",
                  r.simulated, r.lower, r.upper, options.map_slots,
                  options.reduce_slots, pool[i].app_name.c_str());
    violations.push_back(Violation{"aria-bounds", detail, r.simulated,
                                   static_cast<std::int32_t>(i)});
  }
  return violations;
}

}  // namespace simmr::check
