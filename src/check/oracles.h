// Analytic oracles: model-derived facts every correct run must satisfy.
//
// The ARIA bounds model (sched/aria_model) predicts that a job running
// alone on a dedicated (S_M, S_R) allocation completes within
// [lower, upper] makespan bounds — the property the paper leans on to make
// MinEDF's allocations trustworthy, and one the replay engine must
// preserve through every refactor. VerifySoloAriaBounds replays each
// profile solo under FIFO and flags completions outside the (tolerance-
// widened) bounds. simmr_fuzz runs it on every generated pool; the sched
// test suite pins the tolerance on known profiles.
#pragma once

#include <vector>

#include "check/invariant_observer.h"
#include "trace/job_profile.h"

namespace simmr::check {

struct SoloBoundsOptions {
  int map_slots = 16;
  int reduce_slots = 16;
  double slowstart = 0.05;
  /// Bounds are widened by rel_tolerance (multiplicative) plus
  /// abs_tolerance (additive): the engine's wave quantization can nudge a
  /// completion just past the idealized lower bound.
  double rel_tolerance = 0.05;
  double abs_tolerance = 1e-6;
};

/// One job's bounds check, for reporting.
struct SoloBoundsResult {
  double lower = 0.0;      // model lower bound, unwidened
  double upper = 0.0;      // model upper bound, unwidened
  double simulated = 0.0;  // solo FIFO completion time
  bool within = true;
};

/// Replays `profile` alone under FIFO and checks the ARIA bounds.
/// Throws std::invalid_argument when the profile fails validation.
SoloBoundsResult CheckSoloAriaBounds(const trace::JobProfile& profile,
                                     const SoloBoundsOptions& options = {});

/// Runs CheckSoloAriaBounds over a pool; one Violation per out-of-bounds
/// job (invariant id "aria-bounds", `job` = pool index).
std::vector<Violation> VerifySoloAriaBounds(
    const std::vector<trace::JobProfile>& pool,
    const SoloBoundsOptions& options = {});

}  // namespace simmr::check
