#include "check/policy_properties.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/simmr.h"
#include "sched/capacity.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/preemptive_maxedf.h"
#include "trace/mr_profiler.h"

namespace simmr::check {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Violation Violate(const char* property, std::int32_t job, std::string detail,
                  double at = 0.0) {
  return {property, std::move(detail), at, job};
}

core::SimResult ReplayWith(const trace::WorkloadTrace& workload,
                           core::SchedulerPolicy& policy,
                           core::SimConfig config) {
  config.observer = nullptr;
  return core::Replay(workload, policy, config);
}

}  // namespace

std::vector<std::string> PolicyPropertyNames() {
  return {"fifo_capacity_equivalence", "edf_preemption_dominance",
          "replay_accuracy"};
}

std::vector<Violation> CheckFifoCapacityEquivalence(
    const trace::WorkloadTrace& workload, const PropertyOptions& options) {
  std::vector<Violation> out;
  if (workload.empty()) return out;

  sched::FifoPolicy fifo;
  const core::SimResult base = ReplayWith(workload, fifo, options.config);

  std::vector<sched::QueueConfig> queues{{"default", 1.0}};
  sched::CapacityPolicy::QueueClassifier classifier;
  if (options.fault == "capacity") {
    // Self-test fault: two starved half-capacity queues with jobs dealt
    // alternately — no longer FIFO-equivalent by construction.
    queues = {{"even", 0.5}, {"odd", 0.5}};
    classifier = [](const core::JobState& job) {
      return job.id() % 2 == 0 ? "even" : "odd";
    };
  }
  sched::CapacityPolicy capacity(options.config.map_slots,
                                 options.config.reduce_slots, queues,
                                 classifier);
  const core::SimResult degenerate =
      ReplayWith(workload, capacity, options.config);

  if (base.jobs.size() != degenerate.jobs.size()) {
    out.push_back(Violate("fifo_capacity_equivalence", -1,
                          "job count " + std::to_string(base.jobs.size()) +
                              " vs " + std::to_string(degenerate.jobs.size())));
    return out;
  }
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    const core::JobResult& a = base.jobs[i];
    const core::JobResult& b = degenerate.jobs[i];
    if (a.completion != b.completion || a.first_launch != b.first_launch ||
        a.map_stage_end != b.map_stage_end) {
      out.push_back(Violate(
          "fifo_capacity_equivalence", a.job,
          "FIFO vs one-queue Capacity diverge: completion " +
              Num(a.completion) + " vs " + Num(b.completion) +
              ", first_launch " + Num(a.first_launch) + " vs " +
              Num(b.first_launch),
          a.completion));
    }
  }
  if (base.makespan != degenerate.makespan)
    out.push_back(Violate("fifo_capacity_equivalence", -1,
                          "makespan " + Num(base.makespan) + " vs " +
                              Num(degenerate.makespan),
                          base.makespan));
  return out;
}

std::vector<Violation> CheckEdfPreemptionDominance(
    const trace::WorkloadTrace& workload, const PropertyOptions& options) {
  std::vector<Violation> out;
  if (workload.empty()) return out;

  core::SimConfig plain = options.config;
  plain.allow_filler_preemption = false;
  sched::MaxEdfPolicy maxedf;
  const core::SimResult base = ReplayWith(workload, maxedf, plain);

  trace::WorkloadTrace preempt_workload = workload;
  if (options.fault == "edf") {
    // Self-test fault: the preemptive run is judged against deadlines ten
    // times tighter, so it "misses" deadlines the plain run meets.
    for (trace::TraceJob& job : preempt_workload)
      if (job.deadline > 0.0)
        job.deadline =
            job.arrival + 0.1 * (job.deadline - job.arrival);
  }
  core::SimConfig preemptive = options.config;
  preemptive.allow_filler_preemption = true;
  sched::PreemptiveMaxEdfPolicy preemptive_maxedf;
  const core::SimResult improved =
      ReplayWith(preempt_workload, preemptive_maxedf, preemptive);

  if (base.jobs.size() != improved.jobs.size()) {
    out.push_back(Violate("edf_preemption_dominance", -1,
                          "job count " + std::to_string(base.jobs.size()) +
                              " vs " +
                              std::to_string(improved.jobs.size())));
    return out;
  }
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    const core::JobResult& a = base.jobs[i];
    const core::JobResult& b = improved.jobs[i];
    if (!a.MissedDeadline() && b.MissedDeadline())
      out.push_back(Violate(
          "edf_preemption_dominance", a.job,
          "preemption regressed a met deadline: non-preemptive finished " +
              Num(a.completion) + " <= " + Num(a.deadline) +
              " but preemptive finished " + Num(b.completion) + " > " +
              Num(b.deadline),
          b.completion));
  }
  return out;
}

std::vector<Violation> CheckReplayAccuracy(
    const cluster::HistoryLog& log, const trace::WorkloadTrace& workload,
    const PropertyOptions& options) {
  std::vector<Violation> out;
  if (workload.empty()) return out;
  const double tolerance =
      options.fault == "replay" ? 0.0 : options.replay_tolerance;

  sched::FifoPolicy fifo;
  const core::SimResult replayed = ReplayWith(workload, fifo, options.config);
  if (replayed.jobs.size() != log.jobs().size()) {
    out.push_back(Violate("replay_accuracy", -1,
                          "job count " + std::to_string(replayed.jobs.size()) +
                              " vs " + std::to_string(log.jobs().size())));
    return out;
  }
  for (std::size_t i = 0; i < replayed.jobs.size(); ++i) {
    const cluster::JobRecord& record = log.jobs()[i];
    const double actual = record.finish_time - record.submit_time;
    const double simulated = replayed.jobs[i].CompletionTime();
    const double err =
        actual > 0.0 ? std::fabs(simulated - actual) / actual : 0.0;
    if (err > tolerance)
      out.push_back(Violate(
          "replay_accuracy", record.job,
          record.app_name + "/" + record.dataset + " replay error " +
              Num(err) + " exceeds " + Num(tolerance) + " (actual " +
              Num(actual) + " s, replay " + Num(simulated) + " s)",
          record.finish_time));
  }
  return out;
}

trace::WorkloadTrace PropertyWorkloadFromLog(const cluster::HistoryLog& log,
                                             const PropertyOptions& options) {
  const std::vector<trace::JobProfile> profiles =
      trace::BuildAllProfiles(log);
  core::SimConfig solo_config = options.config;
  solo_config.observer = nullptr;
  const std::vector<double> solo =
      core::MeasureSoloCompletions(profiles, solo_config);

  trace::WorkloadTrace workload(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    workload[i].profile = profiles[i];
    workload[i].arrival = log.jobs()[i].submit_time;
    workload[i].solo_completion = solo[i];
    workload[i].deadline =
        options.deadline_factor > 0.0
            ? workload[i].arrival + options.deadline_factor * solo[i]
            : 0.0;
  }
  return workload;
}

std::vector<Violation> RunPolicyProperties(
    const cluster::HistoryLog& log, const std::vector<std::string>& which,
    const PropertyOptions& options) {
  std::vector<std::string> selected =
      which.empty() ? PolicyPropertyNames() : which;
  for (const std::string& name : selected) {
    bool known = false;
    for (const std::string& candidate : PolicyPropertyNames())
      known = known || candidate == name;
    if (!known)
      throw std::invalid_argument("RunPolicyProperties: unknown property '" +
                                  name + "'");
  }

  const trace::WorkloadTrace workload = PropertyWorkloadFromLog(log, options);
  std::vector<Violation> out;
  const auto append = [&out](std::vector<Violation> found) {
    out.insert(out.end(), found.begin(), found.end());
  };
  for (const std::string& name : selected) {
    if (name == "fifo_capacity_equivalence")
      append(CheckFifoCapacityEquivalence(workload, options));
    else if (name == "edf_preemption_dominance")
      append(CheckEdfPreemptionDominance(workload, options));
    else if (name == "replay_accuracy")
      append(CheckReplayAccuracy(log, workload, options));
  }
  return out;
}

}  // namespace simmr::check
