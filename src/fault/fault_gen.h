// Seeded fault-plan generation.
//
// One seed → one FaultPlan, bit-identically on every platform (the same
// contract as the trace fuzzer's workload generator). The generator only
// emits plans that pass ValidateFaultPlan: crashes target distinct nodes,
// every crash may be paired with a later restore, heartbeat-loss windows
// are non-empty, slowdown factors are positive. Used by the fuzzer's fault
// archetypes and by the CI smoke step (which seeds from the commit SHA).
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"

namespace simmr::fault {

struct FaultGenOptions {
  /// Cluster geometry copied into the generated plan.
  std::int32_t num_nodes = 8;
  std::int32_t map_slots_per_node = 2;
  std::int32_t reduce_slots_per_node = 2;
  /// Actions are drawn inside [0, horizon). Pick roughly the expected
  /// makespan of the workload the plan will be injected into.
  double horizon = 600.0;
  /// Upper bounds on how many of each action family to draw (actual
  /// counts are uniform in [0, max]). Kill targets are drawn over
  /// [0, kill_jobs) x [0, kill_tasks) and may name attempts that never
  /// run — such kills are no-ops by contract.
  int max_crashes = 2;
  int max_heartbeat_losses = 1;
  int max_slowdowns = 2;
  int max_kills = 2;
  std::int32_t kill_jobs = 4;
  std::int32_t kill_tasks = 16;
};

/// Draws a valid plan from (seed, options). plan.seed records the seed.
FaultPlan GenerateFaultPlan(std::uint64_t seed, const FaultGenOptions& opts);

}  // namespace simmr::fault
