#include "fault/fault_gen.h"

#include <algorithm>
#include <vector>

#include "simcore/rng.h"

namespace simmr::fault {

FaultPlan GenerateFaultPlan(std::uint64_t seed, const FaultGenOptions& opts) {
  FaultPlan plan;
  plan.num_nodes = opts.num_nodes;
  plan.map_slots_per_node = opts.map_slots_per_node;
  plan.reduce_slots_per_node = opts.reduce_slots_per_node;
  plan.seed = seed;
  if (opts.num_nodes <= 0 || opts.horizon <= 0.0) return plan;

  const Rng master(seed);

  // Crashes hit a random prefix of a seeded node permutation so no node is
  // crashed twice (ValidateFaultPlan rejects un-restored double crashes).
  // Leave at least one node up so workloads can always finish.
  Rng crash_rng = master.Split("fault-crash");
  std::vector<std::int32_t> nodes(static_cast<std::size_t>(opts.num_nodes));
  for (std::int32_t i = 0; i < opts.num_nodes; ++i)
    nodes[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = nodes.size(); i > 1; --i)
    std::swap(nodes[i - 1], nodes[crash_rng.NextBounded(i)]);
  const int crash_cap =
      std::min(opts.max_crashes, std::max(0, opts.num_nodes - 1));
  const int num_crashes =
      crash_cap > 0
          ? static_cast<int>(crash_rng.NextBounded(
                static_cast<std::uint64_t>(crash_cap) + 1))
          : 0;
  for (int i = 0; i < num_crashes; ++i) {
    FaultAction crash;
    crash.kind = FaultActionKind::kNodeCrash;
    crash.node = nodes[static_cast<std::size_t>(i)];
    crash.time = crash_rng.NextDouble(0.0, 0.7 * opts.horizon);
    plan.actions.push_back(crash);
    if (crash_rng.NextDouble() < 0.5) {
      FaultAction restore;
      restore.kind = FaultActionKind::kNodeRestore;
      restore.node = crash.node;
      restore.time =
          crash.time + crash_rng.NextDouble(0.05, 0.3) * opts.horizon;
      plan.actions.push_back(restore);
    }
  }

  Rng hb_rng = master.Split("fault-heartbeat-loss");
  const int num_hb = static_cast<int>(hb_rng.NextBounded(
      static_cast<std::uint64_t>(std::max(0, opts.max_heartbeat_losses)) +
      1));
  for (int i = 0; i < num_hb; ++i) {
    FaultAction loss;
    loss.kind = FaultActionKind::kHeartbeatLoss;
    loss.node = static_cast<std::int32_t>(
        hb_rng.NextBounded(static_cast<std::uint64_t>(opts.num_nodes)));
    loss.time = hb_rng.NextDouble(0.0, 0.8 * opts.horizon);
    loss.end_time = loss.time + hb_rng.NextDouble(0.01, 0.25) * opts.horizon;
    plan.actions.push_back(loss);
  }

  Rng slow_rng = master.Split("fault-slowdown");
  const int num_slow = static_cast<int>(slow_rng.NextBounded(
      static_cast<std::uint64_t>(std::max(0, opts.max_slowdowns)) + 1));
  for (int i = 0; i < num_slow; ++i) {
    FaultAction slow;
    slow.kind = FaultActionKind::kNodeSlowdown;
    slow.node = static_cast<std::int32_t>(
        slow_rng.NextBounded(static_cast<std::uint64_t>(opts.num_nodes)));
    slow.time = slow_rng.NextDouble(0.0, 0.8 * opts.horizon);
    slow.factor = slow_rng.NextDouble(0.2, 0.9);
    plan.actions.push_back(slow);
  }

  Rng kill_rng = master.Split("fault-kill");
  const int num_kills = static_cast<int>(kill_rng.NextBounded(
      static_cast<std::uint64_t>(std::max(0, opts.max_kills)) + 1));
  for (int i = 0; i < num_kills && opts.kill_jobs > 0 && opts.kill_tasks > 0;
       ++i) {
    FaultAction kill;
    kill.kind = FaultActionKind::kKillAttempt;
    kill.job = static_cast<std::int32_t>(
        kill_rng.NextBounded(static_cast<std::uint64_t>(opts.kill_jobs)));
    kill.task_kind = kill_rng.NextDouble() < 0.75 ? obs::TaskKind::kMap
                                                  : obs::TaskKind::kReduce;
    kill.index = static_cast<std::int32_t>(
        kill_rng.NextBounded(static_cast<std::uint64_t>(opts.kill_tasks)));
    kill.time = kill_rng.NextDouble(0.0, 0.9 * opts.horizon);
    plan.actions.push_back(kill);
  }

  return plan;
}

}  // namespace simmr::fault
