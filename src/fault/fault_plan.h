// simmr.faultplan.v1: a seeded, deterministic fault plan.
//
// A fault plan is a list of sim-time-stamped actions — node crashes and
// restores, transient heartbeat-loss windows, per-node slowdown factors,
// and targeted task-attempt kills — that a simulator injects into its own
// event queue before a run starts. Because the actions are ordinary queue
// events, a faulted run stays fully deterministic: same plan + same seed
// = bit-identical results, which is what lets the fuzzer re-run faulted
// workloads differentially and lets ctest pin committed plans.
//
// The plan carries the cluster geometry it was authored against
// (num_nodes, slots per node) so the slot-level SimMR engine — which has
// no node identity — can translate node faults into slot-capacity deltas,
// and so validation can reject out-of-range targets up front.
//
// The text format mirrors simmr.repro.v1: a version magic, "key value"
// header lines, then one line per action. Doubles are serialized at
// max_digits10 so plans round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/observer.h"

namespace simmr::fault {

enum class FaultActionKind : std::uint8_t {
  /// Node goes silent at `time`: heartbeats stop, running attempts are
  /// stranded until the JobTracker's expiry interval declares it lost.
  kNodeCrash,
  /// A crashed node rejoins at `time` with empty slots and no local map
  /// output (its disk is treated as wiped).
  kNodeRestore,
  /// Heartbeats from `node` are suppressed during [time, end_time). If
  /// the window is shorter than the expiry interval the cluster never
  /// notices; if longer, it behaves like a crash+restore.
  kHeartbeatLoss,
  /// Node speed is multiplied by `factor` from `time` onward. Applies to
  /// attempts launched after the action fires (running attempts keep
  /// their committed durations).
  kNodeSlowdown,
  /// The running attempt of (job, task_kind, index), if any, is killed at
  /// `time` and the task is requeued.
  kKillAttempt,
};

/// Wire name ("node_crash", "kill_attempt", ...); static storage.
const char* FaultActionKindName(FaultActionKind kind);
std::optional<FaultActionKind> ParseFaultActionKind(std::string_view name);

struct FaultAction {
  FaultActionKind kind = FaultActionKind::kNodeCrash;
  /// Sim-time the action fires.
  double time = 0.0;
  /// kHeartbeatLoss only: end of the suppression window.
  double end_time = 0.0;
  /// Target node for node-scoped actions; ignored by kKillAttempt.
  std::int32_t node = -1;
  /// kNodeSlowdown only: speed multiplier in (0, +inf).
  double factor = 1.0;
  /// kKillAttempt only: the targeted attempt.
  std::int32_t job = -1;
  obs::TaskKind task_kind = obs::TaskKind::kMap;
  std::int32_t index = -1;

  friend bool operator==(const FaultAction& a, const FaultAction& b) {
    return a.kind == b.kind && a.time == b.time && a.end_time == b.end_time &&
           a.node == b.node && a.factor == b.factor && a.job == b.job &&
           a.task_kind == b.task_kind && a.index == b.index;
  }
};

struct FaultPlan {
  /// Geometry the plan was authored against. num_nodes == 0 means the
  /// plan is geometry-free (engine-only plans with kill_attempt actions).
  std::int32_t num_nodes = 0;
  std::int32_t map_slots_per_node = 0;
  std::int32_t reduce_slots_per_node = 0;
  /// Provenance: the generator seed the plan was drawn from (0 = written
  /// by hand). Replays never re-derive anything from it.
  std::uint64_t seed = 0;
  std::vector<FaultAction> actions;

  bool Empty() const { return actions.empty(); }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.num_nodes == b.num_nodes &&
           a.map_slots_per_node == b.map_slots_per_node &&
           a.reduce_slots_per_node == b.reduce_slots_per_node &&
           a.seed == b.seed && a.actions == b.actions;
  }
};

/// Structural validation: non-negative times, nodes within [0, num_nodes)
/// when the plan has geometry, node-scoped actions only in plans WITH
/// geometry (num_nodes == 0 allows kill_attempt alone), positive slowdown
/// factors, well-formed heartbeat-loss windows, crash/restore alternation
/// per node (no double crash without an intervening restore). Returns an
/// empty string when the plan is valid, else a one-line description of the
/// first problem.
std::string ValidateFaultPlan(const FaultPlan& plan);

/// Actions sorted by (time, original position) — the injection order every
/// simulator uses, so same-instant actions fire identically everywhere.
std::vector<FaultAction> SortedActions(const FaultPlan& plan);

/// The format's version line, exported so containers (simmr.repro.v1)
/// can recognize an embedded plan by peeking one line.
inline constexpr const char* kFaultPlanMagic = "simmr.faultplan.v1";

/// Writes the versioned text form (round-trips bit-exactly).
void WriteFaultPlan(std::ostream& out, const FaultPlan& plan);

/// Parses a plan. Throws std::runtime_error on malformed input, including
/// an unknown version line. Does not run ValidateFaultPlan.
FaultPlan ReadFaultPlan(std::istream& in);

/// Parses the fields after the version line — for containers that already
/// consumed the magic while peeking.
FaultPlan ReadFaultPlanBody(std::istream& in);

/// File wrappers; both throw std::runtime_error when the path cannot be
/// opened (or, for writes, when the stream fails).
void WriteFaultPlanFile(const std::string& path, const FaultPlan& plan);
FaultPlan ReadFaultPlanFile(const std::string& path);

}  // namespace simmr::fault
