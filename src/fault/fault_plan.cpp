#include "fault/fault_plan.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace simmr::fault {
namespace {

constexpr const char* kMagic = kFaultPlanMagic;

constexpr const char* kKindNames[] = {
    "node_crash", "node_restore", "heartbeat_loss", "node_slowdown",
    "kill_attempt",
};
constexpr int kNumKinds = 5;

/// Reads "key value..." asserting the key; returns the value part.
std::string ReadField(std::istream& in, const char* key) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error(std::string("fault plan: missing field ") + key);
  const auto space = line.find(' ');
  const std::string seen = line.substr(0, space);
  if (seen != key)
    throw std::runtime_error(std::string("fault plan: expected field ") + key +
                             ", got '" + line + "'");
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

/// Asserts that the next token of `in` equals `word` (action-line syntax
/// markers like "node", "until", "factor").
void ExpectWord(std::istringstream& in, const char* word,
                const std::string& line) {
  std::string seen;
  if (!(in >> seen) || seen != word)
    throw std::runtime_error(std::string("fault plan: expected '") + word +
                             "' in action line '" + line + "'");
}

}  // namespace

const char* FaultActionKindName(FaultActionKind kind) {
  const auto index = static_cast<std::uint8_t>(kind);
  if (index >= kNumKinds) return "?";
  return kKindNames[index];
}

std::optional<FaultActionKind> ParseFaultActionKind(std::string_view name) {
  for (int i = 0; i < kNumKinds; ++i) {
    if (name == kKindNames[i]) return static_cast<FaultActionKind>(i);
  }
  return std::nullopt;
}

std::string ValidateFaultPlan(const FaultPlan& plan) {
  std::ostringstream err;
  if (plan.num_nodes < 0) return "fault plan: negative num_nodes";
  if (plan.map_slots_per_node < 0 || plan.reduce_slots_per_node < 0)
    return "fault plan: negative slots per node";
  // Track crash/restore alternation per node over time-sorted actions so
  // double-crash and restore-without-crash are rejected regardless of the
  // order actions were written in.
  std::vector<char> down(
      plan.num_nodes > 0 ? static_cast<std::size_t>(plan.num_nodes) : 0, 0);
  for (const FaultAction& a : SortedActions(plan)) {
    const char* name = FaultActionKindName(a.kind);
    if (!(a.time >= 0.0)) {  // catches NaN too
      err << "fault plan: " << name << " at negative or NaN time " << a.time;
      return err.str();
    }
    const bool node_scoped = a.kind != FaultActionKind::kKillAttempt;
    if (node_scoped) {
      if (plan.num_nodes == 0) {
        // Every simulator refuses node faults without geometry; reject the
        // plan up front so the mistake surfaces at authoring time.
        err << "fault plan: " << name
            << " requires geometry (num_nodes == 0 allows only kill_attempt)";
        return err.str();
      }
      if (a.node < 0 ||
          (plan.num_nodes > 0 && a.node >= plan.num_nodes)) {
        err << "fault plan: " << name << " targets out-of-range node "
            << a.node;
        return err.str();
      }
    }
    switch (a.kind) {
      case FaultActionKind::kNodeCrash:
        if (plan.num_nodes > 0 && down[a.node]) {
          err << "fault plan: node " << a.node
              << " crashed twice without a restore";
          return err.str();
        }
        if (plan.num_nodes > 0) down[a.node] = 1;
        break;
      case FaultActionKind::kNodeRestore:
        if (plan.num_nodes > 0 && !down[a.node]) {
          err << "fault plan: node " << a.node
              << " restored without a prior crash";
          return err.str();
        }
        if (plan.num_nodes > 0) down[a.node] = 0;
        break;
      case FaultActionKind::kHeartbeatLoss:
        if (!(a.end_time > a.time)) {
          err << "fault plan: heartbeat_loss window [" << a.time << ", "
              << a.end_time << ") is empty or inverted";
          return err.str();
        }
        break;
      case FaultActionKind::kNodeSlowdown:
        if (!(a.factor > 0.0)) {
          err << "fault plan: node_slowdown factor " << a.factor
              << " must be positive";
          return err.str();
        }
        break;
      case FaultActionKind::kKillAttempt:
        if (a.job < 0 || a.index < 0) {
          err << "fault plan: kill_attempt with negative job or index";
          return err.str();
        }
        break;
    }
  }
  return std::string();
}

std::vector<FaultAction> SortedActions(const FaultPlan& plan) {
  std::vector<FaultAction> sorted = plan.actions;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

void WriteFaultPlan(std::ostream& out, const FaultPlan& plan) {
  out << kMagic << '\n';
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "num_nodes " << plan.num_nodes << '\n';
  out << "map_slots_per_node " << plan.map_slots_per_node << '\n';
  out << "reduce_slots_per_node " << plan.reduce_slots_per_node << '\n';
  out << "seed " << plan.seed << '\n';
  out << "actions " << plan.actions.size() << '\n';
  for (const FaultAction& a : plan.actions) {
    out << FaultActionKindName(a.kind) << ' ' << a.time;
    switch (a.kind) {
      case FaultActionKind::kNodeCrash:
      case FaultActionKind::kNodeRestore:
        out << " node " << a.node;
        break;
      case FaultActionKind::kHeartbeatLoss:
        out << " node " << a.node << " until " << a.end_time;
        break;
      case FaultActionKind::kNodeSlowdown:
        out << " node " << a.node << " factor " << a.factor;
        break;
      case FaultActionKind::kKillAttempt:
        out << " job " << a.job << ' ' << obs::TaskKindName(a.task_kind)
            << ' ' << a.index;
        break;
    }
    out << '\n';
  }
}

FaultPlan ReadFaultPlan(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("fault plan: bad or missing version line");
  return ReadFaultPlanBody(in);
}

FaultPlan ReadFaultPlanBody(std::istream& in) {
  std::string line;
  FaultPlan plan;
  plan.num_nodes = std::stoi(ReadField(in, "num_nodes"));
  plan.map_slots_per_node = std::stoi(ReadField(in, "map_slots_per_node"));
  plan.reduce_slots_per_node =
      std::stoi(ReadField(in, "reduce_slots_per_node"));
  plan.seed = std::stoull(ReadField(in, "seed"));
  const int num_actions = std::stoi(ReadField(in, "actions"));
  if (num_actions < 0)
    throw std::runtime_error("fault plan: negative action count");
  plan.actions.reserve(static_cast<std::size_t>(num_actions));
  for (int i = 0; i < num_actions; ++i) {
    if (!std::getline(in, line))
      throw std::runtime_error("fault plan: truncated action list");
    std::istringstream as(line);
    std::string kind_name;
    FaultAction a;
    if (!(as >> kind_name >> a.time))
      throw std::runtime_error("fault plan: malformed action line '" + line +
                               "'");
    const auto kind = ParseFaultActionKind(kind_name);
    if (!kind.has_value())
      throw std::runtime_error("fault plan: unknown action kind '" +
                               kind_name + "'");
    a.kind = *kind;
    switch (a.kind) {
      case FaultActionKind::kNodeCrash:
      case FaultActionKind::kNodeRestore:
        ExpectWord(as, "node", line);
        if (!(as >> a.node))
          throw std::runtime_error("fault plan: bad node in '" + line + "'");
        break;
      case FaultActionKind::kHeartbeatLoss:
        ExpectWord(as, "node", line);
        if (!(as >> a.node))
          throw std::runtime_error("fault plan: bad node in '" + line + "'");
        ExpectWord(as, "until", line);
        if (!(as >> a.end_time))
          throw std::runtime_error("fault plan: bad window end in '" + line +
                                   "'");
        break;
      case FaultActionKind::kNodeSlowdown:
        ExpectWord(as, "node", line);
        if (!(as >> a.node))
          throw std::runtime_error("fault plan: bad node in '" + line + "'");
        ExpectWord(as, "factor", line);
        if (!(as >> a.factor))
          throw std::runtime_error("fault plan: bad factor in '" + line +
                                   "'");
        break;
      case FaultActionKind::kKillAttempt: {
        ExpectWord(as, "job", line);
        std::string kind_word;
        if (!(as >> a.job >> kind_word >> a.index))
          throw std::runtime_error("fault plan: malformed kill_attempt '" +
                                   line + "'");
        if (kind_word == "map") {
          a.task_kind = obs::TaskKind::kMap;
        } else if (kind_word == "reduce") {
          a.task_kind = obs::TaskKind::kReduce;
        } else {
          throw std::runtime_error("fault plan: unknown task kind '" +
                                   kind_word + "'");
        }
        break;
      }
    }
    std::string trailing;
    if (as >> trailing)
      throw std::runtime_error("fault plan: trailing tokens in '" + line +
                               "'");
    plan.actions.push_back(a);
  }
  return plan;
}

void WriteFaultPlanFile(const std::string& path, const FaultPlan& plan) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("fault plan: cannot open " + path);
  WriteFaultPlan(out, plan);
  out.flush();
  if (!out) throw std::runtime_error("fault plan: write failed for " + path);
}

FaultPlan ReadFaultPlanFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fault plan: cannot open " + path);
  return ReadFaultPlan(in);
}

}  // namespace simmr::fault
