// MinEDF (Section V-A): EDF job ordering with *minimal sufficient* slot
// allocation.
//
// "The MinEDF scheduler allocates the minimal amount of map and reduce
// slots that would be required for meeting a given job deadline ... and
// leaves the remaining, spare resources to the next arriving job. It also
// keeps track of the number of running and scheduled map and reduce tasks
// so that they are always less than the 'wanted' number of slots."
//
// The wanted allocation is computed once at job arrival with the ARIA
// bounds model inverted via Lagrange multipliers (aria_model.h). Jobs
// without a deadline want the full cluster (FIFO-like greediness at the
// back of the EDF order).
#pragma once

#include <unordered_map>

#include "core/scheduler.h"
#include "sched/aria_model.h"

namespace simmr::sched {

class MinEdfPolicy final : public core::SchedulerPolicy {
 public:
  /// Cluster capacity bounds for the wanted-slot computation — normally the
  /// SimConfig slot totals.
  MinEdfPolicy(int cluster_map_slots, int cluster_reduce_slots);

  const char* Name() const override { return "MinEDF"; }
  void OnJobArrival(const core::JobState& job, SimTime now) override;
  void OnJobCompletion(const core::JobState& job, SimTime now) override;
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;

  /// The allocation computed for a job at arrival (for tests/diagnostics).
  /// Throws std::out_of_range for jobs this policy has not seen.
  SlotAllocation WantedSlots(core::JobId job) const;

  /// Presets a job's wanted allocation, e.g. one computed offline from a
  /// stored profile (ARIA keeps profiles of prior runs). OnJobArrival uses
  /// a preset instead of recomputing from the replayed trace's profile —
  /// needed when validating a replay against a testbed run whose scheduler
  /// was driven by that same stored profile.
  void PresetWantedSlots(core::JobId job, SlotAllocation allocation);

 private:
  int cluster_map_slots_;
  int cluster_reduce_slots_;
  std::unordered_map<core::JobId, SlotAllocation> preset_;
  std::unordered_map<core::JobId, SlotAllocation> wanted_;
};

}  // namespace simmr::sched
