// MaxEDF (Section V-A): Earliest-Deadline-First job ordering with greedy
// maximum allocation — "apart from the EDF job ordering, the resource
// allocation per job is the same as under the FIFO policy."
#pragma once

#include "core/scheduler.h"

namespace simmr::sched {

/// Shared EDF ordering helper: earliest positive deadline first; jobs
/// without deadlines come after all deadlined jobs, by arrival; final tie
/// break on id for determinism.
bool EdfOrderBefore(const core::JobState& a, const core::JobState& b);

class MaxEdfPolicy final : public core::SchedulerPolicy {
 public:
  const char* Name() const override { return "MaxEDF"; }
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;
};

}  // namespace simmr::sched
