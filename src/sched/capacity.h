// Capacity Scheduler-style policy.
//
// Section I cites the Capacity scheduler as one of the three schedulers in
// broad production use. This is its core: jobs are mapped to named queues,
// each queue is guaranteed a fraction of the cluster's slots, scheduling
// inside a queue is FIFO, and unused guaranteed capacity is lent to other
// queues (work-conserving "elasticity") — reclaimed only as lent tasks
// finish, since tasks are never preempted.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scheduler.h"

namespace simmr::sched {

struct QueueConfig {
  std::string name;
  /// Guaranteed share of each slot type, in (0, 1]. Shares across queues
  /// should sum to <= 1; the remainder is free-for-all capacity.
  double capacity = 1.0;
};

class CapacityPolicy final : public core::SchedulerPolicy {
 public:
  /// Maps an arriving job to a queue name. Unknown names fall into the
  /// first configured queue.
  using QueueClassifier = std::function<std::string(const core::JobState&)>;

  /// Throws std::invalid_argument on empty queue list, nonpositive slot
  /// totals, out-of-range capacities, or duplicate queue names.
  CapacityPolicy(int cluster_map_slots, int cluster_reduce_slots,
                 std::vector<QueueConfig> queues,
                 QueueClassifier classifier = nullptr);

  const char* Name() const override { return "Capacity"; }
  void OnJobArrival(const core::JobState& job, SimTime now) override;
  void OnJobCompletion(const core::JobState& job, SimTime now) override;
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;

  /// The queue a seen job was assigned to (for tests/diagnostics).
  /// Throws std::out_of_range for unknown jobs.
  const std::string& QueueOf(core::JobId job) const;

 private:
  struct QueueState {
    QueueConfig config;
    int guaranteed_map_slots = 0;
    int guaranteed_reduce_slots = 0;
  };

  template <typename Eligible, typename RunningFn>
  core::JobId Choose(core::JobQueue job_queue, Eligible&& eligible,
                     RunningFn&& running, bool map_side);

  int cluster_map_slots_;
  int cluster_reduce_slots_;
  std::vector<QueueState> queues_;
  QueueClassifier classifier_;
  std::unordered_map<core::JobId, std::size_t> job_queue_index_;
};

}  // namespace simmr::sched
