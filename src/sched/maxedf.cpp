#include "sched/maxedf.h"

namespace simmr::sched {

bool EdfOrderBefore(const core::JobState& a, const core::JobState& b) {
  const bool a_has = a.deadline() > 0.0;
  const bool b_has = b.deadline() > 0.0;
  if (a_has != b_has) return a_has;
  if (a_has && a.deadline() != b.deadline())
    return a.deadline() < b.deadline();
  if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
  return a.id() < b.id();
}

namespace {

template <typename Eligible>
core::JobId PickEarliestDeadline(core::JobQueue job_queue,
                                 Eligible&& eligible) {
  const core::JobState* best = nullptr;
  for (const core::JobState* job : job_queue) {
    if (!eligible(*job)) continue;
    if (best == nullptr || EdfOrderBefore(*job, *best)) best = job;
  }
  return best != nullptr ? best->id() : core::kInvalidJob;
}

}  // namespace

core::JobId MaxEdfPolicy::ChooseNextMapTask(core::JobQueue job_queue) {
  return PickEarliestDeadline(job_queue, [](const core::JobState& j) {
    return j.HasPendingMap();
  });
}

core::JobId MaxEdfPolicy::ChooseNextReduceTask(core::JobQueue job_queue) {
  return PickEarliestDeadline(job_queue, [](const core::JobState& j) {
    return j.HasPendingReduce() && j.reduce_gate_open;
  });
}

}  // namespace simmr::sched
