#include "sched/fair.h"

#include <stdexcept>

namespace simmr::sched {

void FairPolicy::SetWeight(core::JobId job, double weight) {
  if (weight <= 0.0)
    throw std::invalid_argument("FairPolicy::SetWeight: nonpositive weight");
  weights_[job] = weight;
}

void FairPolicy::OnJobCompletion(const core::JobState& job, SimTime) {
  weights_.erase(job.id());
}

double FairPolicy::WeightOf(core::JobId job) const {
  const auto it = weights_.find(job);
  return it != weights_.end() ? it->second : 1.0;
}

core::JobId FairPolicy::ChooseNextMapTask(core::JobQueue job_queue) {
  const core::JobState* best = nullptr;
  double best_deficit = 0.0;
  for (const core::JobState* job : job_queue) {
    if (!job->HasPendingMap()) continue;
    const double deficit = job->RunningMaps() / WeightOf(job->id());
    const bool wins =
        best == nullptr || deficit < best_deficit ||
        (deficit == best_deficit &&
         (job->arrival() < best->arrival() ||
          (job->arrival() == best->arrival() && job->id() < best->id())));
    if (wins) {
      best = job;
      best_deficit = deficit;
    }
  }
  return best != nullptr ? best->id() : core::kInvalidJob;
}

core::JobId FairPolicy::ChooseNextReduceTask(core::JobQueue job_queue) {
  const core::JobState* best = nullptr;
  double best_deficit = 0.0;
  for (const core::JobState* job : job_queue) {
    if (!job->HasPendingReduce() || !job->reduce_gate_open) continue;
    const double deficit = job->RunningReduces() / WeightOf(job->id());
    const bool wins =
        best == nullptr || deficit < best_deficit ||
        (deficit == best_deficit &&
         (job->arrival() < best->arrival() ||
          (job->arrival() == best->arrival() && job->id() < best->id())));
    if (wins) {
      best = job;
      best_deficit = deficit;
    }
  }
  return best != nullptr ? best->id() : core::kInvalidJob;
}

}  // namespace simmr::sched
