// Preemptive MaxEDF — an extension beyond the paper.
//
// Section V-B traces the "bump" in Figure 7(a) to non-preemption: "if a
// decision to allocate resources to a task has been made the slot is not
// available for allocation to the earlier deadline job which just
// arrived." This policy is MaxEDF plus filler-reduce preemption (requires
// SimConfig::allow_filler_preemption): when an earlier-deadline job needs
// a reduce slot, the filler reduce of the job with the *latest* deadline
// is killed. bench_ablation_preemption quantifies how much of the bump
// this removes.
#pragma once

#include "core/scheduler.h"

namespace simmr::sched {

class PreemptiveMaxEdfPolicy final : public core::SchedulerPolicy {
 public:
  const char* Name() const override { return "MaxEDF-P"; }
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;
  core::JobId ChooseReducePreemptionVictim(
      core::JobQueue job_queue, const core::JobState& claimant) override;
};

}  // namespace simmr::sched
