// The ARIA bounds-based MapReduce performance model (Section V-A, citing
// Verma et al., ICAC'11).
//
// For n tasks greedily assigned to k slots with average duration `avg` and
// maximum `max`, the makespan is at least n*avg/k and at most
// (n-1)*avg/k + max. Applying the bounds per phase (map; typical
// shuffle+reduce; plus the non-overlapping first shuffle once) gives job
// completion estimates in the Eq. 1 form
//     T = A * N_M/S_M + B * N_R/S_R + C,
// and the inverse problem — the minimal (S_M, S_R) meeting a deadline D —
// has the Lagrange-multiplier closed form on the hyperbola
// A*N_M/S_M + B*N_R/S_R = D - C:
//     S_M = (a + sqrt(a*b)) / (D - C),  S_R = (b + sqrt(a*b)) / (D - C)
// with a = A*N_M, b = B*N_R. MinEDF uses this to size allocations.
#pragma once

#include "trace/job_profile.h"

namespace simmr::sched {

/// Per-phase statistics extracted from a job profile.
struct ProfileSummary {
  int num_maps = 0;
  int num_reduces = 0;
  double map_avg = 0.0, map_max = 0.0;
  double first_shuffle_avg = 0.0, first_shuffle_max = 0.0;
  double typical_shuffle_avg = 0.0, typical_shuffle_max = 0.0;
  double reduce_avg = 0.0, reduce_max = 0.0;

  /// Extracts summaries; when one shuffle pool is empty its statistics fall
  /// back to the other pool (same convention as the replay engine).
  static ProfileSummary FromProfile(const trace::JobProfile& profile);
};

/// Eq. 1 coefficients for one bound.
struct BoundCoefficients {
  double a = 0.0;  // multiplies 1/S_M   (A * N_M)
  double b = 0.0;  // multiplies 1/S_R   (B * N_R)
  double c = 0.0;  // constant term
};

/// Lower-bound coefficients: a = N_M*M_avg, b = N_R*(Sh_avg+R_avg),
/// c = Sh1_avg - Sh_avg (the first wave's typical-shuffle term is replaced
/// by the recorded first shuffle).
BoundCoefficients LowerBound(const ProfileSummary& s);

/// Upper-bound coefficients from the (n-1)*avg/k + max form.
BoundCoefficients UpperBound(const ProfileSummary& s);

/// Average of lower and upper coefficients — the paper's recommended
/// completion-time approximation.
BoundCoefficients AverageBound(const ProfileSummary& s);

/// Evaluates T = a/S_M + b/S_R + c. Slot counts must be positive.
double EstimateCompletion(const BoundCoefficients& coeffs, int map_slots,
                          int reduce_slots);

struct SlotAllocation {
  int map_slots = 1;
  int reduce_slots = 1;
  /// False when no allocation within the caps meets the deadline (the
  /// returned allocation is then the full capacity).
  bool feasible = true;
};

/// Solves the inverse problem for the average bound: minimal S_M + S_R
/// with estimated completion <= deadline, clamped to [1, cap] per
/// dimension. Deadline is relative (seconds from job start).
/// Throws std::invalid_argument for nonpositive deadline or caps.
SlotAllocation MinimalSlotsForDeadline(const ProfileSummary& summary,
                                       double deadline, int max_map_slots,
                                       int max_reduce_slots);

}  // namespace simmr::sched
