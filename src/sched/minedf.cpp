#include "sched/minedf.h"

#include <stdexcept>

#include "sched/maxedf.h"

namespace simmr::sched {

MinEdfPolicy::MinEdfPolicy(int cluster_map_slots, int cluster_reduce_slots)
    : cluster_map_slots_(cluster_map_slots),
      cluster_reduce_slots_(cluster_reduce_slots) {
  if (cluster_map_slots <= 0 || cluster_reduce_slots <= 0)
    throw std::invalid_argument("MinEdfPolicy: nonpositive cluster slots");
}

void MinEdfPolicy::PresetWantedSlots(core::JobId job,
                                     SlotAllocation allocation) {
  preset_[job] = allocation;
}

void MinEdfPolicy::OnJobArrival(const core::JobState& job, SimTime now) {
  if (const auto it = preset_.find(job.id()); it != preset_.end()) {
    wanted_[job.id()] = it->second;
    return;
  }
  SlotAllocation alloc;
  if (job.deadline() > 0.0 && job.deadline() > now) {
    alloc = MinimalSlotsForDeadline(
        ProfileSummary::FromProfile(job.profile()), job.deadline() - now,
        cluster_map_slots_, cluster_reduce_slots_);
  } else {
    // No deadline (or already past): want everything, like MaxEDF.
    alloc.map_slots = cluster_map_slots_;
    alloc.reduce_slots = cluster_reduce_slots_;
    alloc.feasible = job.deadline() <= 0.0;
  }
  wanted_[job.id()] = alloc;
}

void MinEdfPolicy::OnJobCompletion(const core::JobState& job, SimTime) {
  wanted_.erase(job.id());
}

core::JobId MinEdfPolicy::ChooseNextMapTask(core::JobQueue job_queue) {
  const core::JobState* best = nullptr;
  for (const core::JobState* job : job_queue) {
    if (!job->HasPendingMap()) continue;
    const auto it = wanted_.find(job->id());
    const int cap =
        it != wanted_.end() ? it->second.map_slots : cluster_map_slots_;
    if (job->RunningMaps() >= cap) continue;
    if (best == nullptr || EdfOrderBefore(*job, *best)) best = job;
  }
  return best != nullptr ? best->id() : core::kInvalidJob;
}

core::JobId MinEdfPolicy::ChooseNextReduceTask(core::JobQueue job_queue) {
  const core::JobState* best = nullptr;
  for (const core::JobState* job : job_queue) {
    if (!job->HasPendingReduce() || !job->reduce_gate_open) continue;
    const auto it = wanted_.find(job->id());
    const int cap =
        it != wanted_.end() ? it->second.reduce_slots : cluster_reduce_slots_;
    if (job->RunningReduces() >= cap) continue;
    if (best == nullptr || EdfOrderBefore(*job, *best)) best = job;
  }
  return best != nullptr ? best->id() : core::kInvalidJob;
}

SlotAllocation MinEdfPolicy::WantedSlots(core::JobId job) const {
  const auto it = wanted_.find(job);
  if (it == wanted_.end())
    throw std::out_of_range("MinEdfPolicy::WantedSlots: unknown job");
  return it->second;
}

}  // namespace simmr::sched
