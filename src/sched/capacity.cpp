#include "sched/capacity.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace simmr::sched {

CapacityPolicy::CapacityPolicy(int cluster_map_slots, int cluster_reduce_slots,
                               std::vector<QueueConfig> queues,
                               QueueClassifier classifier)
    : cluster_map_slots_(cluster_map_slots),
      cluster_reduce_slots_(cluster_reduce_slots),
      classifier_(std::move(classifier)) {
  if (cluster_map_slots <= 0 || cluster_reduce_slots <= 0)
    throw std::invalid_argument("CapacityPolicy: nonpositive cluster slots");
  if (queues.empty())
    throw std::invalid_argument("CapacityPolicy: no queues configured");
  std::set<std::string> names;
  for (auto& config : queues) {
    if (config.capacity <= 0.0 || config.capacity > 1.0)
      throw std::invalid_argument("CapacityPolicy: capacity outside (0,1]");
    if (!names.insert(config.name).second)
      throw std::invalid_argument("CapacityPolicy: duplicate queue '" +
                                  config.name + "'");
    QueueState state;
    state.config = std::move(config);
    state.guaranteed_map_slots = std::max(
        1, static_cast<int>(std::floor(state.config.capacity *
                                       cluster_map_slots)));
    state.guaranteed_reduce_slots = std::max(
        1, static_cast<int>(std::floor(state.config.capacity *
                                       cluster_reduce_slots)));
    queues_.push_back(std::move(state));
  }
}

void CapacityPolicy::OnJobArrival(const core::JobState& job, SimTime) {
  std::size_t index = 0;
  if (classifier_) {
    const std::string name = classifier_(job);
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if (queues_[q].config.name == name) {
        index = q;
        break;
      }
    }
  }
  job_queue_index_[job.id()] = index;
}

void CapacityPolicy::OnJobCompletion(const core::JobState& job, SimTime) {
  job_queue_index_.erase(job.id());
}

const std::string& CapacityPolicy::QueueOf(core::JobId job) const {
  return queues_[job_queue_index_.at(job)].config.name;
}

template <typename Eligible, typename RunningFn>
core::JobId CapacityPolicy::Choose(core::JobQueue job_queue,
                                   Eligible&& eligible, RunningFn&& running,
                                   bool map_side) {
  // Current usage per queue.
  std::vector<int> used(queues_.size(), 0);
  for (const core::JobState* job : job_queue) {
    const auto it = job_queue_index_.find(job->id());
    if (it == job_queue_index_.end()) continue;
    used[it->second] += running(*job);
  }

  // Pass 1: the most underserved queue still inside its guarantee.
  // Pass 2 (elasticity): any queue with pending work, least-loaded
  // relative to its guarantee first.
  for (const bool enforce_guarantee : {true, false}) {
    std::size_t best_queue = queues_.size();
    double best_ratio = 0.0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      const int guaranteed = map_side ? queues_[q].guaranteed_map_slots
                                      : queues_[q].guaranteed_reduce_slots;
      if (enforce_guarantee && used[q] >= guaranteed) continue;
      // Does this queue have an eligible job at all?
      bool has_work = false;
      for (const core::JobState* job : job_queue) {
        const auto it = job_queue_index_.find(job->id());
        if (it == job_queue_index_.end() || it->second != q) continue;
        if (eligible(*job)) {
          has_work = true;
          break;
        }
      }
      if (!has_work) continue;
      const double ratio = static_cast<double>(used[q]) / guaranteed;
      if (best_queue == queues_.size() || ratio < best_ratio) {
        best_queue = q;
        best_ratio = ratio;
      }
    }
    if (best_queue == queues_.size()) continue;
    // FIFO within the queue (job_queue is in arrival order).
    for (const core::JobState* job : job_queue) {
      const auto it = job_queue_index_.find(job->id());
      if (it == job_queue_index_.end() || it->second != best_queue) continue;
      if (eligible(*job)) return job->id();
    }
  }
  return core::kInvalidJob;
}

core::JobId CapacityPolicy::ChooseNextMapTask(core::JobQueue job_queue) {
  return Choose(
      job_queue,
      [](const core::JobState& j) { return j.HasPendingMap(); },
      [](const core::JobState& j) { return j.RunningMaps(); },
      /*map_side=*/true);
}

core::JobId CapacityPolicy::ChooseNextReduceTask(core::JobQueue job_queue) {
  return Choose(
      job_queue,
      [](const core::JobState& j) {
        return j.HasPendingReduce() && j.reduce_gate_open;
      },
      [](const core::JobState& j) { return j.RunningReduces(); },
      /*map_side=*/false);
}

}  // namespace simmr::sched
