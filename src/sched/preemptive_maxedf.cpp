#include "sched/preemptive_maxedf.h"

#include "sched/maxedf.h"

namespace simmr::sched {

core::JobId PreemptiveMaxEdfPolicy::ChooseNextMapTask(
    core::JobQueue job_queue) {
  // Map-side behaviour is plain MaxEDF (map tasks are short; the paper's
  // bump comes from long-held reduce slots).
  MaxEdfPolicy maxedf;
  return maxedf.ChooseNextMapTask(job_queue);
}

core::JobId PreemptiveMaxEdfPolicy::ChooseNextReduceTask(
    core::JobQueue job_queue) {
  MaxEdfPolicy maxedf;
  return maxedf.ChooseNextReduceTask(job_queue);
}

core::JobId PreemptiveMaxEdfPolicy::ChooseReducePreemptionVictim(
    core::JobQueue job_queue, const core::JobState& claimant) {
  // Kill a filler of the job with the latest deadline — but only when that
  // job is strictly less urgent than the claimant (EDF order), so
  // preemption can never ping-pong between equally urgent jobs.
  const core::JobState* victim = nullptr;
  for (const core::JobState* job : job_queue) {
    if (job->id() == claimant.id()) continue;
    if (job->pending_fillers.empty()) continue;
    if (!EdfOrderBefore(claimant, *job)) continue;  // claimant not more urgent
    if (victim == nullptr || EdfOrderBefore(*victim, *job)) victim = job;
  }
  return victim != nullptr ? victim->id() : core::kInvalidJob;
}

}  // namespace simmr::sched
