#include "sched/fifo.h"

namespace simmr::sched {

core::JobId FifoPolicy::ChooseNextMapTask(core::JobQueue job_queue) {
  // The engine keeps job_queue in arrival order.
  for (const core::JobState* job : job_queue) {
    if (job->HasPendingMap()) return job->id();
  }
  return core::kInvalidJob;
}

core::JobId FifoPolicy::ChooseNextReduceTask(core::JobQueue job_queue) {
  for (const core::JobState* job : job_queue) {
    if (job->HasPendingReduce() && job->reduce_gate_open) return job->id();
  }
  return core::kInvalidJob;
}

}  // namespace simmr::sched
