// Hadoop Fair Scheduler (HFS)-style policy.
//
// Section I lists HFS (Zaharia et al.) among the schedulers "broadly used
// for job processing" that SimMR exists to evaluate. This is the job-level
// max-min fair-sharing core of HFS: every active job continuously receives
// the slot share proportional to its weight, implemented greedily — each
// freed slot goes to the eligible job with the smallest
// running_tasks / weight ratio. (Delay scheduling's locality wait is not
// modeled: SimMR has no data placement, matching the paper's scope.)
#pragma once

#include <unordered_map>

#include "core/scheduler.h"

namespace simmr::sched {

class FairPolicy final : public core::SchedulerPolicy {
 public:
  const char* Name() const override { return "Fair"; }

  /// Sets a job's weight (default 1.0). Weights must be positive; calls
  /// for unknown jobs are allowed ahead of arrival.
  /// Throws std::invalid_argument for nonpositive weights.
  void SetWeight(core::JobId job, double weight);

  void OnJobCompletion(const core::JobState& job, SimTime now) override;
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;

 private:
  double WeightOf(core::JobId job) const;

  std::unordered_map<core::JobId, double> weights_;
};

}  // namespace simmr::sched
