// FIFO scheduling policy (Section III-C): "finds the earliest arriving job
// that needs a map (or reduce) task to be executed next."
#pragma once

#include "core/scheduler.h"

namespace simmr::sched {

class FifoPolicy final : public core::SchedulerPolicy {
 public:
  const char* Name() const override { return "FIFO"; }
  core::JobId ChooseNextMapTask(core::JobQueue job_queue) override;
  core::JobId ChooseNextReduceTask(core::JobQueue job_queue) override;
};

}  // namespace simmr::sched
