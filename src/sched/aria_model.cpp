#include "sched/aria_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simmr::sched {

ProfileSummary ProfileSummary::FromProfile(const trace::JobProfile& profile) {
  ProfileSummary s;
  s.num_maps = profile.num_maps;
  s.num_reduces = profile.num_reduces;

  const Summary map = profile.MapSummary();
  s.map_avg = map.mean;
  s.map_max = map.max;

  const Summary first = profile.FirstShuffleSummary();
  const Summary typical = profile.TypicalShuffleSummary();
  // Fall back to the other pool when one wave is missing from the trace,
  // mirroring JobState's duration-pool fallbacks.
  if (first.count > 0) {
    s.first_shuffle_avg = first.mean;
    s.first_shuffle_max = first.max;
  } else {
    s.first_shuffle_avg = typical.mean;
    s.first_shuffle_max = typical.max;
  }
  if (typical.count > 0) {
    s.typical_shuffle_avg = typical.mean;
    s.typical_shuffle_max = typical.max;
  } else {
    s.typical_shuffle_avg = first.mean;
    s.typical_shuffle_max = first.max;
  }

  const Summary reduce = profile.ReduceSummary();
  s.reduce_avg = reduce.mean;
  s.reduce_max = reduce.max;
  return s;
}

BoundCoefficients LowerBound(const ProfileSummary& s) {
  BoundCoefficients c;
  c.a = s.num_maps * s.map_avg;
  c.b = s.num_reduces * (s.typical_shuffle_avg + s.reduce_avg);
  // The first reduce wave replaces its typical shuffle with the recorded
  // non-overlapping first shuffle: + Sh1_avg - Sh_typ_avg.
  c.c = s.num_reduces > 0 ? s.first_shuffle_avg - s.typical_shuffle_avg : 0.0;
  return c;
}

BoundCoefficients UpperBound(const ProfileSummary& s) {
  BoundCoefficients c;
  c.a = std::max(0, s.num_maps - 1) * s.map_avg;
  c.b = std::max(0, s.num_reduces - 1) *
        (s.typical_shuffle_avg + s.reduce_avg);
  c.c = s.map_max;
  if (s.num_reduces > 0)
    c.c += s.first_shuffle_max + s.typical_shuffle_max + s.reduce_max;
  return c;
}

BoundCoefficients AverageBound(const ProfileSummary& s) {
  const BoundCoefficients lo = LowerBound(s);
  const BoundCoefficients up = UpperBound(s);
  return BoundCoefficients{0.5 * (lo.a + up.a), 0.5 * (lo.b + up.b),
                           0.5 * (lo.c + up.c)};
}

double EstimateCompletion(const BoundCoefficients& coeffs, int map_slots,
                          int reduce_slots) {
  if (map_slots <= 0 || reduce_slots <= 0)
    throw std::invalid_argument("EstimateCompletion: nonpositive slots");
  return coeffs.a / map_slots + coeffs.b / reduce_slots + coeffs.c;
}

SlotAllocation MinimalSlotsForDeadline(const ProfileSummary& summary,
                                       double deadline, int max_map_slots,
                                       int max_reduce_slots) {
  if (deadline <= 0.0)
    throw std::invalid_argument("MinimalSlotsForDeadline: deadline <= 0");
  if (max_map_slots <= 0 || max_reduce_slots <= 0)
    throw std::invalid_argument("MinimalSlotsForDeadline: nonpositive caps");

  const BoundCoefficients coeffs = AverageBound(summary);
  SlotAllocation alloc;

  const double budget = deadline - coeffs.c;
  if (budget <= 0.0) {
    // Even with infinite parallelism the constant terms exceed the
    // deadline; grab everything.
    alloc.map_slots = max_map_slots;
    alloc.reduce_slots = max_reduce_slots;
    alloc.feasible = false;
    return alloc;
  }

  // Lagrange minimum of S_M + S_R on a/S_M + b/S_R = budget.
  const double root = std::sqrt(std::max(coeffs.a * coeffs.b, 0.0));
  double sm = coeffs.a > 0.0 ? (coeffs.a + root) / budget : 0.0;
  double sr = coeffs.b > 0.0 ? (coeffs.b + root) / budget : 0.0;

  alloc.map_slots =
      std::clamp(static_cast<int>(std::ceil(sm - 1e-9)), 1, max_map_slots);
  alloc.reduce_slots = summary.num_reduces > 0
                           ? std::clamp(static_cast<int>(std::ceil(sr - 1e-9)),
                                        1, max_reduce_slots)
                           : 1;

  // A job never benefits from more slots than tasks.
  alloc.map_slots = std::min(alloc.map_slots, summary.num_maps);
  if (summary.num_reduces > 0)
    alloc.reduce_slots = std::min(alloc.reduce_slots, summary.num_reduces);

  alloc.feasible = EstimateCompletion(coeffs, alloc.map_slots,
                                      alloc.reduce_slots) <= deadline + 1e-9;
  if (!alloc.feasible) {
    // Ceil/clamp may have landed off the hyperbola; fall back to capacity.
    alloc.map_slots = std::min(max_map_slots, std::max(1, summary.num_maps));
    alloc.reduce_slots =
        std::min(max_reduce_slots, std::max(1, summary.num_reduces));
    alloc.feasible = EstimateCompletion(coeffs, alloc.map_slots,
                                        alloc.reduce_slots) <= deadline + 1e-9;
  }
  return alloc;
}

}  // namespace simmr::sched
