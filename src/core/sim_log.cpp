#include "core/sim_log.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace simmr::core {
namespace {

constexpr const char* kMagic = "SIMMR-SIMLOG-V1";

}  // namespace

void WriteSimulationLog(std::ostream& out, const SimResult& result) {
  out << kMagic << '\n';
  out.precision(9);
  out << "HEADER " << result.jobs.size() << ' ' << result.tasks.size() << ' '
      << result.events_processed << ' ' << result.makespan << '\n';
  for (const auto& j : result.jobs) {
    out << "SIMJOB " << j.job << ' ' << (j.name.empty() ? "-" : j.name) << ' '
        << j.arrival << ' ' << j.first_launch << ' ' << j.map_stage_end << ' '
        << j.completion << ' ' << j.deadline << ' '
        << (j.MissedDeadline() ? "MISSED" : "OK") << '\n';
  }
  for (const auto& t : result.tasks) {
    out << "SIMTASK " << t.job << ' '
        << (t.kind == SimTaskKind::kMap ? "MAP" : "REDUCE") << ' ' << t.start
        << ' ' << t.shuffle_end << ' ' << t.end << '\n';
  }
}

void WriteSimulationLogFile(const std::string& path, const SimResult& result) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("WriteSimulationLog: cannot open " + path);
  WriteSimulationLog(out, result);
  if (!out) throw std::runtime_error("WriteSimulationLog: write failed");
}

SimResult ReadSimulationLog(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("ReadSimulationLog: bad or missing magic");
  SimResult result;
  std::size_t num_jobs = 0, num_tasks = 0;
  {
    if (!std::getline(in, line))
      throw std::runtime_error("ReadSimulationLog: missing header");
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> num_jobs >> num_tasks >> result.events_processed >>
          result.makespan) ||
        tag != "HEADER")
      throw std::runtime_error("ReadSimulationLog: malformed header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "SIMJOB") {
      JobResult j;
      std::string status;
      if (!(ls >> j.job >> j.name >> j.arrival >> j.first_launch >>
            j.map_stage_end >> j.completion >> j.deadline >> status))
        throw std::runtime_error("ReadSimulationLog: malformed SIMJOB");
      if (j.name == "-") j.name.clear();
      result.jobs.push_back(std::move(j));
    } else if (tag == "SIMTASK") {
      SimTaskRecord t;
      std::string kind;
      if (!(ls >> t.job >> kind >> t.start >> t.shuffle_end >> t.end))
        throw std::runtime_error("ReadSimulationLog: malformed SIMTASK");
      if (kind == "MAP") {
        t.kind = SimTaskKind::kMap;
      } else if (kind == "REDUCE") {
        t.kind = SimTaskKind::kReduce;
      } else {
        throw std::runtime_error("ReadSimulationLog: bad kind " + kind);
      }
      result.tasks.push_back(t);
    } else {
      throw std::runtime_error("ReadSimulationLog: unknown record " + tag);
    }
  }
  if (result.jobs.size() != num_jobs || result.tasks.size() != num_tasks)
    throw std::runtime_error("ReadSimulationLog: truncated log");
  return result;
}

SimResult ReadSimulationLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ReadSimulationLog: cannot open " + path);
  return ReadSimulationLog(in);
}

}  // namespace simmr::core
