// The SimMR engine's event vocabulary.
//
// Section III-B: "The simulator maintains a priority queue for seven event
// types: job arrivals and departures, map and reduce task arrivals and
// departures, and an event signaling the completion of the map stage. Each
// event is a triplet (eventTime, eventType, jobId)."
#pragma once

#include <cstdint>

#include "simcore/time.h"

namespace simmr::core {

using JobId = std::int32_t;
inline constexpr JobId kInvalidJob = -1;

enum class EventType : std::uint8_t {
  kJobArrival,
  kJobDeparture,
  kMapTaskArrival,     // a job's map tasks became schedulable
  kMapTaskDeparture,   // one map task completed
  kReduceTaskArrival,  // a job crossed the reduce slowstart gate
  kReduceTaskDeparture,
  kMapStageDone,       // all of a job's map tasks completed
};

inline constexpr int kNumEventTypes = 7;

inline const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kJobArrival: return "JOB_ARRIVAL";
    case EventType::kJobDeparture: return "JOB_DEPARTURE";
    case EventType::kMapTaskArrival: return "MAP_TASK_ARRIVAL";
    case EventType::kMapTaskDeparture: return "MAP_TASK_DEPARTURE";
    case EventType::kReduceTaskArrival: return "REDUCE_TASK_ARRIVAL";
    case EventType::kReduceTaskDeparture: return "REDUCE_TASK_DEPARTURE";
    case EventType::kMapStageDone: return "MAP_STAGE_DONE";
  }
  return "?";
}

/// The paper's event triplet. `aux` carries the task index for departures
/// (an implementation detail the triplet form leaves implicit).
struct Event {
  EventType type = EventType::kJobArrival;
  JobId job = kInvalidJob;
  std::int32_t aux = 0;
};

}  // namespace simmr::core
