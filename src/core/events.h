// The SimMR engine's event vocabulary.
//
// Section III-B: "The simulator maintains a priority queue for seven event
// types: job arrivals and departures, map and reduce task arrivals and
// departures, and an event signaling the completion of the map stage. Each
// event is a triplet (eventTime, eventType, jobId)."
#pragma once

#include <cstdint>

#include "simcore/event_names.h"
#include "simcore/time.h"

namespace simmr::core {

using JobId = std::int32_t;
inline constexpr JobId kInvalidJob = -1;

/// The engine's seven event types, declared in the same order as the first
/// seven entries of the canonical simmr::SimEventKind vocabulary so the
/// static_cast in EventTypeName is the identity mapping. kFaultAction (the
/// fault-injection subsystem's injection point, SimConfig::fault_plan) is
/// pinned to its SimEventKind slot explicitly for the same reason.
enum class EventType : std::uint8_t {
  kJobArrival,
  kJobDeparture,
  kMapTaskArrival,     // a job's map tasks became schedulable
  kMapTaskDeparture,   // one map task completed
  kReduceTaskArrival,  // a job crossed the reduce slowstart gate
  kReduceTaskDeparture,
  kMapStageDone,       // all of a job's map tasks completed
  kFaultAction = static_cast<int>(SimEventKind::kFaultAction),
};

inline constexpr int kNumEventTypes = 7;

static_assert(static_cast<int>(EventType::kMapStageDone) ==
                  static_cast<int>(SimEventKind::kMapStageDone),
              "EventType must mirror the leading SimEventKind entries");

inline const char* EventTypeName(EventType type) {
  return SimEventKindName(static_cast<SimEventKind>(type));
}

/// The paper's event triplet. `aux` carries the task index for departures
/// (an implementation detail the triplet form leaves implicit). `epoch`
/// guards against stale departures of fault-killed attempts: a kill bumps
/// the task's attempt epoch, so the doomed attempt's already-queued
/// departure no longer matches. Always 0 when fault injection is off.
struct Event {
  EventType type = EventType::kJobArrival;
  JobId job = kInvalidJob;
  std::int32_t aux = 0;
  std::int32_t epoch = 0;
};

}  // namespace simmr::core
