// SimMR facade: the one-call entry points most users need.
//
// Typical flow (mirrors Figure 4 of the paper):
//   1. obtain profiles — MRProfiler over a testbed log, or Synthetic
//      TraceGen, or a TraceDatabase load;
//   2. assemble a WorkloadTrace (arrivals + deadlines);
//   3. pick a SchedulerPolicy (src/sched);
//   4. Replay() and inspect the SimResult.
#pragma once

#include <vector>

#include "core/engine.h"

namespace simmr::core {

/// Runs one workload under one policy. Convenience around SimulatorEngine.
SimResult Replay(const trace::WorkloadTrace& workload, SchedulerPolicy& policy,
                 const SimConfig& config);

/// T_J of Section V-B: each profile's completion time when it runs alone
/// with the whole cluster. Replayed under FIFO with all slots; returns one
/// duration per profile, aligned by index.
std::vector<double> MeasureSoloCompletions(
    const std::vector<trace::JobProfile>& profiles, const SimConfig& config);

}  // namespace simmr::core
