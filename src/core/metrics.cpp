#include "core/metrics.h"

#include <stdexcept>

namespace simmr::core {

double RelativeDeadlineExceeded(std::span<const JobResult> jobs) {
  double total = 0.0;
  for (const JobResult& j : jobs) {
    if (j.MissedDeadline()) total += (j.completion - j.deadline) / j.deadline;
  }
  return total;
}

int MissedDeadlineCount(std::span<const JobResult> jobs) {
  int count = 0;
  for (const JobResult& j : jobs) {
    if (j.MissedDeadline()) ++count;
  }
  return count;
}

UtilizationReport ComputeUtilization(std::span<const SimTaskRecord> tasks,
                                     int map_slots, int reduce_slots,
                                     SimTime makespan) {
  if (map_slots <= 0 || reduce_slots <= 0)
    throw std::invalid_argument("ComputeUtilization: nonpositive slots");
  UtilizationReport report;
  for (const SimTaskRecord& t : tasks) {
    const double busy = t.end - t.start;
    if (t.kind == SimTaskKind::kMap) {
      report.map_busy_slot_seconds += busy;
    } else {
      report.reduce_busy_slot_seconds += busy;
    }
  }
  if (makespan > 0.0) {
    report.map_utilization =
        report.map_busy_slot_seconds / (map_slots * makespan);
    report.reduce_utilization =
        report.reduce_busy_slot_seconds / (reduce_slots * makespan);
  }
  return report;
}

std::vector<ProgressPoint> ProgressSeries(std::span<const SimTaskRecord> tasks,
                                          SimTime t0, SimTime t1,
                                          SimDuration step) {
  if (step <= 0.0)
    throw std::invalid_argument("ProgressSeries: step must be positive");
  std::vector<ProgressPoint> series;
  for (SimTime t = t0; t <= t1 + kTimeEpsilon; t += step) {
    ProgressPoint point;
    point.time = t;
    for (const SimTaskRecord& task : tasks) {
      if (task.kind == SimTaskKind::kMap) {
        if (task.start <= t && t < task.end) ++point.maps;
      } else {
        if (task.start <= t && t < task.shuffle_end) ++point.shuffles;
        else if (task.shuffle_end <= t && t < task.end) ++point.reduces;
      }
    }
    series.push_back(point);
  }
  return series;
}

}  // namespace simmr::core
