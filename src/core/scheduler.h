// The pluggable scheduling-policy interface.
//
// Section III-B: the engine "communicates with the scheduler policies using
// a very narrow interface consisting of the following functions:
// CHOOSENEXTMAPTASK(jobQ), CHOOSENEXTREDUCETASK(jobQ)" — each returns the
// jobId whose map (or reduce) task should be executed next. Lifecycle
// callbacks let stateful policies (MinEDF's wanted-slot tracking) maintain
// their bookkeeping without widening the decision interface.
#pragma once

#include <span>

#include "core/events.h"
#include "core/job_state.h"

namespace simmr::core {

/// Arrived, unfinished jobs, in arrival order. Policies read job state
/// through the JobState pointers; the engine owns all mutation.
using JobQueue = std::span<const JobState* const>;

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Human-readable policy name for reports.
  virtual const char* Name() const = 0;

  /// Called when a job joins the queue (before any task decisions for it).
  virtual void OnJobArrival(const JobState& job, SimTime now) {
    (void)job;
    (void)now;
  }

  /// Called when a job departs (its last task completed).
  virtual void OnJobCompletion(const JobState& job, SimTime now) {
    (void)job;
    (void)now;
  }

  /// Returns the job whose next map task should run, or kInvalidJob when no
  /// eligible job exists. The returned job must satisfy HasPendingMap().
  virtual JobId ChooseNextMapTask(JobQueue job_queue) = 0;

  /// Returns the job whose next reduce task should run, or kInvalidJob.
  /// The returned job must satisfy HasPendingReduce() and have its reduce
  /// gate open (reduce_gate_open).
  virtual JobId ChooseNextReduceTask(JobQueue job_queue) = 0;

  /// Only consulted when SimConfig::allow_filler_preemption is set: the
  /// engine found `claimant` eligible for a reduce slot but none is free,
  /// and asks which job's most recent *filler* reduce to kill to make room
  /// (the paper identifies non-preemptible early reduces as the cause of
  /// its Figure 7 "bump"; killing a filler loses only re-fetchable shuffle
  /// work, matching how Hadoop kills reduce attempts without losing map
  /// output). The returned job must have a pending filler and must not be
  /// the claimant; kInvalidJob declines to preempt. Default: never.
  virtual JobId ChooseReducePreemptionVictim(JobQueue job_queue,
                                             const JobState& claimant) {
    (void)job_queue;
    (void)claimant;
    return kInvalidJob;
  }
};

}  // namespace simmr::core
