#include "core/job_state.h"

#include <cmath>
#include <stdexcept>

namespace simmr::core {

double DurationPool::Next() {
  if (!HasSamples()) throw std::logic_error("DurationPool::Next: empty pool");
  if (cursor_ >= values_->size()) {
    cursor_ = 0;
    ++overflow_;
  }
  return (*values_)[cursor_++];
}

JobState::JobState(JobId id, const trace::JobProfile& profile, SimTime arrival,
                   double deadline, double solo_completion)
    : id_(id),
      profile_(&profile),
      arrival_(arrival),
      deadline_(deadline),
      solo_completion_(solo_completion),
      map_pool_(&profile.map_durations),
      first_shuffle_pool_(&profile.first_shuffle_durations),
      typical_shuffle_pool_(&profile.typical_shuffle_durations),
      reduce_pool_(&profile.reduce_durations) {}

int JobState::ReduceGateThreshold(double min_map_fraction) const {
  if (min_map_fraction <= 0.0) return 0;
  return static_cast<int>(
      std::ceil(min_map_fraction * static_cast<double>(num_maps())));
}

double JobState::NextFirstShuffleDuration() {
  if (first_shuffle_pool_.HasSamples()) return first_shuffle_pool_.Next();
  if (typical_shuffle_pool_.HasSamples()) return typical_shuffle_pool_.Next();
  return 0.0;
}

double JobState::NextTypicalShuffleDuration() {
  if (typical_shuffle_pool_.HasSamples()) return typical_shuffle_pool_.Next();
  if (first_shuffle_pool_.HasSamples()) return first_shuffle_pool_.Next();
  return 0.0;
}

}  // namespace simmr::core
