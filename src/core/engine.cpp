#include "core/engine.h"

#include <memory>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "prof/profiler.h"
#include "simcore/log.h"
#include "simcore/sim_kernel.h"

namespace simmr::core {
namespace {

/// The engine body, templated on the concrete observer type. The generic
/// instantiation (TObs = obs::SimObserver) calls hooks virtually as
/// before; Run() also instantiates against final observer classes on the
/// hot recording path (EventLogObserver) so every hook call devirtualizes
/// and inlines — with half a million callbacks per thousand-job replay,
/// the indirect-call tax alone is ~15% of engine wall-clock.
template <class TObs>
class EngineImpl {
 public:
  EngineImpl(const SimConfig& config, SchedulerPolicy& policy,
             const trace::WorkloadTrace& workload, TObs* obs)
      : config_(config),
        policy_(&policy),
        workload_(&workload),
        obs_(obs) {
    if (config_.map_slots <= 0 || config_.reduce_slots <= 0)
      throw std::invalid_argument("SimulatorEngine: nonpositive slot count");
    if (config_.min_map_percent_completed < 0.0 ||
        config_.min_map_percent_completed > 1.0)
      throw std::invalid_argument(
          "SimulatorEngine: min_map_percent_completed outside [0,1]");
    for (const auto& job : workload) {
      const std::string error = job.profile.Validate();
      if (!error.empty())
        throw std::invalid_argument("SimulatorEngine: invalid profile for '" +
                                    job.profile.app_name + "': " + error);
    }
  }

  SimResult Run() {
    slots_.free_maps = config_.map_slots;
    slots_.free_reduces = config_.reduce_slots;
    if (obs_ != nullptr) task_times_.resize(workload_->size());
    jobs_.reserve(workload_->size());
    for (std::size_t i = 0; i < workload_->size(); ++i) {
      const trace::TraceJob& tj = (*workload_)[i];
      jobs_.push_back(std::make_unique<JobState>(
          static_cast<JobId>(i), tj.profile, tj.arrival, tj.deadline,
          tj.solo_completion));
      kernel_.Schedule(tj.arrival, Event{EventType::kJobArrival,
                                         static_cast<JobId>(i), 0});
    }

    kernel_.Drain(
        obs_, [](const Event& ev) { return EventTypeName(ev.type); },
        [this](const Event& ev) { Dispatch(ev); });
    if (completed_jobs_ != jobs_.size())
      throw std::logic_error("SimulatorEngine: queue drained with jobs open");

    result_.events_processed = kernel_.TotalScheduled();
    return std::move(result_);
  }

 private:
  SimTime now() const { return kernel_.now(); }

  void Dispatch(const Event& ev) {
    switch (ev.type) {
      case EventType::kJobArrival:
        OnJobArrival(*jobs_[ev.job]);
        break;
      case EventType::kJobDeparture:
        OnJobDeparture(*jobs_[ev.job]);
        break;
      case EventType::kMapTaskArrival:
        AssignMapSlots();
        break;
      case EventType::kMapTaskDeparture:
        OnMapTaskDeparture(*jobs_[ev.job], ev.aux);
        break;
      case EventType::kReduceTaskArrival:
        AssignReduceSlots();
        break;
      case EventType::kReduceTaskDeparture:
        OnReduceTaskDeparture(*jobs_[ev.job], ev.aux);
        break;
      case EventType::kMapStageDone:
        OnMapStageDone(*jobs_[ev.job]);
        break;
    }
  }

  void OnJobArrival(JobState& job) {
    job_queue_.push_back(&job);
    prof::RaiseHighWater(prof::HighWater::kReadySet, job_queue_.size());
    if (obs_ != nullptr) {
      // Size the timing tables up front so the per-launch path below is a
      // plain store (kills in preemptive runs relaunch under the same
      // index, so these never need to regrow).
      task_times_[job.id()].map_start.resize(job.num_maps());
      task_times_[job.id()].reduce.resize(job.num_reduces());
      obs_->OnJobArrival(now(), job.id(), job.profile().app_name,
                         job.deadline());
    }
    // Zero-threshold gates (or jobs with no maps to gate on) open now.
    if (job.maps_completed >=
        job.ReduceGateThreshold(config_.min_map_percent_completed)) {
      OpenReduceGate(job);
    }
    policy_->OnJobArrival(job, now());
    kernel_.Schedule(now(), Event{EventType::kMapTaskArrival, job.id(), 0});
  }

  void OpenReduceGate(JobState& job) {
    if (job.reduce_gate_open) return;
    job.reduce_gate_open = true;
    kernel_.Schedule(now(),
                     Event{EventType::kReduceTaskArrival, job.id(), 0});
  }

  void OnMapTaskDeparture(JobState& job, std::int32_t index) {
    ++job.maps_completed;
    ++slots_.free_maps;
    if (obs_ != nullptr) {
      const SimTime start = task_times_[job.id()].map_start[index];
      obs_->OnTaskCompletion(now(), job.id(), obs::TaskKind::kMap, index,
                             obs::TaskTiming{start, start, now()},
                             /*succeeded=*/true);
    }
    if (job.maps_completed >=
        job.ReduceGateThreshold(config_.min_map_percent_completed)) {
      OpenReduceGate(job);
    }
    if (job.MapsDone() && !job.map_stage_done_fired) {
      job.map_stage_done_fired = true;
      kernel_.Schedule(now(), Event{EventType::kMapStageDone, job.id(), 0});
    }
    // "The slot allocation algorithm makes a new decision when a map or
    // reduce task completes."
    AssignMapSlots();
  }

  void OnMapStageDone(JobState& job) {
    job.map_stage_end = now();
    // Patch every filler reduce: its shuffle could only finish once all
    // intermediate data existed, so its completion is map-stage end plus
    // the recorded non-overlapping first-shuffle portion plus its reduce
    // phase.
    for (const PendingFiller& filler : job.pending_fillers) {
      const SimTime shuffle_end = now() + filler.first_shuffle;
      const SimTime end = shuffle_end + filler.reduce;
      if (obs_ != nullptr) {
        obs::TaskTiming& t =
            task_times_[job.id()].reduce[filler.task_index];
        t.shuffle_end = shuffle_end;
        t.end = end;
      }
      if (config_.record_tasks) {
        result_.tasks.push_back(SimTaskRecord{
            job.id(), SimTaskKind::kReduce, filler.start, shuffle_end, end});
      }
      kernel_.Schedule(end, Event{EventType::kReduceTaskDeparture, job.id(),
                                  filler.task_index});
    }
    job.pending_fillers.clear();
    // Map-only jobs (num_reduces == 0) complete with their map stage.
    if (job.Done() && job.completion < 0.0) {
      job.completion = now();
      kernel_.Schedule(now(), Event{EventType::kJobDeparture, job.id(), 0});
    }
    AssignReduceSlots();
  }

  void OnReduceTaskDeparture(JobState& job, std::int32_t index) {
    ++job.reduces_completed;
    ++slots_.free_reduces;
    if (obs_ != nullptr) {
      obs_->OnTaskCompletion(now(), job.id(), obs::TaskKind::kReduce, index,
                             task_times_[job.id()].reduce[index],
                             /*succeeded=*/true);
    }
    if (job.Done() && job.completion < 0.0) {
      job.completion = now();
      kernel_.Schedule(now(), Event{EventType::kJobDeparture, job.id(), 0});
    }
    AssignReduceSlots();
    // A freed reduce slot never unblocks maps, but a completed job's
    // departure may; map reassignment happens on map departures and
    // arrivals only, matching the narrow decision points of the paper.
  }

  void OnJobDeparture(JobState& job) {
    ++completed_jobs_;
    std::erase(job_queue_, &job);
    if (obs_ != nullptr) obs_->OnJobCompletion(now(), job.id());
    policy_->OnJobCompletion(job, now());
    result_.makespan = std::max(result_.makespan, now());

    JobResult jr;
    jr.job = job.id();
    jr.name = job.profile().app_name +
              (job.profile().dataset.empty() ? "" : "/" + job.profile().dataset);
    jr.arrival = job.arrival();
    jr.first_launch = job.first_launch;
    jr.map_stage_end = job.map_stage_end;
    jr.completion = job.completion;
    jr.deadline = job.deadline();
    result_.jobs.push_back(std::move(jr));
  }

  void AssignMapSlots() {
    while (slots_.free_maps > 0) {
      const JobId chosen = policy_->ChooseNextMapTask(
          JobQueue(job_queue_.data(), job_queue_.size()));
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kMap, chosen);
      if (chosen == kInvalidJob) return;
      JobState& job = *jobs_[chosen];
      if (!job.HasPendingMap())
        throw std::logic_error(
            "SchedulerPolicy returned a job with no pending map task");
      LaunchMap(job);
    }
  }

  void LaunchMap(JobState& job) {
    const double duration = job.NextMapDuration();
    ++job.maps_launched;
    --slots_.free_maps;
    if (job.first_launch < 0.0) job.first_launch = now();
    if (obs_ != nullptr) {
      task_times_[job.id()].map_start[job.maps_launched - 1] = now();
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kMap,
                         job.maps_launched - 1);
    }
    if (config_.record_tasks) {
      result_.tasks.push_back(SimTaskRecord{job.id(), SimTaskKind::kMap,
                                            now(), now(), now() + duration});
    }
    kernel_.Schedule(now() + duration,
                     Event{EventType::kMapTaskDeparture, job.id(),
                           job.maps_launched - 1});
  }

  void AssignReduceSlots() {
    for (;;) {
      while (slots_.free_reduces > 0) {
        const JobId chosen = policy_->ChooseNextReduceTask(
            JobQueue(job_queue_.data(), job_queue_.size()));
        if (obs_ != nullptr)
          obs_->OnSchedulerDecision(now(), obs::TaskKind::kReduce, chosen);
        if (chosen == kInvalidJob) return;
        JobState& job = *jobs_[chosen];
        if (!job.HasPendingReduce() || !job.reduce_gate_open)
          throw std::logic_error(
              "SchedulerPolicy returned an ineligible job for a reduce task");
        LaunchReduce(job);
      }
      if (!config_.allow_filler_preemption) return;
      // No slot free: is anyone still waiting, and does the policy want to
      // preempt a filler on their behalf?
      const JobId claimant_id = policy_->ChooseNextReduceTask(
          JobQueue(job_queue_.data(), job_queue_.size()));
      if (claimant_id == kInvalidJob) return;
      const JobId victim_id = policy_->ChooseReducePreemptionVictim(
          JobQueue(job_queue_.data(), job_queue_.size()),
          *jobs_[claimant_id]);
      if (victim_id == kInvalidJob) return;
      if (victim_id == claimant_id)
        throw std::logic_error(
            "SchedulerPolicy picked the claimant as preemption victim");
      KillOneFiller(*jobs_[victim_id]);
    }
  }

  /// Kills the victim's most recently launched filler reduce: the slot
  /// frees immediately and the task returns to the pending pool (its
  /// partial shuffle is simply re-fetched on retry, so no other state
  /// needs repair).
  void KillOneFiller(JobState& victim) {
    if (victim.pending_fillers.empty())
      throw std::logic_error(
          "SchedulerPolicy picked a preemption victim without fillers");
    if (obs_ != nullptr) {
      const PendingFiller& filler = victim.pending_fillers.back();
      obs_->OnTaskCompletion(now(), victim.id(), obs::TaskKind::kReduce,
                             filler.task_index,
                             obs::TaskTiming{filler.start, now(), now()},
                             /*succeeded=*/false);
    }
    victim.pending_fillers.pop_back();
    --victim.reduces_launched;
    ++slots_.free_reduces;
  }

  void LaunchReduce(JobState& job) {
    const std::int32_t index = job.reduces_launched;
    ++job.reduces_launched;
    --slots_.free_reduces;
    if (job.first_launch < 0.0) job.first_launch = now();
    const double reduce_duration = job.NextReduceDuration();
    if (obs_ != nullptr) {
      // Filler timing is patched at MAP_STAGE_DONE; until then the phase
      // boundary and end are unknown.
      task_times_[job.id()].reduce[index] =
          obs::TaskTiming{now(), kTimeInfinity, kTimeInfinity};
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kReduce, index);
    }

    if (!job.MapsDone()) {
      // Filler reduce: "we schedule a filler reduce task of infinite
      // duration and update its duration to the first shuffle duration when
      // all the map tasks are complete."
      PendingFiller filler;
      filler.task_index = index;
      filler.start = now();
      filler.first_shuffle = job.NextFirstShuffleDuration();
      filler.reduce = reduce_duration;
      job.pending_fillers.push_back(filler);
      return;
    }

    const double shuffle_duration = job.NextTypicalShuffleDuration();
    const SimTime shuffle_end = now() + shuffle_duration;
    const SimTime end = shuffle_end + reduce_duration;
    if (obs_ != nullptr) {
      task_times_[job.id()].reduce[index] =
          obs::TaskTiming{now(), shuffle_end, end};
    }
    if (config_.record_tasks) {
      result_.tasks.push_back(SimTaskRecord{job.id(), SimTaskKind::kReduce,
                                            now(), shuffle_end, end});
    }
    kernel_.Schedule(end,
                     Event{EventType::kReduceTaskDeparture, job.id(), index});
  }

  SimConfig config_;
  SchedulerPolicy* policy_;
  const trace::WorkloadTrace* workload_;
  TObs* obs_;

  /// Per-job launch timing kept only when an observer is installed, so
  /// departures can report full TaskTiming. Indexed by launch index
  /// (stable: preempted fillers are relaunched under the same index).
  struct JobTaskTimes {
    std::vector<SimTime> map_start;
    std::vector<obs::TaskTiming> reduce;
  };
  std::vector<JobTaskTimes> task_times_;

  SimKernel<Event> kernel_;
  std::vector<std::unique_ptr<JobState>> jobs_;
  std::vector<const JobState*> job_queue_;
  SlotPool slots_;
  std::size_t completed_jobs_ = 0;
  SimResult result_;
};

}  // namespace

SimulatorEngine::SimulatorEngine(SimConfig config, SchedulerPolicy& policy)
    : config_(config), policy_(&policy) {}

SimResult SimulatorEngine::Run(const trace::WorkloadTrace& workload) {
  // Devirtualize the recording hot path: a bare EventLogObserver (the
  // common --event-log-out wiring) gets the engine instantiated against
  // its concrete type, so its inline 48-byte appends compile straight into
  // the hook sites. Anything else — multicast fan-outs included — takes
  // the generic virtual-dispatch engine.
  if (auto* log = dynamic_cast<obs::EventLogObserver*>(config_.observer)) {
    EngineImpl<obs::EventLogObserver> impl(config_, *policy_, workload, log);
    return impl.Run();
  }
  // Same treatment for a bare TimeSeriesSampler: its hooks are a handful
  // of adds and compares, which inline once the type is concrete — this
  // keeps default-window sampling overhead in the low single digits.
  if (auto* ts = dynamic_cast<obs::TimeSeriesSampler*>(config_.observer)) {
    EngineImpl<obs::TimeSeriesSampler> impl(config_, *policy_, workload, ts);
    return impl.Run();
  }
  EngineImpl<obs::SimObserver> impl(config_, *policy_, workload,
                                    config_.observer);
  return impl.Run();
}

}  // namespace simmr::core
