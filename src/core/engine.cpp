#include "core/engine.h"

#include <memory>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/timeseries.h"
#include "prof/profiler.h"
#include "simcore/log.h"
#include "simcore/sim_kernel.h"

namespace simmr::core {
namespace {

/// The engine body, templated on the concrete observer type. The generic
/// instantiation (TObs = obs::SimObserver) calls hooks virtually as
/// before; Run() also instantiates against final observer classes on the
/// hot recording path (EventLogObserver) so every hook call devirtualizes
/// and inlines — with half a million callbacks per thousand-job replay,
/// the indirect-call tax alone is ~15% of engine wall-clock.
template <class TObs>
class EngineImpl {
 public:
  EngineImpl(const SimConfig& config, SchedulerPolicy& policy,
             const trace::WorkloadTrace& workload, TObs* obs)
      : config_(config),
        policy_(&policy),
        workload_(&workload),
        obs_(obs) {
    if (config_.map_slots <= 0 || config_.reduce_slots <= 0)
      throw std::invalid_argument("SimulatorEngine: nonpositive slot count");
    if (config_.min_map_percent_completed < 0.0 ||
        config_.min_map_percent_completed > 1.0)
      throw std::invalid_argument(
          "SimulatorEngine: min_map_percent_completed outside [0,1]");
    for (const auto& job : workload) {
      const std::string error = job.profile.Validate();
      if (!error.empty())
        throw std::invalid_argument("SimulatorEngine: invalid profile for '" +
                                    job.profile.app_name + "': " + error);
    }
    if (config_.fault_plan != nullptr) {
      const fault::FaultPlan& plan = *config_.fault_plan;
      std::string err = fault::ValidateFaultPlan(plan);
      if (err.empty() && plan.num_nodes > 0 &&
          (plan.num_nodes * plan.map_slots_per_node != config_.map_slots ||
           plan.num_nodes * plan.reduce_slots_per_node !=
               config_.reduce_slots))
        err = "plan geometry does not match the engine slot totals";
      if (err.empty() && plan.num_nodes == 0) {
        for (const auto& a : plan.actions) {
          if (a.kind != fault::FaultActionKind::kKillAttempt) {
            err = "geometry-free plan has node-scoped actions";
            break;
          }
        }
      }
      if (!err.empty())
        throw std::invalid_argument("SimulatorEngine: invalid fault plan: " +
                                    err);
      faults_enabled_ = true;
    }
  }

  SimResult Run() {
    slots_.free_maps = config_.map_slots;
    slots_.free_reduces = config_.reduce_slots;
    if (obs_ != nullptr) task_times_.resize(workload_->size());
    if (faults_enabled_) {
      map_epoch_.resize(workload_->size());
      reduce_epoch_.resize(workload_->size());
    }
    jobs_.reserve(workload_->size());
    for (std::size_t i = 0; i < workload_->size(); ++i) {
      const trace::TraceJob& tj = (*workload_)[i];
      jobs_.push_back(std::make_unique<JobState>(
          static_cast<JobId>(i), tj.profile, tj.arrival, tj.deadline,
          tj.solo_completion));
      kernel_.Schedule(tj.arrival, Event{EventType::kJobArrival,
                                         static_cast<JobId>(i), 0});
    }
    if (faults_enabled_) ScheduleFaultActions();

    kernel_.Drain(
        obs_, [](const Event& ev) { return EventTypeName(ev.type); },
        [this](const Event& ev) { Dispatch(ev); });
    if (completed_jobs_ != jobs_.size())
      throw std::logic_error("SimulatorEngine: queue drained with jobs open");

    result_.events_processed = kernel_.TotalScheduled();
    return std::move(result_);
  }

 private:
  SimTime now() const { return kernel_.now(); }

  void Dispatch(const Event& ev) {
    switch (ev.type) {
      case EventType::kJobArrival:
        OnJobArrival(*jobs_[ev.job]);
        break;
      case EventType::kJobDeparture:
        OnJobDeparture(*jobs_[ev.job]);
        break;
      case EventType::kMapTaskArrival:
        AssignMapSlots();
        break;
      case EventType::kMapTaskDeparture:
        OnMapTaskDeparture(*jobs_[ev.job], ev.aux, ev.epoch);
        break;
      case EventType::kReduceTaskArrival:
        AssignReduceSlots();
        break;
      case EventType::kReduceTaskDeparture:
        OnReduceTaskDeparture(*jobs_[ev.job], ev.aux, ev.epoch);
        break;
      case EventType::kMapStageDone:
        OnMapStageDone(*jobs_[ev.job]);
        break;
      case EventType::kFaultAction:
        OnFaultAction(ev.aux);
        break;
    }
  }

  void OnJobArrival(JobState& job) {
    job_queue_.push_back(&job);
    prof::RaiseHighWater(prof::HighWater::kReadySet, job_queue_.size());
    if (faults_enabled_) {
      map_epoch_[job.id()].assign(job.num_maps(), 0);
      reduce_epoch_[job.id()].assign(job.num_reduces(), 0);
    }
    if (obs_ != nullptr) {
      // Size the timing tables up front so the per-launch path below is a
      // plain store (kills in preemptive runs relaunch under the same
      // index, so these never need to regrow).
      task_times_[job.id()].map_start.resize(job.num_maps());
      task_times_[job.id()].reduce.resize(job.num_reduces());
      obs_->OnJobArrival(now(), job.id(), job.profile().app_name,
                         job.deadline());
    }
    // Zero-threshold gates (or jobs with no maps to gate on) open now.
    if (job.maps_completed >=
        job.ReduceGateThreshold(config_.min_map_percent_completed)) {
      OpenReduceGate(job);
    }
    policy_->OnJobArrival(job, now());
    kernel_.Schedule(now(), Event{EventType::kMapTaskArrival, job.id(), 0});
  }

  void OpenReduceGate(JobState& job) {
    if (job.reduce_gate_open) return;
    job.reduce_gate_open = true;
    kernel_.Schedule(now(),
                     Event{EventType::kReduceTaskArrival, job.id(), 0});
  }

  void OnMapTaskDeparture(JobState& job, std::int32_t index,
                          std::int32_t epoch) {
    if (faults_enabled_) {
      if (epoch != map_epoch_[job.id()][index]) return;  // killed attempt
      RemoveRunning(running_maps_, job.id(), index);
    }
    ++job.maps_completed;
    ++slots_.free_maps;
    if (obs_ != nullptr) {
      const SimTime start = task_times_[job.id()].map_start[index];
      obs_->OnTaskCompletion(now(), job.id(), obs::TaskKind::kMap, index,
                             obs::TaskTiming{start, start, now()},
                             /*succeeded=*/true);
    }
    if (job.maps_completed >=
        job.ReduceGateThreshold(config_.min_map_percent_completed)) {
      OpenReduceGate(job);
    }
    if (job.MapsDone() && !job.map_stage_done_fired) {
      job.map_stage_done_fired = true;
      kernel_.Schedule(now(), Event{EventType::kMapStageDone, job.id(), 0});
    }
    // "The slot allocation algorithm makes a new decision when a map or
    // reduce task completes."
    AssignMapSlots();
  }

  void OnMapStageDone(JobState& job) {
    job.map_stage_end = now();
    // Patch every filler reduce: its shuffle could only finish once all
    // intermediate data existed, so its completion is map-stage end plus
    // the recorded non-overlapping first-shuffle portion plus its reduce
    // phase.
    for (const PendingFiller& filler : job.pending_fillers) {
      const SimTime shuffle_end = now() + filler.first_shuffle;
      const SimTime end = shuffle_end + filler.reduce;
      if (obs_ != nullptr) {
        obs::TaskTiming& t =
            task_times_[job.id()].reduce[filler.task_index];
        t.shuffle_end = shuffle_end;
        t.end = end;
      }
      if (config_.record_tasks) {
        result_.tasks.push_back(SimTaskRecord{
            job.id(), SimTaskKind::kReduce, filler.start, shuffle_end, end});
      }
      kernel_.Schedule(
          end, Event{EventType::kReduceTaskDeparture, job.id(),
                     filler.task_index,
                     faults_enabled_
                         ? reduce_epoch_[job.id()][filler.task_index]
                         : 0});
    }
    job.pending_fillers.clear();
    // Map-only jobs (num_reduces == 0) complete with their map stage.
    if (job.Done() && job.completion < 0.0) {
      job.completion = now();
      kernel_.Schedule(now(), Event{EventType::kJobDeparture, job.id(), 0});
    }
    AssignReduceSlots();
  }

  void OnReduceTaskDeparture(JobState& job, std::int32_t index,
                             std::int32_t epoch) {
    if (faults_enabled_) {
      if (epoch != reduce_epoch_[job.id()][index]) return;  // killed attempt
      RemoveRunning(running_reduces_, job.id(), index);
    }
    ++job.reduces_completed;
    ++slots_.free_reduces;
    if (obs_ != nullptr) {
      obs_->OnTaskCompletion(now(), job.id(), obs::TaskKind::kReduce, index,
                             task_times_[job.id()].reduce[index],
                             /*succeeded=*/true);
    }
    if (job.Done() && job.completion < 0.0) {
      job.completion = now();
      kernel_.Schedule(now(), Event{EventType::kJobDeparture, job.id(), 0});
    }
    AssignReduceSlots();
    // A freed reduce slot never unblocks maps, but a completed job's
    // departure may; map reassignment happens on map departures and
    // arrivals only, matching the narrow decision points of the paper.
  }

  void OnJobDeparture(JobState& job) {
    ++completed_jobs_;
    std::erase(job_queue_, &job);
    if (obs_ != nullptr) obs_->OnJobCompletion(now(), job.id());
    policy_->OnJobCompletion(job, now());
    result_.makespan = std::max(result_.makespan, now());

    JobResult jr;
    jr.job = job.id();
    jr.name = job.profile().app_name +
              (job.profile().dataset.empty() ? "" : "/" + job.profile().dataset);
    jr.arrival = job.arrival();
    jr.first_launch = job.first_launch;
    jr.map_stage_end = job.map_stage_end;
    jr.completion = job.completion;
    jr.deadline = job.deadline();
    result_.jobs.push_back(std::move(jr));
  }

  void AssignMapSlots() {
    while (slots_.free_maps > 0) {
      const JobId chosen = policy_->ChooseNextMapTask(
          JobQueue(job_queue_.data(), job_queue_.size()));
      if (obs_ != nullptr)
        obs_->OnSchedulerDecision(now(), obs::TaskKind::kMap, chosen);
      if (chosen == kInvalidJob) return;
      JobState& job = *jobs_[chosen];
      if (!job.HasPendingMap())
        throw std::logic_error(
            "SchedulerPolicy returned a job with no pending map task");
      LaunchMap(job);
    }
  }

  void LaunchMap(JobState& job) {
    const double duration = job.NextMapDuration();
    std::int32_t index;
    if (!job.requeued_maps.empty()) {
      // Fault-killed task re-executing under its original index with the
      // fresh duration sample drawn above — the lost work is re-done, not
      // replayed.
      index = job.requeued_maps.back();
      job.requeued_maps.pop_back();
    } else {
      index = job.maps_launched;
      ++job.maps_launched;
    }
    --slots_.free_maps;
    if (job.first_launch < 0.0) job.first_launch = now();
    if (obs_ != nullptr) {
      task_times_[job.id()].map_start[index] = now();
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kMap, index);
    }
    if (config_.record_tasks) {
      result_.tasks.push_back(SimTaskRecord{job.id(), SimTaskKind::kMap,
                                            now(), now(), now() + duration});
    }
    std::int32_t epoch = 0;
    if (faults_enabled_) {
      epoch = map_epoch_[job.id()][index];
      running_maps_.push_back({job.id(), index});
    }
    kernel_.Schedule(now() + duration,
                     Event{EventType::kMapTaskDeparture, job.id(), index,
                           epoch});
  }

  void AssignReduceSlots() {
    for (;;) {
      while (slots_.free_reduces > 0) {
        const JobId chosen = policy_->ChooseNextReduceTask(
            JobQueue(job_queue_.data(), job_queue_.size()));
        if (obs_ != nullptr)
          obs_->OnSchedulerDecision(now(), obs::TaskKind::kReduce, chosen);
        if (chosen == kInvalidJob) return;
        JobState& job = *jobs_[chosen];
        if (!job.HasPendingReduce() || !job.reduce_gate_open)
          throw std::logic_error(
              "SchedulerPolicy returned an ineligible job for a reduce task");
        LaunchReduce(job);
      }
      if (!config_.allow_filler_preemption) return;
      // No slot free: is anyone still waiting, and does the policy want to
      // preempt a filler on their behalf?
      const JobId claimant_id = policy_->ChooseNextReduceTask(
          JobQueue(job_queue_.data(), job_queue_.size()));
      if (claimant_id == kInvalidJob) return;
      const JobId victim_id = policy_->ChooseReducePreemptionVictim(
          JobQueue(job_queue_.data(), job_queue_.size()),
          *jobs_[claimant_id]);
      if (victim_id == kInvalidJob) return;
      if (victim_id == claimant_id)
        throw std::logic_error(
            "SchedulerPolicy picked the claimant as preemption victim");
      KillOneFiller(*jobs_[victim_id]);
    }
  }

  /// Kills the victim's most recently launched filler reduce: the slot
  /// frees immediately and the task returns to the pending pool (its
  /// partial shuffle is simply re-fetched on retry, so no other state
  /// needs repair).
  void KillOneFiller(JobState& victim) {
    if (victim.pending_fillers.empty())
      throw std::logic_error(
          "SchedulerPolicy picked a preemption victim without fillers");
    const std::int32_t index = victim.pending_fillers.back().task_index;
    if (obs_ != nullptr) {
      const PendingFiller& filler = victim.pending_fillers.back();
      obs_->OnTaskCompletion(now(), victim.id(), obs::TaskKind::kReduce,
                             index,
                             obs::TaskTiming{filler.start, now(), now()},
                             /*succeeded=*/false);
    }
    victim.pending_fillers.pop_back();
    victim.requeued_reduces.push_back(index);
    if (faults_enabled_) {
      ++reduce_epoch_[victim.id()][index];
      RemoveRunning(running_reduces_, victim.id(), index);
    }
    ++slots_.free_reduces;
  }

  void LaunchReduce(JobState& job) {
    std::int32_t index;
    if (!job.requeued_reduces.empty()) {
      // Killed (or preempted) reduce re-executing under its original index
      // with fresh duration samples drawn below.
      index = job.requeued_reduces.back();
      job.requeued_reduces.pop_back();
    } else {
      index = job.reduces_launched;
      ++job.reduces_launched;
    }
    --slots_.free_reduces;
    if (faults_enabled_) running_reduces_.push_back({job.id(), index});
    if (job.first_launch < 0.0) job.first_launch = now();
    const double reduce_duration = job.NextReduceDuration();
    if (obs_ != nullptr) {
      // Filler timing is patched at MAP_STAGE_DONE; until then the phase
      // boundary and end are unknown.
      task_times_[job.id()].reduce[index] =
          obs::TaskTiming{now(), kTimeInfinity, kTimeInfinity};
      obs_->OnTaskLaunch(now(), job.id(), obs::TaskKind::kReduce, index);
    }

    if (!job.MapsDone()) {
      // Filler reduce: "we schedule a filler reduce task of infinite
      // duration and update its duration to the first shuffle duration when
      // all the map tasks are complete."
      PendingFiller filler;
      filler.task_index = index;
      filler.start = now();
      filler.first_shuffle = job.NextFirstShuffleDuration();
      filler.reduce = reduce_duration;
      job.pending_fillers.push_back(filler);
      return;
    }

    const double shuffle_duration = job.NextTypicalShuffleDuration();
    const SimTime shuffle_end = now() + shuffle_duration;
    const SimTime end = shuffle_end + reduce_duration;
    if (obs_ != nullptr) {
      task_times_[job.id()].reduce[index] =
          obs::TaskTiming{now(), shuffle_end, end};
    }
    if (config_.record_tasks) {
      result_.tasks.push_back(SimTaskRecord{job.id(), SimTaskKind::kReduce,
                                            now(), shuffle_end, end});
    }
    kernel_.Schedule(
        end, Event{EventType::kReduceTaskDeparture, job.id(), index,
                   faults_enabled_ ? reduce_epoch_[job.id()][index] : 0});
  }

  // --- fault injection (SimConfig::fault_plan) ---

  /// Translates the plan into scheduled kFaultAction events. Slowdowns are
  /// dropped (no node speeds at this granularity); heartbeat-loss windows
  /// at least tasktracker_expiry_interval long become a synthesized
  /// crash+restore pair, shorter windows are invisible.
  void ScheduleFaultActions() {
    const fault::FaultPlan& plan = *config_.fault_plan;
    engine_node_down_.assign(
        static_cast<std::size_t>(std::max<std::int32_t>(plan.num_nodes, 0)),
        0);
    for (const fault::FaultAction& a : fault::SortedActions(plan)) {
      switch (a.kind) {
        case fault::FaultActionKind::kNodeSlowdown:
          break;
        case fault::FaultActionKind::kHeartbeatLoss:
          if (a.end_time - a.time >= config_.tasktracker_expiry_interval) {
            fault::FaultAction crash = a;
            crash.kind = fault::FaultActionKind::kNodeCrash;
            ScheduleFaultAction(crash);
            fault::FaultAction restore = a;
            restore.kind = fault::FaultActionKind::kNodeRestore;
            restore.time = a.end_time;
            ScheduleFaultAction(restore);
          }
          break;
        default:
          ScheduleFaultAction(a);
          break;
      }
    }
  }

  void ScheduleFaultAction(const fault::FaultAction& action) {
    const auto idx = static_cast<std::int32_t>(fault_actions_.size());
    fault_actions_.push_back(action);
    kernel_.Schedule(action.time,
                     Event{EventType::kFaultAction, kInvalidJob, idx});
  }

  void OnFaultAction(std::int32_t idx) {
    const fault::FaultAction action = fault_actions_[static_cast<std::size_t>(idx)];
    switch (action.kind) {
      case fault::FaultActionKind::kNodeCrash:
        EngineCrashNode(action.node);
        break;
      case fault::FaultActionKind::kNodeRestore:
        EngineRestoreNode(action.node);
        break;
      case fault::FaultActionKind::kKillAttempt:
        EngineKillAttempt(action);
        break;
      default:
        break;  // slowdown / heartbeat-loss never reach the queue
    }
  }

  /// Node loss in slot terms, applied immediately (the testbed's expiry
  /// delay is an abstraction the availability report quantifies): the
  /// node's slot counts leave the cluster capacity and one running attempt
  /// per lost slot is killed, most recently launched first — the engine
  /// has no task placement, so this is its deterministic stand-in.
  void EngineCrashNode(std::int32_t node) {
    if (node < 0 ||
        node >= static_cast<std::int32_t>(engine_node_down_.size()) ||
        engine_node_down_[static_cast<std::size_t>(node)])
      return;
    engine_node_down_[static_cast<std::size_t>(node)] = 1;
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeLost, node,
                         /*job=*/-1, obs::TaskKind::kMap, /*index=*/-1);
    const fault::FaultPlan& plan = *config_.fault_plan;
    for (int k = 0; k < plan.map_slots_per_node && !running_maps_.empty();
         ++k) {
      const RunningAttempt victim = running_maps_.back();
      running_maps_.pop_back();
      KillRunningMap(victim.job, victim.index, node);
    }
    for (int k = 0;
         k < plan.reduce_slots_per_node && !running_reduces_.empty(); ++k) {
      const RunningAttempt victim = running_reduces_.back();
      running_reduces_.pop_back();
      KillRunningReduce(victim.job, victim.index, node);
    }
    // Capacity shrinks after the kills freed their slots, so free counts
    // stay nonnegative: free' = free + killed - slots_per_node, and fewer
    // than slots_per_node kills means the whole cluster ran fewer attempts
    // than one node holds.
    slots_.free_maps -= plan.map_slots_per_node;
    slots_.free_reduces -= plan.reduce_slots_per_node;
    // Requeued work may relaunch immediately on surviving capacity.
    AssignMapSlots();
    AssignReduceSlots();
  }

  void EngineRestoreNode(std::int32_t node) {
    if (node < 0 ||
        node >= static_cast<std::int32_t>(engine_node_down_.size()) ||
        !engine_node_down_[static_cast<std::size_t>(node)])
      return;
    engine_node_down_[static_cast<std::size_t>(node)] = 0;
    const fault::FaultPlan& plan = *config_.fault_plan;
    slots_.free_maps += plan.map_slots_per_node;
    slots_.free_reduces += plan.reduce_slots_per_node;
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeRestored, node,
                         /*job=*/-1, obs::TaskKind::kMap, /*index=*/-1);
    AssignMapSlots();
    AssignReduceSlots();
  }

  /// Targeted attempt kill. Silently skips attempts that are not running
  /// (plans replay against arbitrary workloads) and finished jobs.
  void EngineKillAttempt(const fault::FaultAction& action) {
    if (action.job < 0 ||
        action.job >= static_cast<JobId>(jobs_.size()))
      return;
    JobState& job = *jobs_[action.job];
    if (job.completion >= 0.0) return;
    if (action.task_kind == obs::TaskKind::kMap) {
      if (!RemoveRunning(running_maps_, action.job, action.index)) return;
      KillRunningMap(action.job, action.index, action.node);
      AssignMapSlots();
    } else {
      if (!RemoveRunning(running_reduces_, action.job, action.index)) return;
      KillRunningReduce(action.job, action.index, action.node);
      AssignReduceSlots();
    }
  }

  /// Common kill bookkeeping once the attempt left the running list: bump
  /// the epoch (invalidates the queued departure), requeue the index, and
  /// free the slot. Re-execution draws a fresh profile sample at relaunch —
  /// the lost work is re-done, not replayed.
  void KillRunningMap(JobId job_id, std::int32_t index, std::int32_t node) {
    JobState& job = *jobs_[job_id];
    ++map_epoch_[job_id][index];
    job.requeued_maps.push_back(index);
    ++slots_.free_maps;
    if (obs_ != nullptr) {
      const SimTime start = task_times_[job_id].map_start[index];
      obs_->OnTaskCompletion(now(), job_id, obs::TaskKind::kMap, index,
                             obs::TaskTiming{start, start, now()},
                             /*succeeded=*/false);
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kAttemptKilled, node,
                         job_id, obs::TaskKind::kMap, index);
    }
  }

  void KillRunningReduce(JobId job_id, std::int32_t index,
                         std::int32_t node) {
    JobState& job = *jobs_[job_id];
    ++reduce_epoch_[job_id][index];
    // A filler has no queued departure yet; drop its pending patch record
    // so MAP_STAGE_DONE does not resurrect the dead attempt.
    for (std::size_t i = 0; i < job.pending_fillers.size(); ++i) {
      if (job.pending_fillers[i].task_index == index) {
        job.pending_fillers.erase(
            job.pending_fillers.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    job.requeued_reduces.push_back(index);
    ++slots_.free_reduces;
    if (obs_ != nullptr) {
      const SimTime start = task_times_[job_id].reduce[index].start;
      obs_->OnTaskCompletion(now(), job_id, obs::TaskKind::kReduce, index,
                             obs::TaskTiming{start, now(), now()},
                             /*succeeded=*/false);
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kAttemptKilled, node,
                         job_id, obs::TaskKind::kReduce, index);
    }
  }

  struct RunningAttempt {
    JobId job;
    std::int32_t index;
  };

  /// Order-preserving removal (the lists stay in launch order so crashes
  /// kill the most recently launched attempts). Lists are bounded by the
  /// slot totals, so the linear scan is cheap — and only runs when fault
  /// injection is on.
  static bool RemoveRunning(std::vector<RunningAttempt>& list, JobId job,
                            std::int32_t index) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].job == job && list[i].index == index) {
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  SimConfig config_;
  SchedulerPolicy* policy_;
  const trace::WorkloadTrace* workload_;
  TObs* obs_;

  /// Per-job launch timing kept only when an observer is installed, so
  /// departures can report full TaskTiming. Indexed by launch index
  /// (stable: preempted fillers are relaunched under the same index).
  struct JobTaskTimes {
    std::vector<SimTime> map_start;
    std::vector<obs::TaskTiming> reduce;
  };
  std::vector<JobTaskTimes> task_times_;

  SimKernel<Event> kernel_;
  std::vector<std::unique_ptr<JobState>> jobs_;
  std::vector<const JobState*> job_queue_;
  SlotPool slots_;
  std::size_t completed_jobs_ = 0;
  SimResult result_;

  // Fault-injection state, all inert (and the epoch/running bookkeeping
  // skipped) when no plan is installed so fault-free replays stay
  // bit-identical to the pre-fault engine.
  bool faults_enabled_ = false;
  /// Per-task attempt epochs, outer-indexed by job id. A kill bumps the
  /// epoch so the doomed attempt's queued departure no longer matches.
  std::vector<std::vector<std::int32_t>> map_epoch_;
  std::vector<std::vector<std::int32_t>> reduce_epoch_;
  /// Running attempts in launch order (crashes kill from the back).
  std::vector<RunningAttempt> running_maps_;
  std::vector<RunningAttempt> running_reduces_;
  /// Actions referenced by kFaultAction events' aux index.
  std::vector<fault::FaultAction> fault_actions_;
  std::vector<char> engine_node_down_;
};

}  // namespace

SimulatorEngine::SimulatorEngine(SimConfig config, SchedulerPolicy& policy)
    : config_(config), policy_(&policy) {}

SimResult SimulatorEngine::Run(const trace::WorkloadTrace& workload) {
  // Devirtualize the recording hot path: a bare EventLogObserver (the
  // common --event-log-out wiring) gets the engine instantiated against
  // its concrete type, so its inline 48-byte appends compile straight into
  // the hook sites. Anything else — multicast fan-outs included — takes
  // the generic virtual-dispatch engine.
  if (auto* log = dynamic_cast<obs::EventLogObserver*>(config_.observer)) {
    EngineImpl<obs::EventLogObserver> impl(config_, *policy_, workload, log);
    return impl.Run();
  }
  // Same treatment for a bare TimeSeriesSampler: its hooks are a handful
  // of adds and compares, which inline once the type is concrete — this
  // keeps default-window sampling overhead in the low single digits.
  if (auto* ts = dynamic_cast<obs::TimeSeriesSampler*>(config_.observer)) {
    EngineImpl<obs::TimeSeriesSampler> impl(config_, *policy_, workload, ts);
    return impl.Run();
  }
  EngineImpl<obs::SimObserver> impl(config_, *policy_, workload,
                                    config_.observer);
  return impl.Run();
}

}  // namespace simmr::core
