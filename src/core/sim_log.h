// The engine's output log (Figure 4: the Simulator Engine "generates the
// output log").
//
// A structured, line-oriented text rendering of a SimResult: one SIMJOB
// line per job (arrival, launch, map-stage end, completion, deadline,
// met/missed) and, when task recording was enabled, one SIMTASK line per
// task with its phase boundaries. Round-trips through ReadSimulationLog so
// external tooling can consume replay outputs.
#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.h"

namespace simmr::core {

/// Writes the versioned output log.
void WriteSimulationLog(std::ostream& out, const SimResult& result);
void WriteSimulationLogFile(const std::string& path, const SimResult& result);

/// Parses a log produced by WriteSimulationLog back into a SimResult
/// (events_processed and makespan are restored from the header line).
/// Throws std::runtime_error on malformed input.
SimResult ReadSimulationLog(std::istream& in);
SimResult ReadSimulationLogFile(const std::string& path);

}  // namespace simmr::core
