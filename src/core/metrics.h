// Simulation outputs: per-job results, task timelines, and the deadline
// utility metric of Section V-A.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/events.h"
#include "simcore/time.h"

namespace simmr::core {

/// Outcome of one replayed job.
struct JobResult {
  JobId job = kInvalidJob;
  std::string name;        // app/dataset label
  SimTime arrival = 0.0;
  SimTime first_launch = 0.0;
  SimTime map_stage_end = 0.0;
  SimTime completion = 0.0;
  double deadline = 0.0;   // absolute; 0 = none

  SimDuration CompletionTime() const { return completion - arrival; }
  bool MissedDeadline() const {
    return deadline > 0.0 && completion > deadline;
  }
};

enum class SimTaskKind : std::uint8_t { kMap, kReduce };

/// One replayed task, with the shuffle/reduce phase boundary for reduces
/// (shuffle_end == start for maps). This is the engine's "output log".
struct SimTaskRecord {
  JobId job = kInvalidJob;
  SimTaskKind kind = SimTaskKind::kMap;
  SimTime start = 0.0;
  SimTime shuffle_end = 0.0;
  SimTime end = 0.0;
};

/// Full result of one engine run.
struct SimResult {
  std::vector<JobResult> jobs;
  std::vector<SimTaskRecord> tasks;  // empty unless recording was enabled
  std::uint64_t events_processed = 0;
  SimTime makespan = 0.0;
};

/// Section V-A's utility: the sum of relative deadline overruns,
/// sum_{J in Theta} (T_J - D_J) / D_J over jobs J that missed. Lower is
/// better; 0 = every deadline met. Jobs without deadlines are skipped.
double RelativeDeadlineExceeded(std::span<const JobResult> jobs);

/// Count of jobs that missed their deadline.
int MissedDeadlineCount(std::span<const JobResult> jobs);

/// Point of a task-count-over-time series (Figures 1-2): how many tasks
/// are in the map / shuffle / reduce phase at `time`.
struct ProgressPoint {
  SimTime time = 0.0;
  int maps = 0;
  int shuffles = 0;
  int reduces = 0;
};

/// Samples phase occupancy over [t0, t1] at `step` intervals from task
/// records (works on both engine and testbed-derived records).
std::vector<ProgressPoint> ProgressSeries(std::span<const SimTaskRecord> tasks,
                                          SimTime t0, SimTime t1,
                                          SimDuration step);

/// Aggregate slot-utilization figures over a run (requires task records).
struct UtilizationReport {
  double map_busy_slot_seconds = 0.0;
  double reduce_busy_slot_seconds = 0.0;
  /// Busy fraction of the slot-time area [0, makespan] x slots; in [0, 1].
  double map_utilization = 0.0;
  double reduce_utilization = 0.0;
};

/// Computes utilization from task records. Throws std::invalid_argument on
/// nonpositive slot counts; a zero makespan yields zero utilizations.
UtilizationReport ComputeUtilization(std::span<const SimTaskRecord> tasks,
                                     int map_slots, int reduce_slots,
                                     SimTime makespan);

}  // namespace simmr::core
