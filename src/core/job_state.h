// Per-job replay state inside the SimMR engine.
//
// A JobState owns cursors into the profile's duration pools and the
// bookkeeping for the filler-reduce mechanism: reduce tasks launched while
// the map stage is still running occupy a slot with (conceptually) infinite
// duration until MAP_STAGE_DONE patches their completion to
// map_stage_end + first_shuffle + reduce (Section III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "core/events.h"
#include "simcore/time.h"
#include "trace/job_profile.h"

namespace simmr::core {

/// Duration pool with a cursor. When a replay needs more samples than the
/// pool holds (e.g. replaying under a larger allocation launches more
/// first-wave reduces than the recorded run had), the cursor wraps around —
/// the pool is treated as an empirical distribution.
class DurationPool {
 public:
  explicit DurationPool(const std::vector<double>* values = nullptr)
      : values_(values) {}

  bool HasSamples() const { return values_ != nullptr && !values_->empty(); }

  /// Next sample; wraps modulo pool size. Requires HasSamples().
  double Next();

  /// How many samples were taken past the pool's end (0 = no wrap).
  std::size_t overflow_count() const { return overflow_; }

 private:
  const std::vector<double>* values_;
  std::size_t cursor_ = 0;
  std::size_t overflow_ = 0;
};

/// A first-wave ("filler") reduce awaiting its map-stage-done patch.
struct PendingFiller {
  std::int32_t task_index = 0;
  SimTime start = 0.0;
  double first_shuffle = 0.0;  // non-overlapping portion, from the profile
  double reduce = 0.0;
};

class JobState {
 public:
  JobState(JobId id, const trace::JobProfile& profile, SimTime arrival,
           double deadline, double solo_completion);

  JobId id() const { return id_; }
  const trace::JobProfile& profile() const { return *profile_; }
  SimTime arrival() const { return arrival_; }
  double deadline() const { return deadline_; }
  double solo_completion() const { return solo_completion_; }

  int num_maps() const { return profile_->num_maps; }
  int num_reduces() const { return profile_->num_reduces; }

  // --- scheduling state (maintained by the engine) ---
  int maps_launched = 0;
  int maps_completed = 0;
  int reduces_launched = 0;
  int reduces_completed = 0;
  bool reduce_gate_open = false;  // minMapPercentCompleted reached
  bool map_stage_done_fired = false;

  SimTime first_launch = -1.0;
  SimTime map_stage_end = -1.0;
  SimTime completion = -1.0;

  std::vector<PendingFiller> pending_fillers;

  /// Task indexes returned to the pending pool by a fault kill (or a
  /// filler preemption). Relaunches pop from the back and draw a fresh
  /// duration sample; maps_launched/reduces_launched stay monotone
  /// fresh-index cursors.
  std::vector<std::int32_t> requeued_maps;
  std::vector<std::int32_t> requeued_reduces;

  bool HasPendingMap() const {
    return maps_launched < num_maps() || !requeued_maps.empty();
  }
  bool HasPendingReduce() const {
    return reduces_launched < num_reduces() || !requeued_reduces.empty();
  }
  bool MapsDone() const { return maps_completed == num_maps(); }
  bool Done() const {
    return MapsDone() && reduces_completed == num_reduces();
  }
  int RunningMaps() const {
    return maps_launched - maps_completed -
           static_cast<int>(requeued_maps.size());
  }
  int RunningReduces() const {
    return reduces_launched - reduces_completed -
           static_cast<int>(requeued_reduces.size());
  }

  /// Reduce slowstart threshold in completed-map count for a gate fraction.
  int ReduceGateThreshold(double min_map_fraction) const;

  // --- duration pools ---
  double NextMapDuration() { return map_pool_.Next(); }
  double NextReduceDuration() { return reduce_pool_.Next(); }

  /// First-wave shuffle sample; falls back to the typical pool when the
  /// recorded run had fewer first-wave reduces than this replay launches.
  double NextFirstShuffleDuration();

  /// Typical shuffle sample; falls back to the first-wave pool when the
  /// recorded run completed in a single reduce wave.
  double NextTypicalShuffleDuration();

 private:
  JobId id_;
  const trace::JobProfile* profile_;
  SimTime arrival_;
  double deadline_;
  double solo_completion_;
  DurationPool map_pool_;
  DurationPool first_shuffle_pool_;
  DurationPool typical_shuffle_pool_;
  DurationPool reduce_pool_;
};

}  // namespace simmr::core
