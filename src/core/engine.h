// The SimMR Simulator Engine (Section III-B).
//
// A task-level discrete-event simulator of the Hadoop job master. It keeps
// a priority queue over the seven event types of events.h, tracks free map
// and reduce slots, and makes a new slot-allocation decision whenever a
// task completes, delegating job selection to the pluggable
// SchedulerPolicy. Reduce tasks become schedulable for a job once
// `min_map_percent_completed` of its maps have finished; first-wave
// reduces are modeled as filler tasks of unknown (infinite) duration whose
// completion is patched at MAP_STAGE_DONE to
//     map_stage_end + first_shuffle(non-overlap) + reduce,
// which is exactly how the paper reproduces the overlapped shuffle.
#pragma once

#include <vector>

#include "core/metrics.h"
#include "core/scheduler.h"
#include "fault/fault_plan.h"
#include "obs/observer.h"
#include "trace/workload.h"

namespace simmr::core {

struct SimConfig {
  /// Cluster-wide slot totals (the 66-node testbed default: 64 + 64).
  int map_slots = 64;
  int reduce_slots = 64;

  /// Fraction of a job's maps that must complete before its reduces may be
  /// scheduled (the paper's minMapPercentCompleted; Hadoop default 0.05).
  double min_map_percent_completed = 0.05;

  /// Record per-task timeline entries into SimResult::tasks.
  bool record_tasks = false;

  /// Optional live-instrumentation sink (borrowed; must outlive the run).
  /// Null (the default) costs one branch per hook site and nothing else;
  /// see src/obs/observer.h for the callback contract and
  /// docs/OBSERVABILITY.md for the ready-made sinks.
  obs::SimObserver* observer = nullptr;

  /// Allow policies to kill filler (first-wave) reduces of other jobs to
  /// free reduce slots for more urgent work — the engine then consults
  /// SchedulerPolicy::ChooseReducePreemptionVictim. Off by default: the
  /// paper's schedulers never preempt (Section V-B discusses the
  /// consequences).
  bool allow_filler_preemption = false;

  /// Optional deterministic fault plan (borrowed; must outlive the run).
  /// The engine has no node identity, so node faults translate into slot
  /// terms: a crash removes the plan's per-node slot counts from the
  /// cluster capacity and kills the most recently launched attempt per
  /// lost slot (requeued with a fresh profile-sampled duration — work is
  /// lost, not replayed); a restore returns the capacity. A heartbeat-loss
  /// window at least tasktracker_expiry_interval long behaves as
  /// crash+restore, shorter windows are invisible at task granularity,
  /// and node slowdowns are ignored (the engine has no node speeds) —
  /// both deliberate abstractions whose cost `simmr_analyze availability`
  /// quantifies against the testbed. Plans with geometry must satisfy
  /// num_nodes * slots_per_node == the engine slot totals; geometry-free
  /// plans (num_nodes == 0) may only contain kill_attempt actions. Run()
  /// throws std::invalid_argument otherwise.
  const fault::FaultPlan* fault_plan = nullptr;

  /// Heartbeat-loss windows at least this long count as node loss,
  /// mirroring ClusterConfig::tasktracker_expiry_interval on the testbed.
  double tasktracker_expiry_interval = 600.0;
};

class SimulatorEngine {
 public:
  /// The policy must outlive the engine run.
  SimulatorEngine(SimConfig config, SchedulerPolicy& policy);

  /// Replays the trace to completion. Jobs may arrive in any time order
  /// (the queue sorts them); profiles are validated first.
  /// Throws std::invalid_argument on invalid profiles or a nonpositive slot
  /// count, and std::logic_error if the policy returns an ineligible job.
  SimResult Run(const trace::WorkloadTrace& workload);

 private:
  SimConfig config_;
  SchedulerPolicy* policy_;
};

}  // namespace simmr::core
