// The SimMR Simulator Engine (Section III-B).
//
// A task-level discrete-event simulator of the Hadoop job master. It keeps
// a priority queue over the seven event types of events.h, tracks free map
// and reduce slots, and makes a new slot-allocation decision whenever a
// task completes, delegating job selection to the pluggable
// SchedulerPolicy. Reduce tasks become schedulable for a job once
// `min_map_percent_completed` of its maps have finished; first-wave
// reduces are modeled as filler tasks of unknown (infinite) duration whose
// completion is patched at MAP_STAGE_DONE to
//     map_stage_end + first_shuffle(non-overlap) + reduce,
// which is exactly how the paper reproduces the overlapped shuffle.
#pragma once

#include <vector>

#include "core/metrics.h"
#include "core/scheduler.h"
#include "obs/observer.h"
#include "trace/workload.h"

namespace simmr::core {

struct SimConfig {
  /// Cluster-wide slot totals (the 66-node testbed default: 64 + 64).
  int map_slots = 64;
  int reduce_slots = 64;

  /// Fraction of a job's maps that must complete before its reduces may be
  /// scheduled (the paper's minMapPercentCompleted; Hadoop default 0.05).
  double min_map_percent_completed = 0.05;

  /// Record per-task timeline entries into SimResult::tasks.
  bool record_tasks = false;

  /// Optional live-instrumentation sink (borrowed; must outlive the run).
  /// Null (the default) costs one branch per hook site and nothing else;
  /// see src/obs/observer.h for the callback contract and
  /// docs/OBSERVABILITY.md for the ready-made sinks.
  obs::SimObserver* observer = nullptr;

  /// Allow policies to kill filler (first-wave) reduces of other jobs to
  /// free reduce slots for more urgent work — the engine then consults
  /// SchedulerPolicy::ChooseReducePreemptionVictim. Off by default: the
  /// paper's schedulers never preempt (Section V-B discusses the
  /// consequences).
  bool allow_filler_preemption = false;
};

class SimulatorEngine {
 public:
  /// The policy must outlive the engine run.
  SimulatorEngine(SimConfig config, SchedulerPolicy& policy);

  /// Replays the trace to completion. Jobs may arrive in any time order
  /// (the queue sorts them); profiles are validated first.
  /// Throws std::invalid_argument on invalid profiles or a nonpositive slot
  /// count, and std::logic_error if the policy returns an ineligible job.
  SimResult Run(const trace::WorkloadTrace& workload);

 private:
  SimConfig config_;
  SchedulerPolicy* policy_;
};

}  // namespace simmr::core
