#include "core/simmr.h"

#include <stdexcept>

namespace simmr::core {
namespace {

/// Minimal FIFO used internally for solo-completion measurement (the sched
/// library's FIFO lives above core in the dependency order).
class InternalFifo final : public SchedulerPolicy {
 public:
  const char* Name() const override { return "internal-fifo"; }

  JobId ChooseNextMapTask(JobQueue job_queue) override {
    for (const JobState* job : job_queue) {
      if (job->HasPendingMap()) return job->id();
    }
    return kInvalidJob;
  }

  JobId ChooseNextReduceTask(JobQueue job_queue) override {
    for (const JobState* job : job_queue) {
      if (job->HasPendingReduce() && job->reduce_gate_open) return job->id();
    }
    return kInvalidJob;
  }
};

}  // namespace

SimResult Replay(const trace::WorkloadTrace& workload, SchedulerPolicy& policy,
                 const SimConfig& config) {
  SimulatorEngine engine(config, policy);
  return engine.Run(workload);
}

std::vector<double> MeasureSoloCompletions(
    const std::vector<trace::JobProfile>& profiles, const SimConfig& config) {
  std::vector<double> completions;
  completions.reserve(profiles.size());
  InternalFifo fifo;
  // Solo measurement is a derived quantity, not part of the observed run:
  // suppress any installed observer so sinks see only the real replay.
  SimConfig solo_config = config;
  solo_config.observer = nullptr;
  for (const auto& profile : profiles) {
    trace::WorkloadTrace solo(1);
    solo[0].profile = profile;
    solo[0].arrival = 0.0;
    const SimResult result = Replay(solo, fifo, solo_config);
    if (result.jobs.size() != 1)
      throw std::logic_error("MeasureSoloCompletions: missing job result");
    completions.push_back(result.jobs[0].CompletionTime());
  }
  return completions;
}

}  // namespace simmr::core
