// Availability what-ifs: what a fault plan cost a run.
//
// Folds the fault-lifecycle records of one event log (NODE_LOST,
// NODE_RESTORED, ATTEMPT_KILLED, TASK_REEXECUTED) into per-node downtime
// windows and per-job damage — killed attempts, wasted attempt-seconds,
// re-executed tasks — and, when a fault-free baseline log of the same
// workload is given, attributes each job's completion-time penalty and
// the makespan penalty to the faults. The instrument behind
// `simmr_analyze availability`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/run_record.h"

namespace simmr::analysis {

/// Downtime of one node over the run, from its NODE_LOST/NODE_RESTORED
/// alternation. A loss the log never closes counts as down until the
/// run's makespan.
struct NodeDowntime {
  std::int32_t node = -1;
  int losses = 0;
  double down_seconds = 0.0;
};

/// Fault damage attributed to one job, with its baseline join when a
/// fault-free run of the same workload was provided.
struct JobAvailability {
  std::string name;
  std::int32_t id = -1;
  std::uint64_t killed_maps = 0;
  std::uint64_t killed_reduces = 0;
  /// TASK_REEXECUTED records: completed map outputs lost with a node and
  /// run again (distinct from killed running attempts).
  std::uint64_t reexecuted_tasks = 0;
  /// Attempt-seconds of work thrown away: sum of (end - start) over
  /// failed attempts.
  double wasted_seconds = 0.0;
  double completion = 0.0;  // relative completion time
  bool completed = false;

  bool has_baseline = false;
  double baseline_completion = 0.0;
  /// completion - baseline_completion (only meaningful with a baseline;
  /// positive = the faults delayed the job).
  double penalty_seconds = 0.0;
};

struct AvailabilityReport {
  /// Run-wide fault-record counts by kind.
  std::uint64_t node_losses = 0;
  std::uint64_t node_restores = 0;
  std::uint64_t attempt_kills = 0;
  std::uint64_t task_reexecutions = 0;

  std::vector<NodeDowntime> nodes;  // node-scoped records only, node order
  std::vector<JobAvailability> jobs;  // job-id order

  double makespan = 0.0;
  std::uint64_t jobs_unfinished = 0;  // never completed (failed/aborted)
  double total_wasted_seconds = 0.0;
  std::uint64_t total_killed = 0;

  bool has_baseline = false;
  double baseline_makespan = 0.0;
  double makespan_penalty = 0.0;  // makespan - baseline_makespan
};

/// Builds the report. `baseline` may be null (no what-if join); when
/// given, jobs are aligned by id — the intended use is the same workload
/// replayed with and without a fault plan, where ids coincide.
AvailabilityReport BuildAvailabilityReport(const RunRecord& run,
                                           const RunRecord* baseline);

/// `availability`: text table, or one simmr.analysis.v1 JSON document
/// when opt.json is set. Honors opt.job (-1 = all jobs).
std::string RenderAvailability(const AvailabilityReport& report,
                               const AnalyzeOptions& opt);

}  // namespace simmr::analysis
