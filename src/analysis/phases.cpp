#include "analysis/phases.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace simmr::analysis {
namespace {

constexpr double kEps = 1e-9;

int Waves(int tasks, int peak) {
  if (tasks <= 0 || peak <= 0) return 0;
  return (tasks + peak - 1) / peak;
}

}  // namespace

PhaseBreakdown ComputePhaseBreakdown(const JobRun& job) {
  PhaseBreakdown b;
  double first_map_start = std::numeric_limits<double>::infinity();
  for (const TaskExec& t : job.tasks) {
    if (!t.succeeded) continue;
    if (t.kind == obs::TaskKind::kMap) {
      ++b.num_maps;
      const double d = t.timing.end - t.timing.start;
      b.map_total += d;
      b.map_max = std::max(b.map_max, d);
      first_map_start = std::min(first_map_start, t.timing.start);
      continue;
    }
    ++b.num_reduces;
    const double reduce = t.timing.end - t.timing.shuffle_end;
    b.reduce_total += reduce;
    b.reduce_max = std::max(b.reduce_max, reduce);
    if (t.timing.start + kEps < job.map_stage_end) {
      // First-wave (filler) reduce: only the shuffle tail past the end of
      // the map stage is the task's own cost; the rest overlapped the maps.
      ++b.first_wave_reduces;
      b.first_shuffle_total +=
          std::max(0.0, t.timing.shuffle_end - job.map_stage_end);
    } else {
      ++b.typical_reduces;
      b.typical_shuffle_total += t.timing.shuffle_end - t.timing.start;
    }
  }

  if (b.num_maps > 0) {
    b.map_avg = b.map_total / b.num_maps;
    b.map_stage_span = job.map_stage_end - first_map_start;
  }
  if (b.num_reduces > 0) {
    b.shuffle_avg = b.ShuffleTotal() / b.num_reduces;
    b.reduce_avg = b.reduce_total / b.num_reduces;
  }
  b.peak_maps = PeakConcurrency(job.tasks, obs::TaskKind::kMap);
  b.peak_reduces = PeakConcurrency(job.tasks, obs::TaskKind::kReduce);
  b.map_waves = Waves(b.num_maps, b.peak_maps);
  b.reduce_waves = Waves(b.num_reduces, b.peak_reduces);
  return b;
}

}  // namespace simmr::analysis
