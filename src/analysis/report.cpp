#include "analysis/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "analysis/critical_path.h"
#include "analysis/deadline.h"
#include "analysis/phases.h"
#include "core/metrics.h"
#include "obs/json.h"

namespace simmr::analysis {
namespace {

using obs::JsonEscape;
using obs::JsonNumber;

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

bool Selected(const AnalyzeOptions& opt, const JobRun& job) {
  return opt.job < 0 || opt.job == job.id;
}

/// All attempts of the run in one vector, for run-wide peak concurrency.
std::vector<TaskExec> AllTasks(const RunRecord& record) {
  std::vector<TaskExec> all;
  for (const JobRun& job : record.jobs)
    all.insert(all.end(), job.tasks.begin(), job.tasks.end());
  return all;
}

std::string HeaderLine(const RunRecord& record) {
  std::string out = "== run";
  if (!record.header.tool.empty()) out += ": " + record.header.tool;
  if (!record.header.scenario.empty())
    out += " scenario=" + record.header.scenario;
  if (!record.header.simulator.empty())
    out += " simulator=" + record.header.simulator;
  out += " ==\n";
  return out;
}

std::string HeaderJson(const RunRecord& record) {
  return "\"tool\":\"" + JsonEscape(record.header.tool) +
         "\",\"scenario\":\"" + JsonEscape(record.header.scenario) +
         "\",\"simulator\":\"" + JsonEscape(record.header.simulator) + "\"";
}

std::string BreakdownJson(const PhaseBreakdown& b) {
  std::string out = "{";
  out += "\"maps\":" + std::to_string(b.num_maps);
  out += ",\"reduces\":" + std::to_string(b.num_reduces);
  out += ",\"first_wave_reduces\":" + std::to_string(b.first_wave_reduces);
  out += ",\"map_total\":" + JsonNumber(b.map_total);
  out += ",\"first_shuffle_total\":" + JsonNumber(b.first_shuffle_total);
  out += ",\"typical_shuffle_total\":" + JsonNumber(b.typical_shuffle_total);
  out += ",\"reduce_total\":" + JsonNumber(b.reduce_total);
  out += ",\"map_avg\":" + JsonNumber(b.map_avg);
  out += ",\"map_max\":" + JsonNumber(b.map_max);
  out += ",\"shuffle_avg\":" + JsonNumber(b.shuffle_avg);
  out += ",\"reduce_avg\":" + JsonNumber(b.reduce_avg);
  out += ",\"reduce_max\":" + JsonNumber(b.reduce_max);
  out += ",\"peak_maps\":" + std::to_string(b.peak_maps);
  out += ",\"peak_reduces\":" + std::to_string(b.peak_reduces);
  out += ",\"map_waves\":" + std::to_string(b.map_waves);
  out += ",\"reduce_waves\":" + std::to_string(b.reduce_waves);
  out += ",\"map_stage_span\":" + JsonNumber(b.map_stage_span);
  out += "}";
  return out;
}

}  // namespace

std::string RenderReport(const RunRecord& record, const AnalyzeOptions& opt) {
  const DeadlineReport deadlines = AttributeDeadlineMisses(record);
  int completed = 0;
  for (const JobRun& job : record.jobs) completed += job.completed ? 1 : 0;

  if (opt.json) {
    std::string out = "{\"schema\":\"simmr.analysis.v1\",\"kind\":\"report\",";
    out += HeaderJson(record);
    out += ",\"jobs\":" + std::to_string(record.jobs.size());
    out += ",\"completed\":" + std::to_string(completed);
    out += ",\"makespan\":" + JsonNumber(record.makespan);
    out += ",\"dequeues\":" + std::to_string(record.dequeues);
    out += ",\"peak_queue_depth\":" + std::to_string(record.peak_queue_depth);
    out += ",\"decisions\":{\"map_chosen\":" +
           std::to_string(record.decisions_chosen[0]) +
           ",\"map_idle\":" + std::to_string(record.decisions_idle[0]) +
           ",\"reduce_chosen\":" + std::to_string(record.decisions_chosen[1]) +
           ",\"reduce_idle\":" + std::to_string(record.decisions_idle[1]) + "}";
    out += ",\"job_details\":[";
    bool first = true;
    for (const JobRun& job : record.jobs) {
      if (!Selected(opt, job)) continue;
      if (!first) out += ",";
      first = false;
      const PhaseBreakdown b = ComputePhaseBreakdown(job);
      out += "{\"job\":" + std::to_string(job.id);
      out += ",\"name\":\"" + JsonEscape(job.name) + "\"";
      out += ",\"arrival\":" + JsonNumber(job.arrival);
      out += ",\"completed\":" + std::string(job.completed ? "true" : "false");
      if (job.completed) {
        out += ",\"completion\":" + JsonNumber(job.completion);
        out += ",\"completion_time\":" + JsonNumber(job.CompletionTime());
      }
      out += ",\"deadline\":" + JsonNumber(job.deadline);
      out += ",\"missed_deadline\":" +
             std::string(job.MissedDeadline() ? "true" : "false");
      out += ",\"launches\":{\"map\":" + std::to_string(job.launches[0]) +
             ",\"reduce\":" + std::to_string(job.launches[1]) + "}";
      out += ",\"kills\":{\"map\":" + std::to_string(job.kills[0]) +
             ",\"reduce\":" + std::to_string(job.kills[1]) + "}";
      out += ",\"phases\":" + BreakdownJson(b);
      out += "}";
    }
    out += "],\"deadline\":{\"with_deadline\":" +
           std::to_string(deadlines.jobs_with_deadline) +
           ",\"missed\":" + std::to_string(deadlines.missed) + ",\"misses\":[";
    first = true;
    for (const DeadlineMiss& miss : deadlines.misses) {
      if (opt.job >= 0 && opt.job != miss.job) continue;
      if (!first) out += ",";
      first = false;
      out += "{\"job\":" + std::to_string(miss.job);
      out += ",\"name\":\"" + JsonEscape(miss.name) + "\"";
      out += ",\"gap\":" + JsonNumber(miss.gap);
      out += ",\"allowed\":" + JsonNumber(miss.allowed);
      out += ",\"scheduling_delay\":" + JsonNumber(miss.scheduling_delay);
      out += ",\"observed_map_slots\":" +
             std::to_string(miss.observed_map_slots);
      out += ",\"observed_reduce_slots\":" +
             std::to_string(miss.observed_reduce_slots);
      out += ",\"lower_bound\":" + JsonNumber(miss.lower_bound);
      out += ",\"upper_bound\":" + JsonNumber(miss.upper_bound);
      out += ",\"infeasible\":" +
             std::string(miss.infeasible ? "true" : "false");
      out += "}";
    }
    out += "]}}";
    return out;
  }

  std::string out = HeaderLine(record);
  out += Fmt("jobs: %zu (completed %d, deadline misses %d/%d)  makespan: %s\n",
             record.jobs.size(), completed, deadlines.missed,
             deadlines.jobs_with_deadline, Num(record.makespan).c_str());
  out += Fmt("events: dequeues=%llu peak_queue_depth=%llu\n",
             static_cast<unsigned long long>(record.dequeues),
             static_cast<unsigned long long>(record.peak_queue_depth));
  out += Fmt(
      "decisions: map chosen=%llu idle=%llu | reduce chosen=%llu idle=%llu\n",
      static_cast<unsigned long long>(record.decisions_chosen[0]),
      static_cast<unsigned long long>(record.decisions_idle[0]),
      static_cast<unsigned long long>(record.decisions_chosen[1]),
      static_cast<unsigned long long>(record.decisions_idle[1]));

  for (const JobRun& job : record.jobs) {
    if (!Selected(opt, job)) continue;
    const PhaseBreakdown b = ComputePhaseBreakdown(job);
    out += Fmt("\njob %d '%s' arrival=%s", job.id, job.name.c_str(),
               Num(job.arrival).c_str());
    if (job.completed) {
      out += Fmt(" completion=%s (relative %s)", Num(job.completion).c_str(),
                 Num(job.CompletionTime()).c_str());
    } else {
      out += " [incomplete: log ends before completion]";
    }
    if (job.deadline > 0.0) {
      out += Fmt(" deadline=%s [%s]", Num(job.deadline).c_str(),
                 job.MissedDeadline() ? "MISSED" : "met");
    }
    out += "\n";
    out += Fmt(
        "  maps:    %d attempts, avg %ss max %ss, peak %d slots, %d wave(s), "
        "stage span %ss\n",
        b.num_maps, Num(b.map_avg).c_str(), Num(b.map_max).c_str(),
        b.peak_maps, b.map_waves, Num(b.map_stage_span).c_str());
    out += Fmt(
        "  reduces: %d attempts (%d first-wave), shuffle avg %ss, reduce avg "
        "%ss max %ss, peak %d slots, %d wave(s)\n",
        b.num_reduces, b.first_wave_reduces, Num(b.shuffle_avg).c_str(),
        Num(b.reduce_avg).c_str(), Num(b.reduce_max).c_str(), b.peak_reduces,
        b.reduce_waves);
    out += Fmt(
        "  phase totals: map %ss | first-shuffle %ss | typical-shuffle %ss | "
        "reduce %ss\n",
        Num(b.map_total).c_str(), Num(b.first_shuffle_total).c_str(),
        Num(b.typical_shuffle_total).c_str(), Num(b.reduce_total).c_str());
    if (job.kills[0] + job.kills[1] > 0) {
      out += Fmt("  kills: map %llu, reduce %llu (launches: map %llu, reduce "
                 "%llu)\n",
                 static_cast<unsigned long long>(job.kills[0]),
                 static_cast<unsigned long long>(job.kills[1]),
                 static_cast<unsigned long long>(job.launches[0]),
                 static_cast<unsigned long long>(job.launches[1]));
    }
  }

  if (deadlines.missed > 0) {
    out += "\ndeadline misses:\n";
    for (const DeadlineMiss& miss : deadlines.misses) {
      if (opt.job >= 0 && opt.job != miss.job) continue;
      out += Fmt("  job %d '%s': missed by %ss (allowed %ss, took %ss)\n",
                 miss.job, miss.name.c_str(), Num(miss.gap).c_str(),
                 Num(miss.allowed).c_str(),
                 Num(miss.completion - miss.arrival).c_str());
      out += Fmt("    scheduling delay %ss; observed slots: %d map, %d "
                 "reduce\n",
                 Num(miss.scheduling_delay).c_str(), miss.observed_map_slots,
                 miss.observed_reduce_slots);
      out += Fmt("    ARIA bounds at that parallelism: [%s, %s] -> %s\n",
                 Num(miss.lower_bound).c_str(), Num(miss.upper_bound).c_str(),
                 miss.infeasible
                     ? "infeasible: no schedule at this parallelism could "
                       "meet the deadline"
                     : "feasible: miss came from contention/ordering");
    }
  }
  return out;
}

std::string RenderCriticalPath(const RunRecord& record,
                               const AnalyzeOptions& opt) {
  if (opt.json) {
    std::string out =
        "{\"schema\":\"simmr.analysis.v1\",\"kind\":\"critical-path\",";
    out += HeaderJson(record);
    out += ",\"jobs\":[";
    bool first = true;
    for (const JobRun& job : record.jobs) {
      if (!Selected(opt, job)) continue;
      if (!first) out += ",";
      first = false;
      const CriticalPath path = ExtractCriticalPath(job);
      out += "{\"job\":" + std::to_string(path.job);
      out += ",\"name\":\"" + JsonEscape(path.name) + "\"";
      out += ",\"completion_time\":" +
             JsonNumber(path.completion - path.arrival);
      out += ",\"work_seconds\":" + JsonNumber(path.work_seconds);
      out += ",\"wait_seconds\":" + JsonNumber(path.wait_seconds);
      out += ",\"bounding_phase\":\"" + JsonEscape(path.bounding_phase) + "\"";
      out += ",\"steps\":[";
      for (std::size_t i = 0; i < path.steps.size(); ++i) {
        const CriticalStep& step = path.steps[i];
        if (i > 0) out += ",";
        out += "{\"kind\":\"" + std::string(obs::TaskKindName(step.kind)) +
               "\"";
        out += ",\"index\":" + std::to_string(step.index);
        out += ",\"phase\":\"" + std::string(step.phase) + "\"";
        out += ",\"start\":" + JsonNumber(step.start);
        out += ",\"end\":" + JsonNumber(step.end);
        out += ",\"wait_before\":" + JsonNumber(step.wait_before);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
    return out;
  }

  std::string out = HeaderLine(record);
  for (const JobRun& job : record.jobs) {
    if (!Selected(opt, job)) continue;
    const CriticalPath path = ExtractCriticalPath(job);
    out += Fmt("\njob %d '%s':", path.job, path.name.c_str());
    if (path.steps.empty()) {
      out += " no critical path (job incomplete or ran no tasks)\n";
      continue;
    }
    out += Fmt(" completion %ss = work %ss + wait %ss, bounded by %s\n",
               Num(path.completion - path.arrival).c_str(),
               Num(path.work_seconds).c_str(), Num(path.wait_seconds).c_str(),
               path.bounding_phase);
    for (const CriticalStep& step : path.steps) {
      out += Fmt("  %-13s %s[%d]  %s -> %s  (%ss", step.phase,
                 obs::TaskKindName(step.kind), step.index,
                 Num(step.start).c_str(), Num(step.end).c_str(),
                 Num(step.Duration()).c_str());
      if (step.wait_before > 0.0)
        out += Fmt(", waited %ss", Num(step.wait_before).c_str());
      out += ")\n";
    }
  }
  return out;
}

std::string RenderUtilization(const RunRecord& record,
                              const AnalyzeOptions& opt) {
  const std::vector<TaskExec> all = AllTasks(record);
  const int peak_maps = PeakConcurrency(all, obs::TaskKind::kMap);
  const int peak_reduces = PeakConcurrency(all, obs::TaskKind::kReduce);
  const int map_slots = opt.map_slots > 0 ? opt.map_slots
                                          : std::max(1, peak_maps);
  const int reduce_slots = opt.reduce_slots > 0 ? opt.reduce_slots
                                                : std::max(1, peak_reduces);
  const std::vector<core::SimTaskRecord> tasks = ToSimTaskRecords(record);
  const core::UtilizationReport util = core::ComputeUtilization(
      tasks, map_slots, reduce_slots, record.makespan);

  double step = opt.step;
  if (step <= 0.0)
    step = record.makespan > 0.0 ? record.makespan / 20.0 : 1.0;
  const std::vector<core::ProgressPoint> series =
      core::ProgressSeries(tasks, 0.0, record.makespan, step);

  if (opt.json) {
    std::string out =
        "{\"schema\":\"simmr.analysis.v1\",\"kind\":\"utilization\",";
    out += HeaderJson(record);
    out += ",\"map_slots\":" + std::to_string(map_slots);
    out += ",\"reduce_slots\":" + std::to_string(reduce_slots);
    out += ",\"observed_peak_maps\":" + std::to_string(peak_maps);
    out += ",\"observed_peak_reduces\":" + std::to_string(peak_reduces);
    out += ",\"makespan\":" + JsonNumber(record.makespan);
    out += ",\"map_utilization\":" + JsonNumber(util.map_utilization);
    out += ",\"reduce_utilization\":" + JsonNumber(util.reduce_utilization);
    out += ",\"map_busy_slot_seconds\":" +
           JsonNumber(util.map_busy_slot_seconds);
    out += ",\"reduce_busy_slot_seconds\":" +
           JsonNumber(util.reduce_busy_slot_seconds);
    out += ",\"step\":" + JsonNumber(step);
    out += ",\"timeline\":[";
    for (std::size_t i = 0; i < series.size(); ++i) {
      const core::ProgressPoint& p = series[i];
      if (i > 0) out += ",";
      out += "{\"t\":" + JsonNumber(p.time) +
             ",\"maps\":" + std::to_string(p.maps) +
             ",\"shuffles\":" + std::to_string(p.shuffles) +
             ",\"reduces\":" + std::to_string(p.reduces) + "}";
    }
    out += "]}";
    return out;
  }

  std::string out = HeaderLine(record);
  out += Fmt("slots: map=%d%s reduce=%d%s\n", map_slots,
             opt.map_slots > 0 ? "" : " (observed peak)", reduce_slots,
             opt.reduce_slots > 0 ? "" : " (observed peak)");
  out += Fmt("map utilization    %s (busy %s slot-seconds)\n",
             Num(util.map_utilization).c_str(),
             Num(util.map_busy_slot_seconds).c_str());
  out += Fmt("reduce utilization %s (busy %s slot-seconds)\n",
             Num(util.reduce_utilization).c_str(),
             Num(util.reduce_busy_slot_seconds).c_str());
  out += Fmt("timeline (step %ss):\n", Num(step).c_str());
  for (const core::ProgressPoint& p : series) {
    out += Fmt("  t=%-10s maps=%-4d shuffles=%-4d reduces=%-4d\n",
               Num(p.time).c_str(), p.maps, p.shuffles, p.reduces);
  }
  return out;
}

std::string RenderDiff(const RunDiff& diff, const AnalyzeOptions& opt) {
  if (opt.json) {
    std::string out = "{\"schema\":\"simmr.analysis.v1\",\"kind\":\"diff\"";
    out += ",\"identical\":" + std::string(diff.identical ? "true" : "false");
    if (!diff.identical) {
      out += ",\"first_divergence\":\"" + JsonEscape(diff.first_divergence) +
             "\"";
      out += ",\"first_divergence_time\":" +
             JsonNumber(diff.first_divergence_time);
    }
    out += ",\"max_abs_completion_delta\":" +
           JsonNumber(diff.max_abs_completion_delta);
    out += ",\"mean_abs_completion_delta\":" +
           JsonNumber(diff.mean_abs_completion_delta);
    out += ",\"only_in_a\":[";
    for (std::size_t i = 0; i < diff.only_in_a.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(diff.only_in_a[i]) + "\"";
    }
    out += "],\"only_in_b\":[";
    for (std::size_t i = 0; i < diff.only_in_b.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(diff.only_in_b[i]) + "\"";
    }
    out += "],\"jobs\":[";
    for (std::size_t i = 0; i < diff.jobs.size(); ++i) {
      const JobDelta& d = diff.jobs[i];
      if (i > 0) out += ",";
      out += "{\"name\":\"" + JsonEscape(d.name) + "\"";
      out += ",\"job_a\":" + std::to_string(d.job_a);
      out += ",\"job_b\":" + std::to_string(d.job_b);
      out += ",\"completion_a\":" + JsonNumber(d.completion_a);
      out += ",\"completion_b\":" + JsonNumber(d.completion_b);
      out += ",\"completion_delta\":" + JsonNumber(d.completion_delta);
      out += ",\"map_delta\":" + JsonNumber(d.map_delta);
      out += ",\"shuffle_delta\":" + JsonNumber(d.shuffle_delta);
      out += ",\"reduce_delta\":" + JsonNumber(d.reduce_delta);
      out += ",\"dominant_phase\":\"" + std::string(d.dominant_phase) + "\"";
      out += "}";
    }
    out += "]}";
    return out;
  }

  std::string out;
  if (diff.identical) {
    out += "runs are identical (bit-exact arrivals, attempts and "
           "completions)\n";
  } else {
    out += Fmt("runs differ; first divergence at t=%s:\n  %s\n",
               Num(diff.first_divergence_time).c_str(),
               diff.first_divergence.c_str());
  }
  out += Fmt("jobs: %zu aligned, %zu only in a, %zu only in b\n",
             diff.jobs.size(), diff.only_in_a.size(), diff.only_in_b.size());
  for (const std::string& name : diff.only_in_a)
    out += "  only in a: '" + name + "'\n";
  for (const std::string& name : diff.only_in_b)
    out += "  only in b: '" + name + "'\n";
  if (!diff.jobs.empty()) {
    out += Fmt("completion deltas (b - a): max |delta|=%ss mean "
               "|delta|=%ss\n",
               Num(diff.max_abs_completion_delta).c_str(),
               Num(diff.mean_abs_completion_delta).c_str());
  }
  for (const JobDelta& d : diff.jobs) {
    out += Fmt("\njob '%s' (a#%d / b#%d): completion a=%ss b=%ss delta=%ss  "
               "dominant phase: %s\n",
               d.name.c_str(), d.job_a, d.job_b, Num(d.completion_a).c_str(),
               Num(d.completion_b).c_str(), Num(d.completion_delta).c_str(),
               d.dominant_phase);
    out += Fmt("  per-attempt avgs: map a=%ss b=%ss (%s%s) | shuffle a=%ss "
               "b=%ss (%s%s) | reduce a=%ss b=%ss (%s%s)\n",
               Num(d.map_avg_a).c_str(), Num(d.map_avg_b).c_str(),
               d.map_delta >= 0 ? "+" : "", Num(d.map_delta).c_str(),
               Num(d.shuffle_avg_a).c_str(), Num(d.shuffle_avg_b).c_str(),
               d.shuffle_delta >= 0 ? "+" : "", Num(d.shuffle_delta).c_str(),
               Num(d.reduce_avg_a).c_str(), Num(d.reduce_avg_b).c_str(),
               d.reduce_delta >= 0 ? "+" : "", Num(d.reduce_delta).c_str());
  }
  return out;
}

}  // namespace simmr::analysis
