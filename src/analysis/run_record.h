// Offline run reconstruction from a durable event log.
//
// A RunRecord is the analysis-side view of one simulation run: the
// "simmr.eventlog.v1" callback stream folded into per-job execution
// histories (arrival, deadline, completion, every task attempt with its
// phase boundaries) plus run-wide counters. It is the input to everything
// else in src/analysis/ — phase breakdowns, critical paths, deadline-miss
// attribution, utilization timelines and run diffs — and to the
// simmr_analyze tool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "obs/event_log.h"

namespace simmr::analysis {

/// One finished task attempt (successful or killed).
struct TaskExec {
  obs::TaskKind kind = obs::TaskKind::kMap;
  std::int32_t index = 0;
  obs::TaskTiming timing{};
  /// Simulation time of the completion callback (when the attempt's end
  /// became visible to the job master; >= timing.end is not guaranteed for
  /// killed attempts).
  double reported = 0.0;
  bool succeeded = true;
};

/// Execution history of one job, reconstructed from its events.
struct JobRun {
  std::int32_t id = -1;
  std::string name;
  double arrival = 0.0;
  double deadline = 0.0;    // absolute; 0 = none
  double completion = -1.0; // absolute; < 0 when the log ends mid-job
  bool completed = false;

  /// Finished attempts in completion order (includes killed attempts with
  /// succeeded=false; a killed attempt's task reappears later under the
  /// same index when it was relaunched).
  std::vector<TaskExec> tasks;

  std::uint64_t launches[2] = {0, 0};  // [map, reduce] attempt launches
  std::uint64_t kills[2] = {0, 0};     // failed/killed attempts

  /// End of the map stage: max end over successful map attempts (0 for
  /// map-less jobs).
  double map_stage_end = 0.0;
  /// Earliest successful task start (first_launch), or `arrival` when the
  /// job ran no tasks.
  double first_start = 0.0;

  double CompletionTime() const { return completion - arrival; }
  bool MissedDeadline() const {
    return deadline > 0.0 && completed && completion > deadline;
  }
  std::size_t SucceededCount(obs::TaskKind kind) const;
};

/// One recorded fault-lifecycle transition ("fault" log records, written
/// by OnFaultEvent). `fault` is the FaultEventKindName wire name; `node`
/// is -1 for the slot-level engine; job/index are -1 for node-scoped
/// events.
struct FaultRecord {
  std::string fault;
  double t = 0.0;
  std::int32_t node = -1;
  std::int32_t job = -1;
  obs::TaskKind kind = obs::TaskKind::kMap;
  std::int32_t index = -1;
};

/// One reconstructed run.
struct RunRecord {
  obs::EventLogHeader header;
  std::vector<JobRun> jobs;  // ordered by job id
  /// Fault-lifecycle records in log order (empty for fault-free runs).
  std::vector<FaultRecord> faults;

  std::uint64_t dequeues = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t decisions_chosen[2] = {0, 0};  // [map, reduce]
  std::uint64_t decisions_idle[2] = {0, 0};
  /// Latest timestamp observed anywhere in the log.
  double makespan = 0.0;

  /// Folds a parsed event log into per-job histories. Tolerates truncated
  /// logs (jobs without completion events stay `completed == false`);
  /// throws std::runtime_error on task/job events for jobs that never
  /// arrived.
  static RunRecord FromLog(const obs::EventLog& log);

  /// ReadEventLogFile + FromLog.
  static RunRecord Load(const std::string& path);

  const JobRun* FindJob(std::int32_t id) const;
};

/// Successful attempts of every job as engine-style task records — the
/// bridge to core::ProgressSeries / core::ComputeUtilization.
std::vector<core::SimTaskRecord> ToSimTaskRecords(const RunRecord& record);

/// Peak concurrent tasks of `kind` across the given attempts (successful
/// ones only), by start/end sweep. Returns 0 for no tasks.
int PeakConcurrency(const std::vector<TaskExec>& tasks, obs::TaskKind kind);

}  // namespace simmr::analysis
