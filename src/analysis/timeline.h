// `simmr_analyze timeline`: consume a simmr.timeseries.v1 document (one
// header line plus one JSON object per closed sampling window, written by
// --timeseries-out) and render the run's time-resolved shape — per-window
// utilization, queue depth and running-task tables — plus a straggler
// summary: the windows whose task-duration p99 diverges from the median,
// the signature of a few tasks running far longer than their peers.
//
// The loader uses the analysis layer's recursive JSON reader, so it
// tolerates optional fields (percentiles appear only in windows that
// completed tasks; utilization only when the writer knew the slot
// configuration) and ignores fields it does not model (the "metrics"
// registry snapshot).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simmr::analysis {

/// One closed sampling window of a simmr.timeseries.v1 document.
struct TimelineWindow {
  std::int64_t index = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  bool partial = false;
  std::uint64_t events = 0;
  double queue_depth = 0.0;
  double queue_depth_max = 0.0;
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_active = 0;
  double running_maps = 0.0;
  double running_maps_max = 0.0;
  double running_reduces = 0.0;
  double running_reduces_max = 0.0;
  std::uint64_t maps_completed = 0;
  std::uint64_t reduces_completed = 0;
  std::uint64_t task_failures = 0;
  /// Present only when the writer knew the slot configuration.
  bool has_utilization = false;
  double map_utilization = 0.0;
  double reduce_utilization = 0.0;
  /// Present only in windows where tasks of the kind completed.
  bool has_map_durations = false;
  double map_p50 = 0.0, map_p95 = 0.0, map_p99 = 0.0;
  bool has_reduce_durations = false;
  double reduce_p50 = 0.0, reduce_p95 = 0.0, reduce_p99 = 0.0;
};

/// A parsed simmr.timeseries.v1 document: the header line's provenance
/// plus every window line in file order.
struct Timeline {
  std::string tool;
  std::string scenario;
  std::string simulator;
  double window_s = 0.0;
  std::vector<TimelineWindow> windows;
};

/// A window whose task-duration tail diverged from its median: p99 >=
/// factor * p50 with at least `min_completions` completions backing the
/// percentiles.
struct StragglerWindow {
  std::int64_t window = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  /// "map" or "reduce".
  std::string kind;
  std::uint64_t completed = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  /// p99 / p50 (p50 floored at a tiny epsilon so the ratio is finite).
  double ratio = 0.0;
};

struct TimelineOptions {
  /// Emit the machine-readable simmr.timeline.v1 document instead of the
  /// fixed-width tables.
  bool json = false;
  /// A window is a straggler window when p99 >= factor * p50.
  double straggler_factor = 3.0;
  /// Percentiles from fewer completions than this are too noisy to call
  /// stragglers.
  std::uint64_t min_completions = 5;
};

/// Parses a simmr.timeseries.v1 file. Throws std::runtime_error on a
/// missing file, a bad schema tag, or a malformed line (named by number).
Timeline LoadTimeline(const std::string& path);

/// The straggler windows of a timeline under the options' thresholds, in
/// window order (map windows before reduce windows at the same index).
std::vector<StragglerWindow> FindStragglerWindows(
    const Timeline& timeline, const TimelineOptions& opt);

/// Renders the per-window tables and straggler summary (text), or one
/// simmr.timeline.v1 JSON document.
std::string RenderTimeline(const Timeline& timeline,
                           const TimelineOptions& opt);

}  // namespace simmr::analysis
