#include "analysis/availability.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace simmr::analysis {
namespace {

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

AvailabilityReport BuildAvailabilityReport(const RunRecord& run,
                                           const RunRecord* baseline) {
  AvailabilityReport report;
  report.makespan = run.makespan;

  // Per-node downtime from the LOST/RESTORED alternation, in log order.
  // The invariant observer enforces strict alternation, so an open window
  // at the end of the log means the node stayed down: charge it through
  // the makespan.
  std::map<std::int32_t, NodeDowntime> nodes;
  std::map<std::int32_t, double> down_since;
  for (const FaultRecord& fault : run.faults) {
    if (fault.fault == "NODE_LOST") {
      ++report.node_losses;
      if (fault.node >= 0) {
        NodeDowntime& entry = nodes[fault.node];
        entry.node = fault.node;
        ++entry.losses;
        down_since[fault.node] = fault.t;
      }
    } else if (fault.fault == "NODE_RESTORED") {
      ++report.node_restores;
      const auto it = down_since.find(fault.node);
      if (it != down_since.end()) {
        nodes[fault.node].down_seconds += fault.t - it->second;
        down_since.erase(it);
      }
    } else if (fault.fault == "ATTEMPT_KILLED") {
      ++report.attempt_kills;
    } else if (fault.fault == "TASK_REEXECUTED") {
      ++report.task_reexecutions;
    }
  }
  for (const auto& [node, since] : down_since)
    nodes[node].down_seconds += run.makespan - since;
  for (auto& [node, entry] : nodes) report.nodes.push_back(entry);

  // Re-execution records per job (attempt kills are counted from the
  // jobs' own attempt histories below, which also carry the timings).
  std::map<std::int32_t, std::uint64_t> reexecuted;
  for (const FaultRecord& fault : run.faults)
    if (fault.fault == "TASK_REEXECUTED" && fault.job >= 0)
      ++reexecuted[fault.job];

  for (const JobRun& job : run.jobs) {
    JobAvailability entry;
    entry.name = job.name;
    entry.id = job.id;
    entry.killed_maps = job.kills[0];
    entry.killed_reduces = job.kills[1];
    const auto it = reexecuted.find(job.id);
    entry.reexecuted_tasks = it != reexecuted.end() ? it->second : 0;
    for (const TaskExec& task : job.tasks)
      if (!task.succeeded)
        entry.wasted_seconds +=
            std::max(0.0, task.timing.end - task.timing.start);
    entry.completed = job.completed;
    entry.completion = job.completed ? job.CompletionTime() : 0.0;
    if (!job.completed) ++report.jobs_unfinished;

    if (baseline != nullptr) {
      const JobRun* other = baseline->FindJob(job.id);
      if (other != nullptr && other->completed && job.completed) {
        entry.has_baseline = true;
        entry.baseline_completion = other->CompletionTime();
        entry.penalty_seconds = entry.completion - entry.baseline_completion;
      }
    }
    report.total_wasted_seconds += entry.wasted_seconds;
    report.total_killed += entry.killed_maps + entry.killed_reduces;
    report.jobs.push_back(std::move(entry));
  }

  if (baseline != nullptr) {
    report.has_baseline = true;
    report.baseline_makespan = baseline->makespan;
    report.makespan_penalty = report.makespan - report.baseline_makespan;
  }
  return report;
}

std::string RenderAvailability(const AvailabilityReport& report,
                               const AnalyzeOptions& opt) {
  if (opt.json) {
    std::string out =
        "{\"schema\":\"simmr.analysis.v1\",\"kind\":\"availability\"";
    out += ",\"node_losses\":" + std::to_string(report.node_losses);
    out += ",\"node_restores\":" + std::to_string(report.node_restores);
    out += ",\"attempt_kills\":" + std::to_string(report.attempt_kills);
    out +=
        ",\"task_reexecutions\":" + std::to_string(report.task_reexecutions);
    out += ",\"makespan\":" + Num(report.makespan);
    out += ",\"jobs_unfinished\":" + std::to_string(report.jobs_unfinished);
    out += ",\"total_wasted_seconds\":" + Num(report.total_wasted_seconds);
    out += ",\"total_killed\":" + std::to_string(report.total_killed);
    if (report.has_baseline) {
      out += ",\"baseline_makespan\":" + Num(report.baseline_makespan);
      out += ",\"makespan_penalty\":" + Num(report.makespan_penalty);
    }
    out += ",\"nodes\":[";
    for (std::size_t i = 0; i < report.nodes.size(); ++i) {
      const NodeDowntime& node = report.nodes[i];
      if (i != 0) out += ',';
      out += "{\"node\":" + std::to_string(node.node);
      out += ",\"losses\":" + std::to_string(node.losses);
      out += ",\"down_seconds\":" + Num(node.down_seconds) + '}';
    }
    out += "],\"jobs\":[";
    bool first = true;
    for (const JobAvailability& job : report.jobs) {
      if (opt.job >= 0 && job.id != opt.job) continue;
      if (!first) out += ',';
      first = false;
      out += "{\"job\":" + std::to_string(job.id);
      out += ",\"name\":\"" + obs::JsonEscape(job.name) + "\"";
      out += ",\"killed_maps\":" + std::to_string(job.killed_maps);
      out += ",\"killed_reduces\":" + std::to_string(job.killed_reduces);
      out += ",\"reexecuted_tasks\":" + std::to_string(job.reexecuted_tasks);
      out += ",\"wasted_seconds\":" + Num(job.wasted_seconds);
      out += std::string(",\"completed\":") +
             (job.completed ? "true" : "false");
      if (job.completed) out += ",\"completion\":" + Num(job.completion);
      if (job.has_baseline) {
        out += ",\"baseline_completion\":" + Num(job.baseline_completion);
        out += ",\"penalty_seconds\":" + Num(job.penalty_seconds);
      }
      out += '}';
    }
    out += "]}";
    return out;
  }

  std::string out;
  Line(out,
       "availability: %llu node loss(es), %llu restore(s), %llu attempt "
       "kill(s), %llu re-execution(s)\n",
       static_cast<unsigned long long>(report.node_losses),
       static_cast<unsigned long long>(report.node_restores),
       static_cast<unsigned long long>(report.attempt_kills),
       static_cast<unsigned long long>(report.task_reexecutions));
  for (const NodeDowntime& node : report.nodes)
    Line(out, "  node %-4d down %8.1f s across %d loss(es)\n", node.node,
         node.down_seconds, node.losses);

  Line(out, "\n%-20s %6s %6s %6s %10s %12s", "job", "killsM", "killsR",
       "reexec", "wasted_s", "completion_s");
  if (report.has_baseline) Line(out, " %12s %9s", "baseline_s", "penalty");
  out += '\n';
  for (const JobAvailability& job : report.jobs) {
    if (opt.job >= 0 && job.id != opt.job) continue;
    std::string name = job.name.empty() ? "job#" + std::to_string(job.id)
                                        : job.name;
    Line(out, "%-20s %6llu %6llu %6llu %10.1f ", name.c_str(),
         static_cast<unsigned long long>(job.killed_maps),
         static_cast<unsigned long long>(job.killed_reduces),
         static_cast<unsigned long long>(job.reexecuted_tasks),
         job.wasted_seconds);
    if (job.completed) {
      Line(out, "%12.1f", job.completion);
    } else {
      Line(out, "%12s", "FAILED");
    }
    if (job.has_baseline)
      Line(out, " %12.1f %8.1f%%", job.baseline_completion,
           job.baseline_completion > 0.0
               ? 100.0 * job.penalty_seconds / job.baseline_completion
               : 0.0);
    out += '\n';
  }

  Line(out,
       "\ntotals: %llu killed attempt(s), %.1f attempt-seconds wasted, "
       "%llu job(s) unfinished\n",
       static_cast<unsigned long long>(report.total_killed),
       report.total_wasted_seconds,
       static_cast<unsigned long long>(report.jobs_unfinished));
  if (report.has_baseline) {
    Line(out, "makespan: %.1f s vs %.1f s fault-free (%+.1f s, %+.1f%%)\n",
         report.makespan, report.baseline_makespan, report.makespan_penalty,
         report.baseline_makespan > 0.0
             ? 100.0 * report.makespan_penalty / report.baseline_makespan
             : 0.0);
  } else {
    Line(out, "makespan: %.1f s (no baseline given)\n", report.makespan);
  }
  return out;
}

}  // namespace simmr::analysis
