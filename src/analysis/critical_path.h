// Critical-path extraction: which task chain bounded a job's completion.
//
// Starting from the task whose end equals the job's completion, walks
// backwards through the job's successful attempts: each step's predecessor
// is the latest-ending task that finished no later than the step started
// (in a slot-limited simulation that task is what freed the slot or
// produced the data the step waited on). Reduce attempts are split into
// their phase segments, including the filler patch point: a first-wave
// reduce contributes a `filler` segment (occupying a slot while the maps
// run), then the non-overlapping `first-shuffle` segment that the engine
// patches in at MAP_STAGE_DONE, then its `reduce` segment.
#pragma once

#include <string>
#include <vector>

#include "analysis/run_record.h"

namespace simmr::analysis {

/// One segment of the critical path, in chronological order.
struct CriticalStep {
  obs::TaskKind kind = obs::TaskKind::kMap;
  std::int32_t index = 0;
  /// "map" | "filler" | "first-shuffle" | "shuffle" | "reduce".
  const char* phase = "map";
  double start = 0.0;
  double end = 0.0;
  /// Idle gap between the enabling event (predecessor task end, or job
  /// arrival for the first step) and this segment's start: time spent
  /// waiting for a slot, not doing work.
  double wait_before = 0.0;

  double Duration() const { return end - start; }
};

struct CriticalPath {
  std::int32_t job = -1;
  std::string name;
  double arrival = 0.0;
  double completion = 0.0;

  std::vector<CriticalStep> steps;

  /// Decomposition of completion - arrival along the path.
  double work_seconds = 0.0;  // sum of segment durations
  double wait_seconds = 0.0;  // sum of wait_before gaps
  /// Phase label with the largest summed duration on the path — what
  /// bounded this job.
  const char* bounding_phase = "";
};

/// Extracts the critical path of a completed job. Jobs that never
/// completed (truncated log) or ran no successful tasks yield an empty
/// `steps` vector.
CriticalPath ExtractCriticalPath(const JobRun& job);

}  // namespace simmr::analysis
