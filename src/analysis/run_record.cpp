#include "analysis/run_record.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace simmr::analysis {
namespace {

std::size_t KindIndex(obs::TaskKind kind) {
  return kind == obs::TaskKind::kMap ? 0 : 1;
}

}  // namespace

std::size_t JobRun::SucceededCount(obs::TaskKind kind) const {
  std::size_t n = 0;
  for (const TaskExec& t : tasks) {
    if (t.kind == kind && t.succeeded) ++n;
  }
  return n;
}

RunRecord RunRecord::FromLog(const obs::EventLog& log) {
  RunRecord record;
  record.header = log.header;

  std::unordered_map<std::int32_t, std::size_t> slot_by_id;
  const auto job_of = [&](std::int32_t id,
                          const obs::LogEvent& ev) -> JobRun& {
    const auto it = slot_by_id.find(id);
    if (it == slot_by_id.end())
      throw std::runtime_error(
          "event log: " + std::string(obs::LogEventKindName(ev.kind)) +
          " for job " + std::to_string(id) + " before its arrival");
    return record.jobs[it->second];
  };

  for (const obs::LogEvent& ev : log.events) {
    record.makespan = std::max(record.makespan, ev.t);
    switch (ev.kind) {
      case obs::LogEvent::Kind::kDequeue:
        ++record.dequeues;
        record.peak_queue_depth =
            std::max(record.peak_queue_depth, ev.queue_depth);
        break;
      case obs::LogEvent::Kind::kJobArrival: {
        if (slot_by_id.count(ev.job) != 0)
          throw std::runtime_error("event log: duplicate arrival of job " +
                                   std::to_string(ev.job));
        slot_by_id.emplace(ev.job, record.jobs.size());
        JobRun job;
        job.id = ev.job;
        job.name = ev.name;
        job.arrival = ev.t;
        job.first_start = std::numeric_limits<double>::infinity();
        job.deadline = ev.deadline;
        record.jobs.push_back(std::move(job));
        break;
      }
      case obs::LogEvent::Kind::kJobCompletion: {
        JobRun& job = job_of(ev.job, ev);
        job.completion = ev.t;
        job.completed = true;
        break;
      }
      case obs::LogEvent::Kind::kTaskLaunch:
        ++job_of(ev.job, ev).launches[KindIndex(ev.task_kind)];
        break;
      case obs::LogEvent::Kind::kPhaseTransition:
        // Phase boundaries are carried in each attempt's TaskTiming at
        // completion; the live transition only confirms liveness.
        job_of(ev.job, ev);
        break;
      case obs::LogEvent::Kind::kTaskCompletion: {
        JobRun& job = job_of(ev.job, ev);
        TaskExec exec;
        exec.kind = ev.task_kind;
        exec.index = ev.index;
        exec.timing = ev.timing;
        exec.reported = ev.t;
        exec.succeeded = ev.succeeded;
        if (!ev.succeeded) {
          ++job.kills[KindIndex(ev.task_kind)];
        } else {
          if (ev.task_kind == obs::TaskKind::kMap)
            job.map_stage_end = std::max(job.map_stage_end, ev.timing.end);
          job.first_start = std::min(job.first_start, ev.timing.start);
        }
        job.tasks.push_back(exec);
        break;
      }
      case obs::LogEvent::Kind::kSchedulerDecision:
        ++(ev.job >= 0 ? record.decisions_chosen
                       : record.decisions_idle)[KindIndex(ev.task_kind)];
        break;
      case obs::LogEvent::Kind::kFault: {
        FaultRecord fault;
        fault.fault = ev.fault_name;
        fault.t = ev.t;
        fault.node = ev.node;
        fault.job = ev.job;
        fault.kind = ev.task_kind;
        fault.index = ev.index;
        record.faults.push_back(std::move(fault));
        break;
      }
    }
  }

  for (JobRun& job : record.jobs) {
    if (!std::isfinite(job.first_start)) job.first_start = job.arrival;
  }
  std::sort(record.jobs.begin(), record.jobs.end(),
            [](const JobRun& a, const JobRun& b) { return a.id < b.id; });
  return record;
}

RunRecord RunRecord::Load(const std::string& path) {
  return FromLog(obs::ReadEventLogFile(path));
}

const JobRun* RunRecord::FindJob(std::int32_t id) const {
  for (const JobRun& job : jobs) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

std::vector<core::SimTaskRecord> ToSimTaskRecords(const RunRecord& record) {
  std::vector<core::SimTaskRecord> out;
  for (const JobRun& job : record.jobs) {
    for (const TaskExec& t : job.tasks) {
      if (!t.succeeded) continue;
      core::SimTaskRecord rec;
      rec.job = job.id;
      rec.kind = t.kind == obs::TaskKind::kMap ? core::SimTaskKind::kMap
                                               : core::SimTaskKind::kReduce;
      rec.start = t.timing.start;
      rec.shuffle_end = t.timing.shuffle_end;
      rec.end = t.timing.end;
      out.push_back(rec);
    }
  }
  return out;
}

int PeakConcurrency(const std::vector<TaskExec>& tasks, obs::TaskKind kind) {
  std::vector<std::pair<double, int>> edges;
  for (const TaskExec& t : tasks) {
    if (t.kind != kind || !t.succeeded) continue;
    if (t.timing.end <= t.timing.start) continue;
    edges.emplace_back(t.timing.start, +1);
    edges.emplace_back(t.timing.end, -1);
  }
  std::sort(edges.begin(), edges.end());
  int depth = 0, peak = 0;
  for (const auto& [time, delta] : edges) {
    depth += delta;
    peak = std::max(peak, depth);
  }
  return peak;
}

}  // namespace simmr::analysis
