#include "analysis/json_value.h"

#include <cstdlib>
#include <stdexcept>

namespace simmr::analysis {
namespace {

// Nesting bound: benchsuite documents are 3 levels deep; 64 leaves head
// room for future schemas while keeping recursion off any hostile path.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting too deep");
    SkipWhitespace();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return JsonValue::MakeString(ParseString());
      case 't':
        if (!ConsumeLiteral("true")) Fail("bad literal");
        return JsonValue::MakeBool(true);
      case 'f':
        if (!ConsumeLiteral("false")) Fail("bad literal");
        return JsonValue::MakeBool(false);
      case 'n':
        if (!ConsumeLiteral("null")) Fail("bad literal");
        return JsonValue::MakeNull();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        Fail("unexpected character");
    }
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    JsonValue::Members members;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      members.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
    return JsonValue::MakeObject(std::move(members));
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    std::vector<JsonValue> elements;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(elements));
    }
    while (true) {
      elements.push_back(ParseValue(depth + 1));
      SkipWhitespace();
      const char c = Peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
    return JsonValue::MakeArray(std::move(elements));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) Fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = Peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': AppendUtf8(ParseHex4(), out); break;
        default: Fail("bad escape sequence");
      }
    }
  }

  unsigned ParseHex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else Fail("bad \\u escape");
    }
    return value;
  }

  // Encodes one BMP code point (surrogate pairs are rejoined if present).
  void AppendUtf8(unsigned cp, std::string& out) {
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow as \uXXXX.
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = ParseHex4();
        if (lo < 0xDC00 || lo > 0xDFFF) Fail("unpaired surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        Fail("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      Fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      Fail("bad number");
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void KindError(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not a ") + wanted);
}

}  // namespace

JsonValue JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) KindError("bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  if (kind_ != Kind::kNumber) KindError("number");
  return number_;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) KindError("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (kind_ != Kind::kArray) KindError("array");
  return array_;
}

const JsonValue::Members& JsonValue::AsObject() const {
  if (kind_ != Kind::kObject) KindError("object");
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->IsNumber() ? value->AsNumber() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->IsString() ? value->AsString()
                                               : std::move(fallback);
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(Members v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

}  // namespace simmr::analysis
