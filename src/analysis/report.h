// Renderers for the simmr_analyze subcommands.
//
// Each Render* function turns analysis results into either a fixed-width
// human-readable text report or a single machine-readable JSON document
// (schema "simmr.analysis.v1"). The renderers are pure string builders so
// tests can lock the output format without touching a filesystem.
#pragma once

#include <string>

#include "analysis/run_diff.h"
#include "analysis/run_record.h"

namespace simmr::analysis {

struct AnalyzeOptions {
  /// Slot counts for the utilization report. 0 = infer from the observed
  /// peak concurrency across the run (the log does not record the cluster
  /// configuration).
  int map_slots = 0;
  int reduce_slots = 0;
  /// Sampling step of the utilization timeline; 0 = makespan / 20.
  double step = 0.0;
  /// Emit JSON instead of the human-readable table.
  bool json = false;
  /// Restrict per-job sections to this job id (-1 = all jobs).
  std::int32_t job = -1;
};

/// `report`: run summary, per-job phase breakdown, deadline-miss
/// attribution.
std::string RenderReport(const RunRecord& record, const AnalyzeOptions& opt);

/// `critical-path`: per-job critical-path chains.
std::string RenderCriticalPath(const RunRecord& record,
                               const AnalyzeOptions& opt);

/// `utilization`: slot utilization and a phase-occupancy timeline.
std::string RenderUtilization(const RunRecord& record,
                              const AnalyzeOptions& opt);

/// `diff`: structural diff of two runs.
std::string RenderDiff(const RunDiff& diff, const AnalyzeOptions& opt);

}  // namespace simmr::analysis
