#include "analysis/result_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simmr::analysis {

ResultSummary Summarize(const backend::RunResult& result, int map_slots,
                        int reduce_slots) {
  ResultSummary summary;
  summary.jobs = result.jobs.size();
  summary.events_processed = result.events_processed;
  summary.makespan = result.makespan;
  summary.deadline_utility = backend::RelativeDeadlineExceeded(result.jobs);
  summary.missed_deadlines = backend::MissedDeadlineCount(result.jobs);
  for (const backend::JobOutcome& job : result.jobs) {
    const double completion = job.CompletionTime();
    summary.mean_completion_s += completion;
    summary.max_completion_s = std::max(summary.max_completion_s, completion);
  }
  if (!result.jobs.empty())
    summary.mean_completion_s /= static_cast<double>(result.jobs.size());
  if (!result.tasks.empty()) {
    summary.utilization = core::ComputeUtilization(
        result.tasks, map_slots, reduce_slots, result.makespan);
  }
  return summary;
}

void AccuracyStats::Add(double actual, double predicted) {
  if (actual == 0.0)
    throw std::invalid_argument("AccuracyStats: zero actual completion");
  errors_pct.push_back(100.0 * (predicted - actual) / actual);
}

double AccuracyStats::AvgAbsError() const {
  if (errors_pct.empty()) return 0.0;
  double total = 0.0;
  for (const double e : errors_pct) total += std::fabs(e);
  return total / static_cast<double>(errors_pct.size());
}

double AccuracyStats::MaxAbsError() const {
  double worst = 0.0;
  for (const double e : errors_pct) worst = std::max(worst, std::fabs(e));
  return worst;
}

}  // namespace simmr::analysis
