#include "analysis/perf_diff.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/json_value.h"
#include "obs/json.h"

namespace simmr::analysis {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Direction by name: throughput-style metrics count up, costs count down.
bool HigherIsBetter(const std::string& name) {
  return EndsWith(name, "_per_second");
}

void CheckFinite(const std::string& run_key, const std::string& metric,
                 double value) {
  if (!std::isfinite(value)) {
    throw std::runtime_error("perf-diff: non-finite value for metric '" +
                             metric + "' in run '" + run_key +
                             "' (NaN or inf cannot be gated)");
  }
}

MetricSample PointSample(const std::string& run_key, const std::string& metric,
                         double value) {
  CheckFinite(run_key, metric, value);
  MetricSample sample;
  sample.value = value;
  sample.ci_lo = value;
  sample.ci_hi = value;
  sample.higher_is_better = HigherIsBetter(metric);
  return sample;
}

void AddTelemetryMetric(BenchRun& run, const JsonValue& telemetry,
                        const char* field) {
  const JsonValue* value = telemetry.Find(field);
  if (value == nullptr || !value->IsNumber()) return;
  run.metrics.emplace_back(field,
                           PointSample(run.key, field, value->AsNumber()));
}

void AddStatsMetrics(BenchRun& run, const JsonValue& telemetry) {
  const JsonValue* stats = telemetry.Find("stats");
  if (stats == nullptr) return;
  if (!stats->IsObject()) {
    throw std::runtime_error("perf-diff: run '" + run.key +
                             "' has a non-object \"stats\" member");
  }
  for (const auto& [name, summary] : stats->AsObject()) {
    if (!summary.IsObject()) {
      throw std::runtime_error("perf-diff: stat '" + name + "' in run '" +
                               run.key + "' is not an object");
    }
    const JsonValue* median = summary.Find("median");
    if (median == nullptr || !median->IsNumber()) {
      throw std::runtime_error("perf-diff: stat '" + name + "' in run '" +
                               run.key + "' has no numeric median");
    }
    MetricSample sample;
    sample.value = median->AsNumber();
    // Degenerate (single-sample / zero-variance) intervals collapse to
    // the median, making the metric behave like a point value.
    sample.ci_lo = summary.NumberOr("ci95_lo", sample.value);
    sample.ci_hi = summary.NumberOr("ci95_hi", sample.value);
    sample.higher_is_better = HigherIsBetter(name);
    CheckFinite(run.key, name, sample.value);
    CheckFinite(run.key, name, sample.ci_lo);
    CheckFinite(run.key, name, sample.ci_hi);
    run.metrics.emplace_back(name, sample);
  }
}

std::string PercentString(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * fraction);
  return buf;
}

std::string ValueString(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

BenchSuite LoadBenchSuite(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("perf-diff: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue doc;
  try {
    doc = JsonValue::Parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
  if (!doc.IsObject()) {
    throw std::runtime_error(path + ": document is not a JSON object");
  }

  BenchSuite suite;
  const std::string schema = doc.StringOr("schema", "");
  if (schema == "simmr.benchsuite.v1") {
    suite.schema_version = 1;
  } else if (schema == "simmr.benchsuite.v2") {
    suite.schema_version = 2;
  } else {
    throw std::runtime_error(
        path + ": schema '" + schema +
        "' is not a bench suite (want simmr.benchsuite.v1 or .v2)");
  }
  suite.tag = doc.StringOr("tag", "");

  if (const JsonValue* host = doc.Find("host");
      host != nullptr && host->IsObject()) {
    for (const auto& [key, value] : host->AsObject()) {
      if (value.IsString()) {
        suite.host[key] = value.AsString();
      } else if (value.IsNumber()) {
        suite.host[key] = ValueString(value.AsNumber());
      }
    }
  }

  const JsonValue* runs = doc.Find("runs");
  if (runs == nullptr || !runs->IsArray()) {
    throw std::runtime_error(path + ": missing \"runs\" array");
  }
  for (const JsonValue& entry : runs->AsArray()) {
    if (!entry.IsObject()) {
      throw std::runtime_error(path + ": run entry is not an object");
    }
    BenchRun run;
    run.tool = entry.StringOr("tool", "");
    run.scenario = entry.StringOr("scenario", "");
    if (run.tool.empty() && run.scenario.empty()) {
      throw std::runtime_error(path +
                               ": run entry has neither tool nor scenario");
    }
    run.key = run.tool + "/" + run.scenario;
    AddTelemetryMetric(run, entry, "wall_seconds");
    AddTelemetryMetric(run, entry, "events_per_second");
    AddStatsMetrics(run, entry);
    suite.runs.push_back(std::move(run));
  }
  return suite;
}

PerfDiffResult DiffBenchSuites(const BenchSuite& baseline,
                               const BenchSuite& candidate,
                               const PerfDiffOptions& options) {
  PerfDiffResult result;

  if (baseline.schema_version == 1 || candidate.schema_version == 1) {
    result.notes.push_back(
        "v1 bench suite in use: no host fingerprint and typically no "
        "\"stats\" intervals; regenerate with bench/run_benches.sh for the "
        "noise-aware v2 comparison (see docs/FORMATS.md migration note)");
  }
  for (const char* key : {"cpu_model", "build_type"}) {
    const auto base_it = baseline.host.find(key);
    const auto cand_it = candidate.host.find(key);
    if (base_it != baseline.host.end() && cand_it != candidate.host.end() &&
        base_it->second != cand_it->second) {
      result.notes.push_back(std::string("host mismatch: ") + key + " '" +
                             base_it->second + "' vs '" + cand_it->second +
                             "' — deltas may reflect the machine, not the "
                             "code");
    }
  }

  std::map<std::string, const BenchRun*> candidate_by_key;
  for (const BenchRun& run : candidate.runs) {
    if (!candidate_by_key.emplace(run.key, &run).second) {
      result.errors.push_back("duplicate run '" + run.key +
                              "' in candidate suite");
    }
  }
  std::map<std::string, const BenchRun*> baseline_by_key;
  for (const BenchRun& run : baseline.runs) {
    if (!baseline_by_key.emplace(run.key, &run).second) {
      result.errors.push_back("duplicate run '" + run.key +
                              "' in baseline suite");
    }
  }

  for (const BenchRun& base_run : baseline.runs) {
    const auto it = candidate_by_key.find(base_run.key);
    if (it == candidate_by_key.end()) {
      result.errors.push_back("baseline run '" + base_run.key +
                              "' is missing from the candidate suite");
      continue;
    }
    const BenchRun& cand_run = *it->second;
    for (const auto& [metric, base_sample] : base_run.metrics) {
      const MetricSample* cand_sample = nullptr;
      for (const auto& [name, sample] : cand_run.metrics) {
        if (name == metric) {
          cand_sample = &sample;
          break;
        }
      }
      if (cand_sample == nullptr) {
        result.errors.push_back("metric '" + metric + "' of run '" +
                                base_run.key +
                                "' is missing from the candidate suite");
        continue;
      }
      if (base_sample.value == 0.0) {
        result.notes.push_back("skipping metric '" + metric + "' of run '" +
                               base_run.key +
                               "': baseline value is zero (relative delta "
                               "undefined)");
        continue;
      }

      MetricDelta delta;
      delta.run_key = base_run.key;
      delta.metric = metric;
      delta.baseline = base_sample;
      delta.candidate = *cand_sample;
      const double relative =
          (cand_sample->value - base_sample.value) / std::abs(base_sample.value);
      delta.delta_fraction =
          base_sample.higher_is_better ? -relative : relative;
      delta.ci_separated = cand_sample->ci_lo > base_sample.ci_hi ||
                           cand_sample->ci_hi < base_sample.ci_lo;
      delta.regression =
          delta.delta_fraction > options.threshold && delta.ci_separated;
      delta.improvement =
          delta.delta_fraction < -options.threshold && delta.ci_separated;
      result.regressions += delta.regression ? 1 : 0;
      result.improvements += delta.improvement ? 1 : 0;
      result.deltas.push_back(std::move(delta));
    }
  }

  for (const BenchRun& run : candidate.runs) {
    if (baseline_by_key.find(run.key) == baseline_by_key.end()) {
      result.notes.push_back("candidate run '" + run.key +
                             "' has no baseline (new bench?); not gated");
    }
  }
  return result;
}

std::string RenderPerfDiff(const PerfDiffResult& result,
                           const PerfDiffOptions& options) {
  if (options.json) {
    std::string out = "{\"schema\":\"simmr.perfdiff.v1\"";
    out += ",\"threshold\":" + obs::JsonNumber(options.threshold);
    out += ",\"regressions\":" + std::to_string(result.regressions);
    out += ",\"improvements\":" + std::to_string(result.improvements);
    out += ",\"errors\":[";
    for (std::size_t i = 0; i < result.errors.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + obs::JsonEscape(result.errors[i]) + "\"";
    }
    out += "],\"notes\":[";
    for (std::size_t i = 0; i < result.notes.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + obs::JsonEscape(result.notes[i]) + "\"";
    }
    out += "],\"deltas\":[";
    for (std::size_t i = 0; i < result.deltas.size(); ++i) {
      const MetricDelta& d = result.deltas[i];
      if (i != 0) out += ",";
      out += "{\"run\":\"" + obs::JsonEscape(d.run_key) + "\"";
      out += ",\"metric\":\"" + obs::JsonEscape(d.metric) + "\"";
      out += ",\"baseline\":" + obs::JsonNumber(d.baseline.value);
      out += ",\"candidate\":" + obs::JsonNumber(d.candidate.value);
      out += ",\"delta_fraction\":" + obs::JsonNumber(d.delta_fraction);
      out += std::string(",\"ci_separated\":") +
             (d.ci_separated ? "true" : "false");
      out += std::string(",\"regression\":") +
             (d.regression ? "true" : "false");
      out += std::string(",\"improvement\":") +
             (d.improvement ? "true" : "false");
      out += "}";
    }
    out += "]}";
    return out;
  }

  std::string out;
  out += "perf-diff (threshold " + PercentString(options.threshold).substr(1) +
         ", regression = delta beyond threshold with disjoint 95% CIs)\n";
  for (const std::string& error : result.errors) {
    out += "error: " + error + "\n";
  }
  for (const std::string& note : result.notes) {
    out += "note: " + note + "\n";
  }

  std::string current_run;
  for (const MetricDelta& d : result.deltas) {
    if (d.run_key != current_run) {
      current_run = d.run_key;
      out += "\n" + current_run + "\n";
    }
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-32s base %-12s cand %-12s %8s", d.metric.c_str(),
                  ValueString(d.baseline.value).c_str(),
                  ValueString(d.candidate.value).c_str(),
                  PercentString(d.delta_fraction).c_str());
    out += line;
    if (d.regression) {
      out += "  REGRESSION";
    } else if (d.improvement) {
      out += "  improvement";
    } else if (!d.ci_separated && d.baseline.value != d.candidate.value) {
      out += "  (within noise)";
    }
    out += "\n";
  }

  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "\nsummary: %zu metrics compared, %d regressions, "
                "%d improvements, %zu errors\n",
                result.deltas.size(), result.regressions, result.improvements,
                result.errors.size());
  out += summary;
  return out;
}

int PerfDiffExitCode(const PerfDiffResult& result) {
  if (!result.errors.empty()) return 1;
  if (result.regressions > 0) return 4;
  return 0;
}

}  // namespace simmr::analysis
