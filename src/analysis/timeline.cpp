#include "analysis/timeline.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "analysis/json_value.h"
#include "obs/json.h"

namespace simmr::analysis {
namespace {

using obs::JsonEscape;
using obs::JsonNumber;

std::string Fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

std::uint64_t CountOr(const JsonValue& obj, std::string_view key) {
  const double v = obj.NumberOr(key, 0.0);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

TimelineWindow ParseWindow(const JsonValue& obj) {
  TimelineWindow w;
  w.index = static_cast<std::int64_t>(obj.NumberOr("window", 0.0));
  w.t0 = obj.NumberOr("t0", 0.0);
  w.t1 = obj.NumberOr("t1", 0.0);
  if (const JsonValue* partial = obj.Find("partial"))
    w.partial = partial->IsBool() && partial->AsBool();
  w.events = CountOr(obj, "events");
  w.queue_depth = obj.NumberOr("queue_depth", 0.0);
  w.queue_depth_max = obj.NumberOr("queue_depth_max", 0.0);
  w.jobs_arrived = CountOr(obj, "jobs_arrived");
  w.jobs_completed = CountOr(obj, "jobs_completed");
  w.jobs_active = CountOr(obj, "jobs_active");
  w.running_maps = obj.NumberOr("running_maps", 0.0);
  w.running_maps_max = obj.NumberOr("running_maps_max", 0.0);
  w.running_reduces = obj.NumberOr("running_reduces", 0.0);
  w.running_reduces_max = obj.NumberOr("running_reduces_max", 0.0);
  w.maps_completed = CountOr(obj, "maps_completed");
  w.reduces_completed = CountOr(obj, "reduces_completed");
  w.task_failures = CountOr(obj, "task_failures");
  if (obj.Find("map_utilization") != nullptr ||
      obj.Find("reduce_utilization") != nullptr) {
    w.has_utilization = true;
    w.map_utilization = obj.NumberOr("map_utilization", 0.0);
    w.reduce_utilization = obj.NumberOr("reduce_utilization", 0.0);
  }
  if (obj.Find("map_duration_p50") != nullptr) {
    w.has_map_durations = true;
    w.map_p50 = obj.NumberOr("map_duration_p50", 0.0);
    w.map_p95 = obj.NumberOr("map_duration_p95", 0.0);
    w.map_p99 = obj.NumberOr("map_duration_p99", 0.0);
  }
  if (obj.Find("reduce_duration_p50") != nullptr) {
    w.has_reduce_durations = true;
    w.reduce_p50 = obj.NumberOr("reduce_duration_p50", 0.0);
    w.reduce_p95 = obj.NumberOr("reduce_duration_p95", 0.0);
    w.reduce_p99 = obj.NumberOr("reduce_duration_p99", 0.0);
  }
  return w;
}

/// Appends one kind's straggler check for a window.
void CheckStraggler(const TimelineWindow& w, const char* kind, bool present,
                    double p50, double p99, std::uint64_t completed,
                    const TimelineOptions& opt,
                    std::vector<StragglerWindow>& out) {
  if (!present || completed < opt.min_completions) return;
  const double floor_p50 = std::max(p50, 1e-9);
  const double ratio = p99 / floor_p50;
  if (p99 < opt.straggler_factor * floor_p50) return;
  StragglerWindow s;
  s.window = w.index;
  s.t0 = w.t0;
  s.t1 = w.t1;
  s.kind = kind;
  s.completed = completed;
  s.p50 = p50;
  s.p99 = p99;
  s.ratio = ratio;
  out.push_back(std::move(s));
}

std::string RenderJson(const Timeline& t, const TimelineOptions& opt) {
  const auto stragglers = FindStragglerWindows(t, opt);
  std::string out = "{\"schema\":\"simmr.timeline.v1\"";
  out += ",\"tool\":\"" + JsonEscape(t.tool) + "\"";
  out += ",\"scenario\":\"" + JsonEscape(t.scenario) + "\"";
  out += ",\"simulator\":\"" + JsonEscape(t.simulator) + "\"";
  out += ",\"window_s\":" + JsonNumber(t.window_s);
  out += ",\"windows\":[";
  for (std::size_t i = 0; i < t.windows.size(); ++i) {
    const TimelineWindow& w = t.windows[i];
    if (i != 0) out += ",";
    out += "{\"window\":" + JsonNumber(static_cast<double>(w.index));
    out += ",\"t0\":" + JsonNumber(w.t0);
    out += ",\"t1\":" + JsonNumber(w.t1);
    if (w.partial) out += ",\"partial\":true";
    out += ",\"events\":" + JsonNumber(static_cast<double>(w.events));
    out += ",\"queue_depth\":" + JsonNumber(w.queue_depth);
    out += ",\"queue_depth_max\":" + JsonNumber(w.queue_depth_max);
    out += ",\"jobs_active\":" + JsonNumber(static_cast<double>(w.jobs_active));
    out += ",\"running_maps\":" + JsonNumber(w.running_maps);
    out += ",\"running_reduces\":" + JsonNumber(w.running_reduces);
    out +=
        ",\"maps_completed\":" + JsonNumber(static_cast<double>(w.maps_completed));
    out += ",\"reduces_completed\":" +
           JsonNumber(static_cast<double>(w.reduces_completed));
    out += ",\"task_failures\":" +
           JsonNumber(static_cast<double>(w.task_failures));
    if (w.has_utilization) {
      out += ",\"map_utilization\":" + JsonNumber(w.map_utilization);
      out += ",\"reduce_utilization\":" + JsonNumber(w.reduce_utilization);
    }
    out += "}";
  }
  out += "],\"stragglers\":[";
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    const StragglerWindow& s = stragglers[i];
    if (i != 0) out += ",";
    out += "{\"window\":" + JsonNumber(static_cast<double>(s.window));
    out += ",\"t0\":" + JsonNumber(s.t0);
    out += ",\"t1\":" + JsonNumber(s.t1);
    out += ",\"kind\":\"" + JsonEscape(s.kind) + "\"";
    out += ",\"completed\":" + JsonNumber(static_cast<double>(s.completed));
    out += ",\"p50\":" + JsonNumber(s.p50);
    out += ",\"p99\":" + JsonNumber(s.p99);
    out += ",\"ratio\":" + JsonNumber(s.ratio);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string RenderText(const Timeline& t, const TimelineOptions& opt) {
  std::string out =
      Fmt("timeline: tool=%s simulator=%s window=%ss\n  scenario: %s\n\n",
          t.tool.c_str(), t.simulator.c_str(),
          JsonNumber(t.window_s).c_str(), t.scenario.c_str());
  out += Fmt("%-7s %10s %7s %11s %9s %9s %9s %9s %6s\n", "window", "t0_s",
             "events", "queue(max)", "jobs_act", "run_m", "run_r", "done_m/r",
             "util%");
  bool any_util = false;
  for (const TimelineWindow& w : t.windows) {
    std::string util = "-";
    if (w.has_utilization) {
      any_util = true;
      util = Fmt("%3.0f/%-3.0f", 100.0 * w.map_utilization,
                 100.0 * w.reduce_utilization);
    }
    const std::string queue =
        Fmt("%.0f(%.0f)", w.queue_depth, w.queue_depth_max);
    out += Fmt("%-7lld %10.1f %7llu %11s %9llu %9.1f %9.1f %4llu/%-4llu %6s%s\n",
               static_cast<long long>(w.index), w.t0,
               static_cast<unsigned long long>(w.events), queue.c_str(),
               static_cast<unsigned long long>(w.jobs_active), w.running_maps,
               w.running_reduces,
               static_cast<unsigned long long>(w.maps_completed),
               static_cast<unsigned long long>(w.reduces_completed),
               util.c_str(), w.partial ? "  (partial)" : "");
  }
  if (!any_util)
    out += "(no utilization columns: the writer did not know the slot "
           "configuration)\n";

  std::uint64_t failures = 0;
  for (const TimelineWindow& w : t.windows) failures += w.task_failures;
  if (failures > 0)
    out += Fmt("\ntask failures across the run: %llu\n",
               static_cast<unsigned long long>(failures));

  const auto stragglers = FindStragglerWindows(t, opt);
  out += Fmt("\nstraggler windows (p99 >= %s x p50, >= %llu completions):\n",
             JsonNumber(opt.straggler_factor).c_str(),
             static_cast<unsigned long long>(opt.min_completions));
  if (stragglers.empty()) {
    out += "  none — task durations stayed close to the median in every "
           "window\n";
  } else {
    out += Fmt("  %-7s %-7s %12s %10s %10s %7s %6s\n", "window", "kind",
               "t0_s", "p50_s", "p99_s", "ratio", "tasks");
    for (const StragglerWindow& s : stragglers) {
      out += Fmt("  %-7lld %-7s %12.1f %10.2f %10.2f %6.1fx %6llu\n",
                 static_cast<long long>(s.window), s.kind.c_str(), s.t0,
                 s.p50, s.p99, s.ratio,
                 static_cast<unsigned long long>(s.completed));
    }
  }
  return out;
}

}  // namespace

Timeline LoadTimeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  Timeline t;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue obj;
    try {
      obj = JsonValue::Parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
    if (!saw_header) {
      const std::string schema = obj.StringOr("schema", "");
      if (schema != "simmr.timeseries.v1") {
        throw std::runtime_error(
            path + ":" + std::to_string(line_no) +
            ": expected a simmr.timeseries.v1 header, got schema '" + schema +
            "'");
      }
      t.tool = obj.StringOr("tool", "");
      t.scenario = obj.StringOr("scenario", "");
      t.simulator = obj.StringOr("simulator", "");
      t.window_s = obj.NumberOr("window_s", 0.0);
      saw_header = true;
      continue;
    }
    t.windows.push_back(ParseWindow(obj));
  }
  if (!saw_header)
    throw std::runtime_error(path + ": empty document (no header line)");
  return t;
}

std::vector<StragglerWindow> FindStragglerWindows(const Timeline& timeline,
                                                  const TimelineOptions& opt) {
  std::vector<StragglerWindow> out;
  for (const TimelineWindow& w : timeline.windows) {
    CheckStraggler(w, "map", w.has_map_durations, w.map_p50, w.map_p99,
                   w.maps_completed, opt, out);
    CheckStraggler(w, "reduce", w.has_reduce_durations, w.reduce_p50,
                   w.reduce_p99, w.reduces_completed, opt, out);
  }
  return out;
}

std::string RenderTimeline(const Timeline& timeline,
                           const TimelineOptions& opt) {
  return opt.json ? RenderJson(timeline, opt) : RenderText(timeline, opt);
}

}  // namespace simmr::analysis
