#include "analysis/critical_path.h"

#include <algorithm>
#include <map>

namespace simmr::analysis {
namespace {

constexpr double kEps = 1e-9;

/// Splits one attempt into path segments, earliest first.
void AppendSegments(const JobRun& job, const TaskExec& t,
                    std::vector<CriticalStep>& out) {
  if (t.kind == obs::TaskKind::kMap) {
    out.push_back({t.kind, t.index, "map", t.timing.start, t.timing.end, 0.0});
    return;
  }
  const bool first_wave = t.timing.start + kEps < job.map_stage_end;
  if (first_wave) {
    // The slot is held from launch, but until MAP_STAGE_DONE the shuffle
    // only overlaps the map stage; the patched-in tail is the task's own
    // critical contribution.
    const double patch_point = std::min(job.map_stage_end, t.timing.shuffle_end);
    out.push_back(
        {t.kind, t.index, "filler", t.timing.start, patch_point, 0.0});
    if (t.timing.shuffle_end > patch_point + kEps)
      out.push_back({t.kind, t.index, "first-shuffle", patch_point,
                     t.timing.shuffle_end, 0.0});
  } else if (t.timing.shuffle_end > t.timing.start + kEps) {
    out.push_back({t.kind, t.index, "shuffle", t.timing.start,
                   t.timing.shuffle_end, 0.0});
  }
  if (t.timing.end > t.timing.shuffle_end + kEps ||
      out.empty())  // degenerate zero-length reduce still gets one segment
    out.push_back({t.kind, t.index, "reduce", t.timing.shuffle_end,
                   t.timing.end, 0.0});
}

}  // namespace

CriticalPath ExtractCriticalPath(const JobRun& job) {
  CriticalPath path;
  path.job = job.id;
  path.name = job.name;
  path.arrival = job.arrival;
  path.completion = job.completion;
  if (!job.completed) return path;

  std::vector<const TaskExec*> done;
  for (const TaskExec& t : job.tasks) {
    if (t.succeeded) done.push_back(&t);
  }
  if (done.empty()) return path;

  // Terminal task: the one whose end bounds the completion (latest end;
  // ties broken toward reduces, then higher index, for determinism).
  const auto better_terminal = [](const TaskExec* a, const TaskExec* b) {
    if (a->timing.end != b->timing.end) return a->timing.end > b->timing.end;
    const bool a_reduce = a->kind == obs::TaskKind::kReduce;
    const bool b_reduce = b->kind == obs::TaskKind::kReduce;
    if (a_reduce != b_reduce) return a_reduce;
    return a->index > b->index;
  };
  const TaskExec* terminal = done.front();
  for (const TaskExec* t : done) {
    if (better_terminal(t, terminal)) terminal = t;
  }

  // Walk back: predecessor = latest-ending task finishing <= current start.
  std::vector<const TaskExec*> chain{terminal};
  const TaskExec* current = terminal;
  while (current->timing.start > job.arrival + kEps) {
    const TaskExec* pred = nullptr;
    for (const TaskExec* t : done) {
      if (t == current) continue;
      if (t->timing.end > current->timing.start + kEps) continue;
      if (pred == nullptr || t->timing.end > pred->timing.end) pred = t;
    }
    if (pred == nullptr) break;
    chain.push_back(pred);
    current = pred;
  }
  std::reverse(chain.begin(), chain.end());

  double enabled_at = job.arrival;
  for (const TaskExec* t : chain) {
    std::vector<CriticalStep> segments;
    AppendSegments(job, *t, segments);
    segments.front().wait_before =
        std::max(0.0, segments.front().start - enabled_at);
    for (CriticalStep& step : segments) path.steps.push_back(step);
    enabled_at = t->timing.end;
  }

  std::map<std::string, double> per_phase;
  for (const CriticalStep& step : path.steps) {
    path.work_seconds += step.Duration();
    path.wait_seconds += step.wait_before;
    per_phase[step.phase] += step.Duration();
  }
  double best = -1.0;
  for (const CriticalStep& step : path.steps) {
    const double total = per_phase[step.phase];
    if (total > best) {
      best = total;
      path.bounding_phase = step.phase;
    }
  }
  return path;
}

}  // namespace simmr::analysis
