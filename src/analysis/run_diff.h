// Structural diff of two run records.
//
// Aligns two runs job-by-job (by job name and occurrence, falling back to
// ids when names are absent), finds the first point where the executions
// diverge, and attributes each aligned job's completion-time delta to a
// phase via per-attempt averages — the instrument behind the paper's
// SimMR-vs-Mumak comparison, where the whole 37% error is a missing
// shuffle model (Section IV).
#pragma once

#include <string>
#include <vector>

#include "analysis/run_record.h"

namespace simmr::analysis {

/// One aligned job pair. Deltas are b - a; completion deltas are relative
/// completion times so runs with different arrival processes compare.
struct JobDelta {
  std::string name;
  std::int32_t job_a = -1;
  std::int32_t job_b = -1;
  double completion_a = 0.0;  // CompletionTime() in run a
  double completion_b = 0.0;
  double completion_delta = 0.0;

  /// Per-attempt phase averages (seconds) and their deltas.
  double map_avg_a = 0.0, map_avg_b = 0.0;
  double shuffle_avg_a = 0.0, shuffle_avg_b = 0.0;
  double reduce_avg_a = 0.0, reduce_avg_b = 0.0;
  double map_delta = 0.0, shuffle_delta = 0.0, reduce_delta = 0.0;

  /// "map" | "shuffle" | "reduce" | "none": the phase with the largest
  /// absolute per-attempt delta ("none" when all three are ~zero).
  const char* dominant_phase = "none";
};

struct RunDiff {
  bool identical = false;
  /// Human-readable description of the earliest difference; empty when
  /// identical.
  std::string first_divergence;
  /// Simulation time of that difference.
  double first_divergence_time = 0.0;

  std::vector<JobDelta> jobs;         // aligned pairs, run-a job order
  std::vector<std::string> only_in_a; // job names without a partner
  std::vector<std::string> only_in_b;

  double max_abs_completion_delta = 0.0;
  double mean_abs_completion_delta = 0.0;
};

/// Diffs two reconstructed runs. Two runs are `identical` when they have
/// the same job set and every aligned job has identical arrival, deadline,
/// completion and task attempts (bit-exact times).
RunDiff DiffRuns(const RunRecord& a, const RunRecord& b);

}  // namespace simmr::analysis
