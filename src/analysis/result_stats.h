// Summary statistics over unified RunResults.
//
// The analysis layer's entry point for in-process results (as opposed to
// run_record.h, which folds durable event logs): whatever simulator
// produced a backend::RunResult, Summarize() reduces it to the metrics the
// tools print — completion statistics, the Section V-A deadline utility,
// slot utilization — and AccuracyStats accumulates the paper's Figure 5
// per-job percent-error comparison between a simulator and ground truth.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "backend/run_result.h"
#include "core/metrics.h"

namespace simmr::analysis {

/// One RunResult reduced to reportable numbers.
struct ResultSummary {
  std::size_t jobs = 0;
  std::uint64_t events_processed = 0;
  double makespan = 0.0;
  double deadline_utility = 0.0;  // sum of relative overruns; 0 = all met
  int missed_deadlines = 0;
  double mean_completion_s = 0.0;
  double max_completion_s = 0.0;
  /// Zeroed when the result carries no task records.
  core::UtilizationReport utilization;
};

/// Reduces `result` against the cluster size it ran on (slot counts are
/// needed for utilization; pass the run's configuration).
ResultSummary Summarize(const backend::RunResult& result, int map_slots,
                        int reduce_slots);

/// Per-job percent error of one simulator against ground truth, Figure 5
/// style: err% = 100 * (predicted - actual) / actual.
struct AccuracyStats {
  std::vector<double> errors_pct;  // signed, one per job, insertion order

  void Add(double actual, double predicted);
  double AvgAbsError() const;
  double MaxAbsError() const;
};

}  // namespace simmr::analysis
