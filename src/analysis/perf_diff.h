// Noise-aware comparison of two bench-suite documents (the perf gate).
//
// A bench suite (simmr.benchsuite.v1 or v2, written by
// bench/run_benches.sh) is a set of runs, each a simmr.telemetry.v1
// object optionally carrying a "stats" object of median/MAD/bootstrap-CI
// summaries. perf-diff aligns the two suites by run identity
// (tool/scenario), extracts comparable metrics from each aligned pair and
// decides, per metric, whether the candidate regressed:
//
//   regression :=  direction-adjusted relative delta > threshold
//               AND the 95% confidence intervals do not overlap.
//
// Metrics without intervals (plain telemetry fields, or "stats" entries
// from a single sample) are treated as zero-width intervals at the point
// value, so a large delta on a point metric still trips the gate while a
// large-but-noisy delta on a measured distribution does not. Direction is
// inferred from the metric name: *_per_second counts up (higher is
// better), everything else is a cost (lower is better).
//
// Baseline runs missing from the candidate are hard errors — a gate that
// silently ignores a vanished bench is not a gate. Extra candidate runs,
// v1 inputs and host-fingerprint mismatches are notes: worth reading,
// not worth failing the build over.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace simmr::analysis {

/// One comparable measurement: a point estimate plus its 95% interval
/// (lo == hi == value for metrics without measured spread).
struct MetricSample {
  double value = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  bool higher_is_better = false;
};

/// One bench run: a telemetry line keyed by "tool/scenario".
struct BenchRun {
  std::string key;       // tool + "/" + scenario
  std::string tool;
  std::string scenario;
  // Insertion-ordered so reports list metrics the way the document did.
  std::vector<std::pair<std::string, MetricSample>> metrics;
};

/// A parsed simmr.benchsuite.v1/v2 document.
struct BenchSuite {
  int schema_version = 0;  // 1 or 2
  std::string tag;
  std::map<std::string, std::string> host;  // empty for v1 documents
  std::vector<BenchRun> runs;
};

/// Loads and validates a bench-suite JSON file.
/// Throws std::runtime_error on I/O failure, malformed JSON, an unknown
/// schema, or a non-finite (NaN/inf) metric value.
BenchSuite LoadBenchSuite(const std::string& path);

struct PerfDiffOptions {
  double threshold = 0.10;  // direction-adjusted relative delta to flag
  bool json = false;
};

/// One metric compared across the two suites. delta_fraction is
/// direction-adjusted: positive means the candidate is worse.
struct MetricDelta {
  std::string run_key;
  std::string metric;
  MetricSample baseline;
  MetricSample candidate;
  double delta_fraction = 0.0;
  bool ci_separated = false;
  bool regression = false;
  bool improvement = false;
};

struct PerfDiffResult {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> notes;   // informational (migration, host skew)
  std::vector<std::string> errors;  // structural problems; gate must fail
  int regressions = 0;
  int improvements = 0;
};

PerfDiffResult DiffBenchSuites(const BenchSuite& baseline,
                               const BenchSuite& candidate,
                               const PerfDiffOptions& options);

/// Human report, or a one-line JSON document when options.json is set.
std::string RenderPerfDiff(const PerfDiffResult& result,
                           const PerfDiffOptions& options);

/// Tool exit code for a diff result: 1 on structural errors, 4 when any
/// metric regressed, 0 otherwise.
int PerfDiffExitCode(const PerfDiffResult& result);

}  // namespace simmr::analysis
