#include "analysis/sweep_diff.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/json_value.h"
#include "obs/json.h"

namespace simmr::analysis {
namespace {

double RequireNumber(const JsonValue& cell, const char* key,
                     const std::string& path) {
  const JsonValue* value = cell.Find(key);
  if (value == nullptr || !value->IsNumber())
    throw std::runtime_error(path + ": sweep cell missing numeric '" +
                             key + "'");
  const double number = value->AsNumber();
  if (std::isnan(number))
    throw std::runtime_error(path + ": sweep cell '" + std::string(key) +
                             "' is NaN");
  return number;
}

std::string RequireString(const JsonValue& cell, const char* key,
                          const std::string& path) {
  const JsonValue* value = cell.Find(key);
  if (value == nullptr || !value->IsString())
    throw std::runtime_error(path + ": sweep cell missing string '" + key +
                             "'");
  return value->AsString();
}

/// Relative disagreement between two values; exact zero when both agree
/// bit-for-bit (including both zero).
double RelDelta(double a, double b) {
  if (a == b) return 0.0;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) / scale;
}

}  // namespace

std::string SweepCell::Key() const {
  std::ostringstream key;
  key << policy << "/" << slots << "/scale=" << arrival_scale;
  return key.str();
}

SweepDoc LoadSweepDoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open sweep document " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::Parse(buffer.str());

  const std::string version = doc.StringOr("format_version", "");
  if (version != "simmr.sweep.v1")
    throw std::runtime_error(path + ": not a simmr.sweep.v1 document (got '" +
                             version + "')");
  const JsonValue* cells = doc.Find("cells");
  if (cells == nullptr || !cells->IsArray() || cells->AsArray().empty())
    throw std::runtime_error(path + ": sweep document has no cells");

  SweepDoc result;
  result.path = path;
  for (const JsonValue& cell : cells->AsArray()) {
    SweepCell parsed;
    parsed.policy = RequireString(cell, "policy", path);
    parsed.slots = RequireString(cell, "slots", path);
    parsed.arrival_scale = RequireNumber(cell, "arrival_scale", path);
    parsed.replicates =
        static_cast<int>(RequireNumber(cell, "replicates", path));
    parsed.mean_makespan_s = RequireNumber(cell, "mean_makespan_s", path);
    parsed.mean_completion_s = RequireNumber(cell, "mean_completion_s", path);
    parsed.mean_deadline_utility =
        RequireNumber(cell, "mean_deadline_utility", path);
    parsed.mean_missed_deadlines =
        RequireNumber(cell, "mean_missed_deadlines", path);
    result.cells.push_back(std::move(parsed));
  }
  return result;
}

SweepDiffResult DiffSweepDocs(const SweepDoc& baseline,
                              const SweepDoc& candidate,
                              const SweepDiffOptions& options) {
  SweepDiffResult result;
  std::map<std::string, const SweepCell*> candidate_cells;
  for (const SweepCell& cell : candidate.cells)
    candidate_cells[cell.Key()] = &cell;

  std::map<std::string, bool> matched;
  for (const SweepCell& base : baseline.cells) {
    const std::string key = base.Key();
    const auto it = candidate_cells.find(key);
    if (it == candidate_cells.end()) {
      result.missing_in_candidate.push_back(key);
      continue;
    }
    matched[key] = true;
    const SweepCell& cand = *it->second;
    ++result.cells_compared;

    const struct {
      const char* name;
      double baseline;
      double candidate;
    } metrics[] = {
        {"mean_makespan_s", base.mean_makespan_s, cand.mean_makespan_s},
        {"mean_completion_s", base.mean_completion_s, cand.mean_completion_s},
        {"mean_deadline_utility", base.mean_deadline_utility,
         cand.mean_deadline_utility},
        {"mean_missed_deadlines", base.mean_missed_deadlines,
         cand.mean_missed_deadlines},
    };
    for (const auto& metric : metrics) {
      const double delta = RelDelta(metric.baseline, metric.candidate);
      if (delta <= options.threshold) continue;
      SweepDrift drift;
      drift.cell = key;
      drift.metric = metric.name;
      drift.baseline = metric.baseline;
      drift.candidate = metric.candidate;
      drift.rel_delta = delta;
      result.drifts.push_back(std::move(drift));
    }
  }
  for (const SweepCell& cell : candidate.cells)
    if (matched.find(cell.Key()) == matched.end())
      result.missing_in_baseline.push_back(cell.Key());
  return result;
}

std::string RenderSweepDiff(const SweepDiffResult& result,
                            const SweepDiffOptions& options) {
  if (options.json) {
    std::string out;
    out += "{\"format_version\": \"simmr.sweepdiff.v1\"";
    out += ", \"cells_compared\": " + std::to_string(result.cells_compared);
    out += ", \"threshold\": " + obs::JsonNumber(options.threshold);
    out += ", \"drifts\": [";
    for (std::size_t i = 0; i < result.drifts.size(); ++i) {
      const SweepDrift& drift = result.drifts[i];
      if (i != 0) out += ", ";
      out += "{\"cell\": \"" + obs::JsonEscape(drift.cell) + "\"";
      out += ", \"metric\": \"" + obs::JsonEscape(drift.metric) + "\"";
      out += ", \"baseline\": " + obs::JsonNumber(drift.baseline);
      out += ", \"candidate\": " + obs::JsonNumber(drift.candidate);
      out += ", \"rel_delta\": " + obs::JsonNumber(drift.rel_delta) + "}";
    }
    out += "], \"missing_in_candidate\": [";
    for (std::size_t i = 0; i < result.missing_in_candidate.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + obs::JsonEscape(result.missing_in_candidate[i]) + "\"";
    }
    out += "], \"missing_in_baseline\": [";
    for (std::size_t i = 0; i < result.missing_in_baseline.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + obs::JsonEscape(result.missing_in_baseline[i]) + "\"";
    }
    out += "]}";
    return out;
  }

  std::ostringstream out;
  for (const std::string& key : result.missing_in_candidate)
    out << "sweep-diff: cell " << key << " missing from the candidate\n";
  for (const std::string& key : result.missing_in_baseline)
    out << "sweep-diff: cell " << key << " missing from the baseline\n";
  for (const SweepDrift& drift : result.drifts) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "sweep-diff: DRIFT %s %s: baseline %.6g candidate %.6g "
                  "(%.2f%%)\n",
                  drift.cell.c_str(), drift.metric.c_str(), drift.baseline,
                  drift.candidate, 100.0 * drift.rel_delta);
    out << line;
  }
  out << "sweep-diff: " << result.cells_compared << " cells compared, "
      << result.drifts.size() << " drifted";
  if (result.structural_error()) out << ", grids DIFFER";
  out << "\n";
  return out.str();
}

int SweepDiffExitCode(const SweepDiffResult& result) {
  if (result.structural_error()) return 1;
  return result.drifts.empty() ? 0 : 4;
}

}  // namespace simmr::analysis
