#include "analysis/deadline.h"

#include <algorithm>

#include "sched/aria_model.h"

namespace simmr::analysis {
namespace {

constexpr double kEps = 1e-9;

/// Observed per-phase statistics in the shape the ARIA model consumes.
sched::ProfileSummary ObservedSummary(const JobRun& job) {
  sched::ProfileSummary s;
  double first_sum = 0.0, typical_sum = 0.0;
  int first_n = 0, typical_n = 0;
  double reduce_sum = 0.0;
  for (const TaskExec& t : job.tasks) {
    if (!t.succeeded) continue;
    if (t.kind == obs::TaskKind::kMap) {
      ++s.num_maps;
      const double d = t.timing.end - t.timing.start;
      s.map_avg += d;  // sum for now, averaged below
      s.map_max = std::max(s.map_max, d);
      continue;
    }
    ++s.num_reduces;
    const double reduce = t.timing.end - t.timing.shuffle_end;
    reduce_sum += reduce;
    s.reduce_max = std::max(s.reduce_max, reduce);
    if (t.timing.start + kEps < job.map_stage_end) {
      const double d = std::max(0.0, t.timing.shuffle_end - job.map_stage_end);
      first_sum += d;
      ++first_n;
      s.first_shuffle_max = std::max(s.first_shuffle_max, d);
    } else {
      const double d = t.timing.shuffle_end - t.timing.start;
      typical_sum += d;
      ++typical_n;
      s.typical_shuffle_max = std::max(s.typical_shuffle_max, d);
    }
  }
  if (s.num_maps > 0) s.map_avg /= s.num_maps;
  if (first_n > 0) s.first_shuffle_avg = first_sum / first_n;
  if (typical_n > 0) s.typical_shuffle_avg = typical_sum / typical_n;
  if (s.num_reduces > 0) s.reduce_avg = reduce_sum / s.num_reduces;
  // Same fallback convention as the replay engine: an empty shuffle pool
  // borrows the other pool's statistics.
  if (first_n == 0) {
    s.first_shuffle_avg = s.typical_shuffle_avg;
    s.first_shuffle_max = s.typical_shuffle_max;
  }
  if (typical_n == 0) {
    s.typical_shuffle_avg = s.first_shuffle_avg;
    s.typical_shuffle_max = s.first_shuffle_max;
  }
  return s;
}

}  // namespace

DeadlineReport AttributeDeadlineMisses(const RunRecord& record) {
  DeadlineReport report;
  for (const JobRun& job : record.jobs) {
    if (job.deadline <= 0.0) continue;
    ++report.jobs_with_deadline;
    if (!job.MissedDeadline()) continue;
    ++report.missed;

    DeadlineMiss miss;
    miss.job = job.id;
    miss.name = job.name;
    miss.arrival = job.arrival;
    miss.deadline = job.deadline;
    miss.completion = job.completion;
    miss.gap = job.completion - job.deadline;
    miss.allowed = job.deadline - job.arrival;
    miss.scheduling_delay = std::max(0.0, job.first_start - job.arrival);
    miss.observed_map_slots = PeakConcurrency(job.tasks, obs::TaskKind::kMap);
    miss.observed_reduce_slots =
        PeakConcurrency(job.tasks, obs::TaskKind::kReduce);

    const sched::ProfileSummary summary = ObservedSummary(job);
    const int k_map = std::max(1, miss.observed_map_slots);
    const int k_reduce = std::max(1, miss.observed_reduce_slots);
    miss.lower_bound = sched::EstimateCompletion(sched::LowerBound(summary),
                                                 k_map, k_reduce);
    miss.upper_bound = sched::EstimateCompletion(sched::UpperBound(summary),
                                                 k_map, k_reduce);
    miss.infeasible = miss.lower_bound > miss.allowed;
    report.misses.push_back(std::move(miss));
  }
  return report;
}

}  // namespace simmr::analysis
