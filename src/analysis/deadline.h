// Deadline-miss attribution via the ARIA bounds (Verma et al., ICAC'11).
//
// For each job that missed its deadline, rebuilds a per-phase profile from
// the attempts the run actually executed and evaluates the ARIA makespan
// bounds at the parallelism the job actually got (observed peak busy
// slots k): lower = n*avg/k per phase, upper = (n-1)*avg/k + max. That
// separates the two causes of a miss:
//   - infeasible: even the lower bound exceeds the allowed time — no
//     schedule at that parallelism could have met the deadline (the job
//     needed more slots);
//   - contention/ordering: the lower bound fits, so the miss came from
//     scheduling delay, slot contention or unlucky task ordering.
#pragma once

#include <string>
#include <vector>

#include "analysis/run_record.h"

namespace simmr::analysis {

struct DeadlineMiss {
  std::int32_t job = -1;
  std::string name;
  double arrival = 0.0;
  double deadline = 0.0;    // absolute
  double completion = 0.0;  // absolute
  double gap = 0.0;         // completion - deadline, > 0

  double allowed = 0.0;     // deadline - arrival (relative budget)
  /// Delay before the job's first task started (slot wait at arrival).
  double scheduling_delay = 0.0;

  /// Parallelism the job actually achieved (peak busy slots).
  int observed_map_slots = 0;
  int observed_reduce_slots = 0;

  /// ARIA completion-time estimates (relative, seconds) at the observed
  /// parallelism.
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  /// True when lower_bound > allowed: the deadline was unreachable at the
  /// parallelism the job got.
  bool infeasible = false;
};

struct DeadlineReport {
  int jobs_with_deadline = 0;
  int missed = 0;
  std::vector<DeadlineMiss> misses;  // in job-id order
};

DeadlineReport AttributeDeadlineMisses(const RunRecord& record);

}  // namespace simmr::analysis
