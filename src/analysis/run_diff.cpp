#include "analysis/run_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "analysis/phases.h"

namespace simmr::analysis {
namespace {

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Alignment key: job name plus per-name occurrence (duplicate names are
/// common when a workload replays one profile many times), or the id for
/// nameless jobs.
std::vector<std::pair<std::string, const JobRun*>> AlignmentKeys(
    const RunRecord& record) {
  std::map<std::string, int> seen;
  std::vector<std::pair<std::string, const JobRun*>> keys;
  for (const JobRun& job : record.jobs) {
    std::string base = job.name;
    if (base.empty()) {
      base = "job#";
      base += std::to_string(job.id);
    }
    const int occurrence = seen[base]++;
    if (occurrence > 0) {
      base += '@';
      base += std::to_string(occurrence);
    }
    keys.emplace_back(std::move(base), &job);
  }
  return keys;
}

/// A candidate first-divergence point.
struct Divergence {
  double time = std::numeric_limits<double>::infinity();
  std::string what;
};

void Consider(Divergence& earliest, double time, std::string what) {
  if (time < earliest.time) {
    earliest.time = time;
    earliest.what = std::move(what);
  }
}

/// Tasks in a canonical order for structural comparison.
std::vector<const TaskExec*> CanonicalTasks(const JobRun& job) {
  std::vector<const TaskExec*> tasks;
  for (const TaskExec& t : job.tasks) tasks.push_back(&t);
  std::sort(tasks.begin(), tasks.end(),
            [](const TaskExec* x, const TaskExec* y) {
              if (x->kind != y->kind) return x->kind < y->kind;
              if (x->index != y->index) return x->index < y->index;
              return x->timing.start < y->timing.start;
            });
  return tasks;
}

void DiffJobPair(const std::string& key, const JobRun& ja, const JobRun& jb,
                 Divergence& earliest) {
  if (ja.arrival != jb.arrival)
    Consider(earliest, std::min(ja.arrival, jb.arrival),
             "job '" + key + "' arrival differs: a=" + Num(ja.arrival) +
                 " b=" + Num(jb.arrival));
  if (ja.deadline != jb.deadline)
    Consider(earliest, std::min(ja.arrival, jb.arrival),
             "job '" + key + "' deadline differs: a=" + Num(ja.deadline) +
                 " b=" + Num(jb.deadline));

  const auto ta = CanonicalTasks(ja);
  const auto tb = CanonicalTasks(jb);
  const std::size_t common = std::min(ta.size(), tb.size());
  for (std::size_t i = 0; i < common; ++i) {
    const TaskExec& x = *ta[i];
    const TaskExec& y = *tb[i];
    const std::string label = std::string("job '") + key + "' " +
                              obs::TaskKindName(x.kind) + "[" +
                              std::to_string(x.index) + "]";
    if (x.kind != y.kind || x.index != y.index) {
      Consider(earliest, std::min(x.timing.start, y.timing.start),
               "job '" + key + "' task sets differ: a has " +
                   obs::TaskKindName(x.kind) + "[" + std::to_string(x.index) +
                   "], b has " + obs::TaskKindName(y.kind) + "[" +
                   std::to_string(y.index) + "]");
      return;  // further positional comparison is meaningless
    }
    if (x.timing.start != y.timing.start) {
      Consider(earliest, std::min(x.timing.start, y.timing.start),
               label + " start differs: a=" + Num(x.timing.start) +
                   " b=" + Num(y.timing.start));
    } else if (x.timing.shuffle_end != y.timing.shuffle_end) {
      Consider(earliest, std::min(x.timing.shuffle_end, y.timing.shuffle_end),
               label + " shuffle_end differs: a=" + Num(x.timing.shuffle_end) +
                   " b=" + Num(y.timing.shuffle_end));
    } else if (x.timing.end != y.timing.end) {
      Consider(earliest, std::min(x.timing.end, y.timing.end),
               label + " end differs: a=" + Num(x.timing.end) +
                   " b=" + Num(y.timing.end));
    } else if (x.succeeded != y.succeeded) {
      Consider(earliest, x.timing.end,
               label + " outcome differs: a " +
                   (x.succeeded ? "succeeded" : "was killed") + ", b " +
                   (y.succeeded ? "succeeded" : "was killed"));
    }
  }
  if (ta.size() != tb.size()) {
    const auto& longer = ta.size() > tb.size() ? ta : tb;
    Consider(earliest, longer[common]->timing.start,
             "job '" + key + "' attempt counts differ: a=" +
                 std::to_string(ta.size()) + " b=" +
                 std::to_string(tb.size()));
  }
  if (ja.completed && jb.completed && ja.completion != jb.completion)
    Consider(earliest, std::min(ja.completion, jb.completion),
             "job '" + key + "' completion differs: a=" + Num(ja.completion) +
                 " b=" + Num(jb.completion));
  if (ja.completed != jb.completed)
    Consider(earliest, ja.completed ? ja.completion : jb.completion,
             "job '" + key + "' completed in only one run");
}

}  // namespace

RunDiff DiffRuns(const RunRecord& a, const RunRecord& b) {
  RunDiff diff;
  const auto keys_a = AlignmentKeys(a);
  const auto keys_b = AlignmentKeys(b);
  std::map<std::string, const JobRun*> index_b;
  for (const auto& [key, job] : keys_b) index_b.emplace(key, job);

  // Pass 1: align by name key. Pass 2: jobs the names left unmatched align
  // by id — different tools label the same job differently (app vs
  // app/dataset), and ids are stable within one comparison pipeline.
  std::vector<std::pair<std::string, std::pair<const JobRun*, const JobRun*>>>
      aligned;
  std::vector<std::pair<std::string, const JobRun*>> unmatched_a;
  for (const auto& [key, ja] : keys_a) {
    const auto it = index_b.find(key);
    if (it == index_b.end()) {
      unmatched_a.emplace_back(key, ja);
      continue;
    }
    aligned.push_back({key, {ja, it->second}});
    index_b.erase(it);
  }
  std::map<std::int32_t, const JobRun*> by_id_b;
  for (const auto& [key, jb] : index_b) by_id_b.emplace(jb->id, jb);

  Divergence earliest;
  double abs_delta_sum = 0.0;

  for (const auto& [key, ja] : unmatched_a) {
    const auto it = by_id_b.find(ja->id);
    if (it == by_id_b.end()) {
      diff.only_in_a.push_back(key);
      Consider(earliest, ja->arrival, "job '" + key + "' only in run a");
      continue;
    }
    aligned.push_back({key, {ja, it->second}});
    by_id_b.erase(it);
  }
  // Whatever neither pass matched is b-only.
  for (const auto& [key, jb] : index_b) {
    bool taken = false;
    for (const auto& [akey, pair] : aligned) taken |= pair.second == jb;
    if (taken) continue;
    diff.only_in_b.push_back(key);
    Consider(earliest, jb->arrival, "job '" + key + "' only in run b");
  }
  std::sort(aligned.begin(), aligned.end(),
            [](const auto& x, const auto& y) {
              return x.second.first->id < y.second.first->id;
            });

  for (const auto& [key, pair] : aligned) {
    const JobRun* ja = pair.first;
    const JobRun& jb = *pair.second;
    DiffJobPair(key, *ja, jb, earliest);

    JobDelta delta;
    delta.name = key;
    delta.job_a = ja->id;
    delta.job_b = jb.id;
    delta.completion_a = ja->CompletionTime();
    delta.completion_b = jb.CompletionTime();
    delta.completion_delta = delta.completion_b - delta.completion_a;

    const PhaseBreakdown pa = ComputePhaseBreakdown(*ja);
    const PhaseBreakdown pb = ComputePhaseBreakdown(jb);
    delta.map_avg_a = pa.map_avg;
    delta.map_avg_b = pb.map_avg;
    delta.shuffle_avg_a = pa.shuffle_avg;
    delta.shuffle_avg_b = pb.shuffle_avg;
    delta.reduce_avg_a = pa.reduce_avg;
    delta.reduce_avg_b = pb.reduce_avg;
    delta.map_delta = pb.map_avg - pa.map_avg;
    delta.shuffle_delta = pb.shuffle_avg - pa.shuffle_avg;
    delta.reduce_delta = pb.reduce_avg - pa.reduce_avg;
    const double m = std::fabs(delta.map_delta);
    const double s = std::fabs(delta.shuffle_delta);
    const double r = std::fabs(delta.reduce_delta);
    constexpr double kNoise = 1e-9;
    if (m < kNoise && s < kNoise && r < kNoise) {
      delta.dominant_phase = "none";
    } else if (s >= m && s >= r) {
      delta.dominant_phase = "shuffle";
    } else if (m >= r) {
      delta.dominant_phase = "map";
    } else {
      delta.dominant_phase = "reduce";
    }

    diff.max_abs_completion_delta = std::max(
        diff.max_abs_completion_delta, std::fabs(delta.completion_delta));
    abs_delta_sum += std::fabs(delta.completion_delta);
    diff.jobs.push_back(std::move(delta));
  }

  if (!diff.jobs.empty())
    diff.mean_abs_completion_delta =
        abs_delta_sum / static_cast<double>(diff.jobs.size());
  diff.identical = !std::isfinite(earliest.time) ? true : false;
  if (!diff.identical) {
    diff.first_divergence = earliest.what;
    diff.first_divergence_time = earliest.time;
  }
  return diff;
}

}  // namespace simmr::analysis
