// Behaviour-drift comparison of two simmr.sweep.v1 documents.
//
// perf_diff.h gates wall-clock performance; this gates *results*. A sweep
// document's cell aggregates are pure sim-time quantities — deterministic
// for a given trace database, grid and seed — so two sweeps of the same
// grid from the same inputs must agree cell-for-cell. CI runs the sweep
// twice (different thread counts) and diffs the documents: any drift
// means scheduling behaviour changed, either a real regression or an
// intended change that must update the baseline.
//
// The default threshold is exact (0): sim-time results have no noise to
// forgive. A positive --threshold turns the gate into a tolerance
// comparison for cross-revision use, where small intended drifts are
// acceptable but large ones must be flagged.
#pragma once

#include <string>
#include <vector>

namespace simmr::analysis {

/// One grid cell's aggregates, keyed by its coordinates.
struct SweepCell {
  std::string policy;
  std::string slots;          // "MxR"
  double arrival_scale = 1.0;
  int replicates = 0;
  double mean_makespan_s = 0.0;
  double mean_completion_s = 0.0;
  double mean_deadline_utility = 0.0;
  double mean_missed_deadlines = 0.0;

  std::string Key() const;
};

struct SweepDoc {
  std::string path;
  std::vector<SweepCell> cells;
};

/// Parses a simmr.sweep.v1 file. Throws std::runtime_error on missing
/// files, malformed JSON, a wrong format_version, or an empty grid.
SweepDoc LoadSweepDoc(const std::string& path);

struct SweepDiffOptions {
  /// Maximum relative per-metric delta that still counts as agreement.
  /// 0 = bit-exact (the determinism-gate default).
  double threshold = 0.0;
  bool json = false;
};

/// One metric that drifted beyond the threshold.
struct SweepDrift {
  std::string cell;    // the cell key
  std::string metric;  // e.g. "mean_makespan_s"
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;
};

struct SweepDiffResult {
  std::size_t cells_compared = 0;
  std::vector<SweepDrift> drifts;
  /// Cell keys present in exactly one document — a structural error, not
  /// a drift (the grids must match for the comparison to mean anything).
  std::vector<std::string> missing_in_candidate;
  std::vector<std::string> missing_in_baseline;

  bool structural_error() const {
    return !missing_in_candidate.empty() || !missing_in_baseline.empty();
  }
  bool clean() const { return drifts.empty() && !structural_error(); }
};

SweepDiffResult DiffSweepDocs(const SweepDoc& baseline,
                              const SweepDoc& candidate,
                              const SweepDiffOptions& options);

/// Text report, or one simmr.sweepdiff.v1 JSON document with --json.
std::string RenderSweepDiff(const SweepDiffResult& result,
                            const SweepDiffOptions& options);

/// 0 clean, 4 drift, 1 structural error — mirrors PerfDiffExitCode.
int SweepDiffExitCode(const SweepDiffResult& result);

}  // namespace simmr::analysis
