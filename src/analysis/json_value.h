// A small recursive JSON reader for the analysis layer.
//
// The event-log loader (run_record.cpp) parses flat one-line objects with
// a purpose-built scanner; bench-suite documents (simmr.benchsuite.v1/v2)
// are nested — a top-level object holding a "host" object and a "runs"
// array of telemetry objects that may themselves carry a "stats" object
// of per-metric summaries. This is the full recursive parser those
// documents need: values, arrays, objects (insertion-ordered), string
// escapes including \uXXXX, and a depth limit so hostile input fails
// instead of overflowing the stack.
//
// Parse errors throw std::runtime_error with a byte offset. Numbers are
// doubles (the documents only carry counts and seconds; 2^53 integer
// precision is more than the telemetry needs).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simmr::analysis {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members in document order.
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  /// Parses exactly one JSON document (trailing whitespace allowed).
  /// Throws std::runtime_error naming the byte offset on malformed input.
  static JsonValue Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw std::runtime_error on a kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const Members& AsObject() const;

  /// Member lookup on an object: the value for `key`, or nullptr when the
  /// key is absent or this value is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with fallbacks for optional members.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(Members v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  Members object_;
};

}  // namespace simmr::analysis
