// Per-job phase breakdown: where a job's time went.
//
// Splits a reconstructed job into the paper's four phase pools — map tasks,
// the non-overlapping first-wave shuffle, typical-wave shuffles and reduce
// phases — and derives wave counts from observed peak concurrency. A reduce
// attempt that started before the job's map stage ended is a first-wave
// (filler) reduce: its shuffle could only complete once all intermediate
// data existed, so only the portion past map_stage_end counts (the engine's
// filler patch; Section III-B of the paper).
#pragma once

#include "analysis/run_record.h"

namespace simmr::analysis {

struct PhaseBreakdown {
  int num_maps = 0;           // successful map attempts
  int num_reduces = 0;        // successful reduce attempts
  int first_wave_reduces = 0; // started before map_stage_end
  int typical_reduces = 0;

  // Total simulated seconds per phase pool, over successful attempts.
  double map_total = 0.0;
  double first_shuffle_total = 0.0;   // non-overlapping portions only
  double typical_shuffle_total = 0.0;
  double reduce_total = 0.0;          // reduce phases ([shuffle_end, end])

  // Per-attempt statistics.
  double map_avg = 0.0, map_max = 0.0;
  double shuffle_avg = 0.0;  // over all reduces: attributed shuffle seconds
  double reduce_avg = 0.0, reduce_max = 0.0;

  // Observed parallelism and the wave counts it implies
  // (waves = ceil(tasks / peak)).
  int peak_maps = 0, peak_reduces = 0;
  int map_waves = 0, reduce_waves = 0;

  /// Span of the map stage: first map start to map_stage_end (0 when the
  /// job ran no maps).
  double map_stage_span = 0.0;

  double ShuffleTotal() const {
    return first_shuffle_total + typical_shuffle_total;
  }
};

PhaseBreakdown ComputePhaseBreakdown(const JobRun& job);

}  // namespace simmr::analysis
