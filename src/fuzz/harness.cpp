#include "fuzz/harness.h"

#include <memory>
#include <utility>

#include "core/simmr.h"
#include "fuzz/differential.h"
#include "mumak/mumak_sim.h"
#include "mumak/rumen.h"
#include "simcore/parallel.h"
#include "simcore/time.h"

namespace simmr::fuzz {
namespace {

void Append(std::vector<check::Violation>& into,
            std::vector<check::Violation> from) {
  for (auto& v : from) into.push_back(std::move(v));
}

void AppendPrefixed(std::vector<check::Violation>& into,
                    const std::vector<check::Violation>& from,
                    const char* prefix) {
  for (const auto& v : from) {
    check::Violation copy = v;
    copy.detail = std::string(prefix) + copy.detail;
    into.push_back(std::move(copy));
  }
}

}  // namespace

BatteryResult RunCheckBattery(const std::vector<trace::JobProfile>& pool,
                              const backend::ReplaySpec& spec,
                              const BatteryOptions& options) {
  auto pool_ptr =
      std::make_shared<const std::vector<trace::JobProfile>>(pool);
  std::shared_ptr<const std::vector<double>> solos;
  if (spec.deadline_factor > 0.0) {
    // T_J under the standard solo configuration (the whole default
    // cluster), as everywhere else deadlines are assembled.
    solos = std::make_shared<const std::vector<double>>(
        core::MeasureSoloCompletions(pool, core::SimConfig{}));
  } else {
    solos = std::make_shared<const std::vector<double>>();
  }
  const backend::SimSession session(pool_ptr, solos);

  BatteryResult result;

  // Layer 1: exact-mode invariants over the observed engine run,
  // optionally corrupted by the injected fault.
  check::InvariantOptions inv_options;
  inv_options.map_slots = spec.map_slots;
  inv_options.reduce_slots = spec.reduce_slots;
  inv_options.strictness = check::Strictness::kExact;
  check::InvariantObserver invariants(inv_options);
  FaultInjectingObserver faulty(options.fault, &invariants);

  backend::ReplaySpec observed = spec;
  obs::SimObserver* primary = options.fault.mode == FaultMode::kNone
                                  ? static_cast<obs::SimObserver*>(&invariants)
                                  : &faulty;
  // Fan out to the caller's sink only when one was given, so the plain
  // battery keeps its direct (non-multicast) observer path.
  obs::MulticastObserver fanout;
  if (options.extra_observer != nullptr) {
    fanout.Add(primary);
    fanout.Add(options.extra_observer);
    primary = &fanout;
  }
  observed.observer = primary;
  observed.fault_plan = options.fault_plan;
  const backend::RunResult base = session.Replay(observed);
  invariants.FinishRun();
  result.callbacks_seen = invariants.callbacks_seen();
  Append(result.violations, invariants.violations());

  // Layer 2: differential re-runs. The fault only corrupts the observer
  // stream, never the simulation, so the observed result is still the
  // honest baseline.
  if (options.run_differentials) {
    backend::ReplaySpec plain = spec;
    plain.observer = nullptr;
    plain.fault_plan = options.fault_plan;
    const backend::RunResult detached = session.Replay(plain);
    Append(result.violations,
           CompareRunResults(base, detached, "observer-on/off"));
    const backend::RunResult again = session.Replay(plain);
    Append(result.violations,
           CompareRunResults(detached, again, "determinism"));

    backend::ReplaySpec toggled = plain;
    toggled.record_tasks = !plain.record_tasks;
    const backend::RunResult recorded = session.Replay(toggled);
    CompareOptions no_tasks;
    no_tasks.compare_tasks = false;  // one side has no records by design
    Append(result.violations, CompareRunResults(detached, recorded,
                                                "record-tasks-on/off",
                                                no_tasks));
  }

  // Concurrent replays of the same spec must match the serial run
  // bit-for-bit; any divergence means shared mutable state leaked into
  // SimSession::Replay.
  if (options.run_thread_differential) {
    backend::ReplaySpec plain = spec;
    plain.observer = nullptr;
    plain.fault_plan = options.fault_plan;
    const backend::RunResult serial = session.Replay(plain);
    constexpr std::size_t kConcurrent = 3;
    std::vector<backend::RunResult> parallel(kConcurrent);
    ParallelFor(
        kConcurrent, [&](std::size_t i) { parallel[i] = session.Replay(plain); },
        kConcurrent);
    for (std::size_t i = 0; i < kConcurrent; ++i) {
      Append(result.violations,
             CompareRunResults(serial, parallel[i],
                               "serial/parallel[" + std::to_string(i) + "]"));
    }
  }

  // Layer 3: the same pool through Mumak under causal-mode invariants —
  // heartbeat visibility lags, but clock/slot/lifecycle laws still bind.
  if (options.run_mumak) {
    mumak::MumakConfig mumak_config;
    // A geometry-carrying fault plan defines the cluster shape for the
    // whole battery; Mumak adopts it so its slot totals (and so the causal
    // checker's capacity laws) agree with the engine runs above.
    if (options.fault_plan != nullptr && options.fault_plan->num_nodes > 0) {
      mumak_config.num_nodes = options.fault_plan->num_nodes;
      mumak_config.map_slots_per_node =
          options.fault_plan->map_slots_per_node;
      mumak_config.reduce_slots_per_node =
          options.fault_plan->reduce_slots_per_node;
    }
    mumak_config.fault_plan = options.fault_plan;
    check::InvariantOptions causal;
    causal.strictness = check::Strictness::kCausal;
    causal.allow_job_abort = options.fault_plan != nullptr;
    // Mumak harvests completions within kTimeEpsilon of a heartbeat (so
    // boundary-coincident ends don't slip a full period to rounding), which
    // lets timing.end exceed the callback time by up to that epsilon. The
    // checker must not be stricter than the simulator's own quantization —
    // the fuzzer's tiny-duration archetype found exactly this.
    causal.time_tolerance = kTimeEpsilon;
    causal.map_slots =
        mumak_config.num_nodes * mumak_config.map_slots_per_node;
    causal.reduce_slots =
        mumak_config.num_nodes * mumak_config.reduce_slots_per_node;
    check::InvariantObserver mumak_invariants(causal);
    mumak_config.observer = &mumak_invariants;
    const std::vector<SimTime> arrivals(pool.size(), 0.0);
    mumak::RunMumak(mumak::RumenTrace::FromProfiles(pool, arrivals),
                    mumak_config);
    mumak_invariants.FinishRun();
    AppendPrefixed(result.violations, mumak_invariants.violations(),
                   "mumak: ");
  }

  // Layer 4: the ARIA analytic oracle over every profile in the pool.
  // Skipped under a fault plan — the solo upper bound assumes a
  // fault-free cluster, and a crash can legitimately push past it.
  if (options.run_aria_oracle && options.fault_plan == nullptr) {
    Append(result.violations,
           check::VerifySoloAriaBounds(pool, options.aria));
  }

  return result;
}

}  // namespace simmr::fuzz
