// Randomized workload generation for the differential fuzzer.
//
// Pools are drawn through the same SyntheticTraceGen machinery the paper's
// Section V-C workloads use, then steered toward the corners where
// simulator bugs live: zero-reduce (map-only) jobs, single-task jobs,
// single-wave reduce stages, massively skewed task durations, zero and
// near-zero durations, and plain LogNormal/uniform mixes. Everything is a
// pure function of the supplied Rng, so a pool regenerates bit-identically
// from (seed, config) — the property the shrinker and reproducers rely on.
#pragma once

#include <vector>

#include "backend/session.h"
#include "simcore/rng.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {

struct FuzzConfig {
  int min_jobs = 1;
  int max_jobs = 6;
  int max_maps = 48;
  int max_reduces = 12;
  /// Include the adversarial archetypes (zero durations, massive skew,
  /// zero-reduce, single-wave). Off = plain LogNormal/uniform jobs only.
  bool adversarial = true;
};

/// Draws one randomized profile pool. Every returned profile passes
/// JobProfile::Validate().
std::vector<trace::JobProfile> FuzzProfilePool(const FuzzConfig& config,
                                               Rng& rng);

/// Draws one randomized replay spec (policy, slots, slowstart, arrivals,
/// deadlines, engine seed) for a pool of `pool_size` profiles. The
/// returned spec carries no observer.
backend::ReplaySpec FuzzReplaySpec(const FuzzConfig& config,
                                   std::size_t pool_size, Rng& rng);

}  // namespace simmr::fuzz
