#include "fuzz/shrinker.h"

#include <algorithm>
#include <utility>

namespace simmr::fuzz {
namespace {

/// Candidate with maps halved; false when already minimal (1 map).
bool HalveMaps(trace::JobProfile& profile) {
  if (profile.map_durations.size() <= 1) return false;
  profile.map_durations.resize((profile.map_durations.size() + 1) / 2);
  profile.num_maps = static_cast<int>(profile.map_durations.size());
  return true;
}

/// Candidate with reduces halved (dropped entirely from 1); false when
/// there are none left.
bool HalveReduces(trace::JobProfile& profile) {
  if (profile.num_reduces <= 0) return false;
  const int new_reduces = profile.num_reduces / 2;
  profile.num_reduces = new_reduces;
  if (new_reduces == 0) {
    profile.first_shuffle_durations.clear();
    profile.typical_shuffle_durations.clear();
    profile.reduce_durations.clear();
    return true;
  }
  const auto cap = [](std::vector<double>& v, std::size_t n) {
    if (v.size() > n) v.resize(n);
  };
  cap(profile.first_shuffle_durations,
      static_cast<std::size_t>(new_reduces));
  cap(profile.typical_shuffle_durations,
      static_cast<std::size_t>(new_reduces) -
          profile.first_shuffle_durations.size());
  cap(profile.reduce_durations, static_cast<std::size_t>(new_reduces));
  // Validate() wants at least one shuffle sample and one reduce sample.
  if (profile.first_shuffle_durations.empty() &&
      profile.typical_shuffle_durations.empty())
    profile.typical_shuffle_durations.push_back(0.0);
  if (profile.reduce_durations.empty())
    profile.reduce_durations.push_back(0.0);
  return true;
}

/// Candidate with every duration zeroed; false when already all-zero.
bool ZeroDurations(trace::JobProfile& profile) {
  bool changed = false;
  for (auto* arr :
       {&profile.map_durations, &profile.first_shuffle_durations,
        &profile.typical_shuffle_durations, &profile.reduce_durations}) {
    for (double& d : *arr) {
      if (d != 0.0) {
        d = 0.0;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

ShrinkResult ShrinkFailure(std::vector<trace::JobProfile> pool,
                           backend::ReplaySpec spec,
                           const FailurePredicate& fails) {
  ShrinkResult result;
  result.probes = 1;
  if (!fails(pool, spec)) {  // nothing to minimize
    result.pool = std::move(pool);
    result.spec = spec;
    return result;
  }

  const auto try_case = [&](const std::vector<trace::JobProfile>& p,
                            const backend::ReplaySpec& s) {
    for (const auto& profile : p) {
      if (!profile.Validate().empty()) return false;  // never probe illegal
    }
    ++result.probes;
    return fails(p, s);
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    ++result.rounds;

    // Drop whole jobs, largest chunks first (ddmin flavor).
    for (std::size_t chunk = std::max<std::size_t>(pool.size() / 2, 1);
         chunk >= 1 && pool.size() > 1; chunk /= 2) {
      for (std::size_t at = 0; at + chunk <= pool.size() && pool.size() > 1;) {
        const std::size_t take = std::min(chunk, pool.size() - 1);
        std::vector<trace::JobProfile> candidate = pool;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(at),
                        candidate.begin() +
                            static_cast<std::ptrdiff_t>(at + take));
        if (try_case(candidate, spec)) {
          pool = std::move(candidate);
          progressed = true;  // retry the same position
        } else {
          ++at;
        }
      }
      if (chunk == 1) break;
    }

    // Per-job structural reductions.
    for (std::size_t j = 0; j < pool.size(); ++j) {
      for (const auto mutate : {&HalveMaps, &HalveReduces, &ZeroDurations}) {
        for (;;) {  // apply each reduction to its own fixpoint
          std::vector<trace::JobProfile> candidate = pool;
          if (!mutate(candidate[j])) break;
          if (!try_case(candidate, spec)) break;
          pool = std::move(candidate);
          progressed = true;
        }
      }
    }

    // Spec simplifications (each independently reversible).
    const auto try_spec = [&](backend::ReplaySpec candidate) {
      if (try_case(pool, candidate)) {
        spec = candidate;
        progressed = true;
      }
    };
    if (spec.num_jobs != 0) {
      backend::ReplaySpec s = spec;
      s.num_jobs = 0;  // one instance of each pool entry
      try_spec(s);
    }
    if (spec.mean_interarrival_s != 0.0) {
      backend::ReplaySpec s = spec;
      s.mean_interarrival_s = 0.0;
      try_spec(s);
    }
    if (spec.deadline_factor != 0.0) {
      backend::ReplaySpec s = spec;
      s.deadline_factor = 0.0;
      try_spec(s);
    }
    if (spec.record_tasks) {
      backend::ReplaySpec s = spec;
      s.record_tasks = false;
      try_spec(s);
    }
  }

  result.pool = std::move(pool);
  result.spec = spec;
  return result;
}

}  // namespace simmr::fuzz
