#include "fuzz/trace_fuzzer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "simcore/distributions.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::fuzz {
namespace {

/// The generation corners. Each produces one validated profile.
enum class Archetype : int {
  kLogNormal = 0,   // generic: LN durations, mixed waves
  kUniform,         // generic: uniform durations
  kZeroReduce,      // map-only job (num_reduces == 0)
  kSingleTask,      // 1 map, 1 reduce
  kSingleWave,      // reduces <= slots in any sane config; first-wave only
  kMassiveSkew,     // one straggler map dominates the stage
  kZeroDurations,   // everything takes 0 s
  kTinyDurations,   // sub-millisecond tasks (ordering stress)
  kArchetypeCount,
};

constexpr int kBenignArchetypes = 2;  // kLogNormal, kUniform

trace::JobProfile MakeProfile(Archetype kind, const FuzzConfig& config,
                              int job_index, Rng& rng) {
  const int max_maps = std::max(1, config.max_maps);
  const int max_reduces = std::max(1, config.max_reduces);

  trace::SyntheticJobSpec spec;
  spec.app_name = "fuzz";
  spec.num_maps = 1 + static_cast<int>(rng.NextBounded(
                          static_cast<std::uint64_t>(max_maps)));
  spec.num_reduces = static_cast<int>(
      rng.NextBounded(static_cast<std::uint64_t>(max_reduces) + 1));
  spec.first_wave_size = spec.num_reduces == 0
                             ? 0
                             : 1 + static_cast<int>(rng.NextBounded(
                                       static_cast<std::uint64_t>(
                                           spec.num_reduces)));

  switch (kind) {
    case Archetype::kLogNormal: {
      spec.app_name = "fuzz-lognormal";
      // Seconds-scale LN bodies with a heavy-ish tail.
      spec.map_duration = std::make_shared<LogNormalDist>(
          rng.NextDouble(1.0, 4.0), rng.NextDouble(0.3, 1.2));
      spec.typical_shuffle_duration = std::make_shared<LogNormalDist>(
          rng.NextDouble(0.5, 3.0), rng.NextDouble(0.3, 1.0));
      spec.first_shuffle_duration = std::make_shared<LogNormalDist>(
          rng.NextDouble(0.0, 2.0), rng.NextDouble(0.3, 1.0));
      spec.reduce_duration = std::make_shared<LogNormalDist>(
          rng.NextDouble(1.0, 4.0), rng.NextDouble(0.3, 1.2));
      break;
    }
    case Archetype::kUniform: {
      spec.app_name = "fuzz-uniform";
      const double hi = rng.NextDouble(1.0, 120.0);
      spec.map_duration = std::make_shared<UniformDist>(0.1, hi);
      spec.typical_shuffle_duration =
          std::make_shared<UniformDist>(0.1, 0.5 * hi);
      spec.reduce_duration = std::make_shared<UniformDist>(0.1, hi);
      break;
    }
    case Archetype::kZeroReduce: {
      spec.app_name = "fuzz-zero-reduce";
      spec.num_reduces = 0;
      spec.first_wave_size = 0;
      spec.map_duration = std::make_shared<LogNormalDist>(
          rng.NextDouble(1.0, 3.5), rng.NextDouble(0.3, 1.0));
      break;
    }
    case Archetype::kSingleTask: {
      spec.app_name = "fuzz-single-task";
      spec.num_maps = 1;
      spec.num_reduces = 1;
      spec.first_wave_size = 1;
      spec.map_duration =
          std::make_shared<DeterministicDist>(rng.NextDouble(0.0, 60.0));
      spec.typical_shuffle_duration =
          std::make_shared<DeterministicDist>(rng.NextDouble(0.0, 30.0));
      spec.reduce_duration =
          std::make_shared<DeterministicDist>(rng.NextDouble(0.0, 60.0));
      break;
    }
    case Archetype::kSingleWave: {
      spec.app_name = "fuzz-single-wave";
      spec.num_reduces =
          1 + static_cast<int>(rng.NextBounded(
                  static_cast<std::uint64_t>(std::min(max_reduces, 4))));
      spec.first_wave_size = spec.num_reduces;  // every reduce is a filler
      spec.map_duration = std::make_shared<UniformDist>(1.0, 20.0);
      spec.typical_shuffle_duration =
          std::make_shared<UniformDist>(0.5, 10.0);
      spec.first_shuffle_duration = std::make_shared<UniformDist>(0.1, 5.0);
      spec.reduce_duration = std::make_shared<UniformDist>(1.0, 20.0);
      break;
    }
    case Archetype::kMassiveSkew: {
      spec.app_name = "fuzz-skew";
      // Pareto alpha near 1: one map can dominate the whole stage.
      spec.map_duration =
          std::make_shared<ParetoDist>(1.0, rng.NextDouble(1.05, 1.5));
      spec.typical_shuffle_duration =
          std::make_shared<ParetoDist>(0.5, rng.NextDouble(1.1, 2.0));
      spec.reduce_duration =
          std::make_shared<ParetoDist>(1.0, rng.NextDouble(1.05, 1.5));
      break;
    }
    case Archetype::kZeroDurations: {
      spec.app_name = "fuzz-zero-durations";
      spec.map_duration = std::make_shared<DeterministicDist>(0.0);
      spec.typical_shuffle_duration =
          std::make_shared<DeterministicDist>(0.0);
      spec.reduce_duration = std::make_shared<DeterministicDist>(0.0);
      break;
    }
    case Archetype::kTinyDurations: {
      spec.app_name = "fuzz-tiny-durations";
      spec.map_duration = std::make_shared<UniformDist>(0.0, 1e-3);
      spec.typical_shuffle_duration =
          std::make_shared<UniformDist>(0.0, 1e-3);
      spec.reduce_duration = std::make_shared<UniformDist>(0.0, 1e-3);
      break;
    }
    case Archetype::kArchetypeCount:
      break;
  }
  spec.dataset = "job" + std::to_string(job_index);
  return trace::SynthesizeProfile(spec, rng);
}

}  // namespace

std::vector<trace::JobProfile> FuzzProfilePool(const FuzzConfig& config,
                                               Rng& rng) {
  const int lo = std::max(1, config.min_jobs);
  const int hi = std::max(lo, config.max_jobs);
  const int num_jobs =
      lo + static_cast<int>(
               rng.NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  const int archetypes =
      config.adversarial ? static_cast<int>(Archetype::kArchetypeCount)
                         : kBenignArchetypes;

  std::vector<trace::JobProfile> pool;
  pool.reserve(static_cast<std::size_t>(num_jobs));
  for (int j = 0; j < num_jobs; ++j) {
    const auto kind = static_cast<Archetype>(
        rng.NextBounded(static_cast<std::uint64_t>(archetypes)));
    pool.push_back(MakeProfile(kind, config, j, rng));
  }
  return pool;
}

backend::ReplaySpec FuzzReplaySpec(const FuzzConfig& config,
                                   std::size_t pool_size, Rng& rng) {
  (void)config;
  backend::ReplaySpec spec;
  static constexpr const char* kPolicies[] = {"fifo", "maxedf", "minedf",
                                              "fair", "capacity"};
  spec.policy = kPolicies[rng.NextBounded(5)];
  spec.map_slots = 1 + static_cast<int>(rng.NextBounded(64));
  spec.reduce_slots = 1 + static_cast<int>(rng.NextBounded(64));
  static constexpr double kSlowstarts[] = {0.0, 0.05, 0.5, 1.0};
  spec.slowstart = kSlowstarts[rng.NextBounded(4)];
  // 0 = one instance of each pool entry; otherwise resample up to 2x pool.
  spec.num_jobs =
      rng.NextBounded(2) == 0
          ? 0
          : 1 + static_cast<int>(rng.NextBounded(2 * pool_size + 1));
  static constexpr double kInterarrivals[] = {0.0, 10.0, 100.0};
  spec.mean_interarrival_s = kInterarrivals[rng.NextBounded(3)];
  static constexpr double kDeadlineFactors[] = {0.0, 0.0, 1.0, 1.5, 3.0};
  spec.deadline_factor = kDeadlineFactors[rng.NextBounded(5)];
  spec.seed = rng();
  return spec;
}

}  // namespace simmr::fuzz
