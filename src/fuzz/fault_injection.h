// Seeded stream corruption, for testing the invariant checker itself.
//
// FaultInjectingObserver sits between a simulator and a downstream
// observer (normally check::InvariantObserver) and corrupts the callback
// stream in one precisely-controlled way — the moral equivalent of an
// engine bug like an off-by-one slot release, without patching the engine.
// simmr_fuzz --self-test uses it to prove, on every run, that the detector
// catches each corruption class and that the shrinker reduces the
// offending trace to a minimal reproducer. Faults trigger on callback
// ordinals, so a given (workload, spec, fault) triple misbehaves
// identically on every replay.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/observer.h"

namespace simmr::fuzz {

enum class FaultMode : std::uint8_t {
  kNone,
  /// Swallow the Nth successful task completion: its slot is never
  /// released and its job never balances (slot-conservation +
  /// job-accounting).
  kDropCompletion,
  /// Deliver the Nth successful task completion twice (task-lifecycle
  /// double-completion, slot released twice).
  kDoubleCompletion,
  /// Report the Nth callback 1000 s in the past (monotonic-clock).
  kClockSkew,
  /// Duplicate the Nth task launch (lifecycle relaunch-while-running and,
  /// on tight clusters, slot oversubscription).
  kPhantomLaunch,
};

/// Wire name for reports and CLI parsing ("drop-completion", ...).
constexpr const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone: return "none";
    case FaultMode::kDropCompletion: return "drop-completion";
    case FaultMode::kDoubleCompletion: return "double-completion";
    case FaultMode::kClockSkew: return "clock-skew";
    case FaultMode::kPhantomLaunch: return "phantom-launch";
  }
  return "none";
}

struct FaultSpec {
  FaultMode mode = FaultMode::kNone;
  /// 1-based ordinal of the matching callback the fault fires on.
  std::uint64_t trigger = 1;
};

class FaultInjectingObserver final : public obs::SimObserver {
 public:
  FaultInjectingObserver(FaultSpec spec, obs::SimObserver* inner)
      : spec_(spec), inner_(inner) {}

  bool fired() const { return fired_; }

  void OnEventDequeue(SimTime now, const char* event_type,
                      std::size_t queue_depth) override {
    inner_->OnEventDequeue(Skew(now), event_type, queue_depth);
  }
  void OnJobArrival(SimTime now, std::int32_t job, std::string_view name,
                    double deadline) override {
    inner_->OnJobArrival(Skew(now), job, name, deadline);
  }
  void OnJobCompletion(SimTime now, std::int32_t job) override {
    inner_->OnJobCompletion(Skew(now), job);
  }
  void OnTaskLaunch(SimTime now, std::int32_t job, obs::TaskKind kind,
                    std::int32_t index) override {
    if (spec_.mode == FaultMode::kPhantomLaunch && Arm()) {
      inner_->OnTaskLaunch(now, job, kind, index);  // the phantom copy
    }
    inner_->OnTaskLaunch(Skew(now), job, kind, index);
  }
  void OnTaskPhaseTransition(SimTime now, std::int32_t job,
                             obs::TaskKind kind, std::int32_t index,
                             const char* phase) override {
    inner_->OnTaskPhaseTransition(Skew(now), job, kind, index, phase);
  }
  void OnTaskCompletion(SimTime now, std::int32_t job, obs::TaskKind kind,
                        std::int32_t index, const obs::TaskTiming& timing,
                        bool succeeded) override {
    if (succeeded && spec_.mode == FaultMode::kDropCompletion && Arm())
      return;  // the slot release vanishes
    if (succeeded && spec_.mode == FaultMode::kDoubleCompletion && Arm())
      inner_->OnTaskCompletion(now, job, kind, index, timing, succeeded);
    inner_->OnTaskCompletion(Skew(now), job, kind, index, timing, succeeded);
  }
  void OnSchedulerDecision(SimTime now, obs::TaskKind kind,
                           std::int32_t chosen_job) override {
    inner_->OnSchedulerDecision(Skew(now), kind, chosen_job);
  }
  void OnFaultEvent(SimTime now, obs::FaultEventKind kind, std::int32_t node,
                    std::int32_t job, obs::TaskKind task_kind,
                    std::int32_t index) override {
    inner_->OnFaultEvent(Skew(now), kind, node, job, task_kind, index);
  }

 private:
  /// Counts a matching callback; true exactly once, on the trigger-th.
  bool Arm() {
    if (fired_) return false;
    if (++matching_ != spec_.trigger) return false;
    fired_ = true;
    return true;
  }

  /// For kClockSkew: warps the trigger-th callback (of any kind) back in
  /// time; identity otherwise.
  SimTime Skew(SimTime now) {
    if (spec_.mode != FaultMode::kClockSkew) return now;
    return Arm() ? now - 1000.0 : now;
  }

  FaultSpec spec_;
  obs::SimObserver* inner_;
  std::uint64_t matching_ = 0;
  bool fired_ = false;
};

}  // namespace simmr::fuzz
