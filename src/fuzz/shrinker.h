// Trace shrinking: delta-debug a failing case to a minimal reproducer.
//
// Given a (pool, spec) the FailurePredicate rejects, ShrinkFailure greedily
// applies semantics-preserving reductions — drop whole jobs (largest chunks
// first, ddmin-style), halve per-job task arrays, zero out durations,
// simplify the replay spec (no resampling, no arrival gaps, no deadlines) —
// keeping each reduction only if the failure survives, and iterates to a
// fixpoint. Every candidate pool still passes JobProfile::Validate(), so
// the shrunk case is always a legal input. The result is what lands in a
// reproducer file: typically one or two tiny jobs instead of a 6-job
// lognormal forest.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "backend/session.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {

/// True when the case still fails (the property being minimized).
using FailurePredicate = std::function<bool(
    const std::vector<trace::JobProfile>&, const backend::ReplaySpec&)>;

struct ShrinkResult {
  std::vector<trace::JobProfile> pool;
  backend::ReplaySpec spec;
  /// Fixpoint iterations and predicate evaluations spent.
  int rounds = 0;
  std::uint64_t probes = 0;
};

/// Minimizes a failing case. `fails(pool, spec)` must be true on entry
/// (returns the input unchanged otherwise, with probes == 1). The
/// predicate must be deterministic for the shrink to make sense.
ShrinkResult ShrinkFailure(std::vector<trace::JobProfile> pool,
                           backend::ReplaySpec spec,
                           const FailurePredicate& fails);

}  // namespace simmr::fuzz
