// The per-case check battery: everything simmr_fuzz asserts about one
// (profile pool, replay spec) draw.
//
// One battery run layers every checking mechanism the repo has onto a
// single fuzzed case:
//   1. an exact-mode InvariantObserver over the engine replay (optionally
//      behind a FaultInjectingObserver, for --self-test);
//   2. differential replays whose results must agree bit-for-bit with the
//      observed run — same spec re-run, observer detached, task recording
//      toggled, and concurrent ParallelFor replays vs the serial run;
//   3. a Mumak replay of the same pool under a causal-mode observer (the
//      node-level code paths see the adversarial corners too);
//   4. the ARIA analytic oracle over every profile in the pool.
// Violations from all layers are pooled; the caller (fuzz loop, shrinker
// predicate, corpus replay) only needs `ok()`.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/session.h"
#include "check/invariant_observer.h"
#include "check/oracles.h"
#include "fault/fault_plan.h"
#include "fuzz/fault_injection.h"
#include "obs/observer.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {

struct BatteryOptions {
  /// Injected stream corruption (self-test mode); kNone = clean run.
  FaultSpec fault;
  /// Differential re-runs (layer 2). Cheap: each is one more engine pass.
  bool run_differentials = true;
  /// Concurrent replays of the same spec via ParallelFor must be
  /// bit-identical to the serial run (SimSession's thread-safety contract,
  /// the property simmr_sweep's thread-invariance rests on).
  bool run_thread_differential = true;
  /// Mumak causal-mode pass (layer 3).
  bool run_mumak = true;
  /// ARIA solo-bounds oracle (layer 4); costs one solo replay per profile.
  bool run_aria_oracle = true;
  check::SoloBoundsOptions aria;
  /// Optional extra sink multicast alongside the invariant observer on the
  /// primary observed replay (layer 1) — how simmr_fuzz attaches the
  /// shared --trace-out/--metrics-out/--event-log-out sinks. Null = the
  /// battery behaves exactly as before.
  obs::SimObserver* extra_observer = nullptr;
  /// Optional simulator-level fault plan (borrowed): injected into every
  /// engine replay of layers 1-2 (the runs stay deterministic, so the
  /// bit-identity differentials still bind) and into the Mumak pass when
  /// the plan carries geometry (Mumak adopts it). The ARIA oracle is
  /// skipped — its upper bound assumes a fault-free cluster. The plan's
  /// geometry must match the spec's slot totals (engine contract).
  const fault::FaultPlan* fault_plan = nullptr;
};

struct BatteryResult {
  std::vector<check::Violation> violations;
  /// Callbacks the primary invariant observer saw (coverage assertion:
  /// a run that emits nothing checks nothing).
  std::uint64_t callbacks_seen = 0;
  bool ok() const { return violations.empty(); }
};

/// Runs the full battery on one case. The spec's observer field is
/// ignored (the battery wires its own; use BatteryOptions::extra_observer
/// to listen in). Throws only on structurally
/// invalid input (empty pool, invalid profile, unknown policy) — engine
/// misbehavior is reported through violations, never exceptions.
BatteryResult RunCheckBattery(const std::vector<trace::JobProfile>& pool,
                              const backend::ReplaySpec& spec,
                              const BatteryOptions& options = {});

}  // namespace simmr::fuzz
