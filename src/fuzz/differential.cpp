#include "fuzz/differential.h"

#include <cmath>
#include <cstdio>

namespace simmr::fuzz {
namespace {

bool TimesAgree(double a, double b, const CompareOptions& options) {
  if (a == b) return true;  // covers exact mode and shared infinities
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= options.abs_tolerance + options.rel_tolerance * scale;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::vector<check::Violation> CompareRunResults(
    const backend::RunResult& a, const backend::RunResult& b,
    const std::string& label, const CompareOptions& options) {
  std::vector<check::Violation> out;
  const auto differ = [&out, &label](std::int32_t job, std::string detail) {
    out.push_back({"differential", label + ": " + std::move(detail), 0.0,
                   job});
  };
  const auto time_field = [&](std::int32_t job, const char* field, double va,
                              double vb) {
    if (!TimesAgree(va, vb, options))
      differ(job, std::string(field) + " " + Num(va) + " vs " + Num(vb));
  };

  if (a.jobs.size() != b.jobs.size()) {
    differ(-1, "job count " + std::to_string(a.jobs.size()) + " vs " +
                   std::to_string(b.jobs.size()));
    return out;  // per-job comparison is meaningless past this point
  }
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& ja = a.jobs[i];
    const auto& jb = b.jobs[i];
    if (ja.job != jb.job) {
      differ(ja.job, "job id order " + std::to_string(ja.job) + " vs " +
                         std::to_string(jb.job));
      continue;
    }
    if (ja.name != jb.name)
      differ(ja.job, "name '" + ja.name + "' vs '" + jb.name + "'");
    time_field(ja.job, "submit", ja.submit, jb.submit);
    time_field(ja.job, "finish", ja.finish, jb.finish);
    time_field(ja.job, "deadline", ja.deadline, jb.deadline);
    if (options.compare_stage_times) {
      time_field(ja.job, "first_launch", ja.first_launch, jb.first_launch);
      time_field(ja.job, "map_stage_end", ja.map_stage_end,
                 jb.map_stage_end);
    }
  }

  time_field(-1, "makespan", a.makespan, b.makespan);
  if (options.compare_events && a.events_processed != b.events_processed)
    differ(-1, "events_processed " + std::to_string(a.events_processed) +
                   " vs " + std::to_string(b.events_processed));

  if (options.compare_tasks && !a.tasks.empty() && !b.tasks.empty()) {
    if (a.tasks.size() != b.tasks.size()) {
      differ(-1, "task count " + std::to_string(a.tasks.size()) + " vs " +
                     std::to_string(b.tasks.size()));
      return out;
    }
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      const auto& ta = a.tasks[i];
      const auto& tb = b.tasks[i];
      if (ta.job != tb.job || ta.kind != tb.kind) {
        differ(ta.job, "task " + std::to_string(i) + " identity mismatch");
        continue;
      }
      time_field(ta.job, "task start", ta.start, tb.start);
      time_field(ta.job, "task shuffle_end", ta.shuffle_end, tb.shuffle_end);
      time_field(ta.job, "task end", ta.end, tb.end);
    }
  }
  return out;
}

const std::vector<TestbedToleranceEntry>& TestbedReplayTolerances() {
  // Bounds = worst per-job error observed across a 10-seed sweep of the
  // 16-node validation suite (WordCount/WikiTrends/Twitter/Bayes <= 0.2%,
  // Sort 0.5%, TFIDF 0.7%), widened ~5-10x so seed drift cannot flake the
  // gate while every bound stays an order of magnitude under the old 35%.
  static const std::vector<TestbedToleranceEntry> kTable = {
      {"WordCount", 0.02}, {"WikiTrends", 0.02}, {"Twitter", 0.02},
      {"Sort", 0.04},      {"TFIDF", 0.05},      {"Bayes", 0.02},
  };
  return kTable;
}

double TestbedReplayTolerance(const std::string& app_name) {
  for (const TestbedToleranceEntry& entry : TestbedReplayTolerances())
    if (entry.app == app_name) return entry.rel_tolerance;
  return 0.35;
}

}  // namespace simmr::fuzz
