// simmr.repro.v1: a self-contained, replayable failure reproducer.
//
// When simmr_fuzz finds a violated invariant it writes one of these next
// to the event log: the (shrunk) profile pool embedded as JobProfile text
// blocks, the exact ReplaySpec, the master seed the case was drawn from,
// and the injected fault (self-test mode only). Doubles are serialized at
// max_digits10, so `simmr_fuzz --replay file.repro` re-runs the identical
// workload bit-for-bit — the contract that makes committed reproducers in
// tests/corpus/ meaningful regression tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "backend/session.h"
#include "fault/fault_plan.h"
#include "fuzz/fault_injection.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {

struct Reproducer {
  /// The fuzzer master seed the case was drawn from (provenance).
  std::uint64_t master_seed = 0;
  /// Injected corruption, if any (self-test reproducers).
  FaultSpec fault;
  /// The replay configuration. `observer` is never serialized.
  backend::ReplaySpec spec;
  /// The (possibly shrunk) profile pool.
  std::vector<trace::JobProfile> pool;
  /// First violation the case triggered, for the reader ("[clock] ...").
  std::string note;
  /// Simulator-level fault plan of the case (fault archetypes); written as
  /// an embedded simmr.faultplan.v1 block after the profiles when
  /// non-empty. Older reproducers simply end after the profiles, so the
  /// field is fully backward compatible.
  fault::FaultPlan fault_plan;
};

/// Writes the versioned text form (round-trips bit-exactly).
void WriteReproducer(std::ostream& out, const Reproducer& repro);

/// Parses a reproducer. Throws std::runtime_error on malformed input,
/// including an unknown version line.
Reproducer ReadReproducer(std::istream& in);

/// File wrappers; WriteReproducerFile throws std::runtime_error when the
/// path cannot be opened.
void WriteReproducerFile(const std::string& path, const Reproducer& repro);
Reproducer ReadReproducerFile(const std::string& path);

}  // namespace simmr::fuzz
