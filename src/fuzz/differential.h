// Differential comparison of RunResults.
//
// The fuzzer's second weapon (after the invariant observer): run the same
// workload through two configurations whose semantics must agree — the
// same spec twice, observer attached vs detached, task recording on vs
// off, serial vs parallel replication — and flag any divergence. Exact
// comparisons demand bit-identical doubles (the engine is deterministic,
// so anything less is a bug); tolerant comparisons (testbed replay vs
// direct emulation) allow the modeling error the paper quantifies.
#pragma once

#include <string>
#include <vector>

#include "backend/run_result.h"
#include "check/invariant_observer.h"

namespace simmr::fuzz {

struct CompareOptions {
  /// Relative + absolute slack for every time comparison. Both zero (the
  /// default) demands bit-identical values.
  double rel_tolerance = 0.0;
  double abs_tolerance = 0.0;
  /// Compare events_processed (only meaningful for same-simulator runs).
  bool compare_events = true;
  /// Compare task records when both results carry them.
  bool compare_tasks = true;
  /// Compare per-job intermediate timestamps (first_launch/map_stage_end)
  /// in addition to submit/finish.
  bool compare_stage_times = true;
};

/// Compares two results field by field. Every divergence becomes one
/// Violation with invariant id "differential" and `detail` prefixed by
/// `label` (e.g. "observer-on/off"). Empty result = the runs agree.
std::vector<check::Violation> CompareRunResults(
    const backend::RunResult& a, const backend::RunResult& b,
    const std::string& label, const CompareOptions& options = {});

/// One validation-suite archetype's engine-vs-testbed accuracy bound.
struct TestbedToleranceEntry {
  std::string app;        // cluster::AppModel::name, e.g. "Sort"
  double rel_tolerance;   // per-job |sim - actual| / actual bound
};

/// The per-archetype replay-accuracy bounds for the testbed cross-check
/// (simmr_fuzz --testbed). The original gate was a blanket 35% (the
/// loosest figure the paper reports); schedule exploration (src/mc)
/// showed the residual error is modeling error, not interleaving luck —
/// it stays put under every legal schedule — so each archetype gets a
/// bound set from its measured worst case across seeds plus a safety
/// margin. Sort and TFIDF carry the shuffle-heaviest profiles and the
/// largest residuals.
const std::vector<TestbedToleranceEntry>& TestbedReplayTolerances();

/// The bound for one archetype; unknown apps fall back to the blanket
/// 35% (new archetypes start loose until measured).
double TestbedReplayTolerance(const std::string& app_name);

}  // namespace simmr::fuzz
