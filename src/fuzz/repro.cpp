#include "fuzz/repro.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace simmr::fuzz {
namespace {

constexpr const char* kMagic = "simmr.repro.v1";

FaultMode ParseFaultMode(const std::string& name) {
  for (const FaultMode mode :
       {FaultMode::kNone, FaultMode::kDropCompletion,
        FaultMode::kDoubleCompletion, FaultMode::kClockSkew,
        FaultMode::kPhantomLaunch}) {
    if (name == FaultModeName(mode)) return mode;
  }
  throw std::runtime_error("reproducer: unknown fault mode '" + name + "'");
}

/// Reads "key value..." asserting the key; returns the value part.
std::string ReadField(std::istream& in, const char* key) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error(std::string("reproducer: missing field ") + key);
  const auto space = line.find(' ');
  const std::string seen = line.substr(0, space);
  if (seen != key)
    throw std::runtime_error(std::string("reproducer: expected field ") +
                             key + ", got '" + line + "'");
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

double ParseDouble(const std::string& s, const char* key) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("reproducer: bad number for ") +
                             key + ": '" + s + "'");
  }
}

}  // namespace

void WriteReproducer(std::ostream& out, const Reproducer& repro) {
  out << kMagic << '\n';
  out.precision(17);
  out << "master_seed " << repro.master_seed << '\n';
  out << "fault " << FaultModeName(repro.fault.mode) << ' '
      << repro.fault.trigger << '\n';
  out << "policy " << repro.spec.policy << '\n';
  out << "map_slots " << repro.spec.map_slots << '\n';
  out << "reduce_slots " << repro.spec.reduce_slots << '\n';
  out << "slowstart " << repro.spec.slowstart << '\n';
  out << "record_tasks " << (repro.spec.record_tasks ? 1 : 0) << '\n';
  out << "num_jobs " << repro.spec.num_jobs << '\n';
  out << "mean_interarrival_s " << repro.spec.mean_interarrival_s << '\n';
  out << "arrival_scale " << repro.spec.arrival_scale << '\n';
  out << "deadline_factor " << repro.spec.deadline_factor << '\n';
  out << "engine_seed " << repro.spec.seed << '\n';
  // The note is single-line by construction; flatten just in case.
  std::string note = repro.note;
  for (char& c : note)
    if (c == '\n' || c == '\r') c = ' ';
  out << "note " << note << '\n';
  out << "jobs " << repro.pool.size() << '\n';
  for (const auto& profile : repro.pool) profile.Write(out);
  if (!repro.fault_plan.Empty())
    fault::WriteFaultPlan(out, repro.fault_plan);
}

Reproducer ReadReproducer(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("reproducer: bad or missing version line");
  Reproducer repro;
  repro.master_seed = std::stoull(ReadField(in, "master_seed"));
  {
    std::istringstream fs(ReadField(in, "fault"));
    std::string mode;
    if (!(fs >> mode >> repro.fault.trigger))
      throw std::runtime_error("reproducer: malformed fault line");
    repro.fault.mode = ParseFaultMode(mode);
  }
  repro.spec.policy = ReadField(in, "policy");
  repro.spec.map_slots = std::stoi(ReadField(in, "map_slots"));
  repro.spec.reduce_slots = std::stoi(ReadField(in, "reduce_slots"));
  repro.spec.slowstart = ParseDouble(ReadField(in, "slowstart"), "slowstart");
  repro.spec.record_tasks = ReadField(in, "record_tasks") != "0";
  repro.spec.num_jobs = std::stoi(ReadField(in, "num_jobs"));
  repro.spec.mean_interarrival_s =
      ParseDouble(ReadField(in, "mean_interarrival_s"), "mean_interarrival_s");
  repro.spec.arrival_scale =
      ParseDouble(ReadField(in, "arrival_scale"), "arrival_scale");
  repro.spec.deadline_factor =
      ParseDouble(ReadField(in, "deadline_factor"), "deadline_factor");
  repro.spec.seed = std::stoull(ReadField(in, "engine_seed"));
  repro.note = ReadField(in, "note");
  const int num_jobs = std::stoi(ReadField(in, "jobs"));
  if (num_jobs < 0)
    throw std::runtime_error("reproducer: negative job count");
  repro.pool.reserve(static_cast<std::size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i)
    repro.pool.push_back(trace::JobProfile::Read(in));
  // Optional trailer: an embedded fault plan (fault-archetype cases).
  // Peek non-destructively — containers like the explore-reproducer
  // format append their own trailer fields after this block, and they
  // must find the stream exactly where the pool ended.
  std::streampos pos = in.tellg();
  while (std::getline(in, line)) {
    if (line.empty()) {  // tolerate blank padding between sections
      pos = in.tellg();
      continue;
    }
    if (line == fault::kFaultPlanMagic) {
      repro.fault_plan = fault::ReadFaultPlanBody(in);
    } else {
      in.clear();
      in.seekg(pos);
    }
    break;
  }
  if (in.eof()) in.clear();  // a trailer is optional; EOF here is clean
  return repro;
}

void WriteReproducerFile(const std::string& path, const Reproducer& repro) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("reproducer: cannot open " + path);
  WriteReproducer(out, repro);
  out.flush();
  if (!out) throw std::runtime_error("reproducer: write failed for " + path);
}

Reproducer ReadReproducerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("reproducer: cannot open " + path);
  return ReadReproducer(in);
}

}  // namespace simmr::fuzz
