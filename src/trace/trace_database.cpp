#include "trace/trace_database.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace simmr::trace {
namespace fs = std::filesystem;

TraceDatabase::ProfileId TraceDatabase::Put(JobProfile profile) {
  const std::string error = profile.Validate();
  if (!error.empty())
    throw std::invalid_argument("TraceDatabase::Put: invalid profile: " +
                                error);
  const ProfileId id = static_cast<ProfileId>(profiles_.size());
  by_app_[profile.app_name].push_back(id);
  profiles_.push_back(std::move(profile));
  return id;
}

const JobProfile& TraceDatabase::Get(ProfileId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= profiles_.size())
    throw std::out_of_range("TraceDatabase::Get: unknown id " +
                            std::to_string(id));
  return profiles_[id];
}

std::vector<TraceDatabase::ProfileId> TraceDatabase::FindByApp(
    const std::string& app_name) const {
  const auto it = by_app_.find(app_name);
  if (it == by_app_.end()) return {};
  return it->second;
}

std::vector<TraceDatabase::ProfileId> TraceDatabase::AllIds() const {
  std::vector<ProfileId> ids(profiles_.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<ProfileId>(i);
  return ids;
}

void TraceDatabase::Save(const std::string& directory) const {
  fs::create_directories(directory);
  const fs::path dir(directory);
  {
    std::ofstream index(dir / "index.tsv");
    if (!index)
      throw std::runtime_error("TraceDatabase::Save: cannot write index in " +
                               directory);
    index << "id\tapp\tdataset\tfile\n";
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
      index << i << '\t' << profiles_[i].app_name << '\t'
            << profiles_[i].dataset << '\t' << "profile_" << i << ".trace\n";
    }
  }
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const fs::path file = dir / ("profile_" + std::to_string(i) + ".trace");
    std::ofstream out(file);
    if (!out)
      throw std::runtime_error("TraceDatabase::Save: cannot write " +
                               file.string());
    profiles_[i].Write(out);
    if (!out)
      throw std::runtime_error("TraceDatabase::Save: write failed for " +
                               file.string());
  }
}

TraceDatabase TraceDatabase::Load(const std::string& directory) {
  const fs::path dir(directory);
  std::ifstream index(dir / "index.tsv");
  if (!index)
    throw std::runtime_error("TraceDatabase::Load: missing index.tsv in " +
                             directory);
  std::string header;
  std::getline(index, header);  // column names

  TraceDatabase db;
  std::string line;
  while (std::getline(index, line)) {
    if (line.empty()) continue;
    // Fields: id, app, dataset, file — only the file name is needed; the
    // profile file itself is authoritative for the rest.
    const std::size_t last_tab = line.rfind('\t');
    if (last_tab == std::string::npos)
      throw std::runtime_error("TraceDatabase::Load: malformed index line: " +
                               line);
    const std::string file_name = line.substr(last_tab + 1);
    std::ifstream in(dir / file_name);
    if (!in)
      throw std::runtime_error("TraceDatabase::Load: missing profile file " +
                               file_name);
    db.Put(JobProfile::Read(in));
  }
  return db;
}

}  // namespace simmr::trace
