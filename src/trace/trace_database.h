// Persistent trace database.
//
// Section III-A: "We store job traces persistently in a Trace database (for
// efficient lookup and storage) using a job template." This implementation
// keeps profiles in memory behind integer ids with an app-name index, and
// persists to a directory: an index file plus one profile file per job.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/job_profile.h"

namespace simmr::trace {

class TraceDatabase {
 public:
  using ProfileId = int;

  /// Stores a profile (validated first) and returns its id.
  /// Throws std::invalid_argument when the profile fails Validate().
  ProfileId Put(JobProfile profile);

  /// Fetches by id; throws std::out_of_range for unknown ids.
  const JobProfile& Get(ProfileId id) const;

  /// Ids of every profile whose app_name matches, in insertion order.
  std::vector<ProfileId> FindByApp(const std::string& app_name) const;

  /// Ids of all profiles, in insertion order.
  std::vector<ProfileId> AllIds() const;

  std::size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }

  /// Persists the database into `directory` (created if absent):
  /// `index.tsv` plus `profile_<id>.trace` files. Overwrites existing
  /// contents of a previous Save.
  void Save(const std::string& directory) const;

  /// Loads a database previously written by Save. Throws std::runtime_error
  /// on missing/corrupt files.
  static TraceDatabase Load(const std::string& directory);

 private:
  std::vector<JobProfile> profiles_;
  std::unordered_map<std::string, std::vector<ProfileId>> by_app_;
};

}  // namespace simmr::trace
