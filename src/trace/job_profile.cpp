#include "trace/job_profile.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace simmr::trace {
namespace {

constexpr const char* kMagic = "SIMMR-PROFILE-V1";

bool AllFiniteNonNegative(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x) || x < 0.0) return false;
  }
  return true;
}

void WriteArray(std::ostream& out, const char* tag,
                const std::vector<double>& values) {
  out << tag << ' ' << values.size();
  for (const double v : values) out << ' ' << v;
  out << '\n';
}

std::vector<double> ReadArray(std::istream& in, const char* tag) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error(std::string("JobProfile: missing array ") + tag);
  std::istringstream ls(line);
  std::string seen_tag;
  std::size_t count = 0;
  if (!(ls >> seen_tag >> count) || seen_tag != tag)
    throw std::runtime_error(std::string("JobProfile: expected array ") + tag +
                             ", got '" + line + "'");
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(ls >> values[i]))
      throw std::runtime_error(std::string("JobProfile: truncated array ") +
                               tag);
  }
  return values;
}

}  // namespace

std::string JobProfile::Validate() const {
  if (num_maps <= 0) return "num_maps must be positive";
  if (num_reduces < 0) return "num_reduces must be nonnegative";
  if (map_durations.empty()) return "map duration pool is empty";
  if (num_reduces > 0 && reduce_durations.empty())
    return "reduce duration pool is empty";
  if (num_reduces > 0 && first_shuffle_durations.empty() &&
      typical_shuffle_durations.empty())
    return "no shuffle duration samples";
  const auto sh_count =
      first_shuffle_durations.size() + typical_shuffle_durations.size();
  if (sh_count > static_cast<std::size_t>(num_reduces))
    return "more shuffle samples than reduce tasks";
  if (!AllFiniteNonNegative(map_durations)) return "bad map duration";
  if (!AllFiniteNonNegative(first_shuffle_durations))
    return "bad first-shuffle duration";
  if (!AllFiniteNonNegative(typical_shuffle_durations))
    return "bad typical-shuffle duration";
  if (!AllFiniteNonNegative(reduce_durations)) return "bad reduce duration";
  return {};
}

void JobProfile::Write(std::ostream& out) const {
  out << kMagic << '\n';
  // max_digits10: doubles survive a write/read round trip bit-exactly,
  // which replayable reproducers (simmr_fuzz) and the database round-trip
  // tests depend on.
  out.precision(17);
  out << "app " << (app_name.empty() ? "-" : app_name) << '\n';
  out << "dataset " << (dataset.empty() ? "-" : dataset) << '\n';
  out << "num_maps " << num_maps << '\n';
  out << "num_reduces " << num_reduces << '\n';
  WriteArray(out, "map_durations", map_durations);
  WriteArray(out, "first_shuffle_durations", first_shuffle_durations);
  WriteArray(out, "typical_shuffle_durations", typical_shuffle_durations);
  WriteArray(out, "reduce_durations", reduce_durations);
}

JobProfile JobProfile::Read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("JobProfile: bad or missing magic header");
  JobProfile p;
  const auto read_field = [&in](const char* tag) {
    std::string field_line;
    if (!std::getline(in, field_line))
      throw std::runtime_error(std::string("JobProfile: missing field ") +
                               tag);
    std::istringstream ls(field_line);
    std::string seen_tag, value;
    if (!(ls >> seen_tag >> value) || seen_tag != tag)
      throw std::runtime_error(std::string("JobProfile: expected field ") +
                               tag);
    return value;
  };
  p.app_name = read_field("app");
  if (p.app_name == "-") p.app_name.clear();
  p.dataset = read_field("dataset");
  if (p.dataset == "-") p.dataset.clear();
  p.num_maps = std::stoi(read_field("num_maps"));
  p.num_reduces = std::stoi(read_field("num_reduces"));
  p.map_durations = ReadArray(in, "map_durations");
  p.first_shuffle_durations = ReadArray(in, "first_shuffle_durations");
  p.typical_shuffle_durations = ReadArray(in, "typical_shuffle_durations");
  p.reduce_durations = ReadArray(in, "reduce_durations");
  return p;
}

}  // namespace simmr::trace
