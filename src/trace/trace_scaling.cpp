#include "trace/trace_scaling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/distributions.h"

namespace simmr::trace {

JobProfile ScaleProfile(const JobProfile& original, const ScalingParams& params,
                        Rng& rng) {
  if (params.data_factor <= 0.0 || params.reduce_factor <= 0.0)
    throw std::invalid_argument("ScaleProfile: factors must be positive");
  const std::string error = original.Validate();
  if (!error.empty())
    throw std::invalid_argument("ScaleProfile: invalid profile: " + error);

  JobProfile scaled;
  scaled.app_name = original.app_name;
  scaled.dataset = original.dataset + "-scaled";
  scaled.num_maps = std::max(
      1, static_cast<int>(std::lround(original.num_maps * params.data_factor)));
  scaled.num_reduces =
      std::max(1, static_cast<int>(std::lround(original.num_reduces *
                                               params.reduce_factor)));

  // Per-map work is block-sized and therefore invariant: resample.
  const EmpiricalDist map_dist(original.map_durations);
  scaled.map_durations.reserve(scaled.num_maps);
  for (int i = 0; i < scaled.num_maps; ++i)
    scaled.map_durations.push_back(map_dist.Sample(rng));

  // Per-reduce data volume grows by data_factor / reduce_factor; the
  // bandwidth- and CPU-bound shuffle/reduce phases grow proportionally.
  const double per_reduce_growth = params.data_factor / params.reduce_factor;

  const auto scale_pool = [&](const std::vector<double>& source,
                              std::size_t count, std::vector<double>& out) {
    if (source.empty() || count == 0) return;
    const EmpiricalDist dist(source);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(dist.Sample(rng) * per_reduce_growth);
  };

  // Keep the original first-vs-typical wave proportions.
  const double first_share =
      original.num_reduces > 0
          ? static_cast<double>(original.first_shuffle_durations.size()) /
                static_cast<double>(original.first_shuffle_durations.size() +
                                    original.typical_shuffle_durations.size())
          : 0.0;
  std::size_t first_count = static_cast<std::size_t>(
      std::lround(first_share * scaled.num_reduces));
  if (original.first_shuffle_durations.empty()) first_count = 0;
  std::size_t typical_count = scaled.num_reduces - first_count;
  if (original.typical_shuffle_durations.empty()) {
    first_count = scaled.num_reduces;
    typical_count = 0;
  }

  scale_pool(original.first_shuffle_durations, first_count,
             scaled.first_shuffle_durations);
  scale_pool(original.typical_shuffle_durations, typical_count,
             scaled.typical_shuffle_durations);
  scale_pool(original.reduce_durations, scaled.num_reduces,
             scaled.reduce_durations);
  return scaled;
}

}  // namespace simmr::trace
