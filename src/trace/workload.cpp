#include "trace/workload.h"

#include <algorithm>
#include <stdexcept>

#include "simcore/distributions.h"

namespace simmr::trace {

WorkloadTrace MakeWorkload(const std::vector<JobProfile>& pool,
                           const std::vector<double>& solo_completions,
                           const WorkloadParams& params, Rng& rng) {
  if (pool.empty()) throw std::invalid_argument("MakeWorkload: empty pool");
  if (pool.size() != solo_completions.size())
    throw std::invalid_argument(
        "MakeWorkload: pool/solo_completions size mismatch");
  if (params.deadline_factor != 0.0 && params.deadline_factor < 1.0)
    throw std::invalid_argument("MakeWorkload: deadline_factor must be >= 1");
  if (params.mean_interarrival_s < 0.0)
    throw std::invalid_argument("MakeWorkload: negative inter-arrival mean");

  // Choose which pool entries run, in which order.
  std::vector<std::size_t> order;
  const std::size_t n = params.num_jobs > 0
                            ? static_cast<std::size_t>(params.num_jobs)
                            : pool.size();
  if (n <= pool.size()) {
    order.resize(pool.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (params.permute) {
      // Fisher-Yates with our deterministic generator.
      for (std::size_t i = order.size() - 1; i > 0; --i) {
        const std::size_t j = rng.NextBounded(i + 1);
        std::swap(order[i], order[j]);
      }
    }
    order.resize(n);
  } else {
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      order.push_back(rng.NextBounded(pool.size()));
  }

  const ExponentialDist gap(
      params.mean_interarrival_s > 0.0 ? 1.0 / params.mean_interarrival_s
                                       : 1e12);

  WorkloadTrace trace;
  trace.reserve(order.size());
  SimTime arrival = 0.0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k > 0 && params.mean_interarrival_s > 0.0)
      arrival += gap.Sample(rng);
    TraceJob job;
    job.profile = pool[order[k]];
    job.arrival = arrival;
    job.solo_completion = solo_completions[order[k]];
    if (params.deadline_factor >= 1.0 && job.solo_completion > 0.0) {
      const double relative =
          rng.NextDouble(job.solo_completion,
                         params.deadline_factor * job.solo_completion);
      job.deadline = arrival + relative;
    }
    trace.push_back(std::move(job));
  }
  return trace;
}

}  // namespace simmr::trace
