// Workload assembly: profiles -> a replayable multi-job trace.
//
// Section V-B: "We generate an equally probable random permutation of
// arrival of these jobs and assume that the inter-arrival time of the jobs
// is exponential. The job deadline ... is set to be uniformly distributed
// in the interval [T_J, df * T_J], where T_J is the completion time of job
// J given all the cluster resources and df >= 1 is a given deadline
// factor."
#pragma once

#include <string>
#include <vector>

#include "simcore/rng.h"
#include "simcore/time.h"
#include "trace/job_profile.h"

namespace simmr::trace {

/// One entry of a replayable trace: a profile plus arrival and deadline.
struct TraceJob {
  JobProfile profile;
  SimTime arrival = 0.0;
  /// Absolute completion deadline; 0 means none.
  double deadline = 0.0;
  /// Completion time of the job given the whole cluster (T_J); carried so
  /// analyses can normalize against it. 0 when unknown.
  double solo_completion = 0.0;
};

using WorkloadTrace = std::vector<TraceJob>;

struct WorkloadParams {
  int num_jobs = 0;                 // 0 = one instance of each pool entry
  double mean_interarrival_s = 100.0;
  double deadline_factor = 1.0;     // df >= 1; 0 disables deadlines
  bool permute = true;              // random permutation of the pool order
};

/// Builds a trace from a pool of profiles and their solo completion times
/// (aligned by index; see MeasureSoloCompletions in core/simmr.h for the
/// standard way to obtain them). When params.num_jobs exceeds the pool
/// size, pool entries are sampled uniformly with replacement.
/// Throws std::invalid_argument on an empty pool, mismatched sizes, or
/// deadline_factor in (0, 1).
WorkloadTrace MakeWorkload(const std::vector<JobProfile>& pool,
                           const std::vector<double>& solo_completions,
                           const WorkloadParams& params, Rng& rng);

}  // namespace simmr::trace
