#include "trace/synthetic_tracegen.h"

#include <algorithm>
#include <stdexcept>

namespace simmr::trace {

JobProfile SynthesizeProfile(const SyntheticJobSpec& spec, Rng& rng) {
  if (spec.num_maps <= 0)
    throw std::invalid_argument("SynthesizeProfile: num_maps must be > 0");
  if (spec.num_reduces < 0)
    throw std::invalid_argument("SynthesizeProfile: num_reduces must be >= 0");
  if (!spec.map_duration)
    throw std::invalid_argument("SynthesizeProfile: map_duration missing");
  if (spec.num_reduces > 0 &&
      (!spec.typical_shuffle_duration || !spec.reduce_duration))
    throw std::invalid_argument(
        "SynthesizeProfile: shuffle/reduce distributions missing");

  const auto draw_nonneg = [&rng](const Distribution& dist) {
    return std::max(0.0, dist.Sample(rng));
  };

  JobProfile p;
  p.app_name = spec.app_name;
  p.dataset = spec.dataset;
  p.num_maps = spec.num_maps;
  p.num_reduces = spec.num_reduces;
  p.map_durations.reserve(spec.num_maps);
  for (int i = 0; i < spec.num_maps; ++i)
    p.map_durations.push_back(draw_nonneg(*spec.map_duration));

  const int first_wave = std::clamp(spec.first_wave_size, 0, spec.num_reduces);
  const Distribution& first_dist = spec.first_shuffle_duration
                                       ? *spec.first_shuffle_duration
                                       : *spec.typical_shuffle_duration;
  for (int i = 0; i < first_wave; ++i)
    p.first_shuffle_durations.push_back(draw_nonneg(first_dist));
  for (int i = first_wave; i < spec.num_reduces; ++i)
    p.typical_shuffle_durations.push_back(
        draw_nonneg(*spec.typical_shuffle_duration));
  for (int i = 0; i < spec.num_reduces; ++i)
    p.reduce_durations.push_back(draw_nonneg(*spec.reduce_duration));
  return p;
}

const std::vector<FacebookJobSizeBucket>& FacebookJobSizeBuckets() {
  // Approximation of Zaharia et al. Table 3 ("Delay Scheduling",
  // EuroSys'10): job-size distribution at Facebook, October 2009. The
  // original bins map counts only; reduce ranges follow the paper's
  // observation that reduce counts track map counts sublinearly.
  static const std::vector<FacebookJobSizeBucket> kBuckets = {
      {0.38, 1, 2, 1, 1},        // tiny ad-hoc queries
      {0.16, 3, 20, 1, 2},
      {0.14, 21, 60, 1, 10},
      {0.12, 61, 150, 10, 30},
      {0.10, 151, 300, 30, 60},
      {0.06, 301, 800, 60, 120},
      {0.04, 801, 2400, 120, 384},
  };
  return kBuckets;
}

JobProfile SynthesizeFacebookJob(const FacebookWorkloadModel& model, Rng& rng) {
  const auto& buckets = FacebookJobSizeBuckets();
  double pick = rng.NextDouble();
  const FacebookJobSizeBucket* bucket = &buckets.back();
  for (const auto& b : buckets) {
    if (pick < b.probability) {
      bucket = &b;
      break;
    }
    pick -= b.probability;
  }
  const int num_maps = std::min<int>(
      model.max_maps,
      bucket->maps_lo +
          static_cast<int>(rng.NextBounded(
              static_cast<std::uint64_t>(bucket->maps_hi - bucket->maps_lo) +
              1)));
  const int num_reduces = std::min<int>(
      model.max_reduces,
      bucket->reduces_lo +
          static_cast<int>(rng.NextBounded(
              static_cast<std::uint64_t>(bucket->reduces_hi -
                                         bucket->reduces_lo) +
              1)));

  const LogNormalDist map_ms(model.map_mu, model.map_sigma);
  const LogNormalDist reduce_ms(model.reduce_mu, model.reduce_sigma);

  JobProfile p;
  p.app_name = "facebook-synthetic";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.reserve(num_maps);
  for (int i = 0; i < num_maps; ++i)
    p.map_durations.push_back(map_ms.Sample(rng) / 1000.0);
  for (int i = 0; i < num_reduces; ++i) {
    // The fitted Facebook reduce duration covers shuffle + reduce; split it.
    const double total_s = reduce_ms.Sample(rng) / 1000.0;
    const double shuffle_s = total_s * model.shuffle_fraction;
    p.typical_shuffle_durations.push_back(shuffle_s);
    p.reduce_durations.push_back(total_s - shuffle_s);
  }
  return p;
}

std::vector<JobProfile> SynthesizeFacebookWorkload(
    const FacebookWorkloadModel& model, int num_jobs, Rng& rng) {
  std::vector<JobProfile> jobs;
  jobs.reserve(num_jobs);
  for (int i = 0; i < num_jobs; ++i)
    jobs.push_back(SynthesizeFacebookJob(model, rng));
  return jobs;
}

}  // namespace simmr::trace
