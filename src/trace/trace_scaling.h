// Trace scaling — the paper's stated future work (Section VII): "design a
// trace-scaling technique where from the trace of a job execution on a
// small dataset, we could generate a trace that represents job processing
// of a larger dataset."
//
// Model: map tasks process fixed-size blocks, so growing the dataset by
// `data_factor` multiplies the map count and leaves per-map durations
// distribution-invariant (they are resampled from the recorded empirical
// distribution). Intermediate data grows with the input, so each reduce
// task's shuffle and reduce durations scale with the per-reduce data
// volume: data_factor / reduce_factor.
#pragma once

#include "simcore/rng.h"
#include "trace/job_profile.h"

namespace simmr::trace {

struct ScalingParams {
  /// Input-data growth (2.0 = twice the data). Must be > 0.
  double data_factor = 1.0;
  /// Reduce-count growth. Must be > 0. 1.0 keeps N_R fixed, which
  /// concentrates the larger intermediate data on the same reduces.
  double reduce_factor = 1.0;
};

/// Produces the scaled profile. New map durations are resampled from the
/// original empirical distribution; shuffle/reduce durations are resampled
/// and then multiplied by the per-reduce data growth.
/// Throws std::invalid_argument on nonpositive factors or invalid input.
JobProfile ScaleProfile(const JobProfile& original, const ScalingParams& params,
                        Rng& rng);

}  // namespace simmr::trace
