#include "trace/mr_profiler.h"

#include <algorithm>
#include <stdexcept>

namespace simmr::trace {

JobProfile BuildProfile(const cluster::HistoryLog& log, cluster::JobId job) {
  const cluster::JobRecord& job_record = log.JobOf(job);
  auto tasks = log.TasksOf(job);
  if (tasks.empty())
    throw std::runtime_error("BuildProfile: job has no task records");

  // Replay pops durations in scheduling order, so sort by start time
  // (stable on ties to keep original record order deterministic).
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const cluster::TaskAttemptRecord& a,
                      const cluster::TaskAttemptRecord& b) {
                     return a.start < b.start;
                   });

  JobProfile profile;
  profile.app_name = job_record.app_name;
  profile.dataset = job_record.dataset;
  profile.num_maps = job_record.num_maps;
  profile.num_reduces = job_record.num_reduces;

  const double map_stage_end = job_record.maps_done_time;

  // Reduce-phase durations of first-wave tasks must precede typical-wave
  // ones so the replay's pools stay aligned; collect separately and concat.
  std::vector<double> first_wave_reduce, typical_wave_reduce;

  for (const auto& t : tasks) {
    if (!t.succeeded) continue;  // failed attempts carry no valid durations
    if (t.kind == cluster::TaskKind::kMap) {
      profile.map_durations.push_back(t.end - t.start);
      continue;
    }
    const double reduce_phase = t.end - t.shuffle_end;
    if (t.start < map_stage_end) {
      // First wave: record only the part of the shuffle that extends past
      // the end of the map stage.
      profile.first_shuffle_durations.push_back(
          std::max(0.0, t.shuffle_end - map_stage_end));
      first_wave_reduce.push_back(reduce_phase);
    } else {
      profile.typical_shuffle_durations.push_back(t.shuffle_end - t.start);
      typical_wave_reduce.push_back(reduce_phase);
    }
  }

  profile.reduce_durations = std::move(first_wave_reduce);
  profile.reduce_durations.insert(profile.reduce_durations.end(),
                                  typical_wave_reduce.begin(),
                                  typical_wave_reduce.end());
  return profile;
}

std::vector<JobProfile> BuildAllProfiles(const cluster::HistoryLog& log) {
  std::vector<JobProfile> profiles;
  profiles.reserve(log.jobs().size());
  for (const auto& job_record : log.jobs()) {
    profiles.push_back(BuildProfile(log, job_record.job));
  }
  return profiles;
}

}  // namespace simmr::trace
