// MRProfiler: JobTracker history logs -> replayable job profiles.
//
// Section III-A: MRProfiler "extracts the job performance metrics by
// processing the counters and logs stored at the JobTracker at the end of
// each job". The delicate part (Section II) is the first-wave shuffle:
// reduce tasks launched before the map stage finished have shuffle phases
// that overlap the map stage, so only the *non-overlapping* portion —
// max(0, shuffle_end - map_stage_end) — is recorded, making the profile
// invariant to the resource allocation the trace was collected under.
#pragma once

#include <vector>

#include "cluster/history_log.h"
#include "trace/job_profile.h"

namespace simmr::trace {

/// Builds the profile of one job from an execution log.
/// Throws std::out_of_range for unknown job ids and std::runtime_error when
/// the log has no tasks for the job.
JobProfile BuildProfile(const cluster::HistoryLog& log, cluster::JobId job);

/// Profiles every job present in the log, in job-record order.
std::vector<JobProfile> BuildAllProfiles(const cluster::HistoryLog& log);

}  // namespace simmr::trace
