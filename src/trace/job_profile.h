// The paper's job template: a replayable per-job profile.
//
// Section III-A: "The job template summarizes the job's essential
// performance characteristics during its execution in the cluster", namely
// (N_M, N_R), MapDurations, FirstShuffleDurations (the *non-overlapping*
// portion of first-wave shuffles), TypicalShuffleDurations and
// ReduceDurations. Section II justifies replayability: these duration
// distributions are invariant (small KL divergence) across executions of
// the same application under different resource allocations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simcore/stats.h"

namespace simmr::trace {

struct JobProfile {
  std::string app_name;
  std::string dataset;

  int num_maps = 0;
  int num_reduces = 0;

  /// Durations (seconds) of the N_M map tasks, in original start order.
  std::vector<double> map_durations;

  /// Non-overlapping portions of first-wave shuffle phases (the part that
  /// extends past the end of the map stage), in original start order.
  std::vector<double> first_shuffle_durations;

  /// Full shuffle-phase durations of reduce tasks launched after the map
  /// stage completed, in original start order.
  std::vector<double> typical_shuffle_durations;

  /// Reduce-phase durations of the N_R reduce tasks, in original start
  /// order (first-wave tasks first).
  std::vector<double> reduce_durations;

  /// Structural consistency: positive task counts, non-empty map/reduce
  /// duration pools, shuffle sample counts not exceeding N_R, and all
  /// durations finite and nonnegative. Returns an explanation or empty
  /// string when valid.
  std::string Validate() const;

  // --- Phase summaries (the statistics the ARIA model consumes) ---
  Summary MapSummary() const { return Summarize(map_durations); }
  Summary FirstShuffleSummary() const {
    return Summarize(first_shuffle_durations);
  }
  Summary TypicalShuffleSummary() const {
    return Summarize(typical_shuffle_durations);
  }
  Summary ReduceSummary() const { return Summarize(reduce_durations); }

  /// Versioned text serialization (one profile per stream).
  void Write(std::ostream& out) const;
  static JobProfile Read(std::istream& in);

  bool operator==(const JobProfile& other) const = default;
};

}  // namespace simmr::trace
