// Synthetic TraceGen: distribution-driven profile synthesis.
//
// Section III-A's second trace source: "model the distributions of the
// durations based on the statistical properties of the workloads and
// generate synthetic traces". Two generators are provided:
//
//  * a generic one driven by a SyntheticJobSpec (arbitrary distributions per
//    phase), used for what-if workloads and tests; and
//  * the paper's Facebook-2009 workload (Section V-C): map task durations
//    ~ LogNormal(9.9511, 1.6764) and reduce task durations
//    ~ LogNormal(12.375, 1.6262), both in milliseconds, as fitted by the
//    authors from Zaharia et al.'s published CDFs. Because the Facebook
//    "reduce" duration covers shuffle + reduce, the sample is split between
//    the shuffle and reduce phases by a documented fraction.
#pragma once

#include <vector>

#include "simcore/distributions.h"
#include "simcore/rng.h"
#include "trace/job_profile.h"

namespace simmr::trace {

/// Describes how to synthesize one job's profile.
struct SyntheticJobSpec {
  std::string app_name = "synthetic";
  std::string dataset;
  int num_maps = 1;
  int num_reduces = 1;
  DistributionPtr map_duration;            // required
  DistributionPtr typical_shuffle_duration;  // required when num_reduces > 0
  DistributionPtr first_shuffle_duration;  // optional; typical used if null
  DistributionPtr reduce_duration;         // required when num_reduces > 0
  /// How many reduce tasks get first-wave shuffle samples (clamped to
  /// num_reduces). The replay engine reassigns waves based on the actual
  /// allocation anyway; this only sizes the sample pools.
  int first_wave_size = 0;
};

/// Draws a complete profile from the spec. Throws std::invalid_argument on
/// missing distributions or nonpositive task counts.
JobProfile SynthesizeProfile(const SyntheticJobSpec& spec, Rng& rng);

/// Parameters of the paper's Facebook-2009 workload model.
struct FacebookWorkloadModel {
  /// LN parameters fitted by the paper (milliseconds).
  double map_mu = 9.9511;
  double map_sigma = 1.6764;
  double reduce_mu = 12.375;
  double reduce_sigma = 1.6262;

  /// Fraction of a sampled Facebook "reduce duration" attributed to the
  /// shuffle phase (the published fit covers shuffle + reduce combined).
  double shuffle_fraction = 0.4;

  /// Caps keep a single synthetic job from exceeding what a simulated
  /// cluster can reasonably hold (matches the job-size buckets below).
  int max_maps = 2400;
  int max_reduces = 384;
};

/// Job-size buckets approximating Zaharia et al. (EuroSys'10) Table 3 —
/// most Facebook jobs are tiny, a heavy tail is huge. Each bucket is
/// (probability, map-count range, reduce-count range).
struct FacebookJobSizeBucket {
  double probability;
  int maps_lo, maps_hi;
  int reduces_lo, reduces_hi;
};

/// The default bucket table used by SynthesizeFacebookJob.
const std::vector<FacebookJobSizeBucket>& FacebookJobSizeBuckets();

/// Draws one Facebook-like job profile.
JobProfile SynthesizeFacebookJob(const FacebookWorkloadModel& model, Rng& rng);

/// Draws a whole Facebook-like workload of `num_jobs` profiles.
std::vector<JobProfile> SynthesizeFacebookWorkload(
    const FacebookWorkloadModel& model, int num_jobs, Rng& rng);

}  // namespace simmr::trace
