#include "backend/run_result.h"

#include <utility>

namespace simmr::backend {

RunResult FromSimResult(core::SimResult result) {
  RunResult out;
  out.simulator = "simmr";
  out.jobs.reserve(result.jobs.size());
  for (auto& job : result.jobs) {
    JobOutcome jo;
    jo.job = job.job;
    jo.name = std::move(job.name);
    jo.submit = job.arrival;
    jo.first_launch = job.first_launch;
    jo.map_stage_end = job.map_stage_end;
    jo.finish = job.completion;
    jo.deadline = job.deadline;
    out.jobs.push_back(std::move(jo));
  }
  out.tasks = std::move(result.tasks);
  out.events_processed = result.events_processed;
  out.makespan = result.makespan;
  return out;
}

RunResult FromTestbedResult(cluster::TestbedResult result) {
  RunResult out;
  out.simulator = "testbed";
  out.jobs.reserve(result.log.jobs().size());
  for (const cluster::JobRecord& job : result.log.jobs()) {
    JobOutcome jo;
    jo.job = job.job;
    jo.name = job.app_name + (job.dataset.empty() ? "" : "/" + job.dataset);
    jo.submit = job.submit_time;
    jo.first_launch = job.launch_time;
    jo.map_stage_end = job.maps_done_time;
    jo.finish = job.finish_time;
    jo.deadline = job.deadline;
    out.jobs.push_back(std::move(jo));
  }
  // Successful attempts projected onto the engine's task-record shape so
  // progress/utilization analyses work on testbed runs too; the attempts'
  // node ids, input sizes and failures stay available via `history`.
  out.tasks.reserve(result.log.tasks().size());
  for (const cluster::TaskAttemptRecord& task : result.log.tasks()) {
    if (!task.succeeded) continue;
    out.tasks.push_back(core::SimTaskRecord{
        task.job,
        task.kind == cluster::TaskKind::kMap ? core::SimTaskKind::kMap
                                             : core::SimTaskKind::kReduce,
        task.start, task.shuffle_end, task.end});
  }
  out.events_processed = result.events_processed;
  out.makespan = result.makespan;
  out.history =
      std::make_shared<const cluster::HistoryLog>(std::move(result.log));
  return out;
}

RunResult FromMumakResult(mumak::MumakResult result) {
  RunResult out;
  out.simulator = "mumak";
  out.jobs.reserve(result.jobs.size());
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    mumak::MumakJobResult& job = result.jobs[i];
    JobOutcome jo;
    jo.job = static_cast<std::int32_t>(i);
    jo.name = std::move(job.name);
    jo.submit = job.submit_time;
    jo.finish = job.finish_time;
    out.jobs.push_back(std::move(jo));
  }
  out.events_processed = result.events_processed;
  out.makespan = result.makespan;
  return out;
}

core::SimResult ToSimResult(const RunResult& result) {
  core::SimResult out;
  out.jobs.reserve(result.jobs.size());
  for (const JobOutcome& jo : result.jobs) {
    core::JobResult job;
    job.job = jo.job;
    job.name = jo.name;
    job.arrival = jo.submit;
    job.first_launch = jo.first_launch;
    job.map_stage_end = jo.map_stage_end;
    job.completion = jo.finish;
    job.deadline = jo.deadline;
    out.jobs.push_back(std::move(job));
  }
  out.tasks = result.tasks;
  out.events_processed = result.events_processed;
  out.makespan = result.makespan;
  return out;
}

double RelativeDeadlineExceeded(std::span<const JobOutcome> jobs) {
  double utility = 0.0;
  for (const JobOutcome& job : jobs) {
    if (job.MissedDeadline())
      utility += (job.finish - job.deadline) / job.deadline;
  }
  return utility;
}

int MissedDeadlineCount(std::span<const JobOutcome> jobs) {
  int missed = 0;
  for (const JobOutcome& job : jobs) {
    if (job.MissedDeadline()) ++missed;
  }
  return missed;
}

}  // namespace simmr::backend
