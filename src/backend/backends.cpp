#include "backend/backends.h"

#include <utility>

#include "core/simmr.h"
#include "prof/profiler.h"

namespace simmr::backend {

SimmrBackend::SimmrBackend(core::SimConfig config,
                           core::SchedulerPolicy& policy,
                           trace::WorkloadTrace workload)
    : config_(std::move(config)),
      policy_(&policy),
      workload_(std::move(workload)) {}

RunResult SimmrBackend::Run() {
  const prof::ScopedTimer timer("backend/simmr");
  return FromSimResult(core::Replay(workload_, *policy_, config_));
}

TestbedBackend::TestbedBackend(std::vector<cluster::SubmittedJob> jobs,
                               cluster::TestbedOptions options)
    : jobs_(std::move(jobs)), options_(std::move(options)) {}

RunResult TestbedBackend::Run() {
  const prof::ScopedTimer timer("backend/testbed");
  return FromTestbedResult(cluster::RunTestbed(jobs_, options_));
}

MumakBackend::MumakBackend(mumak::RumenTrace trace, mumak::MumakConfig config)
    : trace_(std::move(trace)), config_(config) {}

RunResult MumakBackend::Run() {
  const prof::ScopedTimer timer("backend/mumak");
  return FromMumakResult(mumak::RunMumak(trace_, config_));
}

}  // namespace simmr::backend
