#include "backend/session.h"

#include <stdexcept>
#include <utility>

#include "backend/backends.h"
#include "core/simmr.h"
#include "sched/capacity.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "trace/trace_database.h"

namespace simmr::backend {

std::unique_ptr<core::SchedulerPolicy> MakePolicy(const std::string& name,
                                                  int map_slots,
                                                  int reduce_slots) {
  if (name == "fifo") return std::make_unique<sched::FifoPolicy>();
  if (name == "maxedf") return std::make_unique<sched::MaxEdfPolicy>();
  if (name == "minedf")
    return std::make_unique<sched::MinEdfPolicy>(map_slots, reduce_slots);
  if (name == "fair") return std::make_unique<sched::FairPolicy>();
  if (name == "capacity")
    return std::make_unique<sched::CapacityPolicy>(
        map_slots, reduce_slots,
        std::vector<sched::QueueConfig>{{"default", 1.0}});
  throw std::invalid_argument("unknown policy '" + name + "'");
}

SimSession::SimSession(
    std::shared_ptr<const std::vector<trace::JobProfile>> pool,
    std::shared_ptr<const std::vector<double>> solo_completions)
    : pool_(std::move(pool)), solos_(std::move(solo_completions)) {
  if (pool_ == nullptr || pool_->empty())
    throw std::invalid_argument("SimSession: empty profile pool");
  if (solos_ == nullptr)
    solos_ = std::make_shared<const std::vector<double>>();
  if (!solos_->empty() && solos_->size() != pool_->size())
    throw std::invalid_argument(
        "SimSession: solo completions misaligned with the pool");
}

SimSession SimSession::FromDatabase(const std::string& db_dir,
                                    const core::SimConfig& solo_config) {
  const auto db = trace::TraceDatabase::Load(db_dir);
  if (db.empty())
    throw std::invalid_argument("SimSession: trace database '" + db_dir +
                                "' is empty");
  auto pool = std::make_shared<std::vector<trace::JobProfile>>();
  for (const auto id : db.AllIds()) pool->push_back(db.Get(id));
  auto solos = std::make_shared<std::vector<double>>(
      core::MeasureSoloCompletions(*pool, solo_config));
  return SimSession(std::move(pool), std::move(solos));
}

RunResult SimSession::Replay(const ReplaySpec& spec) const {
  if (spec.deadline_factor > 0.0 && solos_->empty())
    throw std::invalid_argument(
        "SimSession::Replay: deadline_factor needs solo completions");

  trace::WorkloadParams params;
  params.num_jobs = spec.num_jobs;
  params.mean_interarrival_s =
      spec.mean_interarrival_s * spec.arrival_scale;
  params.deadline_factor = spec.deadline_factor;
  Rng rng(spec.seed);
  trace::WorkloadTrace workload =
      solos_->empty()
          ? trace::MakeWorkload(*pool_, std::vector<double>(pool_->size()),
                                params, rng)
          : trace::MakeWorkload(*pool_, *solos_, params, rng);

  core::SimConfig config;
  config.map_slots = spec.map_slots;
  config.reduce_slots = spec.reduce_slots;
  config.min_map_percent_completed = spec.slowstart;
  config.record_tasks = spec.record_tasks;
  config.observer = spec.observer;
  config.fault_plan = spec.fault_plan;

  const auto policy =
      MakePolicy(spec.policy, spec.map_slots, spec.reduce_slots);
  return SimmrBackend(config, *policy, std::move(workload)).Run();
}

}  // namespace simmr::backend
