// SimBackend: one interface in front of the three simulators.
//
// A backend owns everything one run needs — configuration, workload, and a
// borrowed observer — and produces the unified RunResult. Tools and
// benchmarks that compare simulators (simmr_compare, the Figure 5/6
// pipelines) construct the backends they want and treat them uniformly
// from there, instead of hand-wiring each simulator's config/run/result
// triple.
#pragma once

#include <memory>
#include <vector>

#include "backend/run_result.h"
#include "cluster/cluster_sim.h"
#include "core/engine.h"
#include "mumak/mumak_sim.h"
#include "mumak/rumen.h"
#include "trace/workload.h"

namespace simmr::backend {

class SimBackend {
 public:
  virtual ~SimBackend() = default;
  /// Stable simulator tag: "simmr" | "testbed" | "mumak". Matches the
  /// RunResult::simulator its Run() returns, and the `simulator` field of
  /// event-log headers.
  virtual const char* name() const = 0;
  /// Executes the configured run. Repeatable: each call is an independent
  /// simulation of the same configuration.
  virtual RunResult Run() = 0;
};

/// The task-level SimMR engine. The policy is borrowed (engine runs mutate
/// policy state, so each concurrent backend needs its own instance).
class SimmrBackend final : public SimBackend {
 public:
  SimmrBackend(core::SimConfig config, core::SchedulerPolicy& policy,
               trace::WorkloadTrace workload);
  const char* name() const override { return "simmr"; }
  RunResult Run() override;

 private:
  core::SimConfig config_;
  core::SchedulerPolicy* policy_;
  trace::WorkloadTrace workload_;
};

/// The node-level testbed emulator.
class TestbedBackend final : public SimBackend {
 public:
  TestbedBackend(std::vector<cluster::SubmittedJob> jobs,
                 cluster::TestbedOptions options);
  const char* name() const override { return "testbed"; }
  RunResult Run() override;

 private:
  std::vector<cluster::SubmittedJob> jobs_;
  cluster::TestbedOptions options_;
};

/// The Mumak baseline (heartbeat-driven, FIFO, no shuffle model).
class MumakBackend final : public SimBackend {
 public:
  MumakBackend(mumak::RumenTrace trace, mumak::MumakConfig config);
  const char* name() const override { return "mumak"; }
  RunResult Run() override;

 private:
  mumak::RumenTrace trace_;
  mumak::MumakConfig config_;
};

}  // namespace simmr::backend
