// The unified simulation result.
//
// The three simulators historically returned three incompatible structs
// (core::SimResult, cluster::TestbedResult, mumak::MumakResult), forcing
// every consumer — the analysis layer, simmr_compare, the benchmarks — to
// hand-convert each one. RunResult is the common shape they all adapt to,
// losslessly: per-job outcomes in one vocabulary, task records where the
// simulator produces them, and the full testbed HistoryLog retained so no
// node-level detail is dropped in the adaptation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "cluster/history_log.h"
#include "core/metrics.h"
#include "mumak/mumak_sim.h"
#include "simcore/time.h"

namespace simmr::backend {

/// Outcome of one simulated job, in simulator-neutral terms. Timestamps a
/// simulator does not model are -1 (Mumak reports neither first launch nor
/// the map-stage boundary per job).
struct JobOutcome {
  std::int32_t job = -1;
  std::string name;               // app[/dataset] label
  SimTime submit = 0.0;           // arrival/submission time
  SimTime first_launch = -1.0;    // first task assignment; -1 = unknown
  SimTime map_stage_end = -1.0;   // end of the map stage; -1 = unknown
  SimTime finish = 0.0;           // completion time (absolute)
  double deadline = 0.0;          // absolute; 0 = none

  SimDuration CompletionTime() const { return finish - submit; }
  bool MissedDeadline() const { return deadline > 0.0 && finish > deadline; }
};

/// What one simulator run produced, whoever ran it.
struct RunResult {
  std::string simulator;          // "simmr" | "testbed" | "mumak"
  std::vector<JobOutcome> jobs;
  /// Task-level timeline when the simulator records one: the SimMR
  /// engine's output log (record_tasks), or the testbed's successful
  /// attempts projected to the same shape. Empty for Mumak.
  std::vector<core::SimTaskRecord> tasks;
  std::uint64_t events_processed = 0;
  SimTime makespan = 0.0;
  /// The testbed's full execution log (node ids, attempts, failures,
  /// per-job input sizes) — everything the JobOutcome projection does not
  /// carry, so the adaptation is lossless. Null for the other simulators.
  std::shared_ptr<const cluster::HistoryLog> history;
};

/// Adapters from the legacy result structs. Each keeps every field of its
/// source recoverable from the RunResult.
RunResult FromSimResult(core::SimResult result);
RunResult FromTestbedResult(cluster::TestbedResult result);
RunResult FromMumakResult(mumak::MumakResult result);

/// Inverse of FromSimResult — reconstructs the engine-native result, e.g.
/// for core::WriteSimulationLogFile. Exact for RunResults that came from
/// the SimMR engine (the adaptation is lossless).
core::SimResult ToSimResult(const RunResult& result);

/// Section V-A's deadline utility and miss count over unified outcomes
/// (same definitions as the core::JobResult overloads).
double RelativeDeadlineExceeded(std::span<const JobOutcome> jobs);
int MissedDeadlineCount(std::span<const JobOutcome> jobs);

}  // namespace simmr::backend
