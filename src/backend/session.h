// SimSession: the run-spec layer over the SimMR engine.
//
// Every replay-style consumer (simmr_replay, simmr_sweep, the Monte-Carlo
// benchmarks) used to repeat the same wiring: load a profile pool, measure
// solo completion times, assemble a workload, build the policy from its
// name, attach observers, run the engine. SimSession owns the shared,
// immutable inputs (the pool and its solo completions) and turns one
// ReplaySpec into one RunResult. Sessions are safe to share across threads
// as long as each Replay() call gets its own spec — everything the run
// mutates (policy, engine, RNG) is local to the call, which is what makes
// simmr_sweep's ParallelFor over specs race-free.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend/run_result.h"
#include "core/engine.h"
#include "obs/observer.h"
#include "trace/job_profile.h"
#include "trace/workload.h"

namespace simmr::backend {

/// Builds a scheduler policy from its CLI name: fifo | maxedf | minedf |
/// fair | capacity. The slot counts parameterize the policies that need
/// the cluster size (MinEDF's ARIA allocations, Capacity's queue shares).
/// Throws std::invalid_argument on an unknown name.
std::unique_ptr<core::SchedulerPolicy> MakePolicy(const std::string& name,
                                                  int map_slots,
                                                  int reduce_slots);

/// Everything that varies between replays of one profile pool.
struct ReplaySpec {
  std::string policy = "fifo";
  int map_slots = 64;
  int reduce_slots = 64;
  double slowstart = 0.05;        // minMapPercentCompleted gate
  bool record_tasks = false;
  /// Workload assembly (Section V-B): job count (0 = one instance of each
  /// pool entry), exponential inter-arrival mean scaled by arrival_scale,
  /// deadlines in [T_J, deadline_factor * T_J] when deadline_factor >= 1.
  int num_jobs = 0;
  double mean_interarrival_s = 100.0;
  double arrival_scale = 1.0;
  double deadline_factor = 0.0;
  std::uint64_t seed = 42;
  /// Borrowed live-instrumentation sink; null keeps the engine's
  /// no-observer fast path.
  obs::SimObserver* observer = nullptr;
  /// Borrowed deterministic fault plan forwarded to
  /// core::SimConfig::fault_plan (see the geometry contract there); null
  /// keeps the fault-free fast path.
  const fault::FaultPlan* fault_plan = nullptr;
};

class SimSession {
 public:
  /// Takes the shared inputs: the profile pool and its solo completion
  /// times (T_J, aligned by index; empty disables deadline assembly and
  /// requires deadline_factor == 0 in every spec).
  SimSession(std::shared_ptr<const std::vector<trace::JobProfile>> pool,
             std::shared_ptr<const std::vector<double>> solo_completions);

  /// Convenience: loads every profile of a trace database and measures
  /// solo completions under `solo_config`'s cluster (the standard T_J
  /// definition: the job alone with all slots). Throws on an empty
  /// database.
  static SimSession FromDatabase(const std::string& db_dir,
                                 const core::SimConfig& solo_config);

  const std::vector<trace::JobProfile>& pool() const { return *pool_; }
  const std::vector<double>& solo_completions() const { return *solos_; }

  /// One full replay: assemble the workload from the spec's seed and
  /// arrival/deadline parameters, build the policy, run the engine, adapt
  /// to RunResult. Const and reentrant — concurrent calls on one session
  /// are safe.
  RunResult Replay(const ReplaySpec& spec) const;

 private:
  std::shared_ptr<const std::vector<trace::JobProfile>> pool_;
  std::shared_ptr<const std::vector<double>> solos_;
};

}  // namespace simmr::backend
