// Exploration reproducers: simmr.repro.v1 extended with a schedule.
//
// A violation found by the explorer is pinned by (scenario, schedule,
// property): replaying the recorded picks through a ScriptedOracle
// re-executes the identical interleaving bit-for-bit. The artifact is the
// existing simmr.repro.v1 document — the violating run's profiles embedded
// as the pool, so `simmr_fuzz --replay` still reads it meaningfully — with
// an exploration trailer appended after the profile blocks:
//
//   scenario pair
//   property invariants
//   fault invariants
//   explore_seed 42
//   schedule 3 0 1 2
//
// The v1 reader stops after the declared profile count and ignores
// trailing content, so the extension is backward compatible; committed
// files use the .xrepro extension and are replayed by
// `simmr_explore --replay` in the corpus regression tests.
#pragma once

#include <iosfwd>
#include <string>

#include "fuzz/repro.h"
#include "mc/explorer.h"

namespace simmr::mc {

struct ExploreReproducer {
  /// The embedded engine-format reproducer (pool = profiles of the
  /// violating run; note = first violation detail).
  fuzz::Reproducer base;
  std::string scenario;
  std::string property;
  /// ExploreOptions::fault active when the violation was found. Empty =
  /// the artifact pins a real failure (replay must be clean once fixed);
  /// non-empty = a detector pin (replay must still catch the fault).
  std::string fault;
  std::uint64_t explore_seed = 0;
  Schedule schedule;
};

/// Builds the artifact for one violation found while exploring `scenario`.
ExploreReproducer MakeExploreReproducer(const Scenario& scenario,
                                        const ExploreViolation& violation,
                                        const ExploreOptions& options);

/// Writes the extended text form (round-trips bit-exactly).
void WriteExploreReproducer(std::ostream& out, const ExploreReproducer& repro);

/// Parses an extended reproducer. Throws std::runtime_error on malformed
/// input, a missing trailer, or an unknown schedule encoding.
ExploreReproducer ReadExploreReproducer(std::istream& in);

/// File wrappers; the writer throws std::runtime_error on I/O failure.
void WriteExploreReproducerFile(const std::string& path,
                                const ExploreReproducer& repro);
ExploreReproducer ReadExploreReproducerFile(const std::string& path);

}  // namespace simmr::mc
