// Schedule oracles: concrete drivers for the kernel's choice points.
//
// A Schedule is the explorer's native representation of one interleaving:
// the pick index taken at each choice point, in order. An empty schedule is
// the kernel's default (insertion-order) run; any run can be reproduced
// bit-for-bit by replaying its recorded picks through a ScriptedOracle.
// Every oracle here records the full trail of choice points it resolved,
// which is what failure artifacts and the determinism tests consume.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/choice.h"
#include "simcore/event_names.h"
#include "simcore/rng.h"

namespace simmr::mc {

/// Pick index per choice point, in encounter order. Picks beyond the
/// vector's end default to 0 (the kernel's insertion-order choice).
using Schedule = std::vector<std::size_t>;

/// Canonical identity of one schedulable alternative. Two options with the
/// same signature are the same logical event for scheduling purposes;
/// signatures are what sleep sets and recorded schedules store.
struct ActionSig {
  SimEventKind kind = SimEventKind::kJobArrival;
  std::int32_t a = 0;
  std::int32_t b = 0;

  friend bool operator==(const ActionSig& x, const ActionSig& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const ActionSig& x, const ActionSig& y) {
    if (x.kind != y.kind) return x.kind < y.kind;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

/// Parses an option's kind name back to its enum. Throws std::logic_error
/// on a name outside the canonical vocabulary (a simulator bug).
ActionSig SigOf(const ChoiceOption& option);

/// The explorer's independence relation, deliberately conservative: an
/// action pair commutes only when reordering them provably reaches the
/// same state. Heartbeats (regular and out-of-band) drive task assignment
/// and completion visibility, so they are dependent with everything; job
/// arrivals are dependent with each other (job-id assignment order);
/// fetch checks interact with the global shuffle-flow schedule, so they
/// are dependent with everything too. What remains independent: map/reduce
/// completion bookkeeping for distinct tasks, and arrivals vs completions.
bool IndependentActions(const ActionSig& x, const ActionSig& y);

/// One resolved choice point, as recorded by every oracle below.
struct ChoiceRecord {
  SimTime time = 0.0;
  std::vector<ChoiceOption> options;  // insertion order, kind ptrs static
  std::size_t chosen = 0;
};

/// Replays a fixed pick prefix, then picks index 0 (the kernel default)
/// at every later choice point. Out-of-range prefix picks throw
/// std::logic_error at the offending choice point.
class ScriptedOracle final : public ScheduleOracle {
 public:
  explicit ScriptedOracle(Schedule prefix);

  std::size_t Choose(SimTime now,
                     const std::vector<ChoiceOption>& options) override;

  const std::vector<ChoiceRecord>& trail() const { return trail_; }

 private:
  Schedule prefix_;
  std::vector<ChoiceRecord> trail_;
};

/// Uniform seeded random pick at every choice point — the exploration
/// tail beyond the exhaustive depth, and the post-DFS sampling phase.
class RandomOracle final : public ScheduleOracle {
 public:
  explicit RandomOracle(std::uint64_t seed);

  std::size_t Choose(SimTime now,
                     const std::vector<ChoiceOption>& options) override;

  const std::vector<ChoiceRecord>& trail() const { return trail_; }

 private:
  Rng rng_;
  std::vector<ChoiceRecord> trail_;
};

/// Delegates every choice to a callable — how the DFS explorer steers a
/// run from its stack state without subclassing per strategy.
class CallbackOracle final : public ScheduleOracle {
 public:
  using Chooser =
      std::function<std::size_t(SimTime, const std::vector<ChoiceOption>&)>;
  using DispatchFn = std::function<void(SimTime, const ChoiceOption&)>;

  explicit CallbackOracle(Chooser chooser, DispatchFn on_dispatch = nullptr)
      : chooser_(std::move(chooser)), on_dispatch_(std::move(on_dispatch)) {}

  std::size_t Choose(SimTime now,
                     const std::vector<ChoiceOption>& options) override {
    return chooser_(now, options);
  }

  void OnDispatch(SimTime now, const ChoiceOption& dispatched) override {
    if (on_dispatch_) on_dispatch_(now, dispatched);
  }

 private:
  Chooser chooser_;
  DispatchFn on_dispatch_;
};

/// The schedule a trail encodes: one pick per record.
Schedule ScheduleOfTrail(const std::vector<ChoiceRecord>& trail);

}  // namespace simmr::mc
