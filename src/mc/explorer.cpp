#include "mc/explorer.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "prof/profiler.h"
#include "simcore/parallel.h"

namespace simmr::mc {
namespace {

constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

std::set<std::string> AllPropertyNames() {
  std::set<std::string> names{"invariants"};
  for (const std::string& name : check::PolicyPropertyNames())
    names.insert(name);
  return names;
}

/// Splits the selection into the observer-backed part and the
/// policy-property part; validates names.
struct PropertySelection {
  bool invariants = false;
  std::vector<std::string> policy;
};

PropertySelection SelectProperties(const ExploreOptions& options) {
  PropertySelection selection;
  if (options.properties.empty()) {
    selection.invariants = true;
    selection.policy = check::PolicyPropertyNames();
    return selection;
  }
  const std::set<std::string> known = AllPropertyNames();
  for (const std::string& name : options.properties) {
    if (known.find(name) == known.end())
      throw std::invalid_argument("Explore: unknown property '" + name +
                                  "'");
    if (name == "invariants")
      selection.invariants = true;
    else
      selection.policy.push_back(name);
  }
  return selection;
}

check::PropertyOptions MakePropertyOptions(const Scenario& scenario,
                                           const ExploreOptions& options) {
  check::PropertyOptions prop;
  prop.config.map_slots = scenario.options.config.TotalMapSlots();
  prop.config.reduce_slots = scenario.options.config.TotalReduceSlots();
  prop.config.min_map_percent_completed =
      scenario.options.config.reduce_slowstart;
  prop.replay_tolerance = scenario.replay_tolerance;
  prop.deadline_factor = scenario.deadline_factor;
  if (options.fault != "invariants") prop.fault = options.fault;
  return prop;
}

check::InvariantOptions MakeInvariantOptions(const Scenario& scenario,
                                             const ExploreOptions& options) {
  check::InvariantOptions causal;
  causal.strictness = check::Strictness::kCausal;
  causal.map_slots = scenario.options.config.TotalMapSlots();
  causal.reduce_slots = scenario.options.config.TotalReduceSlots();
  // Under a fault plan a job may be aborted with attempts still in flight
  // (max_attempts exhaustion); that is legal recovery, not a violation.
  causal.allow_job_abort = !scenario.fault_plan.Empty();
  if (options.fault == "invariants") {
    // Self-test fault: claim half the real capacity, so healthy runs look
    // oversubscribed to the observer.
    causal.map_slots = std::max(1, causal.map_slots / 2);
    causal.reduce_slots = std::max(1, causal.reduce_slots / 2);
  }
  return causal;
}

/// One scenario execution under an arbitrary oracle, with the invariant
/// observer attached and the policy properties evaluated on the log.
RunOutcome ExecuteWith(const Scenario& scenario, ScheduleOracle* oracle,
                       const PropertySelection& selection,
                       const check::PropertyOptions& prop,
                       const check::InvariantOptions& causal) {
  cluster::TestbedOptions run_options = scenario.options;
  check::InvariantObserver invariants(causal);
  run_options.observer = &invariants;
  run_options.oracle = oracle;
  if (!scenario.fault_plan.Empty())
    run_options.fault_plan = &scenario.fault_plan;

  RunOutcome outcome;
  outcome.result = cluster::RunTestbed(scenario.jobs, run_options);
  invariants.FinishRun();
  outcome.fingerprint = FingerprintLog(outcome.result.log);

  if (selection.invariants && !invariants.ok()) {
    for (check::Violation violation : invariants.violations()) {
      violation.detail =
          "[" + violation.invariant + "] " + violation.detail;
      violation.invariant = "invariants";
      outcome.violations.push_back(std::move(violation));
    }
  }
  if (!selection.policy.empty()) {
    std::vector<check::Violation> found = check::RunPolicyProperties(
        outcome.result.log, selection.policy, prop);
    outcome.violations.insert(outcome.violations.end(), found.begin(),
                              found.end());
  }
  return outcome;
}

/// Depth-first schedule enumeration with sleep-set pruning. Stateless: the
/// scenario is re-executed per schedule; the DFS stack holds one entry per
/// choice point of the current path.
class DfsExplorer {
 public:
  DfsExplorer(const Scenario& scenario, const ExploreOptions& options,
              const PropertySelection& selection,
              const check::PropertyOptions& prop,
              const check::InvariantOptions& causal, ExploreStats* stats)
      : scenario_(scenario),
        options_(options),
        selection_(selection),
        prop_(prop),
        causal_(causal),
        stats_(stats),
        seed_rng_(options.seed) {}

  /// Runs the DFS phase; invokes `on_outcome` for every executed schedule.
  template <typename OutcomeFn>
  void Run(OutcomeFn&& on_outcome) {
    bool first = true;
    while (first || !stack_.empty()) {
      first = false;
      if (stats_->dfs_executions >= options_.budget) return;  // not exhausted
      on_outcome(ExecuteOnce());
      ++stats_->dfs_executions;
      prof::Count(prof::Counter::kExploreExecutions);
      Backtrack();
    }
    stats_->exhausted = true;
  }

 private:
  struct StackNode {
    SimTime time = 0.0;
    std::vector<ChoiceOption> options;
    std::vector<ActionSig> sigs;
    std::set<ActionSig> sleep;  // on entry, fixed at creation
    std::set<ActionSig> done;   // sigs of explored alternatives
    std::vector<bool> tried;    // per alternative index
    std::size_t chosen = 0;
  };

  RunOutcome ExecuteOnce() {
    cp_index_ = 0;
    running_sleep_.clear();
    trail_.clear();
    tail_rng_ = seed_rng_.Split("tail", stats_->dfs_executions);

    CallbackOracle oracle(
        [this](SimTime now, const std::vector<ChoiceOption>& options) {
          return ChooseAt(now, options);
        },
        [this](SimTime, const ChoiceOption& dispatched) {
          WakeDependents(SigOf(dispatched));
        });
    RunOutcome outcome =
        ExecuteWith(scenario_, &oracle, selection_, prop_, causal_);
    outcome.trail = trail_;
    return outcome;
  }

  std::size_t ChooseAt(SimTime now, const std::vector<ChoiceOption>& options) {
    ++stats_->choice_points;
    prof::Count(prof::Counter::kExploreChoicePoints);
    stats_->deepest_tie = std::max<std::uint64_t>(stats_->deepest_tie,
                                                  options.size());
    std::vector<ActionSig> sigs;
    sigs.reserve(options.size());
    for (const ChoiceOption& option : options) sigs.push_back(SigOf(option));

    const std::size_t index = cp_index_++;
    std::size_t pick = 0;
    if (index < stack_.size()) {
      StackNode& node = stack_[index];
      if (sigs != node.sigs)
        throw std::logic_error(
            "DfsExplorer: schedule replay diverged at choice point " +
            std::to_string(index) + " — the scenario is nondeterministic");
      pick = node.chosen;
      running_sleep_ = node.sleep;
      running_sleep_.insert(node.done.begin(), node.done.end());
    } else if (index < static_cast<std::size_t>(options_.max_depth)) {
      StackNode node;
      node.time = now;
      node.options = options;
      node.sigs = sigs;
      node.sleep = running_sleep_;
      node.tried.assign(options.size(), false);
      pick = GreedyPick(node);
      node.chosen = pick;
      stack_.push_back(std::move(node));
      ++stats_->transitions_explored;
      stats_->frontier_high_water =
          std::max<std::uint64_t>(stats_->frontier_high_water, stack_.size());
      prof::RaiseHighWater(prof::HighWater::kExploreFrontier, stack_.size());
      StackNode& placed = stack_.back();
      running_sleep_ = placed.sleep;  // done is empty on creation
    } else {
      // Beyond the exhaustive horizon: seeded random tail. Not a stack
      // node — these picks are sampled, not enumerated.
      pick = static_cast<std::size_t>(tail_rng_.NextBounded(options.size()));
      // running_sleep_ keeps filtering via WakeDependents on dispatch.
    }
    trail_.push_back(ChoiceRecord{now, options, pick});
    return pick;
  }

  /// First alternative not asleep on entry; slept ones are marked tried
  /// and counted as pruned. When everything is asleep the run is
  /// redundant but must still finish: force index 0.
  std::size_t GreedyPick(StackNode& node) {
    std::size_t pick = kNoPick;
    for (std::size_t k = 0; k < node.sigs.size(); ++k) {
      if (options_.prune && node.sleep.count(node.sigs[k]) != 0) {
        node.tried[k] = true;
        ++stats_->transitions_pruned;
        prof::Count(prof::Counter::kExplorePruned);
        continue;
      }
      pick = k;
      break;
    }
    if (pick == kNoPick) {
      ++stats_->sleep_blocked;
      node.tried.assign(node.sigs.size(), true);  // nothing left to explore
      pick = 0;
    }
    return pick;
  }

  void WakeDependents(const ActionSig& dispatched) {
    for (auto it = running_sleep_.begin(); it != running_sleep_.end();) {
      if (!IndependentActions(*it, dispatched))
        it = running_sleep_.erase(it);
      else
        ++it;
    }
  }

  void Backtrack() {
    while (!stack_.empty()) {
      StackNode& node = stack_.back();
      node.done.insert(node.sigs[node.chosen]);
      node.tried[node.chosen] = true;
      std::size_t next = kNoPick;
      for (std::size_t k = 0; k < node.sigs.size(); ++k) {
        if (node.tried[k]) continue;
        if (node.done.count(node.sigs[k]) != 0) {
          node.tried[k] = true;  // duplicate signature, already covered
          continue;
        }
        if (options_.prune && node.sleep.count(node.sigs[k]) != 0) {
          node.tried[k] = true;
          ++stats_->transitions_pruned;
          prof::Count(prof::Counter::kExplorePruned);
          continue;
        }
        next = k;
        break;
      }
      if (next != kNoPick) {
        node.chosen = next;
        ++stats_->transitions_explored;
        return;
      }
      stack_.pop_back();
    }
  }

  const Scenario& scenario_;
  const ExploreOptions& options_;
  const PropertySelection& selection_;
  const check::PropertyOptions& prop_;
  const check::InvariantOptions& causal_;
  ExploreStats* stats_;
  Rng seed_rng_;
  Rng tail_rng_{0};

  std::vector<StackNode> stack_;
  std::set<ActionSig> running_sleep_;
  std::vector<ChoiceRecord> trail_;
  std::size_t cp_index_ = 0;
};

/// True when `outcome` still violates `property`.
bool Violates(const RunOutcome& outcome, const std::string& property) {
  for (const check::Violation& violation : outcome.violations)
    if (violation.invariant == property) return true;
  return false;
}

void StripTrailingDefaults(Schedule* schedule) {
  while (!schedule->empty() && schedule->back() == 0) schedule->pop_back();
}

}  // namespace

std::uint64_t FingerprintLog(const cluster::HistoryLog& log) {
  std::ostringstream serialized;
  log.Write(serialized);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(serialized.str());
  while (std::getline(in, line)) lines.push_back(line);
  // Canonical order: independent-event reorderings may permute record
  // order without changing the execution's substance.
  std::sort(lines.begin(), lines.end());
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const std::string& sorted_line : lines) {
    for (const char c : sorted_line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ULL;
  }
  return hash;
}

RunOutcome RunSchedule(const Scenario& scenario, const Schedule& schedule,
                       const ExploreOptions& options) {
  const PropertySelection selection = SelectProperties(options);
  const check::PropertyOptions prop = MakePropertyOptions(scenario, options);
  const check::InvariantOptions causal =
      MakeInvariantOptions(scenario, options);
  ScriptedOracle oracle(schedule);
  RunOutcome outcome =
      ExecuteWith(scenario, &oracle, selection, prop, causal);
  outcome.trail = oracle.trail();
  return outcome;
}

Schedule ShrinkSchedule(const Scenario& scenario, const Schedule& schedule,
                        const std::string& property,
                        const ExploreOptions& options,
                        std::uint64_t* probes) {
  std::uint64_t probe_count = 0;
  const auto fails = [&](const Schedule& candidate) {
    ++probe_count;
    return Violates(RunSchedule(scenario, candidate, options), property);
  };

  Schedule current = schedule;
  StripTrailingDefaults(&current);
  if (!fails(current)) {
    // The violation does not reproduce under its own schedule — report the
    // input unshrunk rather than minimize a different failure.
    if (probes != nullptr) *probes = probe_count;
    return schedule;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // Zero out chunks of non-default picks, largest chunks first
    // (ddmin-style: a reduction is kept only if the violation survives).
    for (std::size_t chunk = current.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start < current.size(); start += chunk) {
        const std::size_t end = std::min(start + chunk, current.size());
        bool any_nonzero = false;
        for (std::size_t i = start; i < end; ++i)
          any_nonzero = any_nonzero || current[i] != 0;
        if (!any_nonzero) continue;
        Schedule candidate = current;
        for (std::size_t i = start; i < end; ++i) candidate[i] = 0;
        StripTrailingDefaults(&candidate);
        if (fails(candidate)) {
          current = candidate;
          changed = true;
        }
      }
      if (chunk == 1) break;
    }
    // Decrement surviving picks toward the default.
    for (std::size_t i = 0; i < current.size(); ++i) {
      while (current[i] > 0) {
        Schedule candidate = current;
        --candidate[i];
        StripTrailingDefaults(&candidate);
        if (!fails(candidate)) break;
        current = candidate;
        changed = true;
        if (i >= current.size()) break;
      }
      if (i >= current.size()) break;
    }
    StripTrailingDefaults(&current);
  }
  if (probes != nullptr) *probes = probe_count;
  return current;
}

ExploreResult Explore(const Scenario& scenario,
                      const ExploreOptions& options) {
  if (options.budget == 0)
    throw std::invalid_argument("Explore: budget must be positive");
  if (options.max_depth <= 0)
    throw std::invalid_argument("Explore: depth must be positive");
  const PropertySelection selection = SelectProperties(options);
  const check::PropertyOptions prop = MakePropertyOptions(scenario, options);
  const check::InvariantOptions causal =
      MakeInvariantOptions(scenario, options);

  ExploreResult result;
  std::set<std::uint64_t> fingerprints;
  std::set<std::string> seen_properties;

  const auto record_outcome = [&](const RunOutcome& outcome) {
    fingerprints.insert(outcome.fingerprint);
    if (outcome.violations.empty()) return;
    for (const check::Violation& violation : outcome.violations) {
      if (result.violations.size() >= options.max_violations) break;
      // One artifact per property: every schedule of a broken detector
      // violates, and a thousand copies of the same finding help nobody.
      if (!seen_properties.insert(violation.invariant).second) continue;
      ExploreViolation found;
      found.property = violation.invariant;
      found.detail = violation.detail;
      found.schedule = ScheduleOfTrail(outcome.trail);
      found.fingerprint = outcome.fingerprint;
      found.shrunk = ShrinkSchedule(scenario, found.schedule, found.property,
                                    options, &found.shrink_probes);
      result.violations.push_back(std::move(found));
    }
  };

  // Phase 1: exhaustive DFS with sleep sets up to max_depth.
  DfsExplorer dfs(scenario, options, selection, prop, causal, &result.stats);
  dfs.Run(record_outcome);

  // Phase 2: seeded random sampling, deterministically merged by index so
  // the result is identical for every thread count.
  if (options.random_executions > 0) {
    const Rng seed_rng(options.seed);
    std::vector<RunOutcome> outcomes(options.random_executions);
    ParallelFor(
        options.random_executions,
        [&](std::size_t i) {
          RandomOracle oracle(seed_rng.Split("random", i).seed() ^
                              HashName("mc-random") ^ i);
          outcomes[i] =
              ExecuteWith(scenario, &oracle, selection, prop, causal);
          outcomes[i].trail = oracle.trail();
        },
        options.threads);
    for (const RunOutcome& outcome : outcomes) {
      ++result.stats.random_executions;
      prof::Count(prof::Counter::kExploreExecutions);
      record_outcome(outcome);
    }
  }

  result.stats.executions =
      result.stats.dfs_executions + result.stats.random_executions;
  result.stats.distinct_terminals = fingerprints.size();
  result.fingerprints.assign(fingerprints.begin(), fingerprints.end());
  return result;
}

}  // namespace simmr::mc
