#include "mc/oracles.h"

#include <stdexcept>
#include <string>

namespace simmr::mc {

ActionSig SigOf(const ChoiceOption& option) {
  const std::optional<SimEventKind> kind = ParseSimEventKind(option.kind);
  if (!kind)
    throw std::logic_error(std::string("SigOf: unknown event kind '") +
                           option.kind + "'");
  return ActionSig{*kind, option.a, option.b};
}

bool IndependentActions(const ActionSig& x, const ActionSig& y) {
  if (x == y) return false;  // an action never commutes with itself
  // Fetch checks carry a generation stamp and no-op when superseded;
  // ScheduleFetchCheck bumps the generation before every schedule, so at
  // most one of any set of pending checks is live and reordering them
  // commutes. Reordering a check against anything else does not: a
  // completion can bump the generation and stale the check.
  if (x.kind == SimEventKind::kFetchCheck &&
      y.kind == SimEventKind::kFetchCheck)
    return true;
  const auto global = [](SimEventKind kind) {
    // Heartbeats mutate assignment state for every job; fetch checks
    // rebuild the shared shuffle-flow schedule and can be invalidated by
    // any completion that bumps the generation. Treat them as dependent
    // with everything else.
    return kind == SimEventKind::kHeartbeat ||
           kind == SimEventKind::kOobHeartbeat ||
           kind == SimEventKind::kFetchCheck;
  };
  if (global(x.kind) || global(y.kind)) return false;
  // Job-id assignment order is observable state: arrivals don't commute.
  if (x.kind == SimEventKind::kJobArrival &&
      y.kind == SimEventKind::kJobArrival)
    return false;
  const auto completion = [](SimEventKind kind) {
    return kind == SimEventKind::kMapDataReady ||
           kind == SimEventKind::kReduceDone;
  };
  const auto local = [&](SimEventKind kind) {
    return kind == SimEventKind::kJobArrival || completion(kind);
  };
  // Distinct task completions touch disjoint task/slot state; an arrival
  // only appends a job the next heartbeat will consider.
  return local(x.kind) && local(y.kind);
}

ScriptedOracle::ScriptedOracle(Schedule prefix) : prefix_(std::move(prefix)) {}

std::size_t ScriptedOracle::Choose(SimTime now,
                                   const std::vector<ChoiceOption>& options) {
  const std::size_t index = trail_.size();
  std::size_t pick = index < prefix_.size() ? prefix_[index] : 0;
  if (pick >= options.size())
    throw std::logic_error("ScriptedOracle: pick " + std::to_string(pick) +
                           " at choice point " + std::to_string(index) +
                           " exceeds " + std::to_string(options.size()) +
                           " alternatives");
  trail_.push_back(ChoiceRecord{now, options, pick});
  return pick;
}

RandomOracle::RandomOracle(std::uint64_t seed) : rng_(seed) {}

std::size_t RandomOracle::Choose(SimTime now,
                                 const std::vector<ChoiceOption>& options) {
  const std::size_t pick =
      static_cast<std::size_t>(rng_.NextBounded(options.size()));
  trail_.push_back(ChoiceRecord{now, options, pick});
  return pick;
}

Schedule ScheduleOfTrail(const std::vector<ChoiceRecord>& trail) {
  Schedule schedule;
  schedule.reserve(trail.size());
  for (const ChoiceRecord& record : trail) schedule.push_back(record.chosen);
  return schedule;
}

}  // namespace simmr::mc
