#include "mc/explore_repro.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "trace/mr_profiler.h"

namespace simmr::mc {
namespace {

/// Reads "key value..." asserting the key; returns the value part.
std::string ReadTrailerField(std::istream& in, const char* key) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error(
        std::string("explore reproducer: missing trailer field ") + key);
  const auto space = line.find(' ');
  const std::string seen = line.substr(0, space);
  if (seen != key)
    throw std::runtime_error(std::string("explore reproducer: expected ") +
                             key + ", got '" + line + "'");
  return space == std::string::npos ? std::string() : line.substr(space + 1);
}

}  // namespace

ExploreReproducer MakeExploreReproducer(const Scenario& scenario,
                                        const ExploreViolation& violation,
                                        const ExploreOptions& options) {
  ExploreReproducer repro;
  repro.scenario = scenario.name;
  repro.property = violation.property;
  repro.fault = options.fault;
  repro.explore_seed = options.seed;
  repro.schedule = violation.shrunk;

  repro.base.master_seed = options.seed;
  repro.base.note = "[" + violation.property + "] " + violation.detail;
  repro.base.spec.policy = "fifo";
  repro.base.spec.map_slots = scenario.options.config.TotalMapSlots();
  repro.base.spec.reduce_slots = scenario.options.config.TotalReduceSlots();
  repro.base.spec.slowstart = scenario.options.config.reduce_slowstart;
  repro.base.spec.deadline_factor = 0.0;
  repro.base.spec.seed = scenario.options.seed;
  // The pool pins the violating interleaving's profiles so the artifact is
  // self-contained even for plain simmr.repro.v1 readers.
  const RunOutcome outcome =
      RunSchedule(scenario, violation.shrunk, options);
  repro.base.pool = trace::BuildAllProfiles(outcome.result.log);
  repro.base.spec.num_jobs = static_cast<int>(repro.base.pool.size());
  return repro;
}

void WriteExploreReproducer(std::ostream& out,
                            const ExploreReproducer& repro) {
  fuzz::WriteReproducer(out, repro.base);
  out << "scenario " << repro.scenario << '\n';
  out << "property " << repro.property << '\n';
  out << "fault " << repro.fault << '\n';
  out << "explore_seed " << repro.explore_seed << '\n';
  out << "schedule " << repro.schedule.size();
  for (const std::size_t pick : repro.schedule) out << ' ' << pick;
  out << '\n';
}

ExploreReproducer ReadExploreReproducer(std::istream& in) {
  ExploreReproducer repro;
  repro.base = fuzz::ReadReproducer(in);
  repro.scenario = ReadTrailerField(in, "scenario");
  repro.property = ReadTrailerField(in, "property");
  repro.fault = ReadTrailerField(in, "fault");
  repro.explore_seed = std::stoull(ReadTrailerField(in, "explore_seed"));
  std::istringstream schedule_in(ReadTrailerField(in, "schedule"));
  std::size_t count = 0;
  if (!(schedule_in >> count))
    throw std::runtime_error("explore reproducer: malformed schedule line");
  repro.schedule.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(schedule_in >> repro.schedule[i]))
      throw std::runtime_error(
          "explore reproducer: schedule shorter than its declared count");
  }
  return repro;
}

void WriteExploreReproducerFile(const std::string& path,
                                const ExploreReproducer& repro) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("explore reproducer: cannot open " + path);
  WriteExploreReproducer(out, repro);
  out.flush();
  if (!out)
    throw std::runtime_error("explore reproducer: write failed for " + path);
}

ExploreReproducer ReadExploreReproducerFile(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("explore reproducer: cannot open " + path);
  return ReadExploreReproducer(in);
}

}  // namespace simmr::mc
