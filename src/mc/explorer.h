// Stateless model checker for scheduler interleavings.
//
// The testbed emulator is deterministic except where events tie at the
// same simulated instant; there the dispatch order is a free choice
// (simcore/choice.h). This explorer enumerates those choices
// depth-first, re-executing the scenario from scratch per schedule — no
// state capture, the schedule prefix IS the state — with sleep-set
// pruning in the DPOR family: once an alternative `a` has been explored
// at a choice point, sibling subtrees reached via actions independent of
// `a` (mc/oracles.h's IndependentActions) need not re-explore `a`, so it
// is put to sleep there. Sleeping actions that become the sole runnable
// event are force-dispatched: that only costs pruning, never coverage.
//
// Choice points beyond `max_depth` are resolved by a per-execution seeded
// random tail, and an optional post-DFS phase samples `random_executions`
// fully random schedules — the exhaustive core stays tractable while the
// deep tail still gets coverage. Every execution runs under a causal-mode
// invariant observer plus the check::PolicyProperties suite; violations
// are ddmin-shrunk to a minimal schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant_observer.h"
#include "check/policy_properties.h"
#include "mc/oracles.h"
#include "mc/scenario.h"

namespace simmr::mc {

struct ExploreOptions {
  /// Choice points enumerated exhaustively per run; deeper ones are
  /// resolved by the seeded random tail.
  int max_depth = 64;
  /// Maximum executions across the DFS phase. Throws when zero — a
  /// zero-budget exploration can make no claim at all.
  std::uint64_t budget = 20000;
  /// Seeds the random tails and the random sampling phase.
  std::uint64_t seed = 42;
  /// Extra fully-random executions after the DFS phase.
  std::uint64_t random_executions = 0;
  /// Sleep-set pruning; off = naive full enumeration (the baseline the
  /// pruning tests compare against).
  bool prune = true;
  /// Worker threads for the random phase (the DFS phase is inherently
  /// sequential). Results are merged in index order, so the outcome is
  /// identical for every thread count.
  unsigned threads = 1;
  /// Property subset to check (check::PolicyPropertyNames() plus
  /// "invariants"); empty = all. Unknown names throw.
  std::vector<std::string> properties;
  /// Keep at most this many violations (each is shrunk, which re-executes
  /// many schedules).
  std::size_t max_violations = 8;
  /// Detector self-test fault, forwarded to check::PropertyOptions::fault;
  /// additionally "invariants" halves the slot counts the invariant
  /// observer is told about, so healthy runs appear to oversubscribe.
  std::string fault;
};

/// One property violation found during exploration, with the schedule
/// that triggers it and its ddmin-minimized form.
struct ExploreViolation {
  std::string property;  // "invariants" or a policy property name
  std::string detail;    // first violation detail from the checker
  Schedule schedule;     // full pick trail of the violating execution
  Schedule shrunk;       // minimal schedule still violating `property`
  std::uint64_t fingerprint = 0;  // terminal fingerprint of the violating run
  std::uint64_t shrink_probes = 0;
};

struct ExploreStats {
  std::uint64_t executions = 0;        // total (DFS + random phase)
  std::uint64_t dfs_executions = 0;
  std::uint64_t random_executions = 0;
  std::uint64_t choice_points = 0;     // oracle consultations, all runs
  std::uint64_t transitions_explored = 0;  // alternatives descended into
  std::uint64_t transitions_pruned = 0;    // sleep-set skips
  std::uint64_t sleep_blocked = 0;     // forced picks with every option asleep
  std::uint64_t frontier_high_water = 0;   // deepest DFS stack
  std::uint64_t deepest_tie = 0;       // widest single choice point
  std::uint64_t distinct_terminals = 0;    // |{terminal fingerprints}|
  /// True when the DFS enumerated every schedule within max_depth without
  /// hitting the budget.
  bool exhausted = false;
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<ExploreViolation> violations;
  /// Sorted distinct terminal-state fingerprints — the explorer's notion
  /// of "behaviours reached". Two explorations cover the same behaviour
  /// set iff these vectors are equal.
  std::vector<std::uint64_t> fingerprints;
};

/// Order-insensitive 64-bit fingerprint of a testbed execution log:
/// FNV-1a over the canonically sorted serialization lines, so benign
/// record-order permutations from reordering independent events hash
/// equal while any timing or structural difference hashes apart.
std::uint64_t FingerprintLog(const cluster::HistoryLog& log);

/// Outcome of one scenario execution under one schedule.
struct RunOutcome {
  cluster::TestbedResult result;
  std::vector<ChoiceRecord> trail;
  std::uint64_t fingerprint = 0;
  /// Violations with property names in Violation::invariant (empty = run
  /// is clean under the selected properties).
  std::vector<check::Violation> violations;
};

/// Executes the scenario once under `schedule` (picks beyond its end
/// default to 0) and evaluates the selected properties — the replay path
/// behind `simmr_explore --replay` and the brute-force cross-check tests.
RunOutcome RunSchedule(const Scenario& scenario, const Schedule& schedule,
                       const ExploreOptions& options);

/// ddmin over a violating schedule: zeroes pick chunks (largest first),
/// truncates default tails and decrements surviving picks, keeping each
/// reduction only if a violation of `property` persists. Returns the
/// minimal schedule; `probes` counts re-executions spent.
Schedule ShrinkSchedule(const Scenario& scenario, const Schedule& schedule,
                        const std::string& property,
                        const ExploreOptions& options, std::uint64_t* probes);

/// Explores the scenario's interleavings. Throws std::invalid_argument on
/// zero budget, nonpositive depth, or unknown property names.
ExploreResult Explore(const Scenario& scenario, const ExploreOptions& options);

}  // namespace simmr::mc
