// Exploration scenarios: tiny, noise-free testbed workloads whose only
// nondeterminism is schedule order.
//
// The explorer re-executes a scenario once per interleaving, so scenarios
// must be (a) small enough that exhaustive enumeration terminates in test
// time, and (b) free of stochastic noise (zero duration sigmas, zero node
// speed spread, no failure injection) so that identical tasks genuinely
// tie at identical instants — otherwise there are no races to explore and
// a replayed schedule would not be deterministic. Heartbeat staggering is
// disabled so all trackers beat at the same instants, making each round's
// arrival order at the JobTracker a real choice point.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "fault/fault_plan.h"

namespace simmr::mc {

/// One named exploration workload: a testbed configuration plus its job
/// submissions and the property-suite parameters appropriate to its scale.
struct Scenario {
  std::string name;
  cluster::TestbedOptions options;  // observer/oracle left null
  std::vector<cluster::SubmittedJob> jobs;
  /// Per-job relative error bound for the replay_accuracy property. Wider
  /// than the fuzzer's solo-job gate: these jobs contend on a 2-3 node
  /// cluster where heartbeat quantization is a large fraction of the
  /// (tiny) job durations.
  double replay_tolerance = 0.0;
  /// Deadline factor for the EDF dominance property.
  double deadline_factor = 1.5;
  /// Owned deterministic fault plan injected into every execution (the
  /// "lostnode" scenario). Deterministic faults keep schedules replayable:
  /// the plan fires at fixed sim-times, so the only nondeterminism is
  /// still the dispatch order at ties. Empty = fault-free.
  fault::FaultPlan fault_plan;
};

/// Names accepted by MakeScenario (and simmr_explore --scenario):
///   "pair"    2 identical 1-map/1-reduce jobs on 2 trackers — small enough
///             to enumerate exhaustively and cross-check against brute
///             force.
///   "pair2"   2 identical 2-map jobs on 2 trackers — the jobs contend for
///             map slots, which makes capacity-queue starvation observable
///             (the capacity detector self-test workload).
///   "smoke3"  3 identical jobs on 3 trackers — the pruning benchmark.
///   "lostnode" 2 two-map jobs on 3 trackers with a fault plan that
///             crashes a node mid-run and restores it later. The schedule
///             decides which attempts and map outputs are on the dead node
///             when the (shortened) expiry fires, so interleavings diverge
///             in what gets re-executed — the recovery paths under
///             exploration.
std::vector<std::string> ScenarioNames();

/// Builds a scenario by name. Throws std::invalid_argument on unknown
/// names.
Scenario MakeScenario(const std::string& name);

}  // namespace simmr::mc
