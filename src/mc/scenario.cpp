#include "mc/scenario.h"

#include <stdexcept>

namespace simmr::mc {
namespace {

/// Noise-free application model: every duration is a pure function of the
/// input size, so equal jobs produce equal task durations and genuine
/// event-time ties. Costs are scaled down to keep makespans (and hence
/// heartbeat-round counts, the dominant choice-point source) small.
cluster::AppModel DeterministicApp() {
  cluster::AppModel app;
  app.name = "mcdet";
  app.map_cost_s_per_mb = 0.05;
  app.map_startup_s = 1.0;
  app.map_sigma = 0.0;
  app.map_selectivity = 0.15;
  app.merge_cost_s_per_mb = 0.01;
  app.reduce_cost_s_per_mb = 0.05;
  app.reduce_startup_s = 1.0;
  app.reduce_sigma = 0.0;
  return app;
}

cluster::ClusterConfig DeterministicCluster(int nodes) {
  cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.num_racks = 1;
  config.map_slots_per_node = 1;
  config.reduce_slots_per_node = 1;
  config.heartbeat_stagger = false;  // simultaneous beats => real races
  config.node_speed_sigma = 0.0;
  config.task_failure_prob = 0.0;
  config.speculative_execution = false;
  config.model_locality = false;
  return config;
}

cluster::SubmittedJob Job(double input_mb, int reduces, double submit) {
  cluster::JobSpec spec;
  spec.app = DeterministicApp();
  spec.dataset_label = "mc-" + std::to_string(static_cast<int>(input_mb)) +
                       "mb";
  spec.input_mb = input_mb;
  spec.num_reduces = reduces;
  return {spec, submit, 0.0};
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  return {"pair", "pair2", "smoke3", "lostnode"};
}

Scenario MakeScenario(const std::string& name) {
  Scenario scenario;
  scenario.name = name;
  if (name == "pair") {
    // Two identical single-map single-reduce jobs arriving together on two
    // trackers: a two-way arrival tie, then a two-way heartbeat tie per
    // round, then completion-report ties. Small enough for exhaustive
    // enumeration.
    scenario.options.config = DeterministicCluster(2);
    scenario.options.seed = 7;
    scenario.jobs = {Job(64.0, 1, 0.0), Job(64.0, 1, 0.0)};
    scenario.replay_tolerance = 0.75;
  } else if (name == "pair2") {
    // Like "pair" but with two map tasks per job, so the two jobs genuinely
    // contend for map slots. That contention is what makes queue starvation
    // observable: the capacity detector self-test needs a workload where
    // two half-capacity queues actually schedule differently from FIFO,
    // which single-map jobs (one slot each, no queue ever waits) cannot.
    scenario.options.config = DeterministicCluster(2);
    scenario.options.seed = 7;
    scenario.jobs = {Job(128.0, 1, 0.0), Job(128.0, 1, 0.0)};
    scenario.replay_tolerance = 0.75;
  } else if (name == "smoke3") {
    // Three identical jobs on three trackers: three-way heartbeat races
    // every round and three-way completion-report ties — the scenario
    // where sleep-set pruning pays. Arrivals are separated (no arrival
    // ties) and out-of-band heartbeats are off, which keeps the
    // dependent-tie branching factor low enough to enumerate.
    scenario.options.config = DeterministicCluster(3);
    scenario.options.config.out_of_band_heartbeat = false;
    scenario.options.seed = 7;
    scenario.jobs = {Job(64.0, 1, 0.0), Job(64.0, 1, 0.1), Job(64.0, 1, 0.2)};
    scenario.replay_tolerance = 0.75;
  } else if (name == "lostnode") {
    // Two two-map jobs on three trackers; node 2 crashes during the first
    // map wave and rejoins later. The schedule decides which job's
    // attempts and completed map outputs sit on the dead node when the
    // (shortened) expiry declares it lost, so interleavings genuinely
    // diverge in *what* gets killed and re-executed — exactly the
    // recovery paths the explorer should enumerate. The crash and restore
    // fire at fixed sim-times, so each schedule still replays
    // deterministically. The replay tolerance is wide: the testbed ground
    // truth includes the expiry wait and re-execution that the fault-free
    // engine replay cannot see.
    scenario.options.config = DeterministicCluster(3);
    scenario.options.config.tasktracker_expiry_interval = 9.0;
    scenario.options.seed = 7;
    scenario.jobs = {Job(128.0, 1, 0.0), Job(128.0, 1, 0.1)};
    fault::FaultAction crash;
    crash.kind = fault::FaultActionKind::kNodeCrash;
    crash.time = 2.0;
    crash.node = 2;
    fault::FaultAction restore;
    restore.kind = fault::FaultActionKind::kNodeRestore;
    restore.time = 30.0;
    restore.node = 2;
    scenario.fault_plan.num_nodes = 3;
    scenario.fault_plan.map_slots_per_node = 1;
    scenario.fault_plan.reduce_slots_per_node = 1;
    scenario.fault_plan.actions = {crash, restore};
    scenario.replay_tolerance = 2.0;
  } else {
    throw std::invalid_argument("MakeScenario: unknown scenario '" + name +
                                "' (try: pair, pair2, smoke3, lostnode)");
  }
  return scenario;
}

}  // namespace simmr::mc
