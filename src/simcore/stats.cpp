#include "simcore/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace simmr {

Summary Summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (const double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(s.count));
  return s;
}

MeanCi MeanConfidenceInterval(std::span<const double> values, double z) {
  if (values.empty())
    throw std::invalid_argument("MeanConfidenceInterval: empty sample");
  MeanCi ci;
  double sum = 0.0;
  for (const double v : values) sum += v;
  ci.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) return ci;
  double ss = 0.0;
  for (const double v : values) ss += (v - ci.mean) * (v - ci.mean);
  const double sample_stddev =
      std::sqrt(ss / static_cast<double>(values.size() - 1));
  ci.half_width =
      z * sample_stddev / std::sqrt(static_cast<double>(values.size()));
  return ci;
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("Percentile: p outside [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Ecdf::Ecdf(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double q) const {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf::Quantile: empty");
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())) - 1);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<double> HistogramDensity(std::span<const double> values, double lo,
                                     double hi, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("HistogramDensity: zero bins");
  if (hi <= lo) hi = lo + 1.0;  // degenerate range: single effective bin
  std::vector<double> density(bins, 0.0);
  if (values.empty()) return density;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : values) {
    auto bin = static_cast<long>((v - lo) / width);
    bin = std::clamp(bin, 0L, static_cast<long>(bins) - 1L);
    density[static_cast<std::size_t>(bin)] += 1.0;
  }
  const double n = static_cast<double>(values.size());
  for (double& d : density) d /= n;
  return density;
}

double KlDivergence(std::span<const double> p, std::span<const double> q,
                    double epsilon) {
  if (p.size() != q.size())
    throw std::invalid_argument("KlDivergence: size mismatch");
  // Laplace-style smoothing keeps log ratios finite on empirical histograms.
  std::vector<double> ps(p.begin(), p.end()), qs(q.begin(), q.end());
  double psum = 0.0, qsum = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i] += epsilon;
    qs[i] += epsilon;
    psum += ps[i];
    qsum += qs[i];
  }
  double d = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double pi = ps[i] / psum;
    const double qi = qs[i] / qsum;
    d += pi * std::log(pi / qi);
  }
  return d;
}

double SymmetricKlDivergence(std::span<const double> p,
                             std::span<const double> q, double epsilon) {
  return 0.5 * (KlDivergence(p, q, epsilon) + KlDivergence(q, p, epsilon));
}

double SampleSymmetricKl(std::span<const double> a, std::span<const double> b,
                         std::size_t bins) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("SampleSymmetricKl: empty sample");
  double lo = a[0], hi = a[0];
  for (const double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (const double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const auto pa = HistogramDensity(a, lo, hi, bins);
  const auto pb = HistogramDensity(b, lo, hi, bins);
  return SymmetricKlDivergence(pa, pb);
}

double KsTwoSample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("KsTwoSample: empty sample");
  std::vector<double> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

}  // namespace simmr
