// Distribution fitting and model selection.
//
// Section V-C of the paper fits ~60 candidate families to the Facebook task
// duration CDF with StatAssist and selects LogNormal by Kolmogorov-Smirnov
// distance. This module reproduces that workflow for a representative family
// set: each fitter estimates parameters from a sample (MLE where tractable,
// method of moments otherwise) and FitBest ranks families by the one-sample
// KS statistic of the fitted model.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "simcore/distributions.h"

namespace simmr {

/// One fitted candidate: the distribution, its family name and KS distance.
struct FitResult {
  DistributionPtr dist;
  std::string family;
  double ks_statistic = 0.0;
};

/// MLE fit of Normal(mu, sigma). Requires n >= 2 and nonzero variance.
std::optional<FitResult> FitNormal(std::span<const double> sample);

/// MLE fit of LogNormal: Normal MLE on log-samples. Requires all-positive
/// samples, n >= 2, nonzero log-variance.
std::optional<FitResult> FitLogNormal(std::span<const double> sample);

/// MLE fit of Exponential (lambda = 1/mean). Requires positive mean.
std::optional<FitResult> FitExponential(std::span<const double> sample);

/// Min/max fit of Uniform.
std::optional<FitResult> FitUniform(std::span<const double> sample);

/// MLE fit of Weibull via Newton iteration on the shape equation.
std::optional<FitResult> FitWeibull(std::span<const double> sample);

/// MLE fit of Gamma via the Minka/Choi-Wette fixed-point iteration using
/// digamma/trigamma.
std::optional<FitResult> FitGamma(std::span<const double> sample);

/// MLE fit of Pareto (xm = min sample, alpha = n / sum log(x/xm)).
std::optional<FitResult> FitPareto(std::span<const double> sample);

/// Fits every family that accepts the sample and returns candidates sorted
/// by ascending KS statistic (best first). Never returns an empty vector for
/// a sample with n >= 2 distinct positive values.
std::vector<FitResult> FitBest(std::span<const double> sample);

/// Digamma function psi(x) (derivative of lgamma), for x > 0.
double Digamma(double x);

/// Trigamma function psi'(x), for x > 0.
double Trigamma(double x);

}  // namespace simmr
