#include "simcore/distributions.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace simmr {
namespace {

std::string Format(const char* fmt, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

std::string Format1(const char* fmt, double a) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

}  // namespace

double StdNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

std::vector<double> Distribution::SampleMany(Rng& rng, std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Sample(rng));
  return out;
}

DeterministicDist::DeterministicDist(double value) : value_(value) {}

std::string DeterministicDist::Describe() const {
  return Format1("Deterministic(%g)", value_);
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("UniformDist: hi < lo");
}

double UniformDist::Sample(Rng& rng) const { return rng.NextDouble(lo_, hi_); }

double UniformDist::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDist::Variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::string UniformDist::Describe() const {
  return Format("Uniform(%g, %g)", lo_, hi_);
}

ExponentialDist::ExponentialDist(double lambda) : lambda_(lambda) {
  if (lambda <= 0) throw std::invalid_argument("ExponentialDist: lambda <= 0");
}

double ExponentialDist::Sample(Rng& rng) const {
  // 1 - U avoids log(0).
  return -std::log(1.0 - rng.NextDouble()) / lambda_;
}

double ExponentialDist::Cdf(double x) const {
  return x <= 0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

std::string ExponentialDist::Describe() const {
  return Format1("Exponential(lambda=%g)", lambda_);
}

NormalDist::NormalDist(double mu, double sigma, double floor)
    : mu_(mu), sigma_(sigma), floor_(floor) {
  if (sigma <= 0) throw std::invalid_argument("NormalDist: sigma <= 0");
}

double NormalDist::Sample(Rng& rng) const {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = mu_ + sigma_ * rng.NextGaussian();
    if (x >= floor_) return x;
  }
  return floor_;  // pathological truncation; clamp rather than spin forever
}

double NormalDist::Cdf(double x) const {
  return StdNormalCdf((x - mu_) / sigma_);
}

std::string NormalDist::Describe() const {
  return Format("Normal(%g, %g)", mu_, sigma_);
}

LogNormalDist::LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0) throw std::invalid_argument("LogNormalDist: sigma <= 0");
}

double LogNormalDist::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.NextGaussian());
}

double LogNormalDist::Cdf(double x) const {
  if (x <= 0) return 0.0;
  return StdNormalCdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDist::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDist::Variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormalDist::Describe() const {
  return Format("LogNormal(%g, %g)", mu_, sigma_);
}

WeibullDist::WeibullDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0)
    throw std::invalid_argument("WeibullDist: nonpositive parameter");
}

double WeibullDist::Sample(Rng& rng) const {
  const double u = 1.0 - rng.NextDouble();
  return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double WeibullDist::Cdf(double x) const {
  if (x <= 0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDist::Mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullDist::Variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string WeibullDist::Describe() const {
  return Format("Weibull(k=%g, lambda=%g)", shape_, scale_);
}

GammaDist::GammaDist(double shape, double scale) : shape_(shape), scale_(scale) {
  if (shape <= 0 || scale <= 0)
    throw std::invalid_argument("GammaDist: nonpositive parameter");
}

double GammaDist::Sample(Rng& rng) const {
  // Marsaglia & Tsang (2000). For shape < 1, boost via U^{1/shape}.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.NextDouble(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return boost * d * v * scale_;
  }
}

namespace {

// Regularized lower incomplete gamma P(a, x) via series / continued fraction
// (Numerical Recipes style). Needed for GammaDist::Cdf.
double GammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x).
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double GammaDist::Cdf(double x) const {
  if (x <= 0) return 0.0;
  return GammaP(shape_, x / scale_);
}

std::string GammaDist::Describe() const {
  return Format("Gamma(k=%g, theta=%g)", shape_, scale_);
}

ParetoDist::ParetoDist(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  if (xm <= 0 || alpha <= 0)
    throw std::invalid_argument("ParetoDist: nonpositive parameter");
}

double ParetoDist::Sample(Rng& rng) const {
  const double u = 1.0 - rng.NextDouble();
  return xm_ / std::pow(u, 1.0 / alpha_);
}

double ParetoDist::Cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double ParetoDist::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDist::Variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double a = alpha_;
  return xm_ * xm_ * a / ((a - 1.0) * (a - 1.0) * (a - 2.0));
}

std::string ParetoDist::Describe() const {
  return Format("Pareto(xm=%g, alpha=%g)", xm_, alpha_);
}

EmpiricalDist::EmpiricalDist(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty())
    throw std::invalid_argument("EmpiricalDist: empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
  double sum = 0.0;
  for (const double v : sorted_) sum += v;
  mean_ = sum / static_cast<double>(sorted_.size());
  double ss = 0.0;
  for (const double v : sorted_) ss += (v - mean_) * (v - mean_);
  variance_ = ss / static_cast<double>(sorted_.size());
}

double EmpiricalDist::Sample(Rng& rng) const {
  return sorted_[rng.NextBounded(sorted_.size())];
}

double EmpiricalDist::Cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDist::Mean() const { return mean_; }
double EmpiricalDist::Variance() const { return variance_; }

std::string EmpiricalDist::Describe() const {
  return Format("Empirical(n=%g, mean=%g)", static_cast<double>(sorted_.size()),
                mean_);
}

}  // namespace simmr
