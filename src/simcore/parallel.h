// Thread-parallel helpers for embarrassingly parallel simulation sweeps.
//
// The Monte-Carlo experiments (Figures 7-8: hundreds of randomized
// workload replays per data point) are independent by construction — each
// replay owns its engine, policy and RNG stream — so they parallelize
// with a simple static block partition. ParallelFor is deliberately
// minimal: no work stealing, no shared mutable state, exceptions from
// workers are captured and rethrown on the calling thread.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "prof/profiler.h"

namespace simmr {

/// Number of worker threads to use by default: the hardware concurrency,
/// at least 1.
inline unsigned DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Invokes fn(i) for i in [0, n) across up to `num_threads` threads.
/// Iteration blocks are contiguous, so fn(i) may accumulate into
/// caller-provided per-index slots (e.g. results[i]) without locking.
/// The first exception thrown by any worker is rethrown here after all
/// workers have joined.
template <typename Fn>
void ParallelFor(std::size_t n, Fn&& fn, unsigned num_threads = 0) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = DefaultParallelism();
  // Per-worker busy wall time feeds the profiler when armed — one timing
  // pair per worker, nothing per iteration.
  if (num_threads <= 1 || n == 1) {
    const bool profiled = prof::Armed();
    const auto start = profiled ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    for (std::size_t i = 0; i < n; ++i) fn(i);
    if (profiled)
      prof::RecordThreadBusy(
          "parallel_for",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    return;
  }
  const std::size_t workers = std::min<std::size_t>(num_threads, n);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = n * w / workers;
    const std::size_t end = n * (w + 1) / workers;
    threads.emplace_back([&, w, begin, end] {
      const bool profiled = prof::Armed();
      const auto start = profiled ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
      if (profiled)
        prof::RecordThreadBusy(
            "parallel_for",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count());
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace simmr
