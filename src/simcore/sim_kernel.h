// The shared discrete-event simulation kernel.
//
// All three simulators in this repository (the SimMR engine, the node-level
// testbed emulator and the Mumak baseline) are the same machine underneath:
// a clock, a stable priority queue of simulator-specific payloads, an
// optional observer notified on every dequeue, and slot accounting. Each
// used to hand-roll that machinery; SimKernel owns it once. The simulators
// keep only what genuinely differs — their event payloads and dispatch
// logic.
//
// SimKernel is templated on the payload and, at the drain call, on the
// observer type: the SimMR engine instantiates its hot recording path
// against a concrete observer class so every hook devirtualizes (see
// core/engine.cpp), and the kernel must not force that call back through a
// vtable. simcore sits below obs/ in the layering, so the kernel names no
// observer type — any class with an OnEventDequeue(SimTime, const char*,
// size_t) member works.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "prof/profiler.h"
#include "simcore/choice.h"
#include "simcore/event_queue.h"
#include "simcore/time.h"

namespace simmr {

/// Free-slot accounting for one scheduling domain: the whole cluster for
/// the task-level SimMR engine, one worker node for the node-level
/// simulators.
struct SlotPool {
  int free_maps = 0;
  int free_reduces = 0;
};

/// Reduce slowstart gate as Hadoop computes it
/// (mapred.reduce.slowstart.completed.maps): how many map completions must
/// have been reported before a job's reduces may launch — at least one,
/// even at fraction zero. Shared by the heartbeat-driven simulators
/// (cluster/, mumak/); the task-level SimMR engine keeps its paper-exact
/// unclamped variant in core::JobState::ReduceGateThreshold, where
/// minMapPercentCompleted == 0 disables the gate entirely.
inline int ReduceGateThreshold(int num_maps, double min_map_fraction) {
  return std::max(
      1, static_cast<int>(
             std::ceil(min_map_fraction * static_cast<double>(num_maps))));
}

/// Clock + event queue + per-dequeue observer dispatch.
///
/// Usage: Schedule() payloads, then Drain() with a dispatch callable; the
/// kernel pops events in (time, insertion) order, advances now(), notifies
/// the observer and hands each payload to the dispatcher. Dispatchers may
/// Schedule() further events freely (including at the current time).
template <typename Payload>
class SimKernel {
 public:
  SimTime now() const { return now_; }

  void Schedule(SimTime time, Payload payload) {
    queue_.Push(time, std::move(payload));
  }

  bool Empty() const { return queue_.Empty(); }
  std::size_t Pending() const { return queue_.Size(); }

  /// Lifetime count of scheduled events — what the SimMR engine reports as
  /// events_processed (every scheduled event is eventually popped when the
  /// queue drains fully).
  std::uint64_t TotalScheduled() const { return queue_.TotalPushed(); }

  /// Count of events actually popped — what the node-level simulators
  /// report, since they stop draining once the last job finishes.
  std::uint64_t Dequeued() const { return dequeued_; }

  /// Pops events until the queue is empty or `stop()` returns true
  /// (checked before each pop). For each event: advances the clock, calls
  /// obs->OnEventDequeue(now, name(payload), remaining) when obs is
  /// non-null, then dispatch(payload).
  template <typename TObs, typename StopFn, typename NameFn,
            typename DispatchFn>
  void DrainUntil(StopFn&& stop, TObs* obs, NameFn&& name,
                  DispatchFn&& dispatch) {
    while (!queue_.Empty() && !stop()) {
      auto entry = queue_.Pop();
      now_ = entry.time;
      ++dequeued_;
      prof::Count(prof::Counter::kEventsDispatched);
      if (obs != nullptr)
        obs->OnEventDequeue(now_, name(entry.payload), queue_.Size());
      dispatch(entry.payload);
    }
  }

  /// DrainUntil with no stop condition: runs the queue dry.
  template <typename TObs, typename NameFn, typename DispatchFn>
  void Drain(TObs* obs, NameFn&& name, DispatchFn&& dispatch) {
    DrainUntil([] { return false; }, obs, name, dispatch);
  }

  /// DrainUntil with oracle-controlled tie-breaking: whenever two or more
  /// events share the earliest pending time, `option(payload)` describes
  /// each alternative (insertion order) and the oracle picks which one
  /// dispatches next. A null oracle is exactly DrainUntil. The non-tied
  /// fast path is unchanged; ties pay an O(n) queue scan, which only the
  /// model checker's small scenarios ever do.
  template <typename TObs, typename StopFn, typename NameFn,
            typename OptionFn, typename DispatchFn>
  void DrainUntilOracle(StopFn&& stop, TObs* obs, NameFn&& name,
                        OptionFn&& option, DispatchFn&& dispatch,
                        ScheduleOracle* oracle) {
    if (oracle == nullptr) {
      DrainUntil(stop, obs, name, dispatch);
      return;
    }
    while (!queue_.Empty() && !stop()) {
      std::size_t pick = 0;
      const std::size_t tied = queue_.EarliestCount();
      if (tied > 1) {
        std::vector<ChoiceOption> options;
        options.reserve(tied);
        for (const auto* entry : queue_.EarliestEntries())
          options.push_back(option(entry->payload));
        pick = oracle->Choose(queue_.PeekTime(), options);
        if (pick >= options.size())
          throw std::logic_error(
              "SimKernel: oracle chose an out-of-range alternative");
      }
      auto entry = queue_.PopAmongEarliest(pick);
      now_ = entry.time;
      ++dequeued_;
      prof::Count(prof::Counter::kEventsDispatched);
      oracle->OnDispatch(now_, option(entry.payload));
      if (obs != nullptr)
        obs->OnEventDequeue(now_, name(entry.payload), queue_.Size());
      dispatch(entry.payload);
    }
  }

 private:
  EventQueue<Payload> queue_;
  SimTime now_ = 0.0;
  std::uint64_t dequeued_ = 0;
};

}  // namespace simmr
