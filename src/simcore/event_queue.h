// Stable discrete-event priority queue.
//
// All three simulators (SimMR engine, testbed emulator, Mumak baseline) pop
// events in nondecreasing time order. Ties are broken by insertion order so
// every run is deterministic regardless of heap internals — a requirement
// for the replay-determinism guarantees the tests assert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prof/profiler.h"
#include "simcore/time.h"

namespace simmr {

/// Min-heap over (time, insertion sequence) carrying an arbitrary payload.
template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    Payload payload;
  };

  /// Schedules a payload at the given simulated time.
  void Push(SimTime time, Payload payload) {
    heap_.push_back(Entry{time, next_sequence_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    ++total_pushed_;
    prof::Count(prof::Counter::kHeapPushes);
    prof::RaiseHighWater(prof::HighWater::kQueueDepth, heap_.size());
  }

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Earliest pending event time. Requires non-empty queue.
  SimTime PeekTime() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::PeekTime on empty");
    return heap_.front().time;
  }

  /// Removes and returns the earliest event (FIFO among equal times).
  Entry Pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::Pop on empty");
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    prof::Count(prof::Counter::kHeapPops);
    return e;
  }

  /// Lifetime count of pushed events — the simulators report this as their
  /// processed-event count for the events/second throughput claim.
  std::uint64_t TotalPushed() const { return total_pushed_; }

  void Clear() {
    heap_.clear();
    // next_sequence_ is intentionally not reset: uniqueness must hold across
    // Clear() so interleaved reuse keeps deterministic ordering.
  }

 private:
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace simmr
