// Stable discrete-event priority queue.
//
// All three simulators (SimMR engine, testbed emulator, Mumak baseline) pop
// events in nondecreasing time order. Ties are broken by insertion order so
// every run is deterministic regardless of heap internals — a requirement
// for the replay-determinism guarantees the tests assert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prof/profiler.h"
#include "simcore/time.h"

namespace simmr {

/// Min-heap over (time, insertion sequence) carrying an arbitrary payload.
template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    Payload payload;
  };

  /// Schedules a payload at the given simulated time.
  void Push(SimTime time, Payload payload) {
    heap_.push_back(Entry{time, next_sequence_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    ++total_pushed_;
    prof::Count(prof::Counter::kHeapPushes);
    prof::RaiseHighWater(prof::HighWater::kQueueDepth, heap_.size());
  }

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Earliest pending event time. Requires non-empty queue.
  SimTime PeekTime() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::PeekTime on empty");
    return heap_.front().time;
  }

  /// Removes and returns the earliest event (FIFO among equal times).
  Entry Pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::Pop on empty");
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    prof::Count(prof::Counter::kHeapPops);
    return e;
  }

  /// Number of pending entries that share the earliest time (ties the
  /// kernel's tie-break choice ranges over). O(n) scan — used only on the
  /// oracle-controlled drain path, never in the default hot loop.
  std::size_t EarliestCount() const {
    if (heap_.empty()) return 0;
    const SimTime front = heap_.front().time;
    std::size_t count = 0;
    for (const Entry& e : heap_)
      if (e.time == front) ++count;
    return count;
  }

  /// Pointers to the earliest-time entries, ordered by insertion sequence
  /// (index 0 = the default Pop() choice). Valid until the next mutation.
  std::vector<const Entry*> EarliestEntries() const {
    std::vector<const Entry*> group;
    if (heap_.empty()) return group;
    const SimTime front = heap_.front().time;
    for (const Entry& e : heap_)
      if (e.time == front) group.push_back(&e);
    std::sort(group.begin(), group.end(),
              [](const Entry* a, const Entry* b) {
                return a->sequence < b->sequence;
              });
    return group;
  }

  /// Removes and returns the k-th earliest-time entry in insertion order —
  /// PopAmongEarliest(0) is exactly Pop(). Rebuilds the heap, so this is
  /// O(n); the oracle-controlled drain accepts that cost for small
  /// exploration scenarios. Throws std::logic_error when k is out of
  /// range.
  Entry PopAmongEarliest(std::size_t k) {
    if (k == 0) return Pop();
    const std::vector<const Entry*> group = EarliestEntries();
    if (k >= group.size())
      throw std::logic_error("EventQueue::PopAmongEarliest: index beyond tie");
    const std::size_t pos =
        static_cast<std::size_t>(group[k] - heap_.data());
    Entry e = std::move(heap_[pos]);
    heap_[pos] = std::move(heap_.back());
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), Later);
    prof::Count(prof::Counter::kHeapPops);
    return e;
  }

  /// Lifetime count of pushed events — the simulators report this as their
  /// processed-event count for the events/second throughput claim.
  std::uint64_t TotalPushed() const { return total_pushed_; }

  void Clear() {
    heap_.clear();
    // next_sequence_ is intentionally not reset: uniqueness must hold across
    // Clear() so interleaved reuse keeps deterministic ordering.
  }

 private:
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace simmr
