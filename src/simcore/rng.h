// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the repository draws from an Rng that is
// derived from a user-provided master seed, so a whole experiment (testbed
// emulation, trace synthesis, SimMR replay) is reproducible bit-for-bit from
// one integer. Streams are split by name/index so adding a consumer does not
// perturb the draws seen by existing consumers.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64.
// It is small, fast, has a 2^256-1 period, and passes BigCrush — more than
// adequate for discrete-event simulation workloads.
#pragma once

#include <cstdint>
#include <string_view>

namespace simmr {

/// xoshiro256++ PRNG with splitmix64 seeding. Satisfies the essential parts
/// of UniformRandomBitGenerator so it can also feed <random> adapters.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds give equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  std::uint64_t operator()();

  /// Uniform double in [0, 1). Uses the top 53 bits of a draw.
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// bounded-rejection method (no modulo bias).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double NextGaussian();

  /// Derives an independent generator for the named sub-stream. The same
  /// (parent seed, name, index) always yields the same child stream.
  Rng Split(std::string_view stream_name, std::uint64_t index = 0) const;

  /// The seed this generator was constructed from (for provenance logging).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// 64-bit FNV-1a hash, used to derive stream seeds from names. Exposed for
/// tests and for components that need a stable name->seed mapping.
std::uint64_t HashName(std::string_view name);

}  // namespace simmr
