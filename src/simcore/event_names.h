// The canonical simulator event-kind vocabulary.
//
// Every simulator in this repository names the events it dequeues when an
// observer is attached, and those names are persisted verbatim in durable
// event logs ("simmr.eventlog.v1" dequeue records). The name table used to
// be repeated in core/, cluster/ and mumak/; it lives here once so the
// wire names cannot drift between producers, and so log readers
// (obs/event_log.cpp, src/analysis/) can map a recorded name back to its
// kind. SimEventKind is the union of all three simulators' vocabularies:
// the SimMR engine uses the first seven kinds (see core/events.h), the
// testbed emulator and Mumak the heartbeat-driven ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace simmr {

enum class SimEventKind : std::uint8_t {
  // SimMR engine (Section III-B's seven event types).
  kJobArrival,
  kJobDeparture,
  kMapTaskArrival,
  kMapTaskDeparture,
  kReduceTaskArrival,
  kReduceTaskDeparture,
  kMapStageDone,
  // Testbed emulator / Mumak (heartbeat-driven simulators).
  kHeartbeat,
  kOobHeartbeat,
  kMapDataReady,
  kReduceDone,
  kFetchCheck,
  // Fault-injection subsystem (src/fault/): a scheduled fault-plan action
  // firing, the JobTracker's periodic expiry sweep, and the recovery
  // lifecycle events it produces. Shared by all three simulators.
  kFaultAction,
  kTrackerExpiry,
  kNodeLost,
  kNodeRestored,
  kAttemptKilled,
  kTaskReexecuted,
};

inline constexpr int kNumSimEventKinds = 18;

/// Wire name of a kind ("JOB_ARRIVAL", "HEARTBEAT", ...). The returned
/// pointer is a static string, so hook sites may keep it without copying.
const char* SimEventKindName(SimEventKind kind);

/// Inverse of SimEventKindName; nullopt for unknown names. Round-trips:
/// ParseSimEventKind(SimEventKindName(k)) == k for every kind.
std::optional<SimEventKind> ParseSimEventKind(std::string_view name);

}  // namespace simmr
