// Descriptive statistics and distribution-distance measures.
//
// Implements the exact quantities the paper reports: summary statistics of
// task-duration arrays (the ARIA model needs avg and max per phase),
// empirical CDFs (Figure 3), the symmetric Kullback-Leibler divergence over
// binned duration distributions (Table I), and Kolmogorov-Smirnov statistics
// (the Facebook-fit selection in Section V-C).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace simmr {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Computes a Summary. Returns a zeroed Summary for an empty span.
Summary Summarize(std::span<const double> values);

/// Normal-approximation confidence interval of a Monte-Carlo mean.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;  // mean +/- half_width
};

/// Mean with a z-score confidence half-width (default z = 1.96 ~ 95%).
/// Uses the unbiased sample standard deviation; half_width is 0 for
/// samples of size < 2. Throws std::invalid_argument on empty input.
MeanCi MeanConfidenceInterval(std::span<const double> values,
                              double z = 1.96);

/// p-th percentile (p in [0,100]) by linear interpolation on the sorted
/// sample. Throws std::invalid_argument on an empty sample.
double Percentile(std::span<const double> values, double p);

/// Empirical CDF of a sample: evaluation and an exportable point series.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> values);

  /// P(X <= x) under the empirical measure.
  double operator()(double x) const;

  /// Inverse CDF: smallest sample value v with F(v) >= q, q in (0, 1].
  double Quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi] used to discretize samples before
/// computing KL divergence. Mass outside the range is clamped into the edge
/// bins so the result is a proper probability vector.
std::vector<double> HistogramDensity(std::span<const double> values, double lo,
                                     double hi, std::size_t bins);

/// Kullback-Leibler divergence D(P||Q) of two probability vectors of equal
/// length. Bins where either vector is zero are smoothed with `epsilon`
/// mass (then renormalized) so the divergence stays finite, matching the
/// standard practice for empirical distributions.
double KlDivergence(std::span<const double> p, std::span<const double> q,
                    double epsilon = 1e-6);

/// The paper's symmetric KL: D'(P||Q) = (D(P||Q) + D(Q||P)) / 2.
double SymmetricKlDivergence(std::span<const double> p,
                             std::span<const double> q,
                             double epsilon = 1e-6);

/// Convenience: symmetric KL between two raw samples, binned over the union
/// of their ranges with `bins` equal-width bins.
double SampleSymmetricKl(std::span<const double> a, std::span<const double> b,
                         std::size_t bins = 50);

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
double KsTwoSample(std::span<const double> a, std::span<const double> b);

/// One-sample KS statistic against a model CDF evaluated via callback.
template <typename CdfFn>
double KsOneSample(std::span<const double> sample, CdfFn&& cdf) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, f - lo, hi - f});
  }
  return d;
}

}  // namespace simmr
