#include "simcore/rng.h"

#include <cmath>

namespace simmr {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

Rng Rng::Split(std::string_view stream_name, std::uint64_t index) const {
  // Mix the parent seed, stream name and index through splitmix64 so child
  // streams are decorrelated from the parent and from each other.
  std::uint64_t sm = seed_ ^ HashName(stream_name);
  (void)SplitMix64(sm);
  sm ^= 0x9E3779B97F4A7C15ULL * (index + 1);
  const std::uint64_t child_seed = SplitMix64(sm);
  return Rng(child_seed);
}

}  // namespace simmr
