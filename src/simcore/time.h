// Simulated-time primitives shared by every simulator in this repository.
//
// Simulated time is a double measured in seconds since the start of the
// simulation. All simulators in this repo (the SimMR engine, the node-level
// testbed emulator and the Mumak baseline) use the same convention so traces
// and logs can flow between them without conversion.
#pragma once

#include <limits>

namespace simmr {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Duration in seconds of simulated time.
using SimDuration = double;

/// Sentinel for "never" / "not yet known". Used, e.g., for the filler reduce
/// task whose duration is unknown until the map stage completes.
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Smallest meaningful time delta; timestamps closer than this are considered
/// equal by comparison helpers (log round-trips print 6 decimal digits).
inline constexpr SimDuration kTimeEpsilon = 1e-6;

/// True when two timestamps are equal within kTimeEpsilon.
inline bool TimeAlmostEqual(SimTime a, SimTime b) {
  const double diff = a > b ? a - b : b - a;
  return diff <= kTimeEpsilon;
}

}  // namespace simmr
