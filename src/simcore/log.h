// Minimal leveled logger.
//
// Simulators are hot loops, so logging is compiled around a global level
// check that costs one branch when disabled. Output goes to stderr; the
// structured per-job output logs the paper describes are separate artifacts
// (see cluster/history_log.h and core/metrics.h).
#pragma once

#include <sstream>
#include <string>

namespace simmr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// Current global threshold.
LogLevel GetLogLevel();

/// Emits one line ("[LEVEL] message") to stderr if level passes the filter.
void LogMessage(LogLevel level, const std::string& message);

namespace log_internal {

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace simmr

#define SIMMR_LOG(level)                                  \
  if (::simmr::GetLogLevel() > ::simmr::LogLevel::level) { \
  } else                                                   \
    ::simmr::log_internal::LineBuilder(::simmr::LogLevel::level)

#define SIMMR_DEBUG SIMMR_LOG(kDebug)
#define SIMMR_INFO SIMMR_LOG(kInfo)
#define SIMMR_WARN SIMMR_LOG(kWarn)
#define SIMMR_ERROR SIMMR_LOG(kError)
