#include "simcore/dist_fit.h"

#include <algorithm>
#include <cmath>

#include "simcore/stats.h"

namespace simmr {
namespace {

bool AllPositive(std::span<const double> sample) {
  return std::all_of(sample.begin(), sample.end(),
                     [](double v) { return v > 0.0; });
}

FitResult MakeResult(DistributionPtr dist, std::string family,
                     std::span<const double> sample) {
  FitResult r;
  r.ks_statistic =
      KsOneSample(sample, [&dist](double x) { return dist->Cdf(x); });
  r.dist = std::move(dist);
  r.family = std::move(family);
  return r;
}

}  // namespace

double Digamma(double x) {
  // Recurrence to push x above 12, then the asymptotic expansion.
  double result = 0.0;
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double Trigamma(double x) {
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)));
  return result;
}

std::optional<FitResult> FitNormal(std::span<const double> sample) {
  const Summary s = Summarize(sample);
  if (s.count < 2 || s.stddev <= 0.0) return std::nullopt;
  return MakeResult(std::make_shared<NormalDist>(s.mean, s.stddev), "Normal",
                    sample);
}

std::optional<FitResult> FitLogNormal(std::span<const double> sample) {
  if (sample.size() < 2 || !AllPositive(sample)) return std::nullopt;
  std::vector<double> logs;
  logs.reserve(sample.size());
  for (const double v : sample) logs.push_back(std::log(v));
  const Summary s = Summarize(logs);
  if (s.stddev <= 0.0) return std::nullopt;
  return MakeResult(std::make_shared<LogNormalDist>(s.mean, s.stddev),
                    "LogNormal", sample);
}

std::optional<FitResult> FitExponential(std::span<const double> sample) {
  const Summary s = Summarize(sample);
  if (s.count < 1 || s.mean <= 0.0) return std::nullopt;
  return MakeResult(std::make_shared<ExponentialDist>(1.0 / s.mean),
                    "Exponential", sample);
}

std::optional<FitResult> FitUniform(std::span<const double> sample) {
  const Summary s = Summarize(sample);
  if (s.count < 2 || s.max <= s.min) return std::nullopt;
  return MakeResult(std::make_shared<UniformDist>(s.min, s.max), "Uniform",
                    sample);
}

std::optional<FitResult> FitWeibull(std::span<const double> sample) {
  if (sample.size() < 2 || !AllPositive(sample)) return std::nullopt;
  // Newton iteration on the MLE shape equation:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
  std::vector<double> logs;
  logs.reserve(sample.size());
  double mean_log = 0.0;
  for (const double v : sample) {
    logs.push_back(std::log(v));
    mean_log += logs.back();
  }
  mean_log /= static_cast<double>(sample.size());

  double k = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    double sxk = 0.0, sxk_lx = 0.0, sxk_lx2 = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const double xk = std::pow(sample[i], k);
      sxk += xk;
      sxk_lx += xk * logs[i];
      sxk_lx2 += xk * logs[i] * logs[i];
    }
    const double g = sxk_lx / sxk - 1.0 / k - mean_log;
    const double gp =
        (sxk_lx2 * sxk - sxk_lx * sxk_lx) / (sxk * sxk) + 1.0 / (k * k);
    if (gp == 0.0) break;
    const double step = g / gp;
    k -= step;
    if (k <= 1e-6) k = 1e-6;
    if (std::fabs(step) < 1e-10) break;
  }
  if (!std::isfinite(k) || k <= 0.0) return std::nullopt;
  double sxk = 0.0;
  for (const double v : sample) sxk += std::pow(v, k);
  const double scale =
      std::pow(sxk / static_cast<double>(sample.size()), 1.0 / k);
  if (!std::isfinite(scale) || scale <= 0.0) return std::nullopt;
  return MakeResult(std::make_shared<WeibullDist>(k, scale), "Weibull", sample);
}

std::optional<FitResult> FitGamma(std::span<const double> sample) {
  if (sample.size() < 2 || !AllPositive(sample)) return std::nullopt;
  const Summary s = Summarize(sample);
  double mean_log = 0.0;
  for (const double v : sample) mean_log += std::log(v);
  mean_log /= static_cast<double>(sample.size());
  const double log_mean = std::log(s.mean);
  const double diff = log_mean - mean_log;  // >= 0 by Jensen
  if (diff <= 0.0) return std::nullopt;

  // Minka's generalized Newton iteration for the shape.
  double k = (3.0 - diff + std::sqrt((diff - 3.0) * (diff - 3.0) + 24.0 * diff)) /
             (12.0 * diff);
  for (int iter = 0; iter < 100; ++iter) {
    const double num = std::log(k) - Digamma(k) - diff;
    const double den = 1.0 / k - Trigamma(k);
    const double knew = 1.0 / (1.0 / k + num / (k * k * den));
    if (!std::isfinite(knew) || knew <= 0.0) break;
    const double delta = std::fabs(knew - k);
    k = knew;
    if (delta < 1e-10) break;
  }
  if (!std::isfinite(k) || k <= 0.0) return std::nullopt;
  return MakeResult(std::make_shared<GammaDist>(k, s.mean / k), "Gamma",
                    sample);
}

std::optional<FitResult> FitPareto(std::span<const double> sample) {
  if (sample.size() < 2 || !AllPositive(sample)) return std::nullopt;
  const double xm = *std::min_element(sample.begin(), sample.end());
  double sum_log = 0.0;
  for (const double v : sample) sum_log += std::log(v / xm);
  if (sum_log <= 0.0) return std::nullopt;
  const double alpha = static_cast<double>(sample.size()) / sum_log;
  return MakeResult(std::make_shared<ParetoDist>(xm, alpha), "Pareto", sample);
}

std::vector<FitResult> FitBest(std::span<const double> sample) {
  std::vector<FitResult> results;
  const auto add = [&results](std::optional<FitResult> r) {
    if (r && std::isfinite(r->ks_statistic)) results.push_back(std::move(*r));
  };
  add(FitLogNormal(sample));
  add(FitNormal(sample));
  add(FitExponential(sample));
  add(FitUniform(sample));
  add(FitWeibull(sample));
  add(FitGamma(sample));
  add(FitPareto(sample));
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.ks_statistic < b.ks_statistic;
            });
  return results;
}

}  // namespace simmr
