// Statistical distributions used for trace synthesis and testbed emulation.
//
// Each distribution exposes sampling plus (where closed forms exist) pdf,
// cdf and quantile, so the same object serves the Synthetic TraceGen, the
// distribution-fitting module (KS tests need cdf) and the tests (moment
// checks need mean/variance).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simcore/rng.h"

namespace simmr {

/// Abstract real-valued distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample using the supplied generator.
  virtual double Sample(Rng& rng) const = 0;

  /// Cumulative distribution function P(X <= x).
  virtual double Cdf(double x) const = 0;

  /// Theoretical mean.
  virtual double Mean() const = 0;

  /// Theoretical variance.
  virtual double Variance() const = 0;

  /// Human-readable name with parameters, e.g. "LogNormal(9.95, 1.68)".
  virtual std::string Describe() const = 0;

  /// Draws n samples.
  std::vector<double> SampleMany(Rng& rng, std::size_t n) const;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Point mass at `value`.
class DeterministicDist final : public Distribution {
 public:
  explicit DeterministicDist(double value);
  double Sample(Rng&) const override { return value_; }
  double Cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
  double Mean() const override { return value_; }
  double Variance() const override { return 0.0; }
  std::string Describe() const override;

 private:
  double value_;
};

/// Uniform on [lo, hi].
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double Variance() const override;
  std::string Describe() const override;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
};

/// Exponential with rate lambda (mean 1/lambda).
class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double lambda);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override { return 1.0 / lambda_; }
  double Variance() const override { return 1.0 / (lambda_ * lambda_); }
  std::string Describe() const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Normal(mu, sigma), optionally truncated below at `floor` by resampling.
/// Used for per-node task-duration jitter in the testbed emulator, where
/// durations must stay positive.
class NormalDist final : public Distribution {
 public:
  NormalDist(double mu, double sigma, double floor = -1e308);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;  // cdf of the *untruncated* normal
  double Mean() const override { return mu_; }
  double Variance() const override { return sigma_ * sigma_; }
  std::string Describe() const override;

 private:
  double mu_, sigma_, floor_;
};

/// LogNormal: ln X ~ Normal(mu, sigma). The paper's Facebook workload fits
/// are LN(9.9511, 1.6764) for map and LN(12.375, 1.6262) for reduce task
/// durations (in milliseconds in the original; see synthetic_tracegen).
class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  std::string Describe() const override;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_, sigma_;
};

/// Weibull(shape k, scale lambda).
class WeibullDist final : public Distribution {
 public:
  WeibullDist(double shape, double scale);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  std::string Describe() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_, scale_;
};

/// Gamma(shape k, scale theta). Sampling uses Marsaglia-Tsang.
class GammaDist final : public Distribution {
 public:
  GammaDist(double shape, double scale);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override { return shape_ * scale_; }
  double Variance() const override { return shape_ * scale_ * scale_; }
  std::string Describe() const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_, scale_;
};

/// Pareto (Lomax-free classic form): support [xm, inf), tail index alpha.
class ParetoDist final : public Distribution {
 public:
  ParetoDist(double xm, double alpha);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  std::string Describe() const override;

 private:
  double xm_, alpha_;
};

/// Resamples uniformly from a fixed set of observed values. This is how a
/// recorded profile is turned back into a generator for synthetic traces.
class EmpiricalDist final : public Distribution {
 public:
  explicit EmpiricalDist(std::vector<double> samples);
  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Mean() const override;
  double Variance() const override;
  std::string Describe() const override;
  const std::vector<double>& samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_, variance_;
};

/// Standard normal CDF (shared by NormalDist / LogNormalDist / fitters).
double StdNormalCdf(double z);

}  // namespace simmr
