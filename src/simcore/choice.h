// Schedule choice points: the kernel's tie-breaking made controllable.
//
// A discrete-event simulation is deterministic except where several events
// share the earliest pending time — there the pop order is a free choice
// that EventQueue normally resolves by insertion sequence. Real systems
// resolve it by race outcomes (which TaskTracker's heartbeat arrives
// first, which of two same-instant completions the JobTracker sees first),
// so "insertion order" is just one of many legal schedules. A
// ScheduleOracle makes that choice injectable: the stateless model checker
// (src/mc) drives it to enumerate every legal interleaving, a seeded
// random oracle samples them, and a null oracle keeps the classic
// deterministic default.
//
// simcore sits at the bottom of the layering, so the oracle sees events
// only as opaque (kind name, operand a, operand b) triples — the same
// shape every simulator's payload already reduces to for event naming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/time.h"

namespace simmr {

/// One schedulable alternative at a choice point: the event's kind name
/// (a static string from the simulator's event vocabulary) and its two
/// payload operands. Together these identify the event for scheduling
/// purposes; they are what a recorded schedule stores.
struct ChoiceOption {
  const char* kind = "";
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// Decides which of several same-time events is dispatched next.
///
/// Choose() is called only when at least two events tie at the earliest
/// pending time. `options` is ordered by insertion sequence, so index 0 is
/// the default the kernel would have taken; the returned index must be
/// < options.size() (the kernel throws std::logic_error otherwise, so a
/// buggy oracle fails loudly instead of corrupting the run).
class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;
  virtual std::size_t Choose(SimTime now,
                             const std::vector<ChoiceOption>& options) = 0;

  /// Notified once per dispatched event — tied or not, after Choose() for
  /// tied ones. Sleep-set explorers need to see untied dispatches too: a
  /// solo event dependent with a sleeping one must wake it, or pruning
  /// would skip reachable states. Default: ignore.
  virtual void OnDispatch(SimTime now, const ChoiceOption& dispatched) {
    (void)now;
    (void)dispatched;
  }
};

}  // namespace simmr
