#include "simcore/event_names.h"

namespace simmr {
namespace {

/// Indexed by the enum's underlying value; keep in declaration order.
constexpr const char* kNames[kNumSimEventKinds] = {
    "JOB_ARRIVAL",
    "JOB_DEPARTURE",
    "MAP_TASK_ARRIVAL",
    "MAP_TASK_DEPARTURE",
    "REDUCE_TASK_ARRIVAL",
    "REDUCE_TASK_DEPARTURE",
    "MAP_STAGE_DONE",
    "HEARTBEAT",
    "OOB_HEARTBEAT",
    "MAP_DATA_READY",
    "REDUCE_DONE",
    "FETCH_CHECK",
    "FAULT_ACTION",
    "TRACKER_EXPIRY",
    "NODE_LOST",
    "NODE_RESTORED",
    "ATTEMPT_KILLED",
    "TASK_REEXECUTED",
};

}  // namespace

const char* SimEventKindName(SimEventKind kind) {
  const auto index = static_cast<std::uint8_t>(kind);
  if (index >= kNumSimEventKinds) return "?";
  return kNames[index];
}

std::optional<SimEventKind> ParseSimEventKind(std::string_view name) {
  for (int i = 0; i < kNumSimEventKinds; ++i) {
    if (name == kNames[i]) return static_cast<SimEventKind>(i);
  }
  return std::nullopt;
}

}  // namespace simmr
