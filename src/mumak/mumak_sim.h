// Mumak re-implementation (MAPREDUCE-728), the paper's baseline simulator.
//
// Two deliberate design decisions of Mumak are reproduced faithfully
// because they drive both headline comparisons (Section IV):
//
//  1. It simulates the TaskTrackers and their heartbeats, so the number of
//     processed events scales with (nodes x simulated seconds / heartbeat
//     interval) rather than with the task count — "Mumak simulates the
//     TaskTrackers and the heartbeats between them, which leads to greater
//     number of simulated events and computation" (the ~450x slowdown of
//     Figure 6).
//
//  2. It does not model the shuffle phase: "Mumak models the total runtime
//     of the reduce task as the summation of the time taken for completion
//     of all maps and the time taken for an individual task to complete the
//     reduce phase (without the shuffle)" — the 37%-average underestimate
//     of Figure 5(a).
//
// Scheduling is FIFO (the configuration both simulators share in the
// paper's accuracy comparison).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "mumak/rumen.h"
#include "obs/observer.h"
#include "simcore/time.h"

namespace simmr::mumak {

struct MumakConfig {
  int num_nodes = 64;
  int map_slots_per_node = 1;
  int reduce_slots_per_node = 1;
  SimDuration heartbeat_interval = 3.0;
  /// Map-completion fraction gating reduce scheduling (Hadoop default).
  double reduce_slowstart = 0.05;
  /// Immediate extra heartbeat on task completion, matching the testbed
  /// emulator's configuration so completion-report latency does not differ
  /// between the simulators being compared.
  bool out_of_band_heartbeat = true;
  /// Optional live-instrumentation sink (borrowed; must outlive the run).
  /// Null by default — one branch per hook site, nothing else.
  obs::SimObserver* observer = nullptr;

  /// Optional deterministic fault plan (borrowed; must outlive the run).
  /// Mumak keeps the model minimal, matching its own simplicity: a crash
  /// silences the node's heartbeats and requeues its running attempts
  /// (completed map outputs are NOT re-executed — Mumak has no shuffle to
  /// starve); a restore rejoins with empty slots; heartbeat-loss windows
  /// at least tasktracker_expiry_interval long act as crash+restore and
  /// shorter ones are invisible; slowdowns are ignored (durations are
  /// replayed from the trace, not computed from node speed). Plans with
  /// geometry must have num_nodes == MumakConfig::num_nodes; geometry-free
  /// plans (num_nodes == 0) may only contain kill_attempt actions. Run()
  /// throws std::invalid_argument otherwise.
  const fault::FaultPlan* fault_plan = nullptr;

  /// Heartbeat-loss windows at least this long count as node loss.
  double tasktracker_expiry_interval = 600.0;
};

struct MumakJobResult {
  std::string name;
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;
  SimDuration CompletionTime() const { return finish_time - submit_time; }
};

struct MumakResult {
  std::vector<MumakJobResult> jobs;
  std::uint64_t events_processed = 0;
  SimTime makespan = 0.0;
};

/// Replays the trace to completion. Jobs must be ordered by submit_time.
MumakResult RunMumak(const RumenTrace& trace, const MumakConfig& config);

}  // namespace simmr::mumak
