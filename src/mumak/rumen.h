// Rumen re-implementation: history logs -> rich per-attempt traces.
//
// Rumen (MAPREDUCE-751) processes Hadoop job-history logs into trace files
// "describing the task durations, the number of bytes and records read and
// written, etc." — over 40 properties per attempt. Our re-implementation
// carries the subset Mumak's replay semantics actually consume (plus
// representative byte/record counters): per-attempt start/finish times and,
// for reduces, the shuffle/sort phase boundaries from which Mumak extracts
// the *reduce-phase-only* duration it replays (Section IV-A).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/history_log.h"
#include "simcore/time.h"
#include "trace/job_profile.h"

namespace simmr::mumak {

struct RumenTaskAttempt {
  cluster::TaskKind kind = cluster::TaskKind::kMap;
  std::int32_t index = 0;
  std::string host;
  SimTime start_time = 0.0;
  SimTime finish_time = 0.0;
  /// Reduce-only phase boundaries (== start_time for maps). The combined
  /// shuffle+sort phase ends at sort_finished.
  SimTime shuffle_finished = 0.0;
  SimTime sort_finished = 0.0;
  double hdfs_bytes_read_mb = 0.0;
  std::int64_t records_processed = 0;

  double TotalDuration() const { return finish_time - start_time; }
  /// What Mumak replays for a reduce: the phase after shuffle/sort.
  double ReducePhaseDuration() const { return finish_time - sort_finished; }
};

struct RumenJob {
  std::string name;
  SimTime submit_time = 0.0;
  int num_maps = 0;
  int num_reduces = 0;
  std::vector<RumenTaskAttempt> maps;
  std::vector<RumenTaskAttempt> reduces;
};

struct RumenTrace {
  std::vector<RumenJob> jobs;

  /// Extracts a trace from a testbed history log (the Rumen workflow).
  static RumenTrace FromHistory(const cluster::HistoryLog& log);

  /// Builds a trace directly from job profiles with given arrival times
  /// (aligned by index). Timestamps are synthesized serially per job; only
  /// durations matter to Mumak's replay. Used to feed both simulators the
  /// identical large workload in the Figure 6 benchmark.
  static RumenTrace FromProfiles(const std::vector<trace::JobProfile>& profiles,
                                 const std::vector<SimTime>& arrivals);

  /// Versioned tab-separated serialization (same conventions as
  /// HistoryLog).
  void Write(std::ostream& out) const;
  static RumenTrace Read(std::istream& in);
};

}  // namespace simmr::mumak
