#include "mumak/mumak_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/event_names.h"
#include "simcore/sim_kernel.h"

namespace simmr::mumak {
namespace {

// Mumak's vocabulary is the heartbeat-driven subset of the canonical
// simmr::SimEventKind table (kJobArrival / kHeartbeat / kOobHeartbeat,
// plus kFaultAction when a plan is installed), so its dequeue names match
// the other simulators' logs by construction.
using EventKind = SimEventKind;

struct Event {
  EventKind kind;
  std::int32_t a = 0;  // job index, node id, or fault-action index
  std::int32_t b = 0;  // kHeartbeat: the node's heartbeat-chain epoch
};

struct RunningTask {
  std::int32_t job = -1;
  cluster::TaskKind kind = cluster::TaskKind::kMap;
  std::int32_t index = -1;
  SimTime start = 0.0;
  SimTime end = 0.0;  // kTimeInfinity for reduces awaiting AllMapsFinished
  /// For reduces: when the reduce phase began (AllMapsFinished time, or
  /// `start` when maps were already done at launch). Mumak has no shuffle,
  /// so this is the reported phase boundary.
  SimTime phase_start = 0.0;
};

struct MumakJobState {
  const RumenJob* trace = nullptr;
  int maps_launched = 0;
  int maps_completed = 0;
  int reduces_launched = 0;
  int reduces_completed = 0;
  SimTime all_maps_finished = -1.0;  // JobTracker-observed
  SimTime finish = -1.0;

  /// Task indexes returned by a fault kill; relaunches pop from the back
  /// while maps_launched/reduces_launched stay fresh-index cursors.
  std::vector<std::int32_t> requeued_maps;
  std::vector<std::int32_t> requeued_reduces;

  bool MapsDone() const { return maps_completed == trace->num_maps; }
  bool Done() const {
    return MapsDone() && reduces_completed == trace->num_reduces;
  }
  bool ReduceGateOpen(double slowstart) const {
    return trace->num_maps == 0 ||
           maps_completed >= ReduceGateThreshold(trace->num_maps, slowstart);
  }
};

struct NodeState {
  SlotPool slots;
  std::vector<RunningTask> running;
  /// Fault state: a down node's heartbeats are dropped and its chain is
  /// broken; hb_epoch guards against double chains across crash/restore.
  bool down = false;
  std::int32_t hb_epoch = 0;
};

class MumakSim {
 public:
  MumakSim(const RumenTrace& trace, const MumakConfig& config)
      : trace_(trace), config_(config), obs_(config.observer) {
    for (std::size_t i = 1; i < trace.jobs.size(); ++i) {
      if (trace.jobs[i].submit_time < trace.jobs[i - 1].submit_time)
        throw std::invalid_argument(
            "RunMumak: jobs must be ordered by submit_time");
    }
    nodes_.resize(config.num_nodes);
    for (auto& node : nodes_) {
      node.slots.free_maps = config.map_slots_per_node;
      node.slots.free_reduces = config.reduce_slots_per_node;
    }
    jobs_.resize(trace.jobs.size());
    for (std::size_t i = 0; i < trace.jobs.size(); ++i)
      jobs_[i].trace = &trace.jobs[i];
    if (config.fault_plan != nullptr) {
      const fault::FaultPlan& plan = *config.fault_plan;
      std::string err = fault::ValidateFaultPlan(plan);
      if (err.empty() && plan.num_nodes > 0 &&
          plan.num_nodes != config.num_nodes)
        err = "plan node count does not match MumakConfig::num_nodes";
      if (err.empty() && plan.num_nodes == 0) {
        for (const auto& a : plan.actions) {
          if (a.kind != fault::FaultActionKind::kKillAttempt) {
            err = "geometry-free plan has node-scoped actions";
            break;
          }
        }
      }
      if (!err.empty())
        throw std::invalid_argument("RunMumak: invalid fault plan: " + err);
      faults_enabled_ = true;
    }
  }

  MumakResult Run() {
    for (std::size_t i = 0; i < trace_.jobs.size(); ++i) {
      kernel_.Schedule(trace_.jobs[i].submit_time,
                  Event{EventKind::kJobArrival, static_cast<std::int32_t>(i)});
    }
    for (int n = 0; n < config_.num_nodes; ++n) {
      const SimTime stagger = config_.heartbeat_interval *
                              static_cast<double>(n) /
                              static_cast<double>(config_.num_nodes);
      kernel_.Schedule(stagger, Event{EventKind::kHeartbeat, n});
    }
    if (faults_enabled_) ScheduleFaultActions();

    kernel_.DrainUntil(
        [this] { return finished_ >= jobs_.size(); }, obs_,
        [](const Event& ev) { return SimEventKindName(ev.kind); },
        [this](const Event& ev) { Dispatch(ev); });
    if (finished_ < jobs_.size())
      throw std::logic_error("MumakSim: queue drained with jobs open");

    MumakResult result;
    result.events_processed = kernel_.TotalScheduled();
    for (const auto& job : jobs_) {
      MumakJobResult jr;
      jr.name = job.trace->name;
      jr.submit_time = job.trace->submit_time;
      jr.finish_time = job.finish;
      result.jobs.push_back(std::move(jr));
      result.makespan = std::max(result.makespan, job.finish);
    }
    return result;
  }

 private:
  SimTime now() const { return kernel_.now(); }

  void Dispatch(const Event& ev) {
    switch (ev.kind) {
      case EventKind::kJobArrival:
        job_queue_.push_back(ev.a);
        if (obs_ != nullptr)
          obs_->OnJobArrival(now(), ev.a, jobs_[ev.a].trace->name,
                             /*deadline=*/0.0);
        break;
      case EventKind::kHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/true, ev.b);
        break;
      case EventKind::kOobHeartbeat:
        OnHeartbeat(ev.a, /*rearm=*/false, 0);
        break;
      case EventKind::kFaultAction:
        OnFaultAction(ev.a);
        break;
      default:
        break;
    }
  }

  void OnHeartbeat(std::int32_t node_id, bool rearm, std::int32_t epoch) {
    NodeState& node = nodes_[node_id];
    // A crash bumps hb_epoch, so the pre-crash chain's queued beat no
    // longer matches and the restore-scheduled chain is the only live one.
    if (rearm && epoch != node.hb_epoch) return;
    if (node.down) return;
    ReportFinished(node);
    AssignTasks(node, node_id);
    if (rearm && finished_ < jobs_.size()) {
      kernel_.Schedule(now() + config_.heartbeat_interval,
                  Event{EventKind::kHeartbeat, node_id, node.hb_epoch});
    }
  }

  void ReportFinished(NodeState& node) {
    for (std::size_t i = 0; i < node.running.size();) {
      const RunningTask task = node.running[i];  // copy: the vector mutates
      if (task.end > now() + kTimeEpsilon) {
        ++i;
        continue;
      }
      MumakJobState& job = jobs_[task.job];
      if (task.kind == cluster::TaskKind::kMap) {
        ++job.maps_completed;
        ++node.slots.free_maps;
        if (obs_ != nullptr)
          obs_->OnTaskCompletion(now(), task.job, obs::TaskKind::kMap,
                                 task.index,
                                 obs::TaskTiming{task.start, task.start,
                                                 task.end},
                                 /*succeeded=*/true);
        if (job.MapsDone() && job.all_maps_finished < 0.0)
          OnAllMapsFinished(task.job);
      } else {
        ++job.reduces_completed;
        ++node.slots.free_reduces;
        if (obs_ != nullptr)
          obs_->OnTaskCompletion(
              now(), task.job, obs::TaskKind::kReduce, task.index,
              obs::TaskTiming{task.start,
                              std::max(task.start, task.phase_start),
                              task.end},
              /*succeeded=*/true);
      }
      node.running[i] = node.running.back();
      node.running.pop_back();
      if (job.Done() && job.finish < 0.0) {
        job.finish = now();
        ++finished_;
        std::erase(job_queue_, task.job);
        if (obs_ != nullptr) obs_->OnJobCompletion(now(), task.job);
      }
    }
  }

  /// Mumak's AllMapsFinished event: every already-launched reduce now gets
  /// its completion time — all-maps time plus the reduce phase, no shuffle.
  void OnAllMapsFinished(std::int32_t job_index) {
    MumakJobState& job = jobs_[job_index];
    job.all_maps_finished = now();
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      for (RunningTask& task : nodes_[n].running) {
        if (task.job != job_index || task.kind != cluster::TaskKind::kReduce)
          continue;
        if (task.end == kTimeInfinity) {
          task.end = now() + ReducePhase(job, task.index);
          task.phase_start = now();
          if (obs_ != nullptr)
            obs_->OnTaskPhaseTransition(now(), job_index, obs::TaskKind::kReduce,
                                        task.index, "reduce");
          MaybeScheduleOob(static_cast<std::int32_t>(n), task.end);
        }
      }
    }
  }

  void MaybeScheduleOob(std::int32_t node_id, SimTime end) {
    if (config_.out_of_band_heartbeat && end < kTimeInfinity)
      kernel_.Schedule(end, Event{EventKind::kOobHeartbeat, node_id});
  }

  double ReducePhase(const MumakJobState& job, std::int32_t index) const {
    const auto& reduces = job.trace->reduces;
    if (reduces.empty()) return 0.0;
    return reduces[index % reduces.size()].ReducePhaseDuration();
  }

  double MapDuration(const MumakJobState& job, std::int32_t index) const {
    const auto& maps = job.trace->maps;
    if (maps.empty()) return 0.0;
    return maps[index % maps.size()].TotalDuration();
  }

  void AssignTasks(NodeState& node, std::int32_t node_id) {
    // FIFO: earliest-submitted job with work. One map and one reduce per
    // heartbeat, like the Hadoop 0.20 JobTracker Mumak embeds.
    if (node.slots.free_maps > 0) {
      for (const std::int32_t job_index : job_queue_) {
        MumakJobState& job = jobs_[job_index];
        std::int32_t index;
        if (!job.requeued_maps.empty()) {
          // Fault-killed map re-executing under its original index.
          index = job.requeued_maps.back();
          job.requeued_maps.pop_back();
        } else if (job.maps_launched < job.trace->num_maps) {
          index = job.maps_launched++;
        } else {
          continue;
        }
        --node.slots.free_maps;
        const SimTime end = now() + MapDuration(job, index);
        node.running.push_back(
            {job_index, cluster::TaskKind::kMap, index, now(), end, now()});
        if (obs_ != nullptr) {
          obs_->OnSchedulerDecision(now(), obs::TaskKind::kMap, job_index);
          obs_->OnTaskLaunch(now(), job_index, obs::TaskKind::kMap, index);
        }
        MaybeScheduleOob(node_id, end);
        break;
      }
    }
    if (node.slots.free_reduces > 0) {
      for (const std::int32_t job_index : job_queue_) {
        MumakJobState& job = jobs_[job_index];
        if (!job.ReduceGateOpen(config_.reduce_slowstart)) continue;
        std::int32_t index;
        if (!job.requeued_reduces.empty()) {
          index = job.requeued_reduces.back();
          job.requeued_reduces.pop_back();
        } else if (job.reduces_launched < job.trace->num_reduces) {
          index = job.reduces_launched++;
        } else {
          continue;
        }
        --node.slots.free_reduces;
        // Before AllMapsFinished the reduce just occupies its slot; after,
        // it runs for exactly the recorded reduce phase.
        const SimTime end = job.all_maps_finished >= 0.0
                                ? now() + ReducePhase(job, index)
                                : kTimeInfinity;
        node.running.push_back(
            {job_index, cluster::TaskKind::kReduce, index, now(), end, now()});
        if (obs_ != nullptr) {
          obs_->OnSchedulerDecision(now(), obs::TaskKind::kReduce, job_index);
          obs_->OnTaskLaunch(now(), job_index, obs::TaskKind::kReduce, index);
        }
        MaybeScheduleOob(node_id, end);
        break;
      }
    }
  }

  // --- fault injection (MumakConfig::fault_plan) ---

  void ScheduleFaultActions() {
    const fault::FaultPlan& plan = *config_.fault_plan;
    for (const fault::FaultAction& a : fault::SortedActions(plan)) {
      switch (a.kind) {
        case fault::FaultActionKind::kNodeSlowdown:
          break;  // durations come from the trace, not node speed
        case fault::FaultActionKind::kHeartbeatLoss:
          if (a.end_time - a.time >= config_.tasktracker_expiry_interval) {
            fault::FaultAction crash = a;
            crash.kind = fault::FaultActionKind::kNodeCrash;
            ScheduleFaultAction(crash);
            fault::FaultAction restore = a;
            restore.kind = fault::FaultActionKind::kNodeRestore;
            restore.time = a.end_time;
            ScheduleFaultAction(restore);
          }
          break;
        default:
          ScheduleFaultAction(a);
          break;
      }
    }
  }

  void ScheduleFaultAction(const fault::FaultAction& action) {
    const auto idx = static_cast<std::int32_t>(fault_actions_.size());
    fault_actions_.push_back(action);
    kernel_.Schedule(action.time, Event{EventKind::kFaultAction, idx});
  }

  void OnFaultAction(std::int32_t idx) {
    const fault::FaultAction action =
        fault_actions_[static_cast<std::size_t>(idx)];
    switch (action.kind) {
      case fault::FaultActionKind::kNodeCrash:
        CrashNode(action.node);
        break;
      case fault::FaultActionKind::kNodeRestore:
        RestoreNode(action.node);
        break;
      case fault::FaultActionKind::kKillAttempt:
        KillAttempt(action);
        break;
      default:
        break;  // slowdown / heartbeat-loss never reach the queue
    }
  }

  /// Node loss: the heartbeat chain breaks and every running attempt is
  /// requeued. Completed map outputs are NOT re-executed — Mumak has no
  /// shuffle, so nothing downstream ever re-fetches them.
  void CrashNode(std::int32_t node_id) {
    if (node_id < 0 || node_id >= static_cast<std::int32_t>(nodes_.size()))
      return;
    NodeState& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.down) return;
    node.down = true;
    ++node.hb_epoch;
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeLost, node_id,
                         /*job=*/-1, obs::TaskKind::kMap, /*index=*/-1);
    for (const RunningTask& task : node.running)
      RequeueKilled(task, node_id);
    node.running.clear();
    node.slots.free_maps = 0;
    node.slots.free_reduces = 0;
  }

  void RestoreNode(std::int32_t node_id) {
    if (node_id < 0 || node_id >= static_cast<std::int32_t>(nodes_.size()))
      return;
    NodeState& node = nodes_[static_cast<std::size_t>(node_id)];
    if (!node.down) return;
    node.down = false;
    node.slots.free_maps = config_.map_slots_per_node;
    node.slots.free_reduces = config_.reduce_slots_per_node;
    if (obs_ != nullptr)
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kNodeRestored, node_id,
                         /*job=*/-1, obs::TaskKind::kMap, /*index=*/-1);
    kernel_.Schedule(now(),
                     Event{EventKind::kHeartbeat, node_id, node.hb_epoch});
  }

  /// Targeted attempt kill: finds the attempt wherever it runs, requeues
  /// it, and frees the slot (picked up at the node's next heartbeat).
  /// Silently skips attempts that are not running.
  void KillAttempt(const fault::FaultAction& action) {
    if (action.job < 0 ||
        action.job >= static_cast<std::int32_t>(jobs_.size()))
      return;
    const cluster::TaskKind kind = action.task_kind == obs::TaskKind::kMap
                                       ? cluster::TaskKind::kMap
                                       : cluster::TaskKind::kReduce;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      NodeState& node = nodes_[n];
      if (node.down) continue;
      for (std::size_t i = 0; i < node.running.size(); ++i) {
        const RunningTask task = node.running[i];
        if (task.job != action.job || task.kind != kind ||
            task.index != action.index)
          continue;
        node.running[i] = node.running.back();
        node.running.pop_back();
        if (kind == cluster::TaskKind::kMap)
          ++node.slots.free_maps;
        else
          ++node.slots.free_reduces;
        RequeueKilled(task, static_cast<std::int32_t>(n));
        return;
      }
    }
  }

  void RequeueKilled(const RunningTask& task, std::int32_t node_id) {
    MumakJobState& job = jobs_[task.job];
    const bool is_map = task.kind == cluster::TaskKind::kMap;
    if (is_map)
      job.requeued_maps.push_back(task.index);
    else
      job.requeued_reduces.push_back(task.index);
    if (obs_ != nullptr) {
      const obs::TaskKind kind =
          is_map ? obs::TaskKind::kMap : obs::TaskKind::kReduce;
      obs_->OnTaskCompletion(
          now(), task.job, kind, task.index,
          obs::TaskTiming{task.start,
                          is_map ? task.start
                                 : std::max(task.start, task.phase_start),
                          now()},
          /*succeeded=*/false);
      obs_->OnFaultEvent(now(), obs::FaultEventKind::kAttemptKilled, node_id,
                         task.job, kind, task.index);
    }
  }

  const RumenTrace& trace_;
  const MumakConfig& config_;
  std::vector<MumakJobState> jobs_;
  std::vector<NodeState> nodes_;
  std::vector<std::int32_t> job_queue_;
  SimKernel<Event> kernel_;
  std::size_t finished_ = 0;
  obs::SimObserver* obs_;
  bool faults_enabled_ = false;
  std::vector<fault::FaultAction> fault_actions_;
};

}  // namespace

MumakResult RunMumak(const RumenTrace& trace, const MumakConfig& config) {
  return MumakSim(trace, config).Run();
}

}  // namespace simmr::mumak
