#include "mumak/rumen.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace simmr::mumak {
namespace {

constexpr const char* kMagic = "SIMMR-RUMEN-V1";

RumenTaskAttempt FromRecord(const cluster::TaskAttemptRecord& rec) {
  RumenTaskAttempt a;
  a.kind = rec.kind;
  a.index = rec.index;
  a.host = "node" + std::to_string(rec.node);
  a.start_time = rec.start;
  a.finish_time = rec.end;
  a.shuffle_finished = rec.shuffle_end;
  a.sort_finished = rec.shuffle_end;  // combined shuffle+sort boundary
  a.hdfs_bytes_read_mb = rec.input_mb;
  // Representative record counter (Rumen reports exact Hadoop counters; a
  // fixed record size preserves the field's role in the format).
  a.records_processed = static_cast<std::int64_t>(rec.input_mb * 1024.0);
  return a;
}

}  // namespace

RumenTrace RumenTrace::FromHistory(const cluster::HistoryLog& log) {
  RumenTrace trace;
  trace.jobs.reserve(log.jobs().size());
  for (const auto& job_record : log.jobs()) {
    RumenJob job;
    job.name = job_record.app_name + "/" + job_record.dataset;
    job.submit_time = job_record.submit_time;
    job.num_maps = job_record.num_maps;
    job.num_reduces = job_record.num_reduces;
    for (const auto& t : log.TasksOf(job_record.job)) {
      if (!t.succeeded) continue;  // Mumak replays successful attempts
      if (t.kind == cluster::TaskKind::kMap) {
        job.maps.push_back(FromRecord(t));
      } else {
        job.reduces.push_back(FromRecord(t));
      }
    }
    const auto by_start = [](const RumenTaskAttempt& a,
                             const RumenTaskAttempt& b) {
      return a.start_time < b.start_time;
    };
    std::stable_sort(job.maps.begin(), job.maps.end(), by_start);
    std::stable_sort(job.reduces.begin(), job.reduces.end(), by_start);
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

RumenTrace RumenTrace::FromProfiles(
    const std::vector<trace::JobProfile>& profiles,
    const std::vector<SimTime>& arrivals) {
  if (profiles.size() != arrivals.size())
    throw std::invalid_argument(
        "RumenTrace::FromProfiles: profiles/arrivals size mismatch");
  RumenTrace trace;
  trace.jobs.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const trace::JobProfile& p = profiles[i];
    RumenJob job;
    job.name = p.app_name + "/" + p.dataset;
    job.submit_time = arrivals[i];
    job.num_maps = p.num_maps;
    job.num_reduces = p.num_reduces;

    SimTime clock = arrivals[i];
    for (int m = 0; m < p.num_maps; ++m) {
      RumenTaskAttempt a;
      a.kind = cluster::TaskKind::kMap;
      a.index = m;
      a.host = "synthetic";
      a.start_time = clock;
      a.finish_time =
          clock + p.map_durations[m % p.map_durations.size()];
      a.shuffle_finished = a.start_time;
      a.sort_finished = a.start_time;
      clock = a.finish_time;
      job.maps.push_back(a);
    }
    const SimTime maps_end = clock;
    // Reduce attempts: shuffle from the typical pool (first-wave samples
    // only exist for logs parsed from real runs), then the reduce phase.
    std::size_t sh_cursor = 0, red_cursor = 0;
    const auto& shuffles = !p.typical_shuffle_durations.empty()
                               ? p.typical_shuffle_durations
                               : p.first_shuffle_durations;
    for (int r = 0; r < p.num_reduces; ++r) {
      RumenTaskAttempt a;
      a.kind = cluster::TaskKind::kReduce;
      a.index = r;
      a.host = "synthetic";
      a.start_time = maps_end;
      const double shuffle =
          shuffles.empty() ? 0.0 : shuffles[sh_cursor++ % shuffles.size()];
      const double reduce =
          p.reduce_durations.empty()
              ? 0.0
              : p.reduce_durations[red_cursor++ % p.reduce_durations.size()];
      a.shuffle_finished = a.start_time + shuffle;
      a.sort_finished = a.shuffle_finished;
      a.finish_time = a.sort_finished + reduce;
      job.reduces.push_back(a);
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

void RumenTrace::Write(std::ostream& out) const {
  out << kMagic << '\n';
  out.precision(9);
  for (const auto& job : jobs) {
    out << "RJOB\t" << job.name << '\t' << job.submit_time << '\t'
        << job.num_maps << '\t' << job.num_reduces << '\n';
    const auto write_attempt = [&out](const RumenTaskAttempt& a) {
      out << "RATT\t" << cluster::TaskKindName(a.kind) << '\t' << a.index
          << '\t' << a.host << '\t' << a.start_time << '\t' << a.finish_time
          << '\t' << a.shuffle_finished << '\t' << a.sort_finished << '\t'
          << a.hdfs_bytes_read_mb << '\t' << a.records_processed << '\n';
    };
    for (const auto& a : job.maps) write_attempt(a);
    for (const auto& a : job.reduces) write_attempt(a);
  }
}

RumenTrace RumenTrace::Read(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw std::runtime_error("RumenTrace: bad or missing magic header");
  RumenTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "RJOB") {
      RumenJob job;
      if (!(ls >> job.name >> job.submit_time >> job.num_maps >>
            job.num_reduces))
        throw std::runtime_error("RumenTrace: malformed RJOB line");
      trace.jobs.push_back(std::move(job));
    } else if (tag == "RATT") {
      if (trace.jobs.empty())
        throw std::runtime_error("RumenTrace: attempt before any job");
      RumenTaskAttempt a;
      std::string kind;
      if (!(ls >> kind >> a.index >> a.host >> a.start_time >> a.finish_time >>
            a.shuffle_finished >> a.sort_finished >> a.hdfs_bytes_read_mb >>
            a.records_processed))
        throw std::runtime_error("RumenTrace: malformed RATT line");
      if (kind == "MAP") {
        a.kind = cluster::TaskKind::kMap;
        trace.jobs.back().maps.push_back(a);
      } else if (kind == "REDUCE") {
        a.kind = cluster::TaskKind::kReduce;
        trace.jobs.back().reduces.push_back(a);
      } else {
        throw std::runtime_error("RumenTrace: bad attempt kind " + kind);
      }
    } else {
      throw std::runtime_error("RumenTrace: unknown record '" + tag + "'");
    }
  }
  return trace;
}

}  // namespace simmr::mumak
