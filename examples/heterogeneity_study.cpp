// Heterogeneity study — how far does the job-template abstraction stretch?
//
// The paper's related work (Section VI) notes that Hadoop assumes a
// homogeneous cluster and that heterogeneity-aware simulation needed a
// different tool (Cardona et al.). SimMR's job template records *pooled*
// task durations with no notion of which node produced them, so node
// heterogeneity widens the recorded distributions but should not break
// replay accuracy — until speculation or placement effects couple
// durations to nodes. This example sweeps node-speed heterogeneity on the
// testbed emulator and reports, per level:
//   - the spread of the recorded map-duration distribution,
//   - SimMR's replay error,
//   - what speculative execution would recover.
#include <cstdio>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "sched/fifo.h"
#include "simcore/stats.h"
#include "trace/mr_profiler.h"

int main() {
  using namespace simmr;
  std::printf(
      "Node-heterogeneity sweep: WordCount/40GB on 64 emulated workers.\n"
      "sigma = stddev of per-node speed factors (truncated normal).\n\n");
  std::printf("%8s %12s %14s %12s %9s %14s\n", "sigma", "actual_s",
              "map_cv", "simmr_s", "err_%", "spec_gain_%");

  cluster::JobSpec spec = cluster::ValidationSuite()[0];  // WordCount
  sched::FifoPolicy fifo;
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;

  for (const double sigma : {0.0, 0.05, 0.1, 0.2, 0.35}) {
    cluster::TestbedOptions opts;
    opts.seed = 31;
    opts.config.node_speed_sigma = sigma;
    const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
    const auto testbed = cluster::RunTestbed(jobs, opts);
    const double actual =
        testbed.log.jobs()[0].finish_time - testbed.log.jobs()[0].submit_time;

    const auto profile = trace::BuildAllProfiles(testbed.log)[0];
    const Summary map_summary = profile.MapSummary();
    const double cv = map_summary.stddev / map_summary.mean;

    trace::WorkloadTrace w(1);
    w[0].profile = profile;
    const double simulated =
        core::Replay(w, fifo, cfg).jobs[0].CompletionTime();

    // What would speculation claw back at this heterogeneity level?
    cluster::TestbedOptions spec_opts = opts;
    spec_opts.config.speculative_execution = true;
    const double with_spec =
        cluster::RunTestbed(jobs, spec_opts).log.jobs()[0].finish_time;

    std::printf("%8.2f %12.1f %14.3f %12.1f %+8.1f%% %+13.1f%%\n", sigma,
                actual, cv, simulated, 100.0 * (simulated - actual) / actual,
                100.0 * (actual - with_spec) / actual);
  }

  std::printf(
      "\nreading the table: the map-duration coefficient of variation\n"
      "(map_cv) grows with heterogeneity and the straggler tail stretches\n"
      "the job, yet the replay error stays small — the pooled template\n"
      "absorbs node effects. The last column is the completion-time\n"
      "reduction speculative execution would recover, i.e. the point at\n"
      "which the paper's 'speculation disabled' choice stops being free.\n");
  return 0;
}
