// Quickstart: the minimal SimMR workflow.
//
//   1. Describe a workload statistically and synthesize replayable job
//      profiles (Synthetic TraceGen).
//   2. Assemble a trace: arrival times and (optional) deadlines.
//   3. Replay it under a scheduling policy and read the results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

int main() {
  using namespace simmr;

  // A deterministic master seed makes the whole example reproducible.
  Rng rng(2026);

  // 1. Synthesize three jobs: durations per phase come from distributions
  //    (here: uniform ranges; anything in simcore/distributions.h works).
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 3; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "etl-step-" + std::to_string(i);
    spec.num_maps = 60 + 30 * i;   // number of map tasks
    spec.num_reduces = 16;         // number of reduce tasks
    spec.first_wave_size = 8;      // reduces that overlap the map stage
    spec.map_duration = std::make_shared<UniformDist>(8.0, 16.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(2.0, 5.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(5.0, 9.0);
    spec.reduce_duration = std::make_shared<UniformDist>(3.0, 6.0);
    pool.push_back(trace::SynthesizeProfile(spec, rng));
  }

  // 2. Build the trace: each job's deadline is drawn from
  //    [T_solo, 2 * T_solo] where T_solo is its completion time given the
  //    whole cluster (measured by a quick solo replay).
  core::SimConfig cluster;
  cluster.map_slots = 32;     // total map slots in the simulated cluster
  cluster.reduce_slots = 32;  // total reduce slots
  const auto solos = core::MeasureSoloCompletions(pool, cluster);

  trace::WorkloadParams params;
  params.mean_interarrival_s = 30.0;  // exponential arrivals
  params.deadline_factor = 2.0;
  const trace::WorkloadTrace workload =
      trace::MakeWorkload(pool, solos, params, rng);

  // 3. Replay under FIFO and inspect per-job results.
  sched::FifoPolicy fifo;
  const core::SimResult result = core::Replay(workload, fifo, cluster);

  std::printf("%-12s %10s %10s %12s %10s %6s\n", "job", "arrival_s",
              "finish_s", "completion_s", "deadline_s", "met?");
  for (const auto& job : result.jobs) {
    std::printf("%-12s %10.1f %10.1f %12.1f %10.1f %6s\n", job.name.c_str(),
                job.arrival, job.completion, job.CompletionTime(),
                job.deadline, job.MissedDeadline() ? "NO" : "yes");
  }
  std::printf("\nprocessed %llu simulator events; makespan %.1f s; "
              "deadline utility %.3f\n",
              static_cast<unsigned long long>(result.events_processed),
              result.makespan,
              core::RelativeDeadlineExceeded(result.jobs));
  return 0;
}
