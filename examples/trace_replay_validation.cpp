// End-to-end Figure 4 pipeline on one binary:
//
//   testbed execution  ->  JobTracker history log (file)
//                      ->  MRProfiler             (job templates)
//                      ->  Trace Database         (directory on disk)
//                      ->  SimMR replay           (FIFO)
//                      ->  accuracy report        (actual vs simulated)
//
// Also demonstrates the trace-scaling extension (the paper's future work):
// the Sort profile is scaled to 4x the dataset and replayed.
//
// Usage: trace_replay_validation [output_dir]
#include <cstdio>
#include <cmath>
#include <algorithm>
#include <filesystem>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "sched/fifo.h"
#include "trace/mr_profiler.h"
#include "trace/trace_database.h"
#include "trace/trace_scaling.h"

int main(int argc, char** argv) {
  using namespace simmr;
  namespace fs = std::filesystem;
  const fs::path out_dir =
      argc > 1 ? fs::path(argv[1])
               : fs::temp_directory_path() / "simmr_validation";
  fs::create_directories(out_dir);

  // --- 1. "Real" executions: the six paper applications, each alone on
  //        the emulated 66-node cluster.
  std::printf("[1/5] running the 6-application suite on the testbed "
              "emulator (64 workers)...\n");
  std::vector<cluster::SubmittedJob> jobs;
  double t = 0.0;
  for (const auto& spec : cluster::ValidationSuite()) {
    jobs.push_back({spec, t, 0.0});
    t += 10000.0;
  }
  cluster::TestbedOptions opts;
  opts.seed = 4242;
  const auto testbed = cluster::RunTestbed(jobs, opts);

  // --- 2. Persist the JobTracker-style history log.
  const fs::path log_path = out_dir / "jobtracker_history.log";
  testbed.log.WriteFile(log_path.string());
  std::printf("[2/5] wrote history log: %s (%zu task records)\n",
              log_path.c_str(), testbed.log.tasks().size());

  // --- 3. MRProfiler -> Trace Database.
  const auto reloaded = cluster::HistoryLog::ReadFile(log_path.string());
  trace::TraceDatabase db;
  for (auto& profile : trace::BuildAllProfiles(reloaded)) {
    db.Put(std::move(profile));
  }
  const fs::path db_dir = out_dir / "trace_db";
  db.Save(db_dir.string());
  std::printf("[3/5] profiled %zu jobs into the trace database: %s\n",
              db.size(), db_dir.c_str());

  // --- 4. Replay every profile in SimMR and compare to the testbed.
  std::printf("[4/5] replaying traces in SimMR (FIFO, 64x64 slots)...\n\n");
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  sched::FifoPolicy fifo;
  std::printf("%-12s %12s %12s %9s\n", "application", "actual_s", "simmr_s",
              "error");
  double worst = 0.0;
  const auto loaded = trace::TraceDatabase::Load(db_dir.string());
  for (const auto id : loaded.AllIds()) {
    trace::WorkloadTrace w(1);
    w[0].profile = loaded.Get(id);
    const auto sim = core::Replay(w, fifo, cfg);
    const auto& job_record = reloaded.jobs()[id];
    const double actual = job_record.finish_time - job_record.submit_time;
    const double simulated = sim.jobs[0].CompletionTime();
    const double err = 100.0 * (simulated - actual) / actual;
    worst = std::max(worst, std::abs(err));
    std::printf("%-12s %12.1f %12.1f %+8.1f%%\n",
                w[0].profile.app_name.c_str(), actual, simulated, err);
  }
  std::printf("\nworst |error|: %.1f%% (paper: <=6.6%%)\n", worst);

  // --- 5. Extension: scale the Sort trace to a 4x dataset and replay.
  std::printf("\n[5/5] trace-scaling extension: Sort at 4x data, same "
              "reduces vs 4x reduces\n");
  Rng rng(99);
  const auto sort_id = loaded.FindByApp("Sort").at(0);
  const trace::JobProfile& sort = loaded.Get(sort_id);
  trace::WorkloadTrace w(1);
  w[0].profile = sort;
  const double base = core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
  w[0].profile = trace::ScaleProfile(sort, {4.0, 1.0}, rng);
  const double same_reduces =
      core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
  w[0].profile = trace::ScaleProfile(sort, {4.0, 4.0}, rng);
  const double more_reduces =
      core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
  std::printf("  original:            %8.1f s\n", base);
  std::printf("  4x data, 1x reduces: %8.1f s (per-reduce data grows 4x)\n",
              same_reduces);
  std::printf("  4x data, 4x reduces: %8.1f s (reduce waves grow instead)\n",
              more_reduces);
  return 0;
}
