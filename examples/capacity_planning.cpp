// Capacity planning — the cluster-sizing what-if from the paper's
// introduction: "one has to evaluate whether additional resources are
// required, and then how they should be allocated for meeting performance
// goals of the jobs in the extended set."
//
// This example binary-searches the smallest cluster (map+reduce slots)
// whose replayed deadline-miss utility is zero for a production workload,
// then shows the utility curve around that point.
//
// Usage: capacity_planning [mean_interarrival_s] [deadline_factor]
#include <cstdio>
#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/simmr.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace {

using namespace simmr;

double UtilityAt(int slots, const std::vector<trace::JobProfile>& pool,
                 const std::vector<double>& baseline_solos,
                 double interarrival, double deadline_factor,
                 std::uint64_t seed, int runs) {
  core::SimConfig cfg;
  cfg.map_slots = slots;
  cfg.reduce_slots = slots;
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    Rng rng(seed + 131 * r);
    // Deadlines (SLOs) are fixed against the current production cluster;
    // the question is how much capacity makes them all reachable.
    trace::WorkloadParams params;
    params.num_jobs = static_cast<int>(pool.size());
    params.mean_interarrival_s = interarrival;
    params.deadline_factor = deadline_factor;
    const auto workload =
        trace::MakeWorkload(pool, baseline_solos, params, rng);
    sched::MinEdfPolicy policy(cfg.map_slots, cfg.reduce_slots);
    total += core::RelativeDeadlineExceeded(
        core::Replay(workload, policy, cfg).jobs);
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const double interarrival = argc > 1 ? std::atof(argv[1]) : 120.0;
  const double deadline_factor = argc > 2 ? std::atof(argv[2]) : 1.5;
  if (interarrival <= 0.0 || deadline_factor < 1.0) {
    std::fprintf(stderr,
                 "usage: %s [mean_interarrival_s > 0] [deadline_factor >= 1]\n",
                 argv[0]);
    return 1;
  }
  const std::uint64_t seed = 2211;
  const int runs = 6;

  // The production workload: 12 deadline-bearing jobs.
  Rng rng(seed);
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 12; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "prod-" + std::to_string(i);
    spec.num_maps = 80 + 25 * (i % 5);
    spec.num_reduces = 24 + 8 * (i % 4);
    spec.first_wave_size = 12;
    spec.map_duration = std::make_shared<LogNormalDist>(std::log(10.0), 0.5);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 3.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 8.0);
    spec.reduce_duration = std::make_shared<UniformDist>(2.0, 6.0);
    pool.push_back(trace::SynthesizeProfile(spec, rng));
  }

  // SLO baseline: the current production cluster has 24+24 slots; the
  // deadlines are drawn against what jobs achieve on it when run alone.
  core::SimConfig baseline;
  baseline.map_slots = 24;
  baseline.reduce_slots = 24;
  const auto baseline_solos = core::MeasureSoloCompletions(pool, baseline);

  std::printf("workload: %zu jobs, mean inter-arrival %.0f s, deadline "
              "factor %.2f (SLOs fixed against a 24x24-slot baseline),\n"
              "MinEDF scheduling\n\n",
              pool.size(), interarrival, deadline_factor);

  // Binary search the smallest slot count with (near-)zero utility.
  int lo = 4, hi = 256;
  const double target = 1e-6;
  if (UtilityAt(hi, pool, baseline_solos, interarrival, deadline_factor,
                seed, runs) >
      target) {
    std::printf("even %d slots cannot meet the deadlines; showing curve.\n",
                hi);
  } else {
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      const double u =
          UtilityAt(mid, pool, baseline_solos, interarrival,
                    deadline_factor, seed, runs);
      if (u <= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    std::printf("smallest cluster meeting every deadline: %d map + %d "
                "reduce slots\n\n", hi, hi);
  }

  std::printf("%8s %18s\n", "slots", "avg_utility");
  for (int slots = std::max(4, hi / 4); slots <= hi * 2 && slots <= 512;
       slots = slots * 3 / 2 + 1) {
    std::printf("%8d %18.4f\n", slots,
                UtilityAt(slots, pool, baseline_solos, interarrival,
                          deadline_factor, seed, runs));
  }
  std::printf("\neach point replays the workload %d times in SimMR — the\n"
              "multi-hour testbed experiment the paper's tooling replaces.\n",
              runs);
  return 0;
}
