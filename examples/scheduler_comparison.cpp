// Scheduler comparison — the paper's Section V use case as an application.
//
// Given one workload with deadlines, replay it under FIFO, MaxEDF and
// MinEDF and compare (a) the relative-deadline-exceeded utility, (b) how
// many jobs missed, and (c) the makespan. This is the kind of what-if
// question SimMR answers in seconds instead of testbed-hours.
//
// Usage: scheduler_comparison [mean_interarrival_s] [deadline_factor]
#include <cstdio>
#include <cmath>
#include <cstdlib>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace {

constexpr int kMapSlots = 32;
constexpr int kReduceSlots = 32;

struct PolicyOutcome {
  const char* name;
  double utility = 0.0;
  int missed = 0;
  double makespan = 0.0;
};

template <typename Policy>
void Accumulate(const simmr::trace::WorkloadTrace& workload, Policy& policy,
                PolicyOutcome& outcome) {
  simmr::core::SimConfig cfg;
  cfg.map_slots = kMapSlots;
  cfg.reduce_slots = kReduceSlots;
  const auto result = simmr::core::Replay(workload, policy, cfg);
  outcome.utility += simmr::core::RelativeDeadlineExceeded(result.jobs);
  outcome.missed += simmr::core::MissedDeadlineCount(result.jobs);
  outcome.makespan += result.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simmr;
  const double interarrival = argc > 1 ? std::atof(argv[1]) : 5.0;
  const double deadline_factor = argc > 2 ? std::atof(argv[2]) : 3.0;
  if (interarrival <= 0.0 || deadline_factor < 1.0) {
    std::fprintf(stderr,
                 "usage: %s [mean_interarrival_s > 0] [deadline_factor >= 1]\n",
                 argv[0]);
    return 1;
  }

  // A mixed production-like workload: six job shapes with reduce counts
  // above the cluster's reduce-slot total — the regime where MaxEDF's
  // non-preemptible early reduces hoard slots and the allocation policy
  // matters most (cf. the paper's Figure 7 discussion).
  Rng rng(7);
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 6; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "workload-" + std::to_string(i);
    spec.num_maps = 80 + 40 * i;
    spec.num_reduces = 40 + 8 * i;
    spec.first_wave_size = 16;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 3.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 7.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 4.0);
    pool.push_back(trace::SynthesizeProfile(spec, rng));
  }

  core::SimConfig cfg;
  cfg.map_slots = kMapSlots;
  cfg.reduce_slots = kReduceSlots;
  const auto solos = core::MeasureSoloCompletions(pool, cfg);

  // Average over several randomized workloads (arrival order and deadline
  // draws), as the paper does with 400 repetitions.
  const int kRepetitions = 10;
  const int kJobs = 18;
  PolicyOutcome outcomes[] = {{"FIFO"}, {"MaxEDF"}, {"MinEDF"}};
  for (int rep = 0; rep < kRepetitions; ++rep) {
    trace::WorkloadParams params;
    params.num_jobs = kJobs;
    params.mean_interarrival_s = interarrival;
    params.deadline_factor = deadline_factor;
    const auto workload = trace::MakeWorkload(pool, solos, params, rng);
    sched::FifoPolicy fifo;
    sched::MaxEdfPolicy maxedf;
    sched::MinEdfPolicy minedf(kMapSlots, kReduceSlots);
    Accumulate(workload, fifo, outcomes[0]);
    Accumulate(workload, maxedf, outcomes[1]);
    Accumulate(workload, minedf, outcomes[2]);
  }

  std::printf("workload: %d jobs x %d repetitions, mean inter-arrival "
              "%.0f s,\ndeadline factor %.2f, cluster %dx%d slots\n\n",
              kJobs, kRepetitions, interarrival, deadline_factor, kMapSlots,
              kReduceSlots);
  std::printf("%-8s %18s %14s %12s\n", "policy", "avg_utility",
              "avg_missed", "avg_makespan");
  for (const auto& o : outcomes) {
    std::printf("%-8s %18.3f %11.1f/%d %12.1f\n", o.name,
                o.utility / kRepetitions,
                static_cast<double>(o.missed) / kRepetitions, kJobs,
                o.makespan / kRepetitions);
  }
  std::printf("\nlower utility is better; rerun with other arguments to\n"
              "explore the load/deadline space (cf. paper Figures 7-8).\n");
  return 0;
}
