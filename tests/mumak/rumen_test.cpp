#include "mumak/rumen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster_sim.h"

namespace simmr::mumak {
namespace {

cluster::HistoryLog SmallLog() {
  using namespace cluster;
  std::vector<SubmittedJob> jobs;
  JobSpec spec = ValidationSuite()[4];  // TFIDF, smallest job
  jobs.push_back({spec, 0.0, 0.0});
  TestbedOptions opts;
  opts.config.num_nodes = 16;
  return RunTestbed(jobs, opts).log;
}

TEST(Rumen, FromHistoryExtractsAllAttempts) {
  const auto log = SmallLog();
  const RumenTrace trace = RumenTrace::FromHistory(log);
  ASSERT_EQ(trace.jobs.size(), 1u);
  const RumenJob& job = trace.jobs[0];
  EXPECT_EQ(static_cast<int>(job.maps.size()), job.num_maps);
  EXPECT_EQ(static_cast<int>(job.reduces.size()), job.num_reduces);
}

TEST(Rumen, AttemptsSortedByStartTime) {
  const RumenTrace trace = RumenTrace::FromHistory(SmallLog());
  const RumenJob& job = trace.jobs[0];
  for (std::size_t i = 1; i < job.maps.size(); ++i) {
    EXPECT_LE(job.maps[i - 1].start_time, job.maps[i].start_time);
  }
  for (std::size_t i = 1; i < job.reduces.size(); ++i) {
    EXPECT_LE(job.reduces[i - 1].start_time, job.reduces[i].start_time);
  }
}

TEST(Rumen, ReducePhaseExcludesShuffle) {
  const RumenTrace trace = RumenTrace::FromHistory(SmallLog());
  for (const auto& a : trace.jobs[0].reduces) {
    EXPECT_GE(a.sort_finished, a.start_time);
    EXPECT_GE(a.finish_time, a.sort_finished);
    EXPECT_LT(a.ReducePhaseDuration(), a.TotalDuration());
  }
}

TEST(Rumen, HostsAndCountersPopulated) {
  const RumenTrace trace = RumenTrace::FromHistory(SmallLog());
  for (const auto& a : trace.jobs[0].maps) {
    EXPECT_FALSE(a.host.empty());
    EXPECT_GT(a.hdfs_bytes_read_mb, 0.0);
    EXPECT_GT(a.records_processed, 0);
  }
}

TEST(Rumen, FromProfilesBuildsConsistentTrace) {
  trace::JobProfile p;
  p.app_name = "synthetic";
  p.num_maps = 5;
  p.num_reduces = 3;
  p.map_durations = {1.0, 2.0, 3.0, 4.0, 5.0};
  p.typical_shuffle_durations = {2.0, 2.5, 3.0};
  p.reduce_durations = {1.0, 1.5, 2.0};
  const RumenTrace trace =
      RumenTrace::FromProfiles({p}, {10.0});
  ASSERT_EQ(trace.jobs.size(), 1u);
  const RumenJob& job = trace.jobs[0];
  EXPECT_DOUBLE_EQ(job.submit_time, 10.0);
  ASSERT_EQ(job.maps.size(), 5u);
  ASSERT_EQ(job.reduces.size(), 3u);
  EXPECT_DOUBLE_EQ(job.maps[0].TotalDuration(), 1.0);
  EXPECT_DOUBLE_EQ(job.maps[4].TotalDuration(), 5.0);
  EXPECT_DOUBLE_EQ(job.reduces[0].ReducePhaseDuration(), 1.0);
  EXPECT_DOUBLE_EQ(job.reduces[2].ReducePhaseDuration(), 2.0);
}

TEST(Rumen, FromProfilesRejectsSizeMismatch) {
  EXPECT_THROW(RumenTrace::FromProfiles({}, {1.0}), std::invalid_argument);
}

TEST(Rumen, RoundTripThroughStream) {
  const RumenTrace original = RumenTrace::FromHistory(SmallLog());
  std::stringstream buffer;
  original.Write(buffer);
  const RumenTrace loaded = RumenTrace::Read(buffer);
  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  const RumenJob& a = original.jobs[0];
  const RumenJob& b = loaded.jobs[0];
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_maps, b.num_maps);
  ASSERT_EQ(a.maps.size(), b.maps.size());
  for (std::size_t i = 0; i < a.maps.size(); ++i) {
    EXPECT_NEAR(a.maps[i].start_time, b.maps[i].start_time, 1e-4);
    EXPECT_NEAR(a.maps[i].finish_time, b.maps[i].finish_time, 1e-4);
    EXPECT_EQ(a.maps[i].host, b.maps[i].host);
  }
}

TEST(Rumen, ReadRejectsBadMagic) {
  std::stringstream buffer("NOPE\n");
  EXPECT_THROW(RumenTrace::Read(buffer), std::runtime_error);
}

TEST(Rumen, ReadRejectsAttemptBeforeJob) {
  std::stringstream buffer(
      "SIMMR-RUMEN-V1\nRATT\tMAP\t0\thost\t0\t1\t0\t0\t1\t2\n");
  EXPECT_THROW(RumenTrace::Read(buffer), std::runtime_error);
}

TEST(Rumen, ReadRejectsMalformedJobLine) {
  std::stringstream buffer("SIMMR-RUMEN-V1\nRJOB\tonlyname\n");
  EXPECT_THROW(RumenTrace::Read(buffer), std::runtime_error);
}

TEST(Rumen, ReadRejectsBadKind) {
  std::stringstream buffer(
      "SIMMR-RUMEN-V1\nRJOB\tj\t0\t1\t1\nRATT\tSHUFFLE\t0\th\t0\t1\t0\t0\t1\t2\n");
  EXPECT_THROW(RumenTrace::Read(buffer), std::runtime_error);
}

}  // namespace
}  // namespace simmr::mumak
