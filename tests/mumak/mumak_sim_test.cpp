#include "mumak/mumak_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace simmr::mumak {
namespace {

/// Uniform trace: num_maps maps of 10 s; reduces with 5 s shuffle+sort and
/// 2 s reduce phase each.
RumenTrace UniformTrace(int num_maps, int num_reduces, double submit = 0.0) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.typical_shuffle_durations.assign(num_reduces, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return RumenTrace::FromProfiles({p}, {submit});
}

MumakConfig SmallConfig(int nodes = 4) {
  MumakConfig cfg;
  cfg.num_nodes = nodes;
  return cfg;
}

TEST(MumakSim, SingleJobCompletes) {
  const auto result = RunMumak(UniformTrace(8, 2), SmallConfig());
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_GT(result.jobs[0].finish_time, 0.0);
  EXPECT_GT(result.events_processed, 0u);
}

TEST(MumakSim, OmitsShufflePhase) {
  // 4 maps on 4 nodes finish ~10 s (+ report latency). Reduces then take
  // only their 2 s reduce phase: the 5 s shuffle is NOT simulated, so the
  // total must be well under map+shuffle+reduce.
  const auto result = RunMumak(UniformTrace(4, 2), SmallConfig(4));
  const double t = result.jobs[0].CompletionTime();
  EXPECT_LT(t, 10.0 + 2.0 + 5.0);  // shuffle omitted
  EXPECT_GE(t, 10.0 + 2.0 - 1e-9);
}

TEST(MumakSim, ReduceWaitsForAllMaps) {
  // 8 maps on 2 nodes: 4 serial waves of 10 s = 40 s. Even though reduces
  // are launched early (slowstart), they cannot finish before all maps
  // are done plus their reduce phase.
  const auto result = RunMumak(UniformTrace(8, 1), SmallConfig(2));
  EXPECT_GE(result.jobs[0].CompletionTime(), 40.0 + 2.0 - 1e-9);
}

TEST(MumakSim, MultiWaveReducesOnlyPayReducePhase) {
  // 4 reduces on 1 node (1 reduce slot) => 4 serial reduce waves. After
  // maps finish, each wave costs only ~2 s (plus heartbeat quantization),
  // never the 5 s shuffle.
  MumakConfig cfg = SmallConfig(1);
  const auto result = RunMumak(UniformTrace(1, 4), cfg);
  const double t = result.jobs[0].CompletionTime();
  // Map ~10; 4 reduce waves of ~2s each + up to 3s heartbeat quantization
  // per wave boundary.
  EXPECT_LT(t, 10.0 + 4.0 * (2.0 + 3.0) + 3.0);
  EXPECT_GE(t, 10.0 + 4.0 * 2.0 - 1e-9);
}

TEST(MumakSim, HeartbeatsDominateEventCount) {
  // Mumak's defining cost: events scale with nodes x simulated time, not
  // with task count.
  const auto few_nodes = RunMumak(UniformTrace(8, 2), SmallConfig(2));
  const auto many_nodes = RunMumak(UniformTrace(8, 2), SmallConfig(32));
  EXPECT_GT(many_nodes.events_processed, few_nodes.events_processed);
}

TEST(MumakSim, WithoutOobHeartbeatsTakesLonger) {
  MumakConfig with = SmallConfig(2);
  MumakConfig without = SmallConfig(2);
  without.out_of_band_heartbeat = false;
  const double t_with =
      RunMumak(UniformTrace(8, 2), with).jobs[0].CompletionTime();
  const double t_without =
      RunMumak(UniformTrace(8, 2), without).jobs[0].CompletionTime();
  EXPECT_GE(t_without, t_with);
}

TEST(MumakSim, FifoServesJobsInSubmitOrder) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 8;
  p.num_reduces = 1;
  p.map_durations.assign(8, 10.0);
  p.typical_shuffle_durations.assign(1, 5.0);
  p.reduce_durations.assign(1, 2.0);
  const RumenTrace trace = RumenTrace::FromProfiles({p, p}, {0.0, 1.0});
  const auto result = RunMumak(trace, SmallConfig(2));
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_LT(result.jobs[0].finish_time, result.jobs[1].finish_time);
}

TEST(MumakSim, RejectsUnsortedJobs) {
  trace::JobProfile p;
  p.num_maps = 1;
  p.num_reduces = 0;
  p.map_durations = {1.0};
  const RumenTrace trace = RumenTrace::FromProfiles({p, p}, {5.0, 0.0});
  EXPECT_THROW(RunMumak(trace, SmallConfig()), std::invalid_argument);
}

TEST(MumakSim, EmptyTraceIsFine) {
  const auto result = RunMumak(RumenTrace{}, SmallConfig());
  EXPECT_TRUE(result.jobs.empty());
}

TEST(MumakSim, MakespanIsLatestFinish) {
  trace::JobProfile p;
  p.num_maps = 2;
  p.num_reduces = 1;
  p.map_durations = {10.0, 10.0};
  p.typical_shuffle_durations = {5.0};
  p.reduce_durations = {2.0};
  const RumenTrace trace = RumenTrace::FromProfiles({p, p}, {0.0, 100.0});
  const auto result = RunMumak(trace, SmallConfig());
  double latest = 0.0;
  for (const auto& j : result.jobs) latest = std::max(latest, j.finish_time);
  EXPECT_DOUBLE_EQ(result.makespan, latest);
}

TEST(MumakSim, DeterministicAcrossRuns) {
  const RumenTrace trace = UniformTrace(16, 4);
  const auto a = RunMumak(trace, SmallConfig());
  const auto b = RunMumak(trace, SmallConfig());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace simmr::mumak
