#include "mc/oracles.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "simcore/event_names.h"

namespace simmr::mc {
namespace {

ActionSig Sig(SimEventKind kind, std::int32_t a = 0, std::int32_t b = 0) {
  return ActionSig{kind, a, b};
}

TEST(SigOf, ParsesKindNameAndOperands) {
  const ActionSig sig = SigOf(ChoiceOption{"HEARTBEAT", 3, 7});
  EXPECT_EQ(sig.kind, SimEventKind::kHeartbeat);
  EXPECT_EQ(sig.a, 3);
  EXPECT_EQ(sig.b, 7);
}

TEST(SigOf, RoundTripsEveryKindName) {
  for (int k = 0; k < kNumSimEventKinds; ++k) {
    const auto kind = static_cast<SimEventKind>(k);
    EXPECT_EQ(SigOf(ChoiceOption{SimEventKindName(kind), 1, 2}).kind, kind);
  }
}

TEST(SigOf, ThrowsOnUnknownKindName) {
  EXPECT_THROW(SigOf(ChoiceOption{"NOT_A_KIND", 0, 0}), std::logic_error);
}

TEST(ActionSig, EqualityAndOrderingAreOperandSensitive) {
  const ActionSig a = Sig(SimEventKind::kMapDataReady, 0, 1);
  const ActionSig b = Sig(SimEventKind::kMapDataReady, 0, 2);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(IndependentActions, NothingCommutesWithItself) {
  for (int k = 0; k < kNumSimEventKinds; ++k) {
    const ActionSig sig = Sig(static_cast<SimEventKind>(k), 1, 2);
    EXPECT_FALSE(IndependentActions(sig, sig));
  }
}

TEST(IndependentActions, DistinctFetchChecksCommute) {
  // Generation-stamped: at most one pending check is live, so their
  // relative order is unobservable.
  EXPECT_TRUE(IndependentActions(Sig(SimEventKind::kFetchCheck, 0, 1),
                                 Sig(SimEventKind::kFetchCheck, 0, 2)));
}

TEST(IndependentActions, HeartbeatsAreGloballyDependent) {
  const ActionSig hb = Sig(SimEventKind::kHeartbeat, 0);
  EXPECT_FALSE(IndependentActions(hb, Sig(SimEventKind::kHeartbeat, 1)));
  EXPECT_FALSE(IndependentActions(hb, Sig(SimEventKind::kMapDataReady, 1)));
  EXPECT_FALSE(IndependentActions(hb, Sig(SimEventKind::kJobArrival, 1)));
  EXPECT_FALSE(IndependentActions(hb, Sig(SimEventKind::kOobHeartbeat, 1)));
}

TEST(IndependentActions, FetchChecksDependOnEverythingElse) {
  const ActionSig fc = Sig(SimEventKind::kFetchCheck, 0, 1);
  EXPECT_FALSE(IndependentActions(fc, Sig(SimEventKind::kMapDataReady, 2)));
  EXPECT_FALSE(IndependentActions(fc, Sig(SimEventKind::kReduceDone, 2)));
  EXPECT_FALSE(IndependentActions(Sig(SimEventKind::kJobArrival, 2), fc));
}

TEST(IndependentActions, ArrivalsDoNotCommuteWithEachOther) {
  // Job-id assignment order is observable state.
  EXPECT_FALSE(IndependentActions(Sig(SimEventKind::kJobArrival, 0),
                                  Sig(SimEventKind::kJobArrival, 1)));
}

TEST(IndependentActions, DistinctCompletionsAndArrivalsCommute) {
  const ActionSig map0 = Sig(SimEventKind::kMapDataReady, 0, 0);
  const ActionSig map1 = Sig(SimEventKind::kMapDataReady, 1, 0);
  const ActionSig red = Sig(SimEventKind::kReduceDone, 0, 1);
  const ActionSig arrival = Sig(SimEventKind::kJobArrival, 2);
  EXPECT_TRUE(IndependentActions(map0, map1));
  EXPECT_TRUE(IndependentActions(map0, red));
  EXPECT_TRUE(IndependentActions(arrival, map0));
  EXPECT_TRUE(IndependentActions(red, arrival));
}

TEST(IndependentActions, RelationIsSymmetric) {
  const ActionSig sigs[] = {
      Sig(SimEventKind::kHeartbeat, 0),    Sig(SimEventKind::kJobArrival, 1),
      Sig(SimEventKind::kMapDataReady, 2), Sig(SimEventKind::kReduceDone, 3),
      Sig(SimEventKind::kFetchCheck, 4),   Sig(SimEventKind::kOobHeartbeat, 5),
  };
  for (const ActionSig& x : sigs)
    for (const ActionSig& y : sigs)
      EXPECT_EQ(IndependentActions(x, y), IndependentActions(y, x));
}

std::vector<ChoiceOption> ThreeOptions() {
  return {{"HEARTBEAT", 0, 0}, {"HEARTBEAT", 1, 0}, {"HEARTBEAT", 2, 0}};
}

TEST(ScriptedOracle, ReplaysPrefixThenDefaultsToZero) {
  ScriptedOracle oracle({2, 1});
  const auto options = ThreeOptions();
  EXPECT_EQ(oracle.Choose(1.0, options), 2u);
  EXPECT_EQ(oracle.Choose(2.0, options), 1u);
  EXPECT_EQ(oracle.Choose(3.0, options), 0u);  // past the prefix
  ASSERT_EQ(oracle.trail().size(), 3u);
  EXPECT_DOUBLE_EQ(oracle.trail()[0].time, 1.0);
  EXPECT_EQ(oracle.trail()[0].chosen, 2u);
  EXPECT_EQ(oracle.trail()[2].chosen, 0u);
  EXPECT_EQ(oracle.trail()[1].options.size(), 3u);
}

TEST(ScriptedOracle, ThrowsOnOutOfRangePick) {
  ScriptedOracle oracle({3});
  EXPECT_THROW(oracle.Choose(0.0, ThreeOptions()), std::logic_error);
}

TEST(RandomOracle, SameSeedSamePicksAndAllInRange) {
  RandomOracle a(99);
  RandomOracle b(99);
  const auto options = ThreeOptions();
  for (int i = 0; i < 50; ++i) {
    const std::size_t pick = a.Choose(i, options);
    EXPECT_LT(pick, options.size());
    EXPECT_EQ(pick, b.Choose(i, options));
  }
}

TEST(RandomOracle, DifferentSeedsDiverge) {
  RandomOracle a(1);
  RandomOracle b(2);
  const auto options = ThreeOptions();
  bool diverged = false;
  for (int i = 0; i < 50; ++i)
    diverged = diverged || a.Choose(i, options) != b.Choose(i, options);
  EXPECT_TRUE(diverged);
}

TEST(ScheduleOfTrail, ExtractsThePicks) {
  ScriptedOracle oracle({1, 0, 2});
  const auto options = ThreeOptions();
  for (int i = 0; i < 4; ++i) (void)oracle.Choose(i, options);
  EXPECT_EQ(ScheduleOfTrail(oracle.trail()), (Schedule{1, 0, 2, 0}));
}

}  // namespace
}  // namespace simmr::mc
