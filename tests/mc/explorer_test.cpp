#include "mc/explorer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>

#include "mc/oracles.h"
#include "mc/scenario.h"

namespace simmr::mc {
namespace {

/// Options tuned for unit-test speed: the invariant observer is the only
/// per-execution check (the policy properties replay the whole workload
/// several times per execution, which the exhaustiveness arguments below
/// don't need — fingerprints are property-independent).
ExploreOptions FastOptions() {
  ExploreOptions options;
  options.properties = {"invariants"};
  return options;
}

/// Reference enumerator: walks the schedule tree with no pruning and no
/// explorer machinery, re-executing from scratch per prefix. A prefix is a
/// leaf when the run consults no choice point beyond it; otherwise it
/// branches over every alternative of the first uncovered choice point.
struct BruteForce {
  const Scenario& scenario;
  const ExploreOptions& options;
  std::set<std::uint64_t> fingerprints;
  std::uint64_t leaves = 0;

  void Enumerate(const Schedule& prefix) {
    const RunOutcome outcome = RunSchedule(scenario, prefix, options);
    ASSERT_GE(outcome.trail.size(), prefix.size());
    if (outcome.trail.size() == prefix.size()) {
      ++leaves;
      fingerprints.insert(outcome.fingerprint);
      return;
    }
    const std::size_t fanout = outcome.trail[prefix.size()].options.size();
    ASSERT_GE(fanout, 2u);  // choice points exist only at real ties
    for (std::size_t pick = 0; pick < fanout; ++pick) {
      Schedule next = prefix;
      next.push_back(pick);
      Enumerate(next);
    }
  }
};

// The acceptance cross-check: on the 2-job/2-tracker scenario the explorer
// must reach exactly the behaviours the brute-force enumeration reaches —
// with pruning off, execution-for-execution; with pruning on, the same
// terminal-state set from strictly fewer executions.
TEST(Explore, PairMatchesBruteForceEnumeration) {
  const Scenario scenario = MakeScenario("pair");
  const ExploreOptions base = FastOptions();

  BruteForce brute{scenario, base};
  brute.Enumerate({});
  ASSERT_GT(brute.leaves, 0u);

  ExploreOptions naive = base;
  naive.prune = false;
  const ExploreResult full = Explore(scenario, naive);
  EXPECT_TRUE(full.stats.exhausted);
  EXPECT_EQ(full.stats.dfs_executions, brute.leaves);
  EXPECT_EQ(std::set<std::uint64_t>(full.fingerprints.begin(),
                                    full.fingerprints.end()),
            brute.fingerprints);

  const ExploreResult pruned = Explore(scenario, base);
  EXPECT_TRUE(pruned.stats.exhausted);
  EXPECT_LT(pruned.stats.dfs_executions, full.stats.dfs_executions);
  EXPECT_GT(pruned.stats.transitions_pruned, 0u);
  EXPECT_EQ(pruned.fingerprints, full.fingerprints);
  EXPECT_EQ(pruned.stats.distinct_terminals, pruned.fingerprints.size());
}

// The pruning acceptance bound: on the 3-job smoke scenario sleep sets must
// cut at least 30% of the transitions the naive enumeration descends into,
// without losing a single terminal state.
TEST(Explore, Smoke3PrunesAtLeastThirtyPercentOfTransitions) {
  const Scenario scenario = MakeScenario("smoke3");
  ExploreOptions base = FastOptions();
  base.budget = 100000;  // naive exhaustion needs ~47k executions

  ExploreOptions naive = base;
  naive.prune = false;
  const ExploreResult full = Explore(scenario, naive);
  const ExploreResult pruned = Explore(scenario, base);

  ASSERT_TRUE(full.stats.exhausted);
  ASSERT_TRUE(pruned.stats.exhausted);
  EXPECT_EQ(pruned.fingerprints, full.fingerprints);
  EXPECT_LE(pruned.stats.transitions_explored,
            (full.stats.transitions_explored * 7) / 10)
      << "pruned " << pruned.stats.transitions_explored << " vs naive "
      << full.stats.transitions_explored;
}

TEST(Explore, ResultIsIdenticalForEveryThreadCount) {
  const Scenario scenario = MakeScenario("pair");
  ExploreOptions options = FastOptions();
  options.max_depth = 12;
  options.budget = 200;
  options.random_executions = 50;

  options.threads = 1;
  const ExploreResult serial = Explore(scenario, options);
  options.threads = 4;
  const ExploreResult parallel = Explore(scenario, options);

  EXPECT_EQ(serial.fingerprints, parallel.fingerprints);
  EXPECT_EQ(serial.stats.executions, parallel.stats.executions);
  EXPECT_EQ(serial.stats.random_executions, parallel.stats.random_executions);
  EXPECT_EQ(serial.stats.choice_points, parallel.stats.choice_points);
  EXPECT_EQ(serial.stats.distinct_terminals,
            parallel.stats.distinct_terminals);
  EXPECT_EQ(serial.violations.size(), parallel.violations.size());
}

TEST(Explore, BudgetCapsExecutionsWithoutExhausting) {
  const Scenario scenario = MakeScenario("pair");
  ExploreOptions options = FastOptions();
  options.budget = 5;
  const ExploreResult result = Explore(scenario, options);
  EXPECT_FALSE(result.stats.exhausted);
  EXPECT_LE(result.stats.dfs_executions, 5u);
}

TEST(Explore, RejectsDegenerateOptions) {
  const Scenario scenario = MakeScenario("pair");
  ExploreOptions options = FastOptions();
  options.budget = 0;
  EXPECT_THROW(Explore(scenario, options), std::invalid_argument);
  options = FastOptions();
  options.max_depth = 0;
  EXPECT_THROW(Explore(scenario, options), std::invalid_argument);
  options = FastOptions();
  options.properties = {"no_such_property"};
  EXPECT_THROW(Explore(scenario, options), std::invalid_argument);
}

TEST(MakeScenario, RejectsUnknownNames) {
  EXPECT_THROW(MakeScenario("nonesuch"), std::invalid_argument);
  for (const std::string& name : ScenarioNames())
    EXPECT_EQ(MakeScenario(name).name, name);
}

TEST(RunSchedule, ReplaysBitIdentically) {
  const Scenario scenario = MakeScenario("pair");
  const ExploreOptions options = FastOptions();
  const Schedule schedule = {1, 0, 1};
  const RunOutcome a = RunSchedule(scenario, schedule, options);
  const RunOutcome b = RunSchedule(scenario, schedule, options);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  ASSERT_GE(a.trail.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i)
    EXPECT_EQ(a.trail[i].chosen, schedule[i]);
  EXPECT_TRUE(a.violations.empty());
}

TEST(RunSchedule, ScheduleOrderChangesTheFingerprintSomewhere) {
  // "pair" has exactly two terminal states, so some pick flip must move
  // the fingerprint (if none did, the explorer would have nothing to do).
  const Scenario scenario = MakeScenario("pair");
  const ExploreOptions options = FastOptions();
  const std::uint64_t base = RunSchedule(scenario, {}, options).fingerprint;
  bool moved = false;
  for (std::size_t i = 0; i < 8 && !moved; ++i) {
    Schedule schedule(i + 1, 0);
    schedule[i] = 1;
    moved = RunSchedule(scenario, schedule, options).fingerprint != base;
  }
  EXPECT_TRUE(moved);
}

TEST(Explore, SeededFaultIsCaughtAndShrunkToAViolatingSchedule) {
  const Scenario scenario = MakeScenario("pair");
  ExploreOptions options = FastOptions();
  options.budget = 4;
  options.fault = "invariants";

  // Sanity: the same property is clean without the fault.
  EXPECT_TRUE(RunSchedule(scenario, {}, FastOptions()).violations.empty());

  const ExploreResult result = Explore(scenario, options);
  ASSERT_FALSE(result.violations.empty());
  const ExploreViolation& violation = result.violations.front();
  EXPECT_EQ(violation.property, "invariants");
  EXPECT_LE(violation.shrunk.size(), violation.schedule.size());

  const RunOutcome replay = RunSchedule(scenario, violation.shrunk, options);
  bool still_violates = false;
  for (const check::Violation& v : replay.violations)
    still_violates = still_violates || v.invariant == violation.property;
  EXPECT_TRUE(still_violates);
}

}  // namespace
}  // namespace simmr::mc
