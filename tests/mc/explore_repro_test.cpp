#include "mc/explore_repro.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "mc/explorer.h"
#include "mc/scenario.h"

namespace simmr::mc {
namespace {

/// A real artifact, produced the way the tool produces one: explore the
/// pair scenario with a seeded detector fault and package the violation.
ExploreReproducer SampleReproducer() {
  const Scenario scenario = MakeScenario("pair");
  ExploreOptions options;
  options.budget = 4;
  options.seed = 1234;
  options.fault = "invariants";
  options.properties = {"invariants"};
  const ExploreResult result = Explore(scenario, options);
  if (result.violations.empty())
    throw std::logic_error("seeded fault produced no violation");
  return MakeExploreReproducer(scenario, result.violations.front(), options);
}

std::string Render(const ExploreReproducer& repro) {
  std::ostringstream out;
  WriteExploreReproducer(out, repro);
  return out.str();
}

TEST(ExploreRepro, RoundTripsBitExactly) {
  const ExploreReproducer original = SampleReproducer();
  const std::string text = Render(original);

  std::istringstream in(text);
  const ExploreReproducer parsed = ReadExploreReproducer(in);
  EXPECT_EQ(parsed.scenario, original.scenario);
  EXPECT_EQ(parsed.property, original.property);
  EXPECT_EQ(parsed.fault, original.fault);
  EXPECT_EQ(parsed.explore_seed, original.explore_seed);
  EXPECT_EQ(parsed.schedule, original.schedule);
  EXPECT_EQ(parsed.base.note, original.base.note);

  // Re-serializing the parse reproduces the file byte for byte.
  EXPECT_EQ(Render(parsed), text);
}

TEST(ExploreRepro, CapturesTheViolationContext) {
  const ExploreReproducer repro = SampleReproducer();
  EXPECT_EQ(repro.scenario, "pair");
  EXPECT_EQ(repro.property, "invariants");
  EXPECT_EQ(repro.fault, "invariants");
  EXPECT_EQ(repro.explore_seed, 1234u);
  EXPECT_FALSE(repro.base.note.empty());
}

TEST(ExploreRepro, EmptyFaultAndScheduleRoundTrip) {
  // A pin for a real (non-seeded) failure has no fault, and a ddmin that
  // shrinks to the default schedule has zero picks; neither may be lost.
  ExploreReproducer repro = SampleReproducer();
  repro.fault.clear();
  repro.schedule.clear();
  std::istringstream in(Render(repro));
  const ExploreReproducer parsed = ReadExploreReproducer(in);
  EXPECT_EQ(parsed.fault, "");
  EXPECT_TRUE(parsed.schedule.empty());
}

TEST(ExploreRepro, TruncatedTrailerThrows) {
  const std::string text = Render(SampleReproducer());
  const std::size_t cut = text.rfind("schedule ");
  ASSERT_NE(cut, std::string::npos);
  std::istringstream in(text.substr(0, cut));
  EXPECT_THROW(ReadExploreReproducer(in), std::runtime_error);
}

TEST(ExploreRepro, GarbageInputThrows) {
  std::istringstream in("simmr.repro.v999\nnot a reproducer\n");
  EXPECT_THROW(ReadExploreReproducer(in), std::runtime_error);
}

}  // namespace
}  // namespace simmr::mc
