#include "simcore/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace simmr {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoundedStaysInBound) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextBoundedOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBoundedApproximatelyUniform) {
  Rng rng(31);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, n / 8.0 * 0.1);
  }
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.NextGaussian();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, SplitIsDeterministic) {
  Rng parent(77);
  Rng a = parent.Split("stream", 3);
  Rng b = Rng(77).Split("stream", 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsAreIndependentByName) {
  Rng parent(77);
  Rng a = parent.Split("alpha");
  Rng b = parent.Split("beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsAreIndependentByIndex) {
  Rng parent(77);
  Rng a = parent.Split("job", 0);
  Rng b = parent.Split("job", 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(13), b(13);
  (void)a.Split("x");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, HashNameStableAndDistinct) {
  EXPECT_EQ(HashName("abc"), HashName("abc"));
  EXPECT_NE(HashName("abc"), HashName("abd"));
  EXPECT_NE(HashName(""), HashName("a"));
}

TEST(Rng, SeedAccessorReturnsConstructorSeed) {
  EXPECT_EQ(Rng(12345).seed(), 12345u);
}

}  // namespace
}  // namespace simmr
