#include "simcore/event_names.h"

#include <gtest/gtest.h>

#include "core/events.h"

namespace simmr {
namespace {

TEST(SimEventKind, NameParseRoundTripsEveryKind) {
  for (int i = 0; i < kNumSimEventKinds; ++i) {
    const auto kind = static_cast<SimEventKind>(i);
    const char* name = SimEventKindName(kind);
    ASSERT_STRNE(name, "?") << "kind " << i << " has no name";
    const auto parsed = ParseSimEventKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
}

TEST(SimEventKind, NamesAreUnique) {
  for (int a = 0; a < kNumSimEventKinds; ++a) {
    for (int b = a + 1; b < kNumSimEventKinds; ++b) {
      EXPECT_STRNE(SimEventKindName(static_cast<SimEventKind>(a)),
                   SimEventKindName(static_cast<SimEventKind>(b)));
    }
  }
}

TEST(SimEventKind, UnknownNameParsesToNullopt) {
  EXPECT_FALSE(ParseSimEventKind("").has_value());
  EXPECT_FALSE(ParseSimEventKind("NOT_AN_EVENT").has_value());
  EXPECT_FALSE(ParseSimEventKind("job_arrival").has_value());  // wrong case
  EXPECT_FALSE(ParseSimEventKind("JOB_ARRIVAL ").has_value());
}

TEST(SimEventKind, OutOfRangeKindNamesToQuestionMark) {
  EXPECT_STREQ(SimEventKindName(static_cast<SimEventKind>(200)), "?");
}

TEST(SimEventKind, EngineEventTypeNamesComeFromTheSharedTable) {
  // core::EventType mirrors the first seven SimEventKind entries, so the
  // engine's names must be the shared vocabulary verbatim.
  EXPECT_STREQ(core::EventTypeName(core::EventType::kJobArrival),
               "JOB_ARRIVAL");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kJobDeparture),
               "JOB_DEPARTURE");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kMapTaskArrival),
               "MAP_TASK_ARRIVAL");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kMapTaskDeparture),
               "MAP_TASK_DEPARTURE");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kReduceTaskArrival),
               "REDUCE_TASK_ARRIVAL");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kReduceTaskDeparture),
               "REDUCE_TASK_DEPARTURE");
  EXPECT_STREQ(core::EventTypeName(core::EventType::kMapStageDone),
               "MAP_STAGE_DONE");
  for (int i = 0; i <= static_cast<int>(core::EventType::kMapStageDone);
       ++i) {
    EXPECT_STREQ(core::EventTypeName(static_cast<core::EventType>(i)),
                 SimEventKindName(static_cast<SimEventKind>(i)));
  }
}

}  // namespace
}  // namespace simmr
