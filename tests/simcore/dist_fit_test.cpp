#include "simcore/dist_fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simcore/rng.h"

namespace simmr {
namespace {

std::vector<double> Draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  return d.SampleMany(rng, n);
}

TEST(Digamma, KnownValues) {
  // psi(1) = -gamma (Euler-Mascheroni), psi(2) = 1 - gamma.
  const double gamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -gamma, 1e-9);
  EXPECT_NEAR(Digamma(2.0), 1.0 - gamma, 1e-9);
  EXPECT_NEAR(Digamma(0.5), -gamma - 2.0 * std::log(2.0), 1e-9);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x.
  for (const double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Trigamma, KnownValues) {
  // psi'(1) = pi^2/6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-8);
  // psi'(0.5) = pi^2/2.
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-8);
}

TEST(Trigamma, RecurrenceHolds) {
  for (const double x : {0.4, 2.5, 9.0}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-9);
  }
}

TEST(FitNormal, RecoversParameters) {
  NormalDist truth(5.0, 2.0);
  const auto sample = Draw(truth, 50000, 1);
  const auto fit = FitNormal(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->dist->Mean(), 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(fit->dist->Variance()), 2.0, 0.1);
  EXPECT_LT(fit->ks_statistic, 0.02);
}

TEST(FitLogNormal, RecoversFacebookFitParameters) {
  // The paper's map-duration fit.
  LogNormalDist truth(9.9511, 1.6764);
  const auto sample = Draw(truth, 50000, 2);
  const auto fit = FitLogNormal(sample);
  ASSERT_TRUE(fit.has_value());
  const auto* ln = dynamic_cast<const LogNormalDist*>(fit->dist.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_NEAR(ln->mu(), 9.9511, 0.05);
  EXPECT_NEAR(ln->sigma(), 1.6764, 0.05);
  EXPECT_LT(fit->ks_statistic, 0.02);
}

TEST(FitLogNormal, RejectsNonpositiveSamples) {
  const std::vector<double> bad{1.0, -2.0, 3.0};
  EXPECT_FALSE(FitLogNormal(bad).has_value());
}

TEST(FitExponential, RecoversRate) {
  ExponentialDist truth(0.25);
  const auto sample = Draw(truth, 50000, 3);
  const auto fit = FitExponential(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->dist->Mean(), 4.0, 0.1);
}

TEST(FitUniform, RecoversRange) {
  UniformDist truth(3.0, 9.0);
  const auto sample = Draw(truth, 20000, 4);
  const auto fit = FitUniform(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->dist->Mean(), 6.0, 0.05);
  EXPECT_LT(fit->ks_statistic, 0.02);
}

TEST(FitWeibull, RecoversShapeAndScale) {
  WeibullDist truth(2.2, 4.0);
  const auto sample = Draw(truth, 50000, 5);
  const auto fit = FitWeibull(sample);
  ASSERT_TRUE(fit.has_value());
  const auto* w = dynamic_cast<const WeibullDist*>(fit->dist.get());
  ASSERT_NE(w, nullptr);
  EXPECT_NEAR(w->shape(), 2.2, 0.1);
  EXPECT_NEAR(w->scale(), 4.0, 0.1);
}

TEST(FitGamma, RecoversShapeAndScale) {
  GammaDist truth(3.5, 1.2);
  const auto sample = Draw(truth, 50000, 6);
  const auto fit = FitGamma(sample);
  ASSERT_TRUE(fit.has_value());
  const auto* g = dynamic_cast<const GammaDist*>(fit->dist.get());
  ASSERT_NE(g, nullptr);
  EXPECT_NEAR(g->shape(), 3.5, 0.15);
  EXPECT_NEAR(g->scale(), 1.2, 0.08);
}

TEST(FitPareto, RecoversTailIndex) {
  ParetoDist truth(2.0, 3.0);
  const auto sample = Draw(truth, 50000, 7);
  const auto fit = FitPareto(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->ks_statistic, 0.02);
}

TEST(FitBest, SelectsLogNormalForFacebookLikeData) {
  // The Section V-C workflow: LogNormal wins the KS contest on data that is
  // actually lognormal (the Facebook duration CDF).
  LogNormalDist truth(12.375, 1.6262);  // the paper's reduce fit
  const auto sample = Draw(truth, 20000, 8);
  const auto fits = FitBest(sample);
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "LogNormal");
  // Ranked ascending by KS distance.
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].ks_statistic, fits[i].ks_statistic);
  }
}

TEST(FitBest, SelectsExponentialForExponentialData) {
  ExponentialDist truth(1.0);
  const auto sample = Draw(truth, 20000, 9);
  const auto fits = FitBest(sample);
  ASSERT_FALSE(fits.empty());
  // Exponential, or a family containing it (Weibull/Gamma with shape~1),
  // must be on top; the winner's KS must be tiny either way.
  EXPECT_LT(fits.front().ks_statistic, 0.02);
  const auto exp_it =
      std::find_if(fits.begin(), fits.end(),
                   [](const FitResult& f) { return f.family == "Exponential"; });
  ASSERT_NE(exp_it, fits.end());
  EXPECT_LT(exp_it->ks_statistic, 0.02);
}

TEST(FitBest, HandlesNegativeDataGracefully) {
  NormalDist truth(0.0, 1.0);  // half the sample is negative
  const auto sample = Draw(truth, 5000, 10);
  const auto fits = FitBest(sample);
  ASSERT_FALSE(fits.empty());
  EXPECT_EQ(fits.front().family, "Normal");
  for (const auto& f : fits) {
    EXPECT_NE(f.family, "LogNormal");
    EXPECT_NE(f.family, "Pareto");
  }
}

TEST(FitBest, EmptySampleGivesNoFits) {
  EXPECT_TRUE(FitBest({}).empty());
}

TEST(FitLogNormal, RecoversParametersAcrossScales) {
  // Recovery must hold across the (mu, sigma) range synthetic tracegen
  // draws from, not just the paper's Facebook fit.
  struct Case {
    double mu, sigma;
  };
  for (const Case c : {Case{0.5, 0.4}, Case{2.0, 1.0}, Case{4.0, 1.5}}) {
    LogNormalDist truth(c.mu, c.sigma);
    const auto sample = Draw(truth, 50000, 11);
    const auto fit = FitLogNormal(sample);
    ASSERT_TRUE(fit.has_value()) << "mu=" << c.mu;
    const auto* ln = dynamic_cast<const LogNormalDist*>(fit->dist.get());
    ASSERT_NE(ln, nullptr);
    EXPECT_NEAR(ln->mu(), c.mu, 0.05) << "mu=" << c.mu;
    EXPECT_NEAR(ln->sigma(), c.sigma, 0.05) << "mu=" << c.mu;
  }
}

TEST(FitLogNormal, PipelineIsDeterministicUnderFixedSeed) {
  // seed -> sample -> fit must be bit-stable end to end, so fitted
  // profiles regenerate identically in tests and reproducers.
  LogNormalDist truth(9.9511, 1.6764);
  const auto fit_once = [&truth]() {
    const auto sample = Draw(truth, 20000, 3);
    const auto fit = FitLogNormal(sample);
    const auto* ln = dynamic_cast<const LogNormalDist*>(fit->dist.get());
    return std::pair<double, double>(ln->mu(), ln->sigma());
  };
  const auto a = fit_once();
  const auto b = fit_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FitBest, ConstantSampleGivesNoCrash) {
  const std::vector<double> constant(100, 5.0);
  // Most families degenerate on zero variance; whatever returns must be
  // finite and sorted.
  const auto fits = FitBest(constant);
  for (const auto& f : fits) {
    EXPECT_TRUE(std::isfinite(f.ks_statistic));
  }
}

}  // namespace
}  // namespace simmr
