#include "simcore/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "simcore/rng.h"

namespace simmr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.Push(3.0, 3);
  q.Push(1.0, 1);
  q.Push(2.0, 2);
  EXPECT_EQ(q.Pop().payload, 1);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 3);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue<std::string> q;
  q.Push(5.0, "first");
  q.Push(5.0, "second");
  q.Push(5.0, "third");
  EXPECT_EQ(q.Pop().payload, "first");
  EXPECT_EQ(q.Pop().payload, "second");
  EXPECT_EQ(q.Pop().payload, "third");
}

TEST(EventQueue, EmptyAndSizeTrackState) {
  EventQueue<int> q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1.0, 0);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.Size(), 1u);
  (void)q.Pop();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, PeekTimeShowsEarliest) {
  EventQueue<int> q;
  q.Push(9.0, 0);
  q.Push(4.0, 1);
  EXPECT_DOUBLE_EQ(q.PeekTime(), 4.0);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue<int> q;
  EXPECT_THROW(q.Pop(), std::logic_error);
  EXPECT_THROW(q.PeekTime(), std::logic_error);
}

TEST(EventQueue, TotalPushedCountsLifetime) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i, i);
  for (int i = 0; i < 5; ++i) (void)q.Pop();
  EXPECT_EQ(q.TotalPushed(), 10u);
  q.Push(0.0, 99);
  EXPECT_EQ(q.TotalPushed(), 11u);
}

TEST(EventQueue, ClearEmptiesButKeepsSequenceMonotone) {
  EventQueue<int> q;
  q.Push(1.0, 1);
  q.Clear();
  EXPECT_TRUE(q.Empty());
  // After Clear, ties still order by insertion across the boundary.
  q.Push(2.0, 10);
  q.Push(2.0, 11);
  EXPECT_EQ(q.Pop().payload, 10);
  EXPECT_EQ(q.Pop().payload, 11);
}

TEST(EventQueue, RandomizedOrderProperty) {
  // Property: popping yields nondecreasing times, and equal-time runs keep
  // insertion order.
  EventQueue<std::pair<double, std::uint64_t>> q;
  Rng rng(99);
  std::uint64_t seq = 0;
  for (int i = 0; i < 20000; ++i) {
    const double t = static_cast<double>(rng.NextBounded(100));
    q.Push(t, {t, seq++});
  }
  double last_time = -1.0;
  std::uint64_t last_seq_at_time = 0;
  while (!q.Empty()) {
    const auto e = q.Pop();
    EXPECT_GE(e.time, last_time);
    if (e.time == last_time) {
      EXPECT_GT(e.payload.second, last_seq_at_time);
    }
    last_time = e.time;
    last_seq_at_time = e.payload.second;
  }
}

TEST(EventQueue, InterleavedPushPopKeepsOrdering) {
  EventQueue<int> q;
  q.Push(10.0, 0);
  q.Push(20.0, 1);
  EXPECT_EQ(q.Pop().payload, 0);
  q.Push(15.0, 2);  // scheduled from the handler of event 0
  q.Push(12.0, 3);
  EXPECT_EQ(q.Pop().payload, 3);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 1);
}

TEST(EventQueue, EarliestCountSpansOnlyTheFrontTie) {
  EventQueue<int> q;
  EXPECT_EQ(q.EarliestCount(), 0u);
  q.Push(2.0, 0);
  q.Push(1.0, 1);
  q.Push(1.0, 2);
  q.Push(1.0, 3);
  EXPECT_EQ(q.EarliestCount(), 3u);  // the 2.0 entry is not part of the tie
  (void)q.Pop();
  EXPECT_EQ(q.EarliestCount(), 2u);
}

TEST(EventQueue, EarliestEntriesOrderByInsertionSequence) {
  EventQueue<int> q;
  q.Push(5.0, 10);
  q.Push(3.0, 20);
  q.Push(3.0, 21);
  q.Push(3.0, 22);
  const auto group = q.EarliestEntries();
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0]->payload, 20);  // index 0 = the default Pop() choice
  EXPECT_EQ(group[1]->payload, 21);
  EXPECT_EQ(group[2]->payload, 22);
}

TEST(EventQueue, PopAmongEarliestZeroIsExactlyPop) {
  EventQueue<int> a;
  EventQueue<int> b;
  for (int i = 0; i < 5; ++i) {
    a.Push(1.0, i);
    b.Push(1.0, i);
  }
  while (!a.Empty()) EXPECT_EQ(a.PopAmongEarliest(0).payload, b.Pop().payload);
}

TEST(EventQueue, PopAmongEarliestSelectsByTieIndexAndKeepsOrdering) {
  EventQueue<int> q;
  q.Push(1.0, 0);
  q.Push(1.0, 1);
  q.Push(1.0, 2);
  q.Push(2.0, 9);
  EXPECT_EQ(q.PopAmongEarliest(2).payload, 2);
  EXPECT_EQ(q.PopAmongEarliest(1).payload, 1);
  // The remaining drain is still time-then-insertion ordered.
  EXPECT_EQ(q.Pop().payload, 0);
  EXPECT_EQ(q.Pop().payload, 9);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueue, PopAmongEarliestThrowsBeyondTheTie) {
  EventQueue<int> q;
  q.Push(1.0, 0);
  q.Push(1.0, 1);
  q.Push(2.0, 2);  // later time: not a legal pick even though it is queued
  EXPECT_THROW(q.PopAmongEarliest(2), std::logic_error);
  EventQueue<int> empty;
  EXPECT_THROW(empty.PopAmongEarliest(1), std::logic_error);
}

TEST(EventQueue, MovesPayloadOut) {
  EventQueue<std::unique_ptr<int>> q;
  q.Push(1.0, std::make_unique<int>(42));
  auto e = q.Pop();
  ASSERT_NE(e.payload, nullptr);
  EXPECT_EQ(*e.payload, 42);
}

}  // namespace
}  // namespace simmr
