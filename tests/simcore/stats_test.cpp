#include "simcore/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/distributions.h"
#include "simcore/rng.h"

namespace simmr {
namespace {

TEST(Summarize, BasicStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleElement) {
  const std::vector<double> v{7.0};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(MeanConfidenceIntervalTest, KnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const MeanCi ci = MeanConfidenceInterval(v);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  // sample stddev = sqrt(32/7) ~ 2.138; half width = 1.96 * s / sqrt(8).
  EXPECT_NEAR(ci.half_width, 1.96 * std::sqrt(32.0 / 7.0) / std::sqrt(8.0),
              1e-9);
}

TEST(MeanConfidenceIntervalTest, SingleSampleHasZeroWidth) {
  const std::vector<double> v{3.0};
  const MeanCi ci = MeanConfidenceInterval(v);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(MeanConfidenceIntervalTest, CoversTrueMeanMostOfTheTime) {
  // Property: ~95% of intervals built from N(10, 2) samples contain 10.
  Rng rng(77);
  NormalDist d(10.0, 2.0);
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto sample = d.SampleMany(rng, 40);
    const MeanCi ci = MeanConfidenceInterval(sample);
    if (std::fabs(ci.mean - 10.0) <= ci.half_width) ++covered;
  }
  EXPECT_GT(covered, trials * 0.88);
  EXPECT_LT(covered, trials * 1.0);
}

TEST(MeanConfidenceIntervalTest, RejectsEmpty) {
  EXPECT_THROW(MeanConfidenceInterval({}), std::invalid_argument);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(Percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(Percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(Percentile(v, 101.0), std::invalid_argument);
}

TEST(EcdfTest, StepValues) {
  const std::vector<double> v{1.0, 2.0, 2.0, 4.0};
  const Ecdf f(v);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f(3.0), 0.75);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
}

TEST(EcdfTest, QuantileInvertsCdf) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Ecdf f(v);
  EXPECT_DOUBLE_EQ(f.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(f.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(f.Quantile(0.0), 1.0);
}

TEST(HistogramDensity, SumsToOne) {
  const std::vector<double> v{1.0, 2.0, 3.0, 7.0, 9.0};
  const auto h = HistogramDensity(v, 0.0, 10.0, 5);
  double sum = 0.0;
  for (const double d : h) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramDensity, OutOfRangeClampsToEdges) {
  const std::vector<double> v{-100.0, 100.0};
  const auto h = HistogramDensity(v, 0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.front(), 0.5);
  EXPECT_DOUBLE_EQ(h.back(), 0.5);
}

TEST(HistogramDensity, RejectsZeroBins) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(HistogramDensity(v, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(KlDivergenceTest, ZeroForIdenticalDistributions) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
  EXPECT_NEAR(SymmetricKlDivergence(p, p), 0.0, 1e-9);
}

TEST(KlDivergenceTest, PositiveForDifferentDistributions) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.1, 0.9};
  EXPECT_GT(KlDivergence(p, q), 0.5);
}

TEST(KlDivergenceTest, SymmetricVersionIsSymmetric) {
  const std::vector<double> p{0.7, 0.2, 0.1};
  const std::vector<double> q{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(SymmetricKlDivergence(p, q), SymmetricKlDivergence(q, p));
}

TEST(KlDivergenceTest, AsymmetricInGeneral) {
  const std::vector<double> p{0.99, 0.01};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergenceTest, SmoothingKeepsZeroBinsFinite) {
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.0, 1.0};
  const double d = KlDivergence(p, q);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 1.0);
}

TEST(KlDivergenceTest, RejectsSizeMismatch) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{1.0};
  EXPECT_THROW(KlDivergence(p, q), std::invalid_argument);
}

TEST(SampleSymmetricKlTest, SameAppSmallCrossAppLarge) {
  // The Table I property: two executions of the same distribution have
  // small KL; different distributions have large KL.
  Rng rng(1);
  LogNormalDist same(2.0, 0.4);
  LogNormalDist other(4.5, 0.4);
  const auto run1 = same.SampleMany(rng, 4000);
  const auto run2 = same.SampleMany(rng, 4000);
  const auto run3 = other.SampleMany(rng, 4000);
  const double same_kl = SampleSymmetricKl(run1, run2);
  const double cross_kl = SampleSymmetricKl(run1, run3);
  EXPECT_LT(same_kl, 0.5);
  EXPECT_GT(cross_kl, 5.0);
  EXPECT_GT(cross_kl, 10.0 * same_kl);
}

TEST(SampleSymmetricKlTest, RejectsEmpty) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(SampleSymmetricKl({}, v), std::invalid_argument);
}

TEST(KsTwoSampleTest, ZeroForIdenticalSamples) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KsTwoSample(v, v), 0.0);
}

TEST(KsTwoSampleTest, OneForDisjointSamples) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  EXPECT_DOUBLE_EQ(KsTwoSample(a, b), 1.0);
}

TEST(KsTwoSampleTest, SmallForSameDistribution) {
  Rng rng(9);
  NormalDist d(0.0, 1.0);
  const auto a = d.SampleMany(rng, 5000);
  const auto b = d.SampleMany(rng, 5000);
  EXPECT_LT(KsTwoSample(a, b), 0.05);
}

TEST(KsOneSampleTest, MatchesGeneratingCdf) {
  Rng rng(9);
  ExponentialDist d(1.5);
  const auto sample = d.SampleMany(rng, 5000);
  const double ks = KsOneSample(sample, [&d](double x) { return d.Cdf(x); });
  EXPECT_LT(ks, 0.03);
}

TEST(KsOneSampleTest, LargeForWrongModel) {
  Rng rng(9);
  ExponentialDist d(1.5);
  const auto sample = d.SampleMany(rng, 5000);
  UniformDist wrong(0.0, 1.0);
  const double ks =
      KsOneSample(sample, [&wrong](double x) { return wrong.Cdf(x); });
  EXPECT_GT(ks, 0.2);
}

}  // namespace
}  // namespace simmr
