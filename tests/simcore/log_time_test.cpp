#include <gtest/gtest.h>

#include "simcore/log.h"
#include "simcore/time.h"

namespace simmr {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelFilterSuppressesBelowThreshold) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  SIMMR_INFO << "should not appear";
  SIMMR_WARN << "nor this";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, PassingLevelEmitsTaggedLine) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  SIMMR_WARN << "watch " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("watch 42"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  testing::internal::CaptureStderr();
  SIMMR_ERROR << "even errors";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Log, GetLevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST(Time, AlmostEqualWithinEpsilon) {
  EXPECT_TRUE(TimeAlmostEqual(1.0, 1.0));
  EXPECT_TRUE(TimeAlmostEqual(1.0, 1.0 + 0.5 * kTimeEpsilon));
  EXPECT_FALSE(TimeAlmostEqual(1.0, 1.0 + 10.0 * kTimeEpsilon));
  EXPECT_TRUE(TimeAlmostEqual(-5.0, -5.0));
}

TEST(Time, InfinityIsLargerThanAnyTime) {
  EXPECT_GT(kTimeInfinity, 1e300);
  EXPECT_FALSE(TimeAlmostEqual(kTimeInfinity, 1e300));
}

}  // namespace
}  // namespace simmr
