#include "simcore/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace simmr {
namespace {

// Shared sampling-vs-theory checks for every distribution: sample moments
// approach Mean()/Variance(), and the empirical CDF of the sample agrees
// with Cdf() at the quartile points.
struct DistCase {
  std::string name;
  DistributionPtr dist;
  double mean_tol;      // relative tolerance on the mean
  double variance_tol;  // relative tolerance on the variance
};

class DistributionMoments : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMoments, SampleMeanMatchesTheory) {
  const DistCase& c = GetParam();
  Rng rng(2024);
  const int n = 120000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += c.dist->Sample(rng);
  const double sample_mean = sum / n;
  const double expected = c.dist->Mean();
  EXPECT_NEAR(sample_mean, expected,
              std::max(1e-9, std::fabs(expected) * c.mean_tol))
      << c.dist->Describe();
}

TEST_P(DistributionMoments, SampleVarianceMatchesTheory) {
  const DistCase& c = GetParam();
  Rng rng(4048);
  const int n = 120000;
  std::vector<double> xs(n);
  double sum = 0.0;
  for (auto& x : xs) {
    x = c.dist->Sample(rng);
    sum += x;
  }
  const double mean = sum / n;
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double sample_var = ss / n;
  const double expected = c.dist->Variance();
  EXPECT_NEAR(sample_var, expected,
              std::max(1e-9, std::fabs(expected) * c.variance_tol))
      << c.dist->Describe();
}

TEST_P(DistributionMoments, EmpiricalCdfMatchesCdf) {
  const DistCase& c = GetParam();
  Rng rng(31337);
  const int n = 50000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = c.dist->Sample(rng);
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.25, 0.5, 0.75}) {
    const double x = xs[static_cast<std::size_t>(q * n)];
    EXPECT_NEAR(c.dist->Cdf(x), q, 0.02) << c.dist->Describe() << " at q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionMoments,
    ::testing::Values(
        DistCase{"uniform", std::make_shared<UniformDist>(2.0, 8.0), 0.02,
                 0.05},
        DistCase{"exponential", std::make_shared<ExponentialDist>(0.5), 0.02,
                 0.05},
        DistCase{"normal", std::make_shared<NormalDist>(10.0, 2.0), 0.02,
                 0.05},
        DistCase{"lognormal", std::make_shared<LogNormalDist>(1.0, 0.5), 0.02,
                 0.08},
        DistCase{"weibull", std::make_shared<WeibullDist>(1.5, 3.0), 0.02,
                 0.05},
        DistCase{"gamma_large_shape", std::make_shared<GammaDist>(3.0, 2.0),
                 0.02, 0.05},
        DistCase{"gamma_small_shape", std::make_shared<GammaDist>(0.5, 1.0),
                 0.03, 0.08},
        DistCase{"pareto", std::make_shared<ParetoDist>(1.0, 4.0), 0.02,
                 0.30}),
    [](const ::testing::TestParamInfo<DistCase>& param_info) {
      return param_info.param.name;
    });

TEST(DeterministicDist, AlwaysReturnsValue) {
  DeterministicDist d(3.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.Sample(rng), 3.5);
  EXPECT_EQ(d.Mean(), 3.5);
  EXPECT_EQ(d.Variance(), 0.0);
  EXPECT_EQ(d.Cdf(3.4), 0.0);
  EXPECT_EQ(d.Cdf(3.5), 1.0);
}

TEST(UniformDist, CdfShape) {
  UniformDist d(0.0, 10.0);
  EXPECT_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_NEAR(d.Cdf(2.5), 0.25, 1e-12);
  EXPECT_EQ(d.Cdf(11.0), 1.0);
}

TEST(UniformDist, RejectsInvertedRange) {
  EXPECT_THROW(UniformDist(3.0, 2.0), std::invalid_argument);
}

TEST(ExponentialDist, RejectsNonpositiveRate) {
  EXPECT_THROW(ExponentialDist(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDist(-1.0), std::invalid_argument);
}

TEST(ExponentialDist, SamplesNonnegative) {
  ExponentialDist d(2.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.Sample(rng), 0.0);
}

TEST(NormalDist, TruncationFloorHolds) {
  NormalDist d(0.0, 1.0, /*floor=*/0.5);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(d.Sample(rng), 0.5);
}

TEST(NormalDist, RejectsNonpositiveSigma) {
  EXPECT_THROW(NormalDist(0.0, 0.0), std::invalid_argument);
}

TEST(LogNormalDist, SamplesArePositive) {
  LogNormalDist d(9.9511, 1.6764);  // the paper's Facebook map fit
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.Sample(rng), 0.0);
}

TEST(LogNormalDist, MedianIsExpMu) {
  LogNormalDist d(2.0, 0.7);
  EXPECT_NEAR(d.Cdf(std::exp(2.0)), 0.5, 1e-9);
}

TEST(LogNormalDist, FacebookFitMeanIsPlausible) {
  // LN(9.9511, 1.6764) in milliseconds: mean = exp(mu + sigma^2/2).
  LogNormalDist d(9.9511, 1.6764);
  const double mean_s = d.Mean() / 1000.0;
  EXPECT_GT(mean_s, 50.0);   // tens of seconds
  EXPECT_LT(mean_s, 200.0);  // not hours
}

TEST(WeibullDist, Shape1IsExponential) {
  WeibullDist w(1.0, 2.0);
  ExponentialDist e(0.5);
  for (const double x : {0.1, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(w.Cdf(x), e.Cdf(x), 1e-12);
  }
}

TEST(GammaDist, Shape1IsExponential) {
  GammaDist g(1.0, 2.0);
  ExponentialDist e(0.5);
  for (const double x : {0.1, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(g.Cdf(x), e.Cdf(x), 1e-9);
  }
}

TEST(GammaDist, CdfMonotoneIncreasing) {
  GammaDist g(2.5, 1.5);
  double prev = 0.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double cur = g.Cdf(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(g.Cdf(1000.0), 1.0, 1e-9);
}

TEST(ParetoDist, SupportStartsAtXm) {
  ParetoDist p(2.0, 3.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.Sample(rng), 2.0);
  EXPECT_EQ(p.Cdf(1.9), 0.0);
}

TEST(ParetoDist, InfiniteMomentsForHeavyTails) {
  EXPECT_TRUE(std::isinf(ParetoDist(1.0, 0.9).Mean()));
  EXPECT_TRUE(std::isinf(ParetoDist(1.0, 1.5).Variance()));
}

TEST(EmpiricalDist, ResamplesOnlyObservedValues) {
  EmpiricalDist d({1.0, 2.0, 3.0});
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.Sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
}

TEST(EmpiricalDist, MomentsMatchSample) {
  EmpiricalDist d({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 5.0);
}

TEST(EmpiricalDist, CdfIsStepFunction) {
  EmpiricalDist d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(4.0), 1.0);
}

TEST(EmpiricalDist, RejectsEmptySample) {
  EXPECT_THROW(EmpiricalDist({}), std::invalid_argument);
}

TEST(Distribution, SampleManyReturnsRequestedCount) {
  UniformDist d(0.0, 1.0);
  Rng rng(3);
  EXPECT_EQ(d.SampleMany(rng, 57).size(), 57u);
}

TEST(Distribution, DescribeMentionsParameters) {
  EXPECT_NE(LogNormalDist(9.9511, 1.6764).Describe().find("9.9511"),
            std::string::npos);
  EXPECT_NE(UniformDist(1, 2).Describe().find("Uniform"), std::string::npos);
}

TEST(StdNormalCdf, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StdNormalCdf(-1.96), 0.025, 1e-3);
}

TEST(Distribution, SamplingIsDeterministicUnderFixedSeed) {
  // Equal seeds must give bit-identical streams for every family — the
  // property trace generation, the fuzzer and reproducer replays build on.
  const std::vector<DistributionPtr> dists = []() {
    std::vector<DistributionPtr> v;
    v.push_back(std::make_shared<LogNormalDist>(9.9511, 1.6764));
    v.push_back(std::make_shared<UniformDist>(1.0, 120.0));
    v.push_back(std::make_shared<ExponentialDist>(0.5));
    v.push_back(std::make_shared<ParetoDist>(1.0, 1.2));
    v.push_back(std::make_shared<WeibullDist>(1.5, 10.0));
    v.push_back(std::make_shared<GammaDist>(2.0, 3.0));
    return v;
  }();
  for (const auto& dist : dists) {
    Rng a(77);
    Rng b(77);
    const auto sa = dist->SampleMany(a, 500);
    const auto sb = dist->SampleMany(b, 500);
    EXPECT_EQ(sa, sb) << dist->Describe();
  }
}

}  // namespace
}  // namespace simmr
