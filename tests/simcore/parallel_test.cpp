#include "simcore/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "trace/synthetic_tracegen.h"

namespace simmr {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> visits(257);
    ParallelFor(visits.size(), [&visits](std::size_t i) { ++visits[i]; },
                threads);
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, [&called](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(visits.size(), [&visits](std::size_t i) { ++visits[i]; }, 64);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PerIndexSlotsNeedNoLocking) {
  std::vector<double> results(1000, 0.0);
  ParallelFor(results.size(),
              [&results](std::size_t i) { results[i] = 2.0 * i; }, 4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], 2.0 * i);
  }
}

TEST(ParallelFor, SingleThreadFastPathRunsOnCallingThread) {
  // num_threads <= 1 must not spawn: tools use it to keep observer stacks
  // (which are not thread-safe) on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  ParallelFor(
      16,
      [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
      },
      1);
  EXPECT_EQ(calls, 16u);
}

TEST(ParallelFor, SingleItemRunsOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  bool called = false;
  ParallelFor(
      1,
      [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        called = true;
      },
      8);
  EXPECT_TRUE(called);
}

TEST(ParallelFor, WorkerExceptionPropagates) {
  EXPECT_THROW(
      ParallelFor(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionMessageAndRemainingWorkSurvive) {
  // A throwing index stops only its own block; every worker joins before
  // the first captured exception is rethrown with its message intact.
  std::vector<std::atomic<int>> visits(64);
  try {
    ParallelFor(
        visits.size(),
        [&visits](std::size_t i) {
          if (i == 0) throw std::runtime_error("boom at 0");
          ++visits[i];
        },
        4);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 0");
  }
  // The other workers' blocks ran to completion (block 0 stopped at the
  // throw, so indices past the first block are all visited).
  int visited = 0;
  for (const auto& v : visits) visited += v.load();
  EXPECT_GE(visited, static_cast<int>(visits.size()) * 3 / 4);
}

TEST(ParallelFor, SingleThreadExceptionPropagates) {
  // The fast path must rethrow directly too.
  EXPECT_THROW(
      ParallelFor(
          4, [](std::size_t i) { if (i == 2) throw std::logic_error("x"); },
          1),
      std::logic_error);
}

TEST(ParallelFor, DefaultParallelismIsPositive) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

TEST(ParallelFor, ParallelReplaysMatchSerialReplays) {
  // The intended use: independent engine replays per index. Results must
  // not depend on the thread count.
  Rng rng(5);
  trace::SyntheticJobSpec spec;
  spec.num_maps = 40;
  spec.num_reduces = 8;
  spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
  spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 7.0);
  spec.reduce_duration = std::make_shared<UniformDist>(1.0, 3.0);
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(trace::SynthesizeProfile(spec, rng));

  const auto replay_one = [&pool](std::size_t i) {
    trace::WorkloadTrace w(1);
    w[0].profile = pool[i];
    core::SimConfig cfg;
    cfg.map_slots = 8;
    cfg.reduce_slots = 4;
    sched::FifoPolicy fifo;
    return core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
  };

  std::vector<double> serial(pool.size()), parallel(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) serial[i] = replay_one(i);
  ParallelFor(pool.size(),
              [&](std::size_t i) { parallel[i] = replay_one(i); }, 4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace simmr
