#include "cluster/cluster_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace simmr::cluster {
namespace {

JobSpec SmallSpec(int blocks = 8, int reduces = 4) {
  JobSpec spec;
  spec.app = apps::WordCount();
  spec.dataset_label = "test";
  spec.input_mb = blocks * 64.0;
  spec.num_reduces = reduces;
  return spec;
}

TestbedOptions SmallOptions(int nodes = 4) {
  TestbedOptions opts;
  opts.config.num_nodes = nodes;
  opts.seed = 7;
  return opts;
}

TEST(ClusterSim, SingleJobCompletes) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  ASSERT_EQ(result.log.jobs().size(), 1u);
  const JobRecord& job = result.log.jobs()[0];
  EXPECT_GT(job.finish_time, job.submit_time);
  EXPECT_GE(job.launch_time, job.submit_time);
  EXPECT_GT(job.maps_done_time, 0.0);
  EXPECT_LE(job.maps_done_time, job.finish_time);
}

TEST(ClusterSim, AllTasksAreLogged) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(8, 4), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  int maps = 0, reduces = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kMap) ++maps;
    else ++reduces;
  }
  EXPECT_EQ(maps, 8);
  EXPECT_EQ(reduces, 4);
}

TEST(ClusterSim, TaskTimestampsAreOrdered) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  for (const auto& t : result.log.tasks()) {
    EXPECT_LE(t.start, t.shuffle_end);
    EXPECT_LE(t.shuffle_end, t.end);
    if (t.kind == TaskKind::kMap) {
      EXPECT_DOUBLE_EQ(t.start, t.shuffle_end);  // maps have no shuffle
    }
  }
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0},
                                       {SmallSpec(4, 2), 10.0, 0.0}};
  const TestbedResult a = RunTestbed(jobs, SmallOptions());
  const TestbedResult b = RunTestbed(jobs, SmallOptions());
  ASSERT_EQ(a.log.tasks().size(), b.log.tasks().size());
  for (std::size_t i = 0; i < a.log.tasks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.log.tasks()[i].start, b.log.tasks()[i].start);
    EXPECT_DOUBLE_EQ(a.log.tasks()[i].end, b.log.tasks()[i].end);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(ClusterSim, SeedChangesRealization) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0}};
  TestbedOptions opts_a = SmallOptions();
  TestbedOptions opts_b = SmallOptions();
  opts_b.seed = 1234;
  const TestbedResult a = RunTestbed(jobs, opts_a);
  const TestbedResult b = RunTestbed(jobs, opts_b);
  EXPECT_NE(a.log.jobs()[0].finish_time, b.log.jobs()[0].finish_time);
}

TEST(ClusterSim, MapConcurrencyBoundedBySlots) {
  // 4 nodes x 1 map slot: at any instant at most 4 maps run.
  const std::vector<SubmittedJob> jobs{{SmallSpec(20, 2), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions(4));
  std::vector<std::pair<double, int>> deltas;
  for (const auto& t : result.log.tasks()) {
    if (t.kind != TaskKind::kMap) continue;
    deltas.push_back({t.start, +1});
    deltas.push_back({t.end, -1});
  }
  std::sort(deltas.begin(), deltas.end());
  int running = 0;
  for (const auto& [time, delta] : deltas) {
    running += delta;
    EXPECT_LE(running, 4);
  }
}

TEST(ClusterSim, SlotCapFnLimitsConcurrency) {
  TestbedOptions opts = SmallOptions(4);
  opts.caps = [](const SubmittedJob&) { return SlotCaps{2, 1}; };
  const std::vector<SubmittedJob> jobs{{SmallSpec(12, 3), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, opts);
  std::vector<std::pair<double, int>> deltas;
  for (const auto& t : result.log.tasks()) {
    if (t.kind != TaskKind::kMap) continue;
    deltas.push_back({t.start, +1});
    deltas.push_back({t.end, -1});
  }
  std::sort(deltas.begin(), deltas.end());
  int running = 0;
  for (const auto& [time, delta] : deltas) {
    running += delta;
    EXPECT_LE(running, 2);
  }
}

TEST(ClusterSim, FewerSlotsMeansSlowerJob) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(16, 4), 0.0, 0.0}};
  TestbedOptions wide = SmallOptions(8);
  TestbedOptions narrow = SmallOptions(2);
  const double wide_t = RunTestbed(jobs, wide).log.jobs()[0].finish_time;
  const double narrow_t = RunTestbed(jobs, narrow).log.jobs()[0].finish_time;
  EXPECT_GT(narrow_t, wide_t * 1.5);
}

TEST(ClusterSim, FifoOrdersByArrival) {
  // Two identical jobs: the first submitted must finish first under FIFO.
  const std::vector<SubmittedJob> jobs{{SmallSpec(16, 4), 0.0, 0.0},
                                       {SmallSpec(16, 4), 1.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions(2));
  ASSERT_EQ(result.log.jobs().size(), 2u);
  const auto& j0 = result.log.JobOf(0);
  const auto& j1 = result.log.JobOf(1);
  EXPECT_LT(j0.finish_time, j1.finish_time);
}

TEST(ClusterSim, EdfPrefersUrgentJob) {
  // Job 1 arrives later but has the earlier deadline; under EDF it should
  // overtake job 0's remaining work and finish earlier than under FIFO.
  // Three reduce slots per node so job 0's early (non-preemptible) filler
  // reduces do not starve job 1's reduce stage.
  std::vector<SubmittedJob> jobs{{SmallSpec(32, 4), 0.0, 10000.0},
                                 {SmallSpec(8, 2), 5.0, 100.0}};
  TestbedOptions edf = SmallOptions(2);
  edf.config.reduce_slots_per_node = 3;
  edf.scheduler = SchedulerKind::kEdf;
  TestbedOptions fifo = SmallOptions(2);
  fifo.config.reduce_slots_per_node = 3;
  const double edf_t = RunTestbed(jobs, edf).log.JobOf(1).finish_time;
  const double fifo_t = RunTestbed(jobs, fifo).log.JobOf(1).finish_time;
  EXPECT_LT(edf_t, fifo_t);
}

TEST(ClusterSim, FirstWaveShufflesOverlapMapStage) {
  // With slowstart 0.05, some reduces must start before the map stage ends.
  const std::vector<SubmittedJob> jobs{{SmallSpec(16, 4), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions(4));
  const double maps_done = result.log.jobs()[0].maps_done_time;
  int overlapping = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kReduce && t.start < maps_done) ++overlapping;
  }
  EXPECT_GT(overlapping, 0);
  // And no reduce can finish its shuffle before the data it needs exists:
  // a first-wave shuffle end must not precede availability of all its data.
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kReduce) {
      EXPECT_GT(t.shuffle_end, result.log.jobs()[0].launch_time);
    }
  }
}

TEST(ClusterSim, ShuffleEndsAfterMapStageForFullFetch) {
  // All intermediate data exists only at maps_done; a reduce fetching the
  // full partition cannot complete its shuffle earlier.
  const std::vector<SubmittedJob> jobs{{SmallSpec(16, 2), 0.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions(4));
  const double maps_done = result.log.jobs()[0].maps_done_time;
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kReduce && t.start < maps_done) {
      EXPECT_GE(t.shuffle_end, maps_done - 1e-6);
    }
  }
}

TEST(ClusterSim, MultipleJobsAllComplete) {
  std::vector<SubmittedJob> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({SmallSpec(4 + i, 2), i * 3.0, 0.0});
  }
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  EXPECT_EQ(result.log.jobs().size(), 5u);
  for (const auto& j : result.log.jobs()) {
    EXPECT_GT(j.finish_time, 0.0);
  }
}

TEST(ClusterSim, RejectsUnsortedSubmissions) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 10.0, 0.0},
                                       {SmallSpec(), 5.0, 0.0}};
  EXPECT_THROW(RunTestbed(jobs, SmallOptions()), std::invalid_argument);
}

TEST(ClusterSim, RejectsEmptyInput) {
  std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0}};
  jobs[0].spec.input_mb = 0.0;
  EXPECT_THROW(RunTestbed(jobs, SmallOptions()), std::invalid_argument);
}

TEST(ClusterSim, EmptyJobListIsFine) {
  const TestbedResult result = RunTestbed({}, SmallOptions());
  EXPECT_TRUE(result.log.jobs().empty());
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(ClusterSim, HeartbeatLatencyVisibleWithoutOob) {
  // Without out-of-band heartbeats, completions are observed later, so the
  // same workload takes longer end-to-end.
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 4), 0.0, 0.0}};
  TestbedOptions with_oob = SmallOptions(2);
  TestbedOptions without_oob = SmallOptions(2);
  without_oob.config.out_of_band_heartbeat = false;
  const double t_oob = RunTestbed(jobs, with_oob).log.jobs()[0].finish_time;
  const double t_hb = RunTestbed(jobs, without_oob).log.jobs()[0].finish_time;
  EXPECT_GT(t_hb, t_oob);
}

TEST(ClusterSim, DeadlineRecordedInLog) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 500.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  EXPECT_DOUBLE_EQ(result.log.jobs()[0].deadline, 500.0);
}

TEST(ClusterSim, LateArrivalAfterIdlePeriodStillRuns) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(4, 2), 0.0, 0.0},
                                       {SmallSpec(4, 2), 5000.0, 0.0}};
  const TestbedResult result = RunTestbed(jobs, SmallOptions());
  ASSERT_EQ(result.log.jobs().size(), 2u);
  EXPECT_GE(result.log.JobOf(1).launch_time, 5000.0);
}

}  // namespace
}  // namespace simmr::cluster
