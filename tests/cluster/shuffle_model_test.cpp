#include "cluster/shuffle_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace simmr::cluster {
namespace {

TEST(ShuffleModel, SingleFlowRunsAtPerFlowCap) {
  ShuffleModel m(/*aggregate=*/1000.0, /*per_flow=*/10.0);
  const FlowId f = m.AddFlow(/*total=*/100.0, /*available=*/100.0);
  EXPECT_DOUBLE_EQ(m.NextEventTime(), 10.0);
  m.Advance(10.0);
  EXPECT_TRUE(m.IsComplete(f));
  EXPECT_DOUBLE_EQ(m.FetchedMb(f), 100.0);
}

TEST(ShuffleModel, AggregateSharedAmongFlows) {
  // 4 flows, aggregate 20 => 5 MB/s each (below the 10 MB/s cap).
  ShuffleModel m(20.0, 10.0);
  for (int i = 0; i < 4; ++i) m.AddFlow(50.0, 50.0);
  EXPECT_NEAR(m.NextEventTime(), 10.0, 1e-9);
}

TEST(ShuffleModel, CapBindsWhenAggregateAmple) {
  ShuffleModel m(1000.0, 10.0);
  for (int i = 0; i < 4; ++i) m.AddFlow(50.0, 50.0);
  EXPECT_NEAR(m.NextEventTime(), 5.0, 1e-9);
}

TEST(ShuffleModel, StarvedFlowWaitsForAvailability) {
  ShuffleModel m(1000.0, 10.0);
  const FlowId f = m.AddFlow(/*total=*/100.0, /*available=*/30.0);
  m.Advance(3.0);  // fetched the 30 MB available
  EXPECT_FALSE(m.IsComplete(f));
  EXPECT_NEAR(m.FetchedMb(f), 30.0, 1e-9);
  // No active flow now: no next event.
  EXPECT_TRUE(std::isinf(m.NextEventTime()));
  // A map finishes; 70 more MB appear.
  m.Advance(5.0);
  m.AddAvailability(f, 70.0);
  EXPECT_NEAR(m.NextEventTime(), 12.0, 1e-9);
  m.Advance(12.0);
  EXPECT_TRUE(m.IsComplete(f));
}

TEST(ShuffleModel, CompletionFreesBandwidthForOthers) {
  // Two flows share aggregate 10 => 5 each. Flow A needs 25, B needs 100.
  ShuffleModel m(10.0, 10.0);
  const FlowId a = m.AddFlow(25.0, 25.0);
  const FlowId b = m.AddFlow(100.0, 100.0);
  m.Advance(5.0);  // A done at t=5 (25/5), B at 25 so far
  EXPECT_TRUE(m.IsComplete(a));
  EXPECT_FALSE(m.IsComplete(b));
  m.Retire(a);
  // B now runs at 10 MB/s; 75 left -> completes at t=12.5.
  EXPECT_NEAR(m.NextEventTime(), 12.5, 1e-9);
}

TEST(ShuffleModel, ZeroByteFlowIsImmediatelyComplete) {
  ShuffleModel m(10.0, 10.0);
  const FlowId f = m.AddFlow(0.0, 0.0);
  EXPECT_TRUE(m.IsComplete(f));
}

TEST(ShuffleModel, AvailabilityClampedToTotal) {
  ShuffleModel m(10.0, 10.0);
  const FlowId f = m.AddFlow(10.0, 5.0);
  m.AddAvailability(f, 1000.0);
  m.Advance(1.0);
  EXPECT_NEAR(m.FetchedMb(f), 10.0, 1e-9);
  EXPECT_TRUE(m.IsComplete(f));
}

TEST(ShuffleModel, AdvanceBackwardsThrows) {
  ShuffleModel m(10.0, 10.0);
  m.Advance(5.0);
  EXPECT_THROW(m.Advance(4.0), std::logic_error);
}

TEST(ShuffleModel, RepeatedAdvanceSameTimeIsIdempotent) {
  ShuffleModel m(10.0, 10.0);
  const FlowId f = m.AddFlow(100.0, 100.0);
  m.Advance(2.0);
  const double fetched = m.FetchedMb(f);
  m.Advance(2.0);
  EXPECT_DOUBLE_EQ(m.FetchedMb(f), fetched);
}

TEST(ShuffleModel, RejectsNonpositiveBandwidth) {
  EXPECT_THROW(ShuffleModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShuffleModel(1.0, -1.0), std::invalid_argument);
}

TEST(ShuffleModel, ActiveFlowCountTracksState) {
  ShuffleModel m(100.0, 10.0);
  EXPECT_EQ(m.ActiveFlowCount(), 0);
  const FlowId a = m.AddFlow(10.0, 10.0);
  m.AddFlow(10.0, 0.0);  // starved from birth
  EXPECT_EQ(m.ActiveFlowCount(), 1);
  m.Advance(1.0);
  EXPECT_TRUE(m.IsComplete(a));
  EXPECT_EQ(m.ActiveFlowCount(), 0);
}

TEST(ShuffleModel, ConservationProperty) {
  // Total fetched across flows never exceeds aggregate * elapsed time.
  ShuffleModel m(30.0, 8.0);
  std::vector<FlowId> flows;
  for (int i = 0; i < 6; ++i) flows.push_back(m.AddFlow(40.0, 40.0));
  for (double t = 0.5; t <= 10.0; t += 0.5) {
    m.Advance(t);
    double total = 0.0;
    for (const FlowId f : flows) total += m.FetchedMb(f);
    EXPECT_LE(total, 30.0 * t + 1e-6);
  }
}

TEST(ShuffleModel, EqualFlowsFinishTogether) {
  ShuffleModel m(20.0, 10.0);
  const FlowId a = m.AddFlow(30.0, 30.0);
  const FlowId b = m.AddFlow(30.0, 30.0);
  const SimTime t = m.NextEventTime();
  m.Advance(t);
  EXPECT_TRUE(m.IsComplete(a));
  EXPECT_TRUE(m.IsComplete(b));
  EXPECT_NEAR(t, 3.0, 1e-9);  // 30 MB at 10 MB/s each
}

}  // namespace
}  // namespace simmr::cluster
