// Failure-injection tests: Hadoop re-executes failed task attempts; the
// testbed emulator models this and the trace pipeline must stay correct in
// its presence (profiles built from successful attempts only).
#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "trace/mr_profiler.h"

namespace simmr::cluster {
namespace {

JobSpec SmallSpec(int blocks = 16, int reduces = 4) {
  JobSpec spec;
  spec.app = apps::WordCount();
  spec.dataset_label = "test";
  spec.input_mb = blocks * 64.0;
  spec.num_reduces = reduces;
  return spec;
}

TestbedOptions Options(double failure_prob, int nodes = 4) {
  TestbedOptions opts;
  opts.config.num_nodes = nodes;
  opts.config.task_failure_prob = failure_prob;
  opts.seed = 11;
  return opts;
}

TEST(FailureInjection, ZeroProbabilityMatchesBaseline) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0}};
  const auto baseline = RunTestbed(jobs, Options(0.0));
  TestbedOptions opts = Options(0.0);
  const auto again = RunTestbed(jobs, opts);
  EXPECT_DOUBLE_EQ(baseline.log.jobs()[0].finish_time,
                   again.log.jobs()[0].finish_time);
  for (const auto& t : baseline.log.tasks()) EXPECT_TRUE(t.succeeded);
}

TEST(FailureInjection, JobsStillCompleteUnderFailures) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(), 0.0, 0.0},
                                       {SmallSpec(8, 2), 30.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(0.15));
  ASSERT_EQ(result.log.jobs().size(), 2u);
  for (const auto& j : result.log.jobs()) {
    EXPECT_GT(j.finish_time, j.submit_time);
  }
}

TEST(FailureInjection, FailedAttemptsAreLoggedAndRetried) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 8), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(0.25));
  int failed = 0, succeeded_maps = 0, succeeded_reduces = 0;
  for (const auto& t : result.log.tasks()) {
    if (!t.succeeded) {
      ++failed;
      continue;
    }
    if (t.kind == TaskKind::kMap) ++succeeded_maps;
    else ++succeeded_reduces;
  }
  // At p=0.25 over 40 tasks, some failures are near-certain.
  EXPECT_GT(failed, 0);
  // Every task eventually succeeds exactly once.
  EXPECT_EQ(succeeded_maps, 32);
  EXPECT_EQ(succeeded_reduces, 8);
}

TEST(FailureInjection, FailuresSlowTheJobDown) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 8), 0.0, 0.0}};
  const double clean =
      RunTestbed(jobs, Options(0.0)).log.jobs()[0].finish_time;
  const double faulty =
      RunTestbed(jobs, Options(0.3)).log.jobs()[0].finish_time;
  EXPECT_GT(faulty, clean);
}

TEST(FailureInjection, FailedAttemptRecordsAreWellFormed) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 8), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(0.25));
  for (const auto& t : result.log.tasks()) {
    EXPECT_LE(t.start, t.end);
    if (!t.succeeded) {
      // A failed attempt dies before completing its nominal work; it must
      // still carry consistent timestamps.
      EXPECT_LE(t.shuffle_end, t.end + 1e-9);
    }
  }
}

TEST(FailureInjection, ProfilerUsesOnlySuccessfulAttempts) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 8), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(0.25));
  const auto profile = trace::BuildProfile(result.log, 0);
  EXPECT_TRUE(profile.Validate().empty()) << profile.Validate();
  EXPECT_EQ(static_cast<int>(profile.map_durations.size()), 32);
  EXPECT_EQ(profile.first_shuffle_durations.size() +
                profile.typical_shuffle_durations.size(),
            8u);
  EXPECT_EQ(static_cast<int>(profile.reduce_durations.size()), 8);
}

TEST(FailureInjection, DeterministicGivenSeed) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(16, 4), 0.0, 0.0}};
  const auto a = RunTestbed(jobs, Options(0.2));
  const auto b = RunTestbed(jobs, Options(0.2));
  EXPECT_EQ(a.log.tasks().size(), b.log.tasks().size());
  EXPECT_DOUBLE_EQ(a.log.jobs()[0].finish_time, b.log.jobs()[0].finish_time);
}

TEST(FailureInjection, LogRoundTripPreservesSuccessFlag) {
  const std::vector<SubmittedJob> jobs{{SmallSpec(32, 8), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(0.25));
  std::stringstream buffer;
  result.log.Write(buffer);
  const HistoryLog loaded = HistoryLog::Read(buffer);
  ASSERT_EQ(loaded.tasks().size(), result.log.tasks().size());
  for (std::size_t i = 0; i < loaded.tasks().size(); ++i) {
    EXPECT_EQ(loaded.tasks()[i].succeeded, result.log.tasks()[i].succeeded);
  }
}

}  // namespace
}  // namespace simmr::cluster
