#include "cluster/testbed_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

namespace simmr::cluster {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  return cfg;
}

std::unique_ptr<JobRuntime> MakeJob(JobId id, double submit, double deadline,
                                    int num_maps = 4, int num_reduces = 2) {
  SubmittedJob submission;
  submission.spec.app.name = "test";
  submission.spec.input_mb = num_maps * 64.0;
  submission.spec.num_reduces = num_reduces;
  submission.submit_time = submit;
  submission.deadline = deadline;
  Rng rng(id + 1);
  return std::make_unique<JobRuntime>(id, submission, SmallConfig(),
                                      std::move(rng));
}

TEST(FifoTestbedScheduler, PicksEarliestArrival) {
  auto a = MakeJob(0, 0.0, 0.0);
  auto b = MakeJob(1, 5.0, 0.0);
  const std::vector<const JobRuntime*> queue{a.get(), b.get()};
  FifoTestbedScheduler fifo;
  EXPECT_EQ(fifo.PickMapJob(queue), 0);
}

TEST(FifoTestbedScheduler, SkipsJobWithoutPendingMaps) {
  auto a = MakeJob(0, 0.0, 0.0, /*num_maps=*/1);
  auto b = MakeJob(1, 5.0, 0.0);
  (void)a->PopPendingMap();  // exhausted
  const std::vector<const JobRuntime*> queue{a.get(), b.get()};
  FifoTestbedScheduler fifo;
  EXPECT_EQ(fifo.PickMapJob(queue), 1);
}

TEST(FifoTestbedScheduler, RespectsMapCap) {
  auto a = MakeJob(0, 0.0, 0.0);
  a->caps().map_cap = 2;
  a->running_maps = 2;  // two attempts hold slots
  const std::vector<const JobRuntime*> queue{a.get()};
  FifoTestbedScheduler fifo;
  EXPECT_EQ(fifo.PickMapJob(queue), kInvalidJob);
  a->running_maps = 1;  // one slot back
  EXPECT_EQ(fifo.PickMapJob(queue), 0);
}

TEST(FifoTestbedScheduler, ReduceGatedBySlowstart) {
  auto a = MakeJob(0, 0.0, 0.0, /*num_maps=*/10, /*num_reduces=*/2);
  const std::vector<const JobRuntime*> queue{a.get()};
  FifoTestbedScheduler fifo;
  EXPECT_EQ(fifo.PickReduceJob(queue, 0.05), kInvalidJob);
  a->maps_reported = 1;  // ceil(0.05 * 10) = 1
  EXPECT_EQ(fifo.PickReduceJob(queue, 0.05), 0);
}

TEST(FifoTestbedScheduler, EmptyQueueGivesInvalid) {
  FifoTestbedScheduler fifo;
  EXPECT_EQ(fifo.PickMapJob({}), kInvalidJob);
  EXPECT_EQ(fifo.PickReduceJob({}, 0.05), kInvalidJob);
}

TEST(EdfTestbedScheduler, PicksEarliestDeadline) {
  auto late = MakeJob(0, 0.0, 100.0);
  auto early = MakeJob(1, 5.0, 50.0);
  const std::vector<const JobRuntime*> queue{late.get(), early.get()};
  EdfTestbedScheduler edf;
  EXPECT_EQ(edf.PickMapJob(queue), 1);
}

TEST(EdfTestbedScheduler, DeadlinedJobsBeforeDeadlineFree) {
  auto none = MakeJob(0, 0.0, 0.0);
  auto some = MakeJob(1, 5.0, 500.0);
  const std::vector<const JobRuntime*> queue{none.get(), some.get()};
  EdfTestbedScheduler edf;
  EXPECT_EQ(edf.PickMapJob(queue), 1);
}

TEST(EdfTestbedScheduler, TieBrokenByArrival) {
  auto first = MakeJob(0, 0.0, 100.0);
  auto second = MakeJob(1, 5.0, 100.0);
  const std::vector<const JobRuntime*> queue{second.get(), first.get()};
  EdfTestbedScheduler edf;
  EXPECT_EQ(edf.PickMapJob(queue), 0);
}

TEST(EdfTestbedScheduler, FallsBackWhenEarliestIsCapped) {
  auto early = MakeJob(0, 0.0, 50.0);
  auto late = MakeJob(1, 0.0, 100.0);
  early->caps().map_cap = 1;
  early->running_maps = 1;
  const std::vector<const JobRuntime*> queue{early.get(), late.get()};
  EdfTestbedScheduler edf;
  EXPECT_EQ(edf.PickMapJob(queue), 1);
}

TEST(JobRuntime, PrecomputedStateIsDeterministic) {
  auto a = MakeJob(3, 0.0, 0.0, 8, 4);
  auto b = MakeJob(3, 0.0, 0.0, 8, 4);
  ASSERT_EQ(a->num_maps(), 8);
  ASSERT_EQ(a->num_reduces(), 4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a->maps()[i].noise, b->maps()[i].noise);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a->reduces()[i].bytes_mb, b->reduces()[i].bytes_mb);
  }
}

TEST(JobRuntime, ReduceBytesSumToIntermediate) {
  auto job = MakeJob(0, 0.0, 0.0, 8, 4);
  double total = 0.0;
  for (const auto& r : job->reduces()) total += r.bytes_mb;
  EXPECT_NEAR(total, job->spec().IntermediateMb(), 1e-6);
}

TEST(JobRuntime, LastBlockMayBePartial) {
  SubmittedJob submission;
  submission.spec.app.name = "test";
  submission.spec.input_mb = 100.0;  // 64 + 36
  submission.spec.num_reduces = 1;
  JobRuntime job(0, submission, SmallConfig(), Rng(1));
  ASSERT_EQ(job.num_maps(), 2);
  EXPECT_DOUBLE_EQ(job.maps()[0].input_mb, 64.0);
  EXPECT_DOUBLE_EQ(job.maps()[1].input_mb, 36.0);
}

TEST(JobRuntime, ReduceReadyThresholdCeils) {
  auto job = MakeJob(0, 0.0, 0.0, /*num_maps=*/10, /*num_reduces=*/2);
  EXPECT_FALSE(job->ReduceReady(0.25));
  job->maps_reported = 2;
  EXPECT_FALSE(job->ReduceReady(0.25));  // ceil(2.5) = 3
  job->maps_reported = 3;
  EXPECT_TRUE(job->ReduceReady(0.25));
}

TEST(JobRuntime, PendingQueueAndRunningCounters) {
  auto job = MakeJob(0, 0.0, 0.0, 10, 4);
  EXPECT_TRUE(job->HasPendingMap());
  // Launch four attempts.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(job->PopPendingMap(), i);
    ++job->running_maps;
  }
  EXPECT_EQ(job->RunningMaps(), 4);
  EXPECT_TRUE(job->HasPendingMap());
  for (int i = 4; i < 10; ++i) (void)job->PopPendingMap();
  EXPECT_FALSE(job->HasPendingMap());
  EXPECT_THROW(job->PopPendingMap(), std::logic_error);
}

TEST(JobRuntime, RequeuePutsFailedTaskAtTheBack) {
  auto job = MakeJob(0, 0.0, 0.0, 3, 1);
  EXPECT_EQ(job->PopPendingMap(), 0);
  job->RequeueMap(0);  // attempt failed
  EXPECT_EQ(job->PopPendingMap(), 1);
  EXPECT_EQ(job->PopPendingMap(), 2);
  EXPECT_EQ(job->PopPendingMap(), 0);  // retried last
  EXPECT_FALSE(job->HasPendingMap());
}

}  // namespace
}  // namespace simmr::cluster
